# Developer entry points for the Uldp-FL reproduction.
#
#   make test           tier-1 test suite (what CI runs)
#   make bench          all paper-figure benchmarks (slow, prints tables)
#   make bench-engine   loop vs. vectorized engine speedup on fig05 MNIST
#   make bench-protocol reference vs. fast Paillier vs. masked secagg
#   make bench-sim      simulation runtime: 1M-user population + dropout
#   make bench-compress update compression: uplink bytes vs utility (fig05)
#   make bench-scaleout sharded engine: one DP round over 100k sampled users
#                       in bounded resident memory (BENCH_SCALEOUT_SCALE=smoke
#                       shrinks it to CI size)
#   make sweep-smoke    validate every committed spec file, then one smoke
#                       `repro run --config` and one 2-point `repro sweep`
#   make trace-smoke    one traced networked round trip: serve net_sim.toml
#                       with [obs] on (faults cleared), then summarise the
#                       resulting trace.jsonl
#   make docs-check     doctest the docs' worked examples + docstring coverage
#   make cost-check     bench-file schema + cost-model predictions vs the
#                       committed BENCH_*.json (the static half of the CI
#                       drift gate; docs/cost_model.md)
#   make cost-drift     re-run the smoke benches, re-fit the calibration
#                       constants, and assert they stay within 2x of the
#                       committed src/repro/cost/calibration.json
#
# bench-engine, bench-protocol, bench-sim, bench-compress, and
# bench-scaleout also refresh the machine-readable BENCH_engine.json /
# BENCH_protocol.json / BENCH_sim.json / BENCH_compression.json /
# BENCH_scaleout.json at the repo root, so the perf trajectory is
# tracked across PRs (CI uploads them as artifacts).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-engine bench-protocol bench-sim bench-compress bench-scaleout sweep-smoke trace-smoke docs-check cost-check cost-drift

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -s

bench-engine:
	$(PYTHON) -m pytest benchmarks/bench_engine_speedup.py -s

bench-protocol:
	$(PYTHON) -m pytest benchmarks/bench_protocol_speedup.py -s

bench-sim:
	$(PYTHON) -m pytest benchmarks/bench_sim_scale.py -s

bench-compress:
	$(PYTHON) -m pytest benchmarks/bench_compression.py -s

bench-scaleout:
	$(PYTHON) -m pytest benchmarks/bench_scaleout.py -s

# Smoke the declarative surface end to end: every committed spec file
# must validate (registry names, enums, sweep expansion), one config run
# and one 2-point sigma grid must execute.
sweep-smoke:
	$(PYTHON) -m repro validate-config examples/specs/*.toml
	$(PYTHON) -m repro run --config examples/specs/quickstart.toml \
		--set rounds=1 --set dataset.users=8 --set dataset.silos=2 \
		--set dataset.records=120 --set method.local_epochs=1
	$(PYTHON) -m repro sweep --config examples/specs/quickstart.toml \
		--set "sweep.method.sigma=[0.5,5.0]" \
		--set rounds=1 --set dataset.users=8 --set dataset.silos=2 \
		--set dataset.records=120 --set method.local_epochs=1

# A traced networked run end to end: server + spawned silos on an ideal
# network ([net.faults] cleared) with tracing enabled, then the trace
# summary must render (exit 0).  Artifacts land in trace-smoke/.
trace-smoke:
	rm -rf trace-smoke && mkdir -p trace-smoke
	$(PYTHON) -m repro serve --config examples/specs/net_sim.toml \
		--spawn-silos --log-level info \
		--set "net.faults={}" \
		--set obs.enabled=true \
		--set obs.trace_path=trace-smoke/trace.jsonl \
		--set sim.checkpoint_dir=trace-smoke/ckpt
	$(PYTHON) -m repro trace summary trace-smoke/trace.jsonl

docs-check:
	$(PYTHON) tools/check_docstrings.py
	$(PYTHON) -m doctest docs/privacy_accounting.md && echo "doctest OK: docs/privacy_accounting.md"

# Static cost-model gate: bench files must conform to the schema and the
# committed calibration must predict the committed BENCH numbers within
# 2x (byte formulas exactly).
cost-check:
	$(PYTHON) tools/check_bench_schema.py
	$(PYTHON) tools/check_cost_drift.py

# Dynamic cost-model gate (what the CI cost-drift job runs): refresh the
# bench files at smoke scale, re-fit the constants, and compare against
# the committed calibration.  Writes cost-drift-report.json.
cost-drift:
	$(PYTHON) -m pytest benchmarks/bench_engine_speedup.py -s
	BENCH_PROTOCOL_SCALE=smoke $(PYTHON) -m pytest benchmarks/bench_protocol_speedup.py -s
	$(PYTHON) -m pytest benchmarks/bench_sim_scale.py -s
	BENCH_COMPRESSION_SCALE=smoke $(PYTHON) -m pytest benchmarks/bench_compression.py -s
	BENCH_SCALEOUT_SCALE=smoke $(PYTHON) -m pytest benchmarks/bench_scaleout.py -s
	$(PYTHON) tools/check_cost_drift.py --refit --report cost-drift-report.json
