# Developer entry points for the Uldp-FL reproduction.
#
#   make test         tier-1 test suite (what CI runs)
#   make bench        all paper-figure benchmarks (slow, prints tables)
#   make bench-engine loop vs. vectorized engine speedup on fig05 MNIST
#   make docs-check   doctest the docs' worked examples + docstring coverage

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-engine docs-check

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -s

bench-engine:
	$(PYTHON) -m pytest benchmarks/bench_engine_speedup.py -s

docs-check:
	$(PYTHON) tools/check_docstrings.py
	$(PYTHON) -m doctest docs/privacy_accounting.md && echo "doctest OK: docs/privacy_accounting.md"
