"""Shim so `pip install -e .`/`setup.py develop` works without the wheel package."""
from setuptools import setup

setup()
