"""Why user-level DP: membership inference at two granularities.

Trains three models on the same cross-silo federation (with training-label
noise, so that fitting implies memorising) and attacks each with
loss-threshold membership inference -- once per record, once per *user*
(averaging scores over all of a user's records across silos).

The user-level attack is at least as strong as the record-level one on the
non-private models (aggregating a user's records sharpens the signal: the
paper's cumulative-risk argument for user-level DP), and ULDP-AVG training
pushes both toward coin-flipping.

Run:  python examples/membership_inference.py
"""

import numpy as np

from repro.attacks import run_membership_experiment
from repro.core import Default, UldpAvg
from repro.data import build_creditcard_benchmark
from repro.nn.model import build_tiny_mlp


def main() -> None:
    fed = build_creditcard_benchmark(
        n_users=10, n_silos=2, n_records=60, n_test=60, seed=3
    )
    rng = np.random.default_rng(13)
    for silo in fed.silos:
        flip = rng.random(silo.n_records) < 0.3
        silo.y = np.where(flip, 1 - silo.y, silo.y)
    print(fed.summary())
    print("(30% of training labels flipped to force memorisation)\n")

    configs = [
        ("overfit, non-private", Default(local_epochs=60, local_lr=0.3,
                                         batch_size=None), 5),
        ("ULDP-AVG, sigma=5", UldpAvg(noise_multiplier=5.0, local_epochs=1), 5),
    ]
    print(f"{'training':<22s} {'record AUC':>11s} {'user AUC':>9s}  (0.5 = chance)")
    for label, method, rounds in configs:
        model = build_tiny_mlp(30, 64, 2, np.random.default_rng(5))
        result = run_membership_experiment(fed, method, rounds=rounds, seed=4,
                                           model=model)
        print(f"{label:<22s} {result.record_auc:11.3f} {result.user_auc:9.3f}")


if __name__ == "__main__":
    main()
