"""Quickstart: train a cross-silo model with user-level DP in ~30 seconds.

Builds a small Creditcard-like federation (5 silos, 100 users whose records
span silos), trains with ULDP-AVG (the paper's Algorithm 3), and prints the
accuracy/epsilon trajectory.

Run:  python examples/quickstart.py
"""

from repro import Trainer, UldpAvg, build_creditcard_benchmark


def main() -> None:
    # 5 credit-card companies; 100 customers, each possibly present at
    # several companies (zipf-skewed record counts).
    fed = build_creditcard_benchmark(
        n_users=100,
        n_silos=5,
        distribution="zipf",
        n_records=4_000,
        n_test=1_000,
        seed=0,
    )
    print(fed.summary())

    method = UldpAvg(
        clip=1.0,
        noise_multiplier=5.0,   # the paper's sigma
        local_epochs=2,
        weighting="proportional",  # ULDP-AVG-w (Eq. 3)
    )
    trainer = Trainer(fed, method, rounds=10, delta=1e-5, seed=0)
    history = trainer.run()

    print(f"\n{'round':>5s} {'accuracy':>9s} {'test loss':>10s} {'eps (ULDP)':>11s}")
    for r in history.records:
        print(f"{r.round:5d} {r.metric:9.4f} {r.loss:10.4f} {r.epsilon:11.4f}")
    print(f"\n=> {history.summary()}")


if __name__ == "__main__":
    main()
