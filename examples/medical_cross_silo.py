"""Cross-silo medical federations: HeartDisease and TcgaBrca.

Reproduces the flavour of the paper's Figures 6-7 on the two FLamby-style
benchmarks: 4 hospital silos with a logistic model (accuracy) and 6 silos
with a linear Cox model evaluated by C-index.  Patients ("users") have
records at several hospitals -- the exact setting record-level DP cannot
protect.

Run:  python examples/medical_cross_silo.py
"""

from repro import (
    Trainer,
    UldpAvg,
    UldpNaive,
    build_heartdisease_benchmark,
    build_tcgabrca_benchmark,
)

SIGMA = 5.0
ROUNDS = 15


def run_dataset(fed, local_lr: float) -> None:
    print(fed.summary())
    methods = [
        UldpNaive(noise_multiplier=SIGMA, local_lr=local_lr, local_epochs=2),
        UldpAvg(noise_multiplier=SIGMA, local_lr=local_lr, local_epochs=2),
        UldpAvg(noise_multiplier=SIGMA, local_lr=local_lr, local_epochs=2,
                weighting="proportional"),
    ]
    for method in methods:
        history = Trainer(fed, method, rounds=ROUNDS, seed=0).run()
        final = history.final
        print(
            f"  {history.method:<14s} {final.metric_name}={final.metric:.4f} "
            f"loss={final.loss:.4f} eps={final.epsilon:.3f}"
        )
    print()


def main() -> None:
    # Patients spread across hospitals with a zipf-skewed allocation; 80% of
    # a patient's records sit at their "home" hospital.
    heart = build_heartdisease_benchmark(n_users=50, distribution="zipf", seed=0)
    run_dataset(heart, local_lr=0.05)

    tcga = build_tcgabrca_benchmark(n_users=50, distribution="zipf", seed=0)
    run_dataset(tcga, local_lr=0.01)


if __name__ == "__main__":
    main()
