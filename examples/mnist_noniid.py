"""User-level non-iid MNIST: the failure mode and the fix.

The paper observes (Fig. 5c vs 5f) that ULDP-AVG suffers under user-level
non-iid label skew when users are few -- per-user gradients overfit each
user's 2 labels -- but recovers as the user count grows.  This example
contrasts iid and non-iid allocations at two user counts and also shows
user-level sub-sampling (Algorithm 4) buying a smaller epsilon.

Run:  python examples/mnist_noniid.py  (a few minutes: CNN training)
"""

from repro import Trainer, UldpAvg, build_mnist_benchmark

ROUNDS = 4
SIGMA = 5.0


def run(n_users: int, non_iid: bool, user_sample_rate=None) -> None:
    fed = build_mnist_benchmark(
        n_users=n_users,
        n_silos=5,
        distribution="zipf",
        non_iid=non_iid,
        n_records=1_500,
        n_test=400,
        seed=0,
    )
    method = UldpAvg(
        noise_multiplier=SIGMA,
        local_epochs=1,
        local_lr=0.05,
        weighting="proportional",
        user_sample_rate=user_sample_rate,
    )
    history = Trainer(fed, method, rounds=ROUNDS, seed=0).run()
    final = history.final
    label = "non-iid" if non_iid else "iid"
    q = f" q={user_sample_rate}" if user_sample_rate else ""
    print(
        f"|U|={n_users:4d} {label:<7s}{q:<7s} "
        f"accuracy={final.metric:.4f} loss={final.loss:.4f} eps={final.epsilon:.3f}"
    )


def main() -> None:
    print(f"MNIST-like CNN, {ROUNDS} rounds, sigma={SIGMA}\n")
    run(n_users=20, non_iid=False)
    run(n_users=20, non_iid=True)     # hurts: few users, label skew
    run(n_users=200, non_iid=False)
    run(n_users=200, non_iid=True)    # much closer: many users average out
    run(n_users=200, non_iid=False, user_sample_rate=0.5)  # amplification


if __name__ == "__main__":
    main()
