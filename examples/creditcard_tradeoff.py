"""Privacy-utility trade-offs on Creditcard: all methods side by side.

A scaled-down rendition of the paper's Figure 4: DEFAULT (non-private),
ULDP-NAIVE, ULDP-GROUP-k, ULDP-SGD, ULDP-AVG, and ULDP-AVG-w on the same
federation, reporting final accuracy and the accumulated user-level epsilon.

Expected shape (matching the paper): DEFAULT has the best accuracy;
ULDP-AVG/AVG-w come close at a small epsilon; ULDP-NAIVE has tiny epsilon
but poor accuracy; ULDP-GROUP's epsilon is orders of magnitude larger.

Run:  python examples/creditcard_tradeoff.py
"""

from repro import (
    Default,
    Trainer,
    UldpAvg,
    UldpGroup,
    UldpNaive,
    UldpSgd,
    build_creditcard_benchmark,
)

ROUNDS = 8
SIGMA = 5.0
DELTA = 1e-5


def main() -> None:
    fed = build_creditcard_benchmark(
        n_users=100, n_silos=5, distribution="zipf",
        n_records=4_000, n_test=1_000, seed=1,
    )
    print(fed.summary(), "\n")

    methods = [
        Default(local_epochs=2),
        UldpNaive(noise_multiplier=SIGMA, local_epochs=2),
        UldpGroup(group_size=8, noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=64),
        UldpGroup(group_size="median", noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=64),
        UldpSgd(noise_multiplier=SIGMA),
        UldpAvg(noise_multiplier=SIGMA, local_epochs=2),
        UldpAvg(noise_multiplier=SIGMA, local_epochs=2, weighting="proportional"),
    ]

    print(f"{'method':<22s} {'accuracy':>9s} {'loss':>8s} {'eps (ULDP)':>12s}")
    for method in methods:
        history = Trainer(fed, method, rounds=ROUNDS, delta=DELTA, seed=2).run()
        final = history.final
        eps = "      (none)" if final.epsilon is None else f"{final.epsilon:12.3f}"
        print(f"{history.method:<22s} {final.metric:9.4f} {final.loss:8.4f} {eps}")


if __name__ == "__main__":
    main()
