"""Protocol 1 end to end: private weighting with real cryptography.

Runs ULDP-AVG-w where the enhanced Eq. (3) weights are applied *inside the
encrypted domain*: the server never sees per-silo user histograms (only
multiplicatively blinded totals), silos never see each other's weights, and
the server decrypts only the aggregated model delta.  The script prints

1. the training trajectory (identical to plaintext ULDP-AVG-w up to the
   fixed-point precision P = 1e-10),
2. the per-phase protocol timing breakdown (the paper's Fig. 10/11), and
3. a peek at the server's view, demonstrating it is blinded field elements
   rather than histogram counts.

Run:  python examples/private_protocol_demo.py
"""

import numpy as np

from repro import Trainer, build_heartdisease_benchmark
from repro.core import UldpAvg
from repro.protocol import SecureUldpAvg


def main() -> None:
    fed = build_heartdisease_benchmark(n_users=12, distribution="zipf", seed=0)
    print(fed.summary())
    print(f"true user totals N_u: {fed.user_totals().tolist()}\n")

    secure = SecureUldpAvg(
        noise_multiplier=5.0,
        local_epochs=2,
        paillier_bits=512,   # paper uses 3072-bit; smaller keeps the demo fast
        precision=1e-10,
    )
    history = Trainer(fed, secure, rounds=3, seed=0).run()
    for r in history.records:
        print(f"round {r.round}: accuracy={r.metric:.4f} eps={r.epsilon:.3f}")

    plain = UldpAvg(noise_multiplier=5.0, local_epochs=2, weighting="proportional")
    plain_history = Trainer(fed, plain, rounds=3, seed=0).run()
    print(
        f"\nplaintext ULDP-AVG-w accuracy (same seed): "
        f"{plain_history.final.metric:.4f}  -- Theorem 4: identical up to P"
    )

    print("\nprotocol phase timings:")
    for phase, seconds in sorted(secure.timing_report().items()):
        print(f"  {phase:<26s} {seconds * 1000:9.1f} ms")

    assert secure.protocol is not None
    view = secure.protocol.view
    print("\nserver view of user totals (blinded, mod n):")
    for u, blinded in enumerate(view.blinded_totals[:4]):
        print(f"  user {u}: N_u={int(fed.user_totals()[u])}  server sees {str(blinded)[:40]}...")
    magnitudes = [b.bit_length() for b in view.blinded_totals]
    print(f"  (blinded values are ~{int(np.mean(magnitudes))}-bit field elements)")


if __name__ == "__main__":
    main()
