"""Cross-module integration tests: full pipelines on every dataset/task.

These exercise the complete stack -- synthetic data, allocation, per-user
training, clipping/weighting, noise, accounting -- at small scale, and
assert the *relational* facts the paper's evaluation rests on rather than
absolute utilities.
"""

import numpy as np
import pytest

from repro.core import Default, Trainer, UldpAvg, UldpGroup, UldpNaive, UldpSgd
from repro.data import (
    build_creditcard_benchmark,
    build_heartdisease_benchmark,
    build_mnist_benchmark,
    build_tcgabrca_benchmark,
)

DELTA = 1e-5


class TestAllDatasetsAllMethods:
    """Every method must run end-to-end on every task type."""

    @pytest.fixture(scope="class")
    def feds(self):
        return {
            "creditcard": build_creditcard_benchmark(
                n_users=8, n_silos=2, n_records=160, n_test=40, seed=0
            ),
            "mnist": build_mnist_benchmark(
                n_users=6, n_silos=2, n_records=60, n_test=20, seed=0
            ),
            "heartdisease": build_heartdisease_benchmark(
                n_users=8, silo_sizes=(40, 30), seed=0
            ),
            "tcgabrca": build_tcgabrca_benchmark(
                n_users=6, silo_sizes=(40, 40), seed=0
            ),
        }

    @pytest.mark.parametrize("dataset", ["creditcard", "mnist", "heartdisease", "tcgabrca"])
    @pytest.mark.parametrize(
        "method_factory",
        [
            lambda: Default(local_epochs=1),
            lambda: UldpNaive(noise_multiplier=1.0, local_epochs=1),
            lambda: UldpGroup(group_size=2, noise_multiplier=1.0, local_steps=1,
                              expected_batch_size=8),
            lambda: UldpAvg(noise_multiplier=1.0, local_epochs=1),
            lambda: UldpAvg(noise_multiplier=1.0, local_epochs=1,
                            weighting="proportional"),
            lambda: UldpSgd(noise_multiplier=1.0),
        ],
        ids=["DEFAULT", "NAIVE", "GROUP-2", "AVG", "AVG-w", "SGD"],
    )
    def test_runs_and_reports(self, feds, dataset, method_factory):
        fed = feds[dataset]
        history = Trainer(fed, method_factory(), rounds=2, delta=DELTA, seed=1).run()
        assert len(history.records) == 2
        final = history.final
        assert np.isfinite(final.loss)
        if fed.task == "survival":
            assert 0.0 <= final.metric <= 1.0
        else:
            assert 0.0 <= final.metric <= 1.0
        if history.method != "DEFAULT":
            assert final.epsilon is not None and final.epsilon > 0


class TestPaperRelations:
    """The relations the paper's figures demonstrate, at miniature scale."""

    @pytest.fixture(scope="class")
    def fed(self):
        return build_creditcard_benchmark(
            n_users=30, n_silos=3, distribution="zipf",
            n_records=600, n_test=200, seed=2,
        )

    def test_group_epsilon_dwarfs_direct_methods(self, fed):
        group = UldpGroup(group_size=8, noise_multiplier=5.0, local_steps=1,
                          expected_batch_size=64)
        avg = UldpAvg(noise_multiplier=5.0, local_epochs=1)
        eps_group = Trainer(fed, group, rounds=3, seed=3).run().final.epsilon
        eps_avg = Trainer(fed, avg, rounds=3, seed=3).run().final.epsilon
        assert eps_group > 5 * eps_avg

    def test_naive_and_avg_share_theorem_epsilon(self, fed):
        naive = UldpNaive(noise_multiplier=5.0, local_epochs=1)
        avg = UldpAvg(noise_multiplier=5.0, local_epochs=1)
        eps_naive = Trainer(fed, naive, rounds=2, seed=4).run().final.epsilon
        eps_avg = Trainer(fed, avg, rounds=2, seed=4).run().final.epsilon
        assert eps_naive == pytest.approx(eps_avg)

    def test_subsampling_strictly_amplifies(self, fed):
        full = UldpAvg(noise_multiplier=5.0, local_epochs=1)
        sub = UldpAvg(noise_multiplier=5.0, local_epochs=1, user_sample_rate=0.3)
        eps_full = Trainer(fed, full, rounds=2, seed=5).run().final.epsilon
        eps_sub = Trainer(fed, sub, rounds=2, seed=5).run().final.epsilon
        assert eps_sub < 0.8 * eps_full

    def test_default_learns_the_synthetic_task(self, fed):
        history = Trainer(
            fed, Default(local_epochs=2, local_lr=0.1), rounds=8, seed=6
        ).run()
        majority = max(fed.test_y.mean(), 1 - fed.test_y.mean())
        assert history.final.metric > majority + 0.02

    def test_group_flag_strategies_order_epsilon_by_k(self, fed):
        eps = {}
        for k in (2, 8):
            method = UldpGroup(group_size=k, noise_multiplier=5.0, local_steps=1,
                               expected_batch_size=64)
            eps[k] = Trainer(fed, method, rounds=2, seed=7).run().final.epsilon
        assert eps[8] > eps[2]

    def test_noise_hurts_utility_on_average(self, fed):
        """sigma=0 (no DP noise) should beat sigma=5 utility-wise over
        several seeds -- the basic privacy/utility trade-off."""
        wins = 0
        trials = 3
        for seed in range(trials):
            clean = Trainer(
                fed, UldpAvg(noise_multiplier=0.0, local_epochs=1), rounds=3,
                seed=10 + seed,
            ).run().final.metric
            noisy = Trainer(
                fed, UldpAvg(noise_multiplier=5.0, local_epochs=1), rounds=3,
                seed=10 + seed,
            ).run().final.metric
            if clean >= noisy:
                wins += 1
        assert wins >= 2


class TestHistoryBookkeeping:
    def test_round_numbers_and_monotone_epsilon_all_methods(self):
        fed = build_heartdisease_benchmark(n_users=10, silo_sizes=(30, 30), seed=8)
        for method in (
            UldpNaive(noise_multiplier=2.0, local_epochs=1),
            UldpAvg(noise_multiplier=2.0, local_epochs=1),
            UldpGroup(group_size=2, noise_multiplier=2.0, local_steps=1,
                      expected_batch_size=8),
        ):
            history = Trainer(fed, method, rounds=3, seed=9).run()
            assert history.series("round") == [1, 2, 3]
            eps = history.series("epsilon")
            assert all(b > a for a, b in zip(eps, eps[1:]))
