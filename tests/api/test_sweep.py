"""Tests for grid sweeps: expansion, aggregation, parallel execution."""

import pytest

from repro.api.spec import RunSpec
from repro.api.sweep import run_sweep
from repro.report import history_to_dict

#: A small 3-point sigma grid (the acceptance-criteria case).
SIGMA_SWEEP = {
    "name": "sigma-sweep",
    "rounds": 2,
    "dataset": {"users": 8, "silos": 2, "records": 120},
    "method": {"name": "uldp-avg-w", "local_epochs": 1},
    "sweep": {"method.sigma": [0.5, 1.0, 2.0]},
}


class TestSweepExecution:
    def test_three_point_sigma_grid(self):
        sweep = run_sweep(RunSpec.from_dict(SIGMA_SWEEP))
        assert len(sweep.results) == 3
        # Larger sigma => smaller epsilon, monotone across the grid.
        eps = [r.history.final.epsilon for r in sweep.results]
        assert eps[0] > eps[1] > eps[2]

    def test_one_aggregated_table(self):
        sweep = run_sweep(RunSpec.from_dict(SIGMA_SWEEP))
        table = sweep.table()
        for sigma in ("0.5", "1.0", "2.0"):
            assert f"method.sigma={sigma}" in table
        # One header plus one row per grid point.
        assert len(table.splitlines()) == 4

    def test_per_run_spec_hashed_histories(self):
        sweep = run_sweep(RunSpec.from_dict(SIGMA_SWEEP))
        hashes = {r.spec_hash for r in sweep.results}
        assert len(hashes) == 3
        for point, result in zip(sweep.points, sweep.results):
            assert result.history.spec_hash == point.spec.hash()
            assert result.history.spec == point.spec.to_dict()

    def test_identical_training_noise_across_grid(self):
        """Sweep children share the trainer seed: same data, same draws."""
        sweep = run_sweep(RunSpec.from_dict(SIGMA_SWEEP))
        datasets = {r.history.dataset for r in sweep.results}
        assert len(datasets) == 1

    def test_sequential_grid_builds_each_dataset_once(self):
        """Grid points with one dataset section share the built federation."""
        sweep = run_sweep(RunSpec.from_dict(SIGMA_SWEEP))
        assert len({id(r.dataset) for r in sweep.results}) == 1

    def test_dataset_axis_gets_distinct_federations(self):
        tree = dict(SIGMA_SWEEP, sweep={"dataset.users": [8, 12]})
        sweep = run_sweep(RunSpec.from_dict(tree))
        assert len({id(r.dataset) for r in sweep.results}) == 2
        assert [r.dataset.n_users for r in sweep.results] == [8, 12]

    def test_bad_axis_name_fails_before_any_run(self):
        from repro.api.registries import UnknownNameError

        tree = dict(SIGMA_SWEEP, sweep={"method.name": ["uldp-avg-w", "nope"]})
        with pytest.raises(UnknownNameError, match="unknown method"):
            run_sweep(RunSpec.from_dict(tree))

    def test_sweep_without_axes_is_single_run(self):
        tree = dict(SIGMA_SWEEP)
        tree.pop("sweep")
        sweep = run_sweep(RunSpec.from_dict(tree))
        assert len(sweep.results) == 1
        assert sweep.points[0].label == ""

    def test_bad_workers_rejected(self):
        from repro.api.spec import SpecError

        with pytest.raises(SpecError, match="workers"):
            run_sweep(RunSpec.from_dict(SIGMA_SWEEP), workers=0)


class TestParallelSweep:
    def test_parallel_matches_sequential(self):
        spec = RunSpec.from_dict(SIGMA_SWEEP)
        sequential = run_sweep(spec)
        parallel = run_sweep(spec, workers=2)
        assert len(parallel.results) == 3
        for seq, par in zip(sequential.results, parallel.results):
            assert par.spec_hash == seq.spec_hash
            seq_hist = history_to_dict(seq.history)
            par_hist = history_to_dict(par.history)
            seq_hist.pop("round_seconds", None)
            par_hist.pop("round_seconds", None)
            assert par_hist == seq_hist


class TestSimulationSweep:
    def test_scenario_axis_keeps_simulators(self):
        spec = RunSpec.from_dict({
            "name": "scenario-grid",
            "sim": {"scenario": "ideal-sync", "scale": "smoke"},
            "sweep": {"sim.scenario": ["ideal-sync", "flaky-silos"]},
        })
        sweep = run_sweep(spec)
        assert len(sweep.results) == 2
        for result in sweep.results:
            assert result.simulator is not None
            assert result.simulator.done
