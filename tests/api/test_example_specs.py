"""The committed example/experiment spec files stay valid and in sync."""

import glob
from pathlib import Path

import pytest

from repro.api.runner import validate_spec_names
from repro.api.spec import RunSpec, expand_sweep

SPEC_DIR = Path(__file__).resolve().parent.parent.parent / "examples" / "specs"


def spec_files():
    return sorted(glob.glob(str(SPEC_DIR / "*.toml")))


class TestCommittedSpecs:
    def test_directory_is_populated(self):
        names = {Path(p).stem for p in spec_files()}
        assert {"quickstart", "sigma_sweep", "bandwidth_sim"} <= names
        assert {"fig04", "fig06", "fig08", "fig09", "sim01"} <= names

    @pytest.mark.parametrize("path", spec_files(), ids=lambda p: Path(p).stem)
    def test_file_validates(self, path):
        spec = RunSpec.from_file(path)
        for point in expand_sweep(spec):
            validate_spec_names(point.spec)

    @pytest.mark.parametrize("path", spec_files(), ids=lambda p: Path(p).stem)
    def test_file_roundtrips(self, path):
        spec = RunSpec.from_file(path)
        assert RunSpec.from_dict(spec.to_dict()) == spec


class TestExperimentSpecSync:
    """The experiment registry and its committed TOMLs are one artifact."""

    @pytest.mark.parametrize("name", ["fig04", "fig06", "fig08", "fig09", "sim01"])
    def test_toml_matches_registry(self, name):
        import sys

        sys.path.insert(0, str(SPEC_DIR.parent.parent / "tools"))
        try:
            from gen_experiment_specs import header_for
        finally:
            sys.path.pop(0)
        from repro.experiments import spec_for_experiment

        spec = spec_for_experiment(name, scale="small", seed=0)
        committed = (SPEC_DIR / f"{name}.toml").read_text()
        assert committed == spec.to_toml(header=header_for(name)), (
            f"examples/specs/{name}.toml is stale; regenerate with "
            "`python tools/gen_experiment_specs.py`"
        )

    def test_analytic_experiments_have_no_spec(self):
        from repro.experiments import spec_for_experiment

        with pytest.raises(ValueError, match="analytic"):
            spec_for_experiment("fig02")

    def test_unknown_experiment_suggested(self):
        from repro.api.registries import UnknownNameError
        from repro.experiments import spec_for_experiment

        with pytest.raises(UnknownNameError, match="did you mean"):
            spec_for_experiment("fig4")
