"""Validation and hash-stability of the [obs] spec section."""

import pytest

from repro.api.spec import ObsSpec, RunSpec, SpecError


def tree(**obs) -> dict:
    return {
        "name": "obs-spec",
        "rounds": 1,
        "dataset": {"users": 6, "silos": 2, "records": 80},
        "obs": obs,
    }


class TestValidation:
    def test_defaults_are_disabled(self):
        obs = ObsSpec()
        assert obs.enabled is False
        assert obs.trace_path is None
        assert obs.sample_rate == 1.0
        assert obs.metrics_port is None

    def test_enabled_must_be_bool(self):
        with pytest.raises(SpecError, match="boolean"):
            RunSpec.from_dict(tree(enabled=1))

    def test_sample_rate_bounds(self):
        for rate in (0.0, -0.5, 1.01):
            with pytest.raises(SpecError, match="sample_rate"):
                ObsSpec(sample_rate=rate)
        ObsSpec(sample_rate=1.0)
        ObsSpec(sample_rate=0.001)

    def test_metrics_port_bounds(self):
        for port in (-1, 65536):
            with pytest.raises(SpecError, match="metrics_port"):
                ObsSpec(metrics_port=port)
        assert ObsSpec(metrics_port=0).metrics_port == 0

    def test_unknown_obs_key_rejected(self):
        with pytest.raises(SpecError):
            RunSpec.from_dict(tree(enabled=True, verbosity=3))


class TestHashStability:
    def test_obs_never_changes_the_canonical_hash(self):
        base = RunSpec.from_dict({k: v for k, v in tree().items()
                                  if k != "obs"})
        variants = [
            tree(enabled=True),
            tree(enabled=True, sample_rate=0.25),
            tree(enabled=True, trace_path="/tmp/t.jsonl", metrics_port=0),
            tree(enabled=False),
        ]
        for variant in variants:
            assert RunSpec.from_dict(variant).hash() == base.hash()

    def test_obs_survives_to_dict(self):
        spec = RunSpec.from_dict(tree(enabled=True, sample_rate=0.5))
        data = spec.to_dict()
        assert data["obs"]["enabled"] is True
        assert RunSpec.from_dict(data).obs == spec.obs

    def test_canonical_json_omits_obs(self):
        spec = RunSpec.from_dict(tree(enabled=True))
        assert '"obs"' not in spec.canonical_json()
