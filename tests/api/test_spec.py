"""Tests for the RunSpec tree: validation, overrides, sweep expansion."""

import pytest

from repro.api.spec import (
    DatasetSpec,
    MethodSpec,
    RunSpec,
    SpecError,
    apply_overrides,
    expand_sweep,
    parse_assignment,
    validate_path,
)


class TestDefaults:
    def test_empty_dict_is_the_default_train_run(self):
        spec = RunSpec.from_dict({})
        assert not spec.is_simulation
        assert spec.dataset == DatasetSpec()
        assert spec.method == MethodSpec()
        assert spec.method.name == "uldp-avg-w"
        assert spec.rounds is None

    def test_sim_mode_method_default_is_scenario_canonical(self):
        spec = RunSpec.from_dict({"sim": {"scenario": "ideal-sync"}})
        assert spec.is_simulation
        assert spec.dataset is None
        assert spec.method.name == "uldp-avg-w"
        assert spec.method.local_epochs == 1  # not the train-mode 2

    def test_explicit_method_table_uses_train_defaults(self):
        spec = RunSpec.from_dict(
            {"sim": {"scenario": "ideal-sync"}, "method": {"sigma": 2.0}}
        )
        assert spec.method.local_epochs == 2


class TestValidationErrorsNameThePath:
    def test_negative_sigma(self):
        with pytest.raises(SpecError, match="method") as exc:
            RunSpec.from_dict({"method": {"sigma": -1.0}})
        assert "sigma" in str(exc.value)

    def test_bad_enum(self):
        with pytest.raises(SpecError, match="dataset") as exc:
            RunSpec.from_dict({"dataset": {"distribution": "powerlaw"}})
        assert "distribution" in str(exc.value)

    def test_unknown_section_key_suggested(self):
        with pytest.raises(SpecError, match=r"method\.sigmaa"):
            RunSpec.from_dict({"method": {"sigmaa": 1.0}})

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="methodd"):
            RunSpec.from_dict({"methodd": {}})

    def test_bad_delta(self):
        with pytest.raises(SpecError, match="privacy"):
            RunSpec.from_dict({"privacy": {"delta": 2.0}})

    def test_bad_compression_nested(self):
        with pytest.raises(SpecError, match="compression"):
            RunSpec.from_dict({"compression": {"sparsify": "topk", "fraction": 3.0}})

    def test_boolean_is_not_a_number(self):
        with pytest.raises(SpecError, match=r"method\.sigma"):
            RunSpec.from_dict({"method": {"sigma": True}})

    def test_dataset_alongside_sim_rejected(self):
        with pytest.raises(SpecError, match="dataset"):
            RunSpec.from_dict(
                {"sim": {"scenario": "ideal-sync"}, "dataset": {"users": 5}}
            )

    def test_crypto_requires_secure_method(self):
        with pytest.raises(SpecError, match="crypto"):
            RunSpec.from_dict({"crypto": {"backend": "fast"}})

    def test_crypto_with_secure_method_accepted(self):
        spec = RunSpec.from_dict(
            {"method": {"name": "secure-uldp-avg"}, "crypto": {"backend": "reference"}}
        )
        assert spec.crypto.backend == "reference"

    def test_int_promoted_to_float(self):
        spec = RunSpec.from_dict({"method": {"sigma": 5}})
        assert spec.method.sigma == 5.0
        assert isinstance(spec.method.sigma, float)

    def test_integral_float_demoted_to_int(self):
        spec = RunSpec.from_dict({"rounds": 3.0, "dataset": {"users": 8.0}})
        assert spec.rounds == 3 and isinstance(spec.rounds, int)
        assert spec.dataset.users == 8 and isinstance(spec.dataset.users, int)

    def test_fractional_float_into_int_field_rejected(self):
        with pytest.raises(SpecError, match=r"dataset\.users: expected an integer"):
            RunSpec.from_dict({"dataset": {"users": 8.5}})
        with pytest.raises(SpecError, match="rounds: expected an integer"):
            RunSpec.from_dict({"rounds": 1.5})


class TestOverrides:
    def test_scalar_override(self):
        spec = RunSpec.from_dict(apply_overrides({}, {"method.sigma": 1.5}))
        assert spec.method.sigma == 1.5

    def test_override_creates_optional_section(self):
        tree = apply_overrides({}, {"sim.scenario": "silo-outage"})
        spec = RunSpec.from_dict(tree)
        assert spec.sim.scenario == "silo-outage"

    def test_unknown_path_rejected_with_suggestion(self):
        with pytest.raises(SpecError, match="did you mean"):
            apply_overrides({}, {"method.sigm": 1.0})

    def test_unknown_section_rejected(self):
        with pytest.raises(SpecError, match="unknown config path"):
            apply_overrides({}, {"nosuch.field": 1.0})

    def test_bare_section_assignment_rejected(self):
        with pytest.raises(SpecError, match="section cannot be assigned"):
            validate_path("method")

    def test_sweep_axis_override(self):
        tree = apply_overrides({}, {"sweep.method.sigma": [0.5, 1.0]})
        spec = RunSpec.from_dict(tree)
        assert spec.sweep == {"method.sigma": [0.5, 1.0]}

    def test_sweep_axis_needs_list(self):
        with pytest.raises(SpecError, match="list"):
            apply_overrides({}, {"sweep.method.sigma": 1.0})

    def test_parse_assignment_types(self):
        assert parse_assignment("method.sigma=1.5") == ("method.sigma", 1.5)
        assert parse_assignment("method.name=uldp-avg") == ("method.name", "uldp-avg")
        assert parse_assignment("dataset.non_iid=true") == ("dataset.non_iid", True)
        assert parse_assignment("sweep.method.sigma=[1,2]") == (
            "sweep.method.sigma", [1, 2],
        )

    def test_parse_assignment_requires_equals(self):
        with pytest.raises(SpecError):
            parse_assignment("method.sigma")

    def test_with_overrides_revalidates(self):
        spec = RunSpec.from_dict({})
        with pytest.raises(SpecError, match="method"):
            spec.with_overrides({"method.sigma": -3.0})


class TestHash:
    def test_stable_across_key_order(self):
        a = RunSpec.from_dict({"seed": 1, "method": {"sigma": 2.0}})
        b = RunSpec.from_dict({"method": {"sigma": 2.0}, "seed": 1})
        assert a.hash() == b.hash()

    def test_sensitive_to_any_field(self):
        base = RunSpec.from_dict({})
        assert base.hash() != RunSpec.from_dict({"method": {"sigma": 4.9}}).hash()
        assert base.hash() != RunSpec.from_dict({"seed": 1}).hash()

    def test_hash_is_hex16(self):
        digest = RunSpec.from_dict({}).hash()
        assert len(digest) == 16
        int(digest, 16)


class TestSweepExpansion:
    def test_no_axes_is_identity(self):
        spec = RunSpec.from_dict({})
        points = expand_sweep(spec)
        assert len(points) == 1 and points[0].spec == spec

    def test_grid_is_cartesian(self):
        spec = RunSpec.from_dict({
            "sweep": {
                "method.sigma": [0.5, 1.0, 2.0],
                "dataset.users": [10, 20],
            }
        })
        points = expand_sweep(spec)
        assert len(points) == 6
        combos = {(p.spec.method.sigma, p.spec.dataset.users) for p in points}
        assert combos == {(s, u) for s in (0.5, 1.0, 2.0) for u in (10, 20)}

    def test_children_have_distinct_hashes_and_no_sweep(self):
        spec = RunSpec.from_dict({"sweep": {"method.sigma": [0.5, 1.0]}})
        points = expand_sweep(spec)
        hashes = {p.spec.hash() for p in points}
        assert len(hashes) == 2
        for p in points:
            assert not p.spec.sweep
            assert p.label in p.spec.name

    def test_whole_section_axis(self):
        spec = RunSpec.from_dict({
            "sweep": {"method": [{"name": "uldp-avg"}, {"name": "uldp-avg-w"}]}
        })
        points = expand_sweep(spec)
        assert [p.spec.method.name for p in points] == ["uldp-avg", "uldp-avg-w"]
        # Unset fields fall back to MethodSpec defaults, not the base.
        assert all(p.spec.method.sigma == 5.0 for p in points)

    def test_invalid_axis_path_rejected(self):
        with pytest.raises(SpecError, match="sweep"):
            RunSpec.from_dict({"sweep": {"method.sigmaa": [1.0]}})

    def test_empty_axis_rejected(self):
        with pytest.raises(SpecError, match="non-empty"):
            RunSpec.from_dict({"sweep": {"method.sigma": []}})

    def test_invalid_child_value_names_path(self):
        spec = RunSpec.from_dict({"sweep": {"method.sigma": [1.0, -2.0]}})
        with pytest.raises(SpecError, match="sigma"):
            expand_sweep(spec)


class TestEngineSection:
    def test_defaults(self):
        spec = RunSpec.from_dict({"engine": {}})
        assert spec.engine.workers == 0
        assert spec.engine.shard_size == 4096
        assert spec.engine.backend == "numpy"

    def test_absent_by_default(self):
        assert RunSpec.from_dict({}).engine is None

    def test_round_trip(self):
        spec = RunSpec.from_dict(
            {"engine": {"workers": 4, "shard_size": 256, "backend": "numpy"}}
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["engine"]["workers"] == 4

    def test_validation(self):
        with pytest.raises(SpecError, match="workers"):
            RunSpec.from_dict({"engine": {"workers": -1}})
        with pytest.raises(SpecError, match="shard_size"):
            RunSpec.from_dict({"engine": {"shard_size": 0}})
        with pytest.raises(SpecError, match="backend"):
            RunSpec.from_dict({"engine": {"backend": "jax"}})
        with pytest.raises(SpecError, match="boolean"):
            RunSpec.from_dict({"engine": {"workers": True}})

    def test_conflicts_with_sim(self):
        with pytest.raises(SpecError, match="engine.*\\[sim\\]"):
            RunSpec.from_dict({
                "sim": {"scenario": "silo-outage"},
                "engine": {"workers": 2},
            })

    def test_override_creates_section(self):
        tree = apply_overrides({}, {"engine.workers": 4})
        spec = RunSpec.from_dict(tree)
        assert spec.engine.workers == 4

    def test_parse_assignment(self):
        assert parse_assignment("engine.shard_size=256") == (
            "engine.shard_size", 256,
        )

    def test_engine_changes_hash(self):
        # [engine] names the execution plan, so unlike [obs] it is part
        # of the run's identity hash -- but never of its results (see
        # tests/core/test_engine_determinism.py).
        base = RunSpec.from_dict({})
        sharded = RunSpec.from_dict({"engine": {"workers": 2}})
        assert base.hash() != sharded.hash()
