"""Oracle equivalence: the spec path reproduces the legacy paths bit-for-bit.

The "legacy" side of each test constructs dataset/method/Trainer (or the
scenario simulator) exactly as the pre-spec CLI did -- the seed code
path -- and the "spec" side routes the equivalent shim-generated
:class:`RunSpec` through ``repro.api.run``.  Histories must match bit for
bit (wall-clock ``round_seconds`` excluded).
"""

import argparse
import json

import numpy as np
import pytest

from repro.api.runner import run
from repro.api.spec import RunSpec
from repro.cli import simulate_spec_tree, train_spec_tree
from repro.report import history_to_dict


def _strip_volatile(history) -> dict:
    data = history_to_dict(history)
    data.pop("spec", None)
    data.pop("spec_hash", None)
    return data


def _train_args(**overrides) -> argparse.Namespace:
    """A legacy ``train`` flag namespace (argparse defaults)."""
    defaults = dict(
        dataset="creditcard", method="uldp-avg-w", rounds=2, users=10,
        silos=2, records=150, distribution="zipf", non_iid=False, sigma=5.0,
        delta=1e-5, local_epochs=1, batch_size=None, group_size=8,
        sample_rate=None, seed=0, compress="none", compress_fraction=0.05,
        quantize_bits=None, error_feedback=False, compress_downlink=False,
        output=None,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


def _legacy_train(args):
    """The seed cmd_train construction, verbatim."""
    from repro.compress import CompressionSpec
    from repro.core import Default, Trainer, UldpAvg, UldpGroup, UldpNaive, UldpSgd
    from repro.data import build_creditcard_benchmark

    fed = build_creditcard_benchmark(
        n_users=args.users, n_silos=args.silos, distribution=args.distribution,
        n_records=args.records, seed=args.seed,
    )
    sigma = args.sigma
    if args.method == "default":
        method = Default(local_epochs=args.local_epochs)
    elif args.method == "uldp-naive":
        method = UldpNaive(noise_multiplier=sigma, local_epochs=args.local_epochs)
    elif args.method == "uldp-group":
        method = UldpGroup(
            group_size=args.group_size, noise_multiplier=sigma,
            local_steps=args.local_epochs,
            expected_batch_size=args.batch_size or 256,
        )
    elif args.method == "uldp-sgd":
        method = UldpSgd(noise_multiplier=sigma, user_sample_rate=args.sample_rate)
    elif args.method == "uldp-avg":
        method = UldpAvg(
            noise_multiplier=sigma, local_epochs=args.local_epochs,
            user_sample_rate=args.sample_rate,
        )
    else:
        method = UldpAvg(
            noise_multiplier=sigma, local_epochs=args.local_epochs,
            weighting="proportional", user_sample_rate=args.sample_rate,
        )
    compression = None
    if args.compress != "none" or args.quantize_bits is not None:
        compression = CompressionSpec(
            sparsify=args.compress, fraction=args.compress_fraction,
            quantize_bits=args.quantize_bits, error_feedback=args.error_feedback,
            downlink=args.compress_downlink, seed=args.seed,
        )
    trainer = Trainer(
        fed, method, rounds=args.rounds, delta=args.delta, seed=args.seed,
        compression=compression,
    )
    return trainer.run()


class TestTrainShimOracle:
    def test_uldp_avg_w_with_compression_bit_identical(self):
        """The acceptance-criteria case: uldp-avg-w + lossy compression."""
        args = _train_args(
            rounds=3, users=12, silos=3, records=200, compress="topk",
            compress_fraction=0.05, quantize_bits=8, error_feedback=True,
        )
        legacy = _legacy_train(args)
        result = run(RunSpec.from_dict(train_spec_tree(args)))
        assert _strip_volatile(result.history) == _strip_volatile(legacy)

    @pytest.mark.parametrize(
        "method", ["default", "uldp-naive", "uldp-group", "uldp-sgd", "uldp-avg"]
    )
    def test_every_method_bit_identical(self, method):
        args = _train_args(method=method)
        legacy = _legacy_train(args)
        result = run(RunSpec.from_dict(train_spec_tree(args)))
        assert _strip_volatile(result.history) == _strip_volatile(legacy)

    def test_subsampled_run_bit_identical(self):
        args = _train_args(method="uldp-avg-w", sample_rate=0.5, users=20)
        legacy = _legacy_train(args)
        result = run(RunSpec.from_dict(train_spec_tree(args)))
        assert _strip_volatile(result.history) == _strip_volatile(legacy)

    def test_history_is_spec_stamped(self):
        args = _train_args()
        spec = RunSpec.from_dict(train_spec_tree(args))
        result = run(spec)
        assert result.history.spec_hash == spec.hash()
        assert result.history.spec == spec.to_dict()
        # And the stamp survives the JSON archive round-trip.
        from repro.report import history_from_dict

        again = history_from_dict(json.loads(json.dumps(history_to_dict(result.history))))
        assert again.spec_hash == spec.hash()
        assert again.spec == spec.to_dict()


class TestSimulateShimOracle:
    def _sim_args(self, **overrides) -> argparse.Namespace:
        defaults = dict(
            scenario="silo-outage", scale="smoke", rounds=None, seed=0,
            checkpoint_dir=None, checkpoint_every=None,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def _legacy_scenario(self, name: str, scale: str, seed: int):
        """The seed build_scenario construction, verbatim."""
        from repro.core import UldpAvg
        from repro.data import build_creditcard_benchmark
        from repro.sim.scenarios import _scale_params
        from repro.sim.scheduler import FederationSimulator, SimConfig

        from repro.api.registries import SCENARIOS

        params = _scale_params(scale)
        fed = build_creditcard_benchmark(
            n_users=params["n_users"], n_silos=params["n_silos"],
            distribution="zipf", n_records=params["n_records"],
            n_test=params["n_test"], seed=seed,
        )
        method = UldpAvg(
            noise_multiplier=5.0, local_epochs=1, weighting="proportional"
        )
        overrides = SCENARIOS.get(name)(params["rounds"], fed.n_silos)
        config = SimConfig(rounds=params["rounds"], seed=seed + 1, **overrides)
        sim = FederationSimulator(fed, method, config)
        sim.run()
        return sim

    @pytest.mark.parametrize("scenario", ["silo-outage", "async-fedbuff"])
    def test_scenario_bit_identical(self, scenario):
        legacy = self._legacy_scenario(scenario, "smoke", seed=0)
        args = self._sim_args(scenario=scenario)
        result = run(RunSpec.from_dict(simulate_spec_tree(args)))
        assert _strip_volatile(result.history) == _strip_volatile(legacy.history)
        np.testing.assert_array_equal(
            result.simulator.trainer.params, legacy.trainer.params
        )

    def test_sim_history_spec_stamped(self):
        args = self._sim_args(scenario="ideal-sync")
        spec = RunSpec.from_dict(simulate_spec_tree(args))
        result = run(spec)
        assert result.history.spec_hash == spec.hash()


class TestCheckpointSpecGuard:
    def _run_checkpointed(self, tmp_path):
        args = argparse.Namespace(
            scenario="silo-outage", scale="smoke", rounds=None, seed=0,
            checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=1,
        )
        spec = RunSpec.from_dict(simulate_spec_tree(args))
        return spec, run(spec)

    def test_resume_verifies_and_restamps(self, tmp_path):
        from repro.sim.scenarios import resume_simulator

        spec, result = self._run_checkpointed(tmp_path)
        sim, extra = resume_simulator(str(tmp_path / "ckpt"))
        assert extra["spec_hash"] == spec.hash()
        assert sim.history.spec_hash == spec.hash()
        # The resumed simulator is the finished run, bit for bit.
        np.testing.assert_array_equal(
            sim.trainer.params, result.simulator.trainer.params
        )
        assert _strip_volatile(sim.history) == _strip_volatile(result.history)

    def test_tampered_spec_refused(self, tmp_path):
        from repro.api.spec import SpecError
        from repro.sim.scenarios import resume_simulator

        self._run_checkpointed(tmp_path)
        state_file = tmp_path / "ckpt" / "state.json"
        meta = json.loads(state_file.read_text())
        meta["extra"]["spec"]["method"]["sigma"] = 0.001  # quieter than run
        state_file.write_text(json.dumps(meta))
        with pytest.raises(SpecError, match="hash mismatch"):
            resume_simulator(str(tmp_path / "ckpt"))

    def test_tampered_hash_refused(self, tmp_path):
        from repro.api.spec import SpecError
        from repro.sim.scenarios import resume_simulator

        self._run_checkpointed(tmp_path)
        state_file = tmp_path / "ckpt" / "state.json"
        meta = json.loads(state_file.read_text())
        meta["extra"]["spec_hash"] = "0" * 16
        state_file.write_text(json.dumps(meta))
        with pytest.raises(SpecError, match="hash mismatch"):
            resume_simulator(str(tmp_path / "ckpt"))

    def test_pre_spec_checkpoint_still_resumes(self, tmp_path):
        """Legacy checkpoints (no spec payload) keep working unverified."""
        from repro.sim.scenarios import resume_simulator, run_scenario

        sim = run_scenario(
            "silo-outage", scale="smoke", seed=0,
            checkpoint_dir=str(tmp_path / "old"), checkpoint_every=1,
        )
        resumed, extra = resume_simulator(str(tmp_path / "old"))
        assert "spec" not in extra
        np.testing.assert_array_equal(resumed.trainer.params, sim.trainer.params)


class TestRunnerValidation:
    def test_run_rejects_sweep_spec(self):
        from repro.api.spec import SpecError

        spec = RunSpec.from_dict({"sweep": {"method.sigma": [1.0]}})
        with pytest.raises(SpecError, match="sweep"):
            run(spec)

    def test_unknown_dataset_resolved_at_run(self):
        from repro.api.registries import UnknownNameError

        spec = RunSpec.from_dict({"dataset": {"name": "no-such-set"}})
        with pytest.raises(UnknownNameError, match="dataset"):
            run(spec)

    def test_named_model_runs(self):
        spec = RunSpec.from_dict({
            "rounds": 1,
            "dataset": {"users": 6, "silos": 2, "records": 80},
            "model": {"name": "creditcard-mlp"},
            "method": {"local_epochs": 1},
        })
        result = run(spec)
        assert len(result.history.records) == 1

    def test_secure_method_via_crypto_section(self):
        """Crypto wiring: Protocol 1 configured declaratively."""
        spec = RunSpec.from_dict({
            "rounds": 1,
            "dataset": {"users": 4, "silos": 2, "records": 60},
            "method": {"name": "secure-uldp-avg", "local_epochs": 1},
            "crypto": {"backend": "fast", "paillier_bits": 256},
        })
        result = run(spec)
        assert result.history.final.epsilon is not None
        # The stamped snapshot records the crypto wiring.
        assert result.history.spec["crypto"]["paillier_bits"] == 256
