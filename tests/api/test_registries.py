"""Tests for the decorator-based named registries."""

import pytest

from repro.api import builtin  # noqa: F401  (registers the builtins)
from repro.api.registries import (
    DATASETS,
    METHODS,
    Registry,
    SPARSIFIERS,
    UnknownNameError,
)


class TestRegistryMechanics:
    def test_register_and_get(self):
        reg = Registry("widget")

        @reg.register("alpha", description="the first one")
        def make_alpha():
            return "A"

        assert "alpha" in reg
        assert reg.get("alpha") is make_alpha
        assert reg.describe("alpha") == "the first one"
        assert reg.names() == ["alpha"]
        assert len(reg) == 1

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("alpha")(lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("alpha")(lambda: None)

    def test_metadata_travels(self):
        reg = Registry("widget")
        reg.register("x", data_independent=True)(lambda: None)
        assert reg.entry("x").meta["data_independent"] is True

    def test_iteration_sorted(self):
        reg = Registry("widget")
        for name in ("zeta", "alpha", "mid"):
            reg.register(name)(lambda: None)
        assert list(reg) == ["alpha", "mid", "zeta"]


class TestUnknownNameErrors:
    def test_is_a_keyerror(self):
        with pytest.raises(KeyError):
            METHODS.get("nope")

    def test_lists_valid_names(self):
        with pytest.raises(UnknownNameError) as exc:
            METHODS.get("not-a-method")
        message = str(exc.value)
        assert "valid:" in message
        assert "uldp-avg-w" in message

    def test_nearest_match_suggestion(self):
        with pytest.raises(UnknownNameError) as exc:
            METHODS.get("uldp-avgw")
        assert "did you mean" in str(exc.value)
        assert "uldp-avg" in str(exc.value)

    def test_dataset_suggestion(self):
        with pytest.raises(UnknownNameError) as exc:
            DATASETS.get("creditcrd")
        assert "did you mean 'creditcard'" in str(exc.value)

    def test_str_is_unquoted(self):
        err = UnknownNameError("method", "x", ["a", "b"])
        assert not str(err).startswith("'")


class TestBuiltinPopulation:
    def test_methods_cover_the_paper(self):
        names = METHODS.names()
        for expected in (
            "default", "uldp-naive", "uldp-group", "uldp-sgd",
            "uldp-avg", "uldp-avg-w", "secure-uldp-avg",
        ):
            assert expected in names

    def test_datasets_cover_the_paper(self):
        assert set(DATASETS.names()) >= {
            "creditcard", "mnist", "heartdisease", "tcgabrca"
        }

    def test_sparsifiers_registered(self):
        assert set(SPARSIFIERS.names()) >= {"topk", "randk"}
        assert SPARSIFIERS.entry("randk").meta["data_independent"] is True
        assert SPARSIFIERS.entry("topk").meta["data_independent"] is False

    def test_scenarios_registered_on_sim_import(self):
        import repro.sim.scenarios  # noqa: F401
        from repro.api.registries import SCENARIOS

        assert "ideal-sync" in SCENARIOS.names()
        assert "bandwidth-cap" in SCENARIOS.names()


class TestThirdPartyExtension:
    def test_custom_method_plugs_into_run(self):
        """A method registered out of tree is runnable by name via a spec."""
        from repro.api import RunSpec, run
        from repro.api.registries import register_method
        from repro.core import Default

        name = "test-only-fedavg"
        if name not in METHODS:

            @register_method(name, description="registered by the test suite")
            def _build(spec, crypto=None):
                return Default(local_epochs=spec.local_epochs)

        spec = RunSpec.from_dict({
            "rounds": 1,
            "dataset": {"users": 6, "silos": 2, "records": 80},
            "method": {"name": name, "local_epochs": 1},
        })
        result = run(spec)
        assert result.history.final.epsilon is None  # non-private baseline

    def test_custom_sparsifier_accepted_by_compression_spec(self):
        import numpy as np

        from repro.api.registries import register_sparsifier
        from repro.compress import CompressionSpec, UpdateCompressor

        name = "test-only-firstk"
        if name not in SPARSIFIERS:

            @register_sparsifier(name, description="first k coordinates")
            def _firstk(vec, k, rng):
                return np.arange(k, dtype=np.int64)

        spec = CompressionSpec(sparsify=name, fraction=0.5)
        comp = UpdateCompressor(spec, n_silos=1, dim=4)
        payload = comp.compress_uplink(0, np.array([1.0, 2.0, 3.0, 4.0]))
        assert payload.dense.tolist() == [1.0, 2.0, 0.0, 0.0]

    def test_unknown_sparsifier_suggested(self):
        from repro.compress import CompressionSpec

        with pytest.raises(ValueError, match="did you mean 'topk'"):
            CompressionSpec(sparsify="topkk")
