"""Bandwidth-constrained simulation: the BandwidthModel, the two named
bandwidth scenarios, and checkpoint/resume with compression state."""

import numpy as np
import pytest

from repro.compress import CompressionSpec
from repro.core.methods.uldp_avg import UldpAvg
from repro.data import build_creditcard_benchmark
from repro.sim import (
    BandwidthModel,
    BufferedAsyncPolicy,
    FederationSimulator,
    SimConfig,
    build_scenario,
    run_scenario,
    save_checkpoint,
)
from repro.sim.scenarios import continue_simulation

LOSSY = CompressionSpec(
    sparsify="topk", fraction=0.05, quantize_bits=8, error_feedback=True
)


def tiny_fed(seed=0):
    return build_creditcard_benchmark(
        n_users=10, n_silos=3, n_records=200, n_test=60, seed=seed
    )


def tiny_method(**kwargs):
    defaults = dict(noise_multiplier=1.0, local_epochs=1, weighting="proportional")
    defaults.update(kwargs)
    return UldpAvg(**defaults)


class TestBandwidthModel:
    def test_transmission_times_scale_with_rate(self):
        model = BandwidthModel(rate=1000.0, silo_rate=(1.0, 0.5))
        np.testing.assert_allclose(
            model.transmission_times(2000.0, 2), [2.0, 4.0]
        )

    def test_scalar_byte_cap(self):
        model = BandwidthModel(rate=1.0, byte_cap=100.0)
        assert model.admitted(100.0, 3).all()
        assert not model.admitted(101.0, 3).any()

    def test_per_silo_byte_caps(self):
        model = BandwidthModel(rate=1.0, byte_cap=(50.0, 200.0))
        np.testing.assert_array_equal(model.admitted(100.0, 2), [False, True])

    def test_no_cap_admits_everything(self):
        assert BandwidthModel(rate=1.0).admitted(1e12, 4).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthModel(rate=0.0)
        with pytest.raises(ValueError):
            BandwidthModel(rate=1.0, silo_rate=(1.0, 0.0))
        with pytest.raises(ValueError):
            BandwidthModel(rate=1.0, byte_cap=-1.0)
        with pytest.raises(ValueError):
            BandwidthModel(rate=1.0).transmission_times(-1.0, 2)
        with pytest.raises(ValueError):
            BandwidthModel(rate=1.0, silo_rate=(1.0,)).transmission_times(1.0, 2)
        with pytest.raises(ValueError):
            BandwidthModel(rate=1.0, byte_cap=(1.0,)).admitted(1.0, 2)


class TestBandwidthSimulation:
    def test_dense_payload_over_cap_excludes_all_silos(self):
        fed = tiny_fed()
        config = SimConfig(
            rounds=2, seed=1, bandwidth=BandwidthModel(rate=8192.0, byte_cap=4096.0)
        )
        sim = FederationSimulator(fed, tiny_method(), config)
        sim.run()
        assert all(p.silos_seen == 0 for p in sim.history.participation)
        # Nothing was released, so no budget was spent.
        assert all(r.sensitivity == 0.0 for r in sim.method.accountant.releases)

    def test_compressed_payload_fits_the_same_cap(self):
        fed = tiny_fed()
        config = SimConfig(
            rounds=2, seed=1, compression=LOSSY,
            bandwidth=BandwidthModel(rate=8192.0, byte_cap=4096.0),
        )
        sim = FederationSimulator(fed, tiny_method(), config)
        sim.run()
        assert all(p.silos_seen == fed.n_silos for p in sim.history.participation)
        assert sim.round_log[0]["payload_bytes"] == LOSSY.payload_bytes(
            sim.trainer.params.size
        )

    def test_transmission_time_advances_the_clock(self):
        fed = tiny_fed()
        dim_bytes = None
        config = SimConfig(
            rounds=1, seed=1, bandwidth=BandwidthModel(rate=1000.0)
        )
        sim = FederationSimulator(fed, tiny_method(), config)
        sim.run()
        dim_bytes = sim.trainer.params.size * 8
        assert sim.clock == pytest.approx(dim_bytes / 1000.0)

    def test_async_with_lossy_compression_rejected(self):
        fed = tiny_fed()
        with pytest.raises(ValueError, match="buffered-async"):
            FederationSimulator(
                fed,
                tiny_method(),
                SimConfig(
                    rounds=1, policy=BufferedAsyncPolicy(), compression=LOSSY
                ),
            )

    def test_async_with_bandwidth_model_rejected(self):
        # The async event loop never consults the bandwidth model; accepting
        # one would silently ignore the user's configured constraint.
        fed = tiny_fed()
        with pytest.raises(ValueError, match="bandwidth"):
            FederationSimulator(
                fed,
                tiny_method(),
                SimConfig(
                    rounds=1,
                    policy=BufferedAsyncPolicy(),
                    bandwidth=BandwidthModel(rate=1000.0),
                ),
            )


class TestPayloadBytesReporting:
    def test_plain_method_reports_dense_then_compressed(self):
        from repro.core import Trainer

        fed = tiny_fed()
        dense = tiny_method()
        Trainer(fed, dense, rounds=1)
        dim = dense.model.num_params
        assert dense.uplink_payload_bytes() == dim * 8

        compressed = tiny_method()
        Trainer(fed, compressed, rounds=1, compression=LOSSY)
        assert compressed.uplink_payload_bytes() == LOSSY.payload_bytes(dim)

    def test_secure_method_reports_ciphertext_bytes(self):
        # Bandwidth models must see the wire reality of Protocol 1: one
        # Paillier ciphertext per surviving coordinate, not 8-byte floats.
        from repro.core import Trainer
        from repro.nn.model import build_tiny_mlp
        from repro.protocol import SecureUldpAvg

        fed = build_creditcard_benchmark(
            n_users=6, n_silos=3, n_records=120, n_test=40, seed=0
        )
        spec = CompressionSpec(sparsify="randk", fraction=0.25, seed=3)
        model = build_tiny_mlp(30, 2, 2, np.random.default_rng(42))
        method = SecureUldpAvg(
            local_epochs=1, noise_multiplier=1.0, paillier_bits=256,
            compression=spec,
        )
        Trainer(fed, method, rounds=1, model=model)
        k = spec.keep_count(model.num_params)
        expected = k * method.protocol.ciphertext_bytes
        assert method.uplink_payload_bytes() == expected
        assert method.uplink_payload_bytes() > LOSSY.payload_bytes(k)


class TestBandwidthScenarios:
    def test_bandwidth_cap_scenario_admits_compressed_silos(self):
        sim = run_scenario("bandwidth-cap", scale="smoke", seed=0, rounds=3)
        assert all(p.silos_seen == sim.fed.n_silos for p in sim.history.participation)
        # The ledger records the compressed uplink, far below dense.
        dense = sim.fed.n_silos * sim.trainer.params.size * 8
        assert sim.history.comm[0].uplink_bytes < dense / 10

    def test_bandwidth_stragglers_scenario_strands_the_slow_link(self):
        sim = run_scenario("bandwidth-stragglers", scale="smoke", seed=0, rounds=6)
        silos_seen = [p.silos_seen for p in sim.history.participation]
        # The 4x-slower link misses the deadline on some rounds...
        assert min(silos_seen) < sim.fed.n_silos
        # ... but compression keeps the federation alive overall.
        assert max(silos_seen) >= sim.fed.n_silos - 1
        assert all(r.noise_scale <= 1.0 + 1e-12 for r in sim.method.accountant.releases)

    def test_scenarios_listed(self):
        from repro.sim import available_scenarios, describe_scenario

        names = available_scenarios()
        assert "bandwidth-cap" in names and "bandwidth-stragglers" in names
        assert "compress" in describe_scenario("bandwidth-cap")


class TestCheckpointWithCompression:
    def test_kill_and_resume_bit_identical(self, tmp_path):
        full = run_scenario("bandwidth-cap", scale="smoke", seed=3, rounds=6)

        sim = build_scenario("bandwidth-cap", scale="smoke", seed=3, rounds=6)
        sim.run(stop_after=3)
        extra = {"scenario": "bandwidth-cap", "scale": "smoke", "seed": 3, "rounds": 6}
        save_checkpoint(tmp_path, sim, extra=extra)
        resumed = continue_simulation(tmp_path)

        assert np.array_equal(full.trainer.params, resumed.trainer.params)
        assert full.history.records == resumed.history.records
        assert full.history.comm == resumed.history.comm
        # The error-feedback residuals (compressor state) resumed exactly.
        for silo in range(full.fed.n_silos):
            np.testing.assert_array_equal(
                full.method.compressor.residual(silo),
                resumed.method.compressor.residual(silo),
            )
