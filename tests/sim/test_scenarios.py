"""Tests for the scenario registry and its experiment-registry wiring."""

import pytest

from repro.experiments import available_experiments, run_experiment
from repro.sim import (
    available_scenarios,
    build_scenario,
    describe_scenario,
    run_scenario,
)


class TestRegistry:
    def test_expected_scenarios_present(self):
        names = available_scenarios()
        for expected in (
            "ideal-sync",
            "silo-outage",
            "flaky-silos",
            "carryover-makeup",
            "stragglers-deadline",
            "async-fedbuff",
            "user-churn",
        ):
            assert expected in names

    def test_descriptions_nonempty(self):
        for name in available_scenarios():
            assert len(describe_scenario(name)) > 10

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            build_scenario("no-such-scenario")
        with pytest.raises(KeyError):
            describe_scenario("no-such-scenario")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("ideal-sync", scale="huge")

    def test_rounds_override(self):
        sim = run_scenario("ideal-sync", scale="smoke", seed=0, rounds=2)
        assert len(sim.history.round_seconds) == 2


class TestExperimentWiring:
    def test_sim01_registered(self):
        assert "sim01" in available_experiments()

    def test_sim01_rows_cover_all_scenarios(self):
        result = run_experiment("sim01", scale="smoke")
        scenarios = {row["scenario"] for row in result.rows}
        assert scenarios == set(available_scenarios())
        ideal = next(r for r in result.rows if r["scenario"] == "ideal-sync")
        carry = next(r for r in result.rows if r["scenario"] == "carryover-makeup")
        # The honest accounting charges carryover make-up rounds extra.
        assert carry["max_sensitivity"] > 1.0
        assert carry["epsilon"] > ideal["epsilon"]
        assert ideal["max_sensitivity"] == pytest.approx(1.0)
        assert "scenario" in result.table()
