"""Shard-boundary edges of the population -> sharded-engine feed.

Satellite suite for the sharded execution layer: the loader-descriptor
path (:meth:`ShardedUserPopulation.shard_job_source` resolved by
:func:`repro.sim.population.materialise_shard_jobs` inside workers)
must be bit-for-bit identical to materialising every job inline in one
unsharded call -- including at the awkward boundaries: a last shard
smaller than the rest, a shard left with zero participants after
churn, and the single-shard degenerate case.
"""

import numpy as np
import pytest

from repro.core.engine import (
    MICRO_BATCH,
    EngineConfig,
    ShardedEngine,
    make_shard_task,
    plan_shards,
)
from repro.core.reduce import fold_scale
from repro.nn import build_logistic
from repro.sim.population import ShardedUserPopulation, materialise_shard_jobs

N_FEATURES = 6
DATA_SEED = 11


@pytest.fixture()
def model():
    return build_logistic(np.random.default_rng(1), in_features=N_FEATURES)


def _reduce_ids(pop, ids, model, shard_size, workers=0):
    """Aggregate `ids` through loader-descriptor shard tasks."""
    params = model.get_flat_params()
    weights = np.full(len(ids), 1.0 / max(1, len(ids)))
    scale = fold_scale(1.0, MICRO_BATCH)
    tasks = []
    for i, (a, b) in enumerate(plan_shards(len(ids), shard_size)):
        tasks.append(
            make_shard_task(
                mode="delta",
                model=model,
                task="binary",
                params=params,
                jobs=pop.shard_job_source(ids[a:b], DATA_SEED, N_FEATURES),
                weights=weights[a:b],
                clip=1.0,
                scale=scale,
                silo=0,
                shard=i,
                lr=0.05,
                epochs=1,
            )
        )
    engine = ShardedEngine(EngineConfig(workers=workers, shard_size=shard_size))
    try:
        results = engine.run_tasks(tasks)
        if not results:
            return np.zeros(params.size)
        return engine.reduce(results).total()
    finally:
        engine.close()


def _reduce_inline(pop, ids, model):
    """Oracle: materialise every job in the parent, single shard."""
    params = model.get_flat_params()
    weights = np.full(len(ids), 1.0 / max(1, len(ids)))
    jobs = materialise_shard_jobs(
        pop.shard_job_source(ids, DATA_SEED, N_FEATURES)["spec"]
    )
    if not jobs:
        return np.zeros(params.size)
    task = make_shard_task(
        mode="delta", model=model, task="binary", params=params, jobs=jobs,
        weights=weights, clip=1.0, scale=fold_scale(1.0, MICRO_BATCH),
        silo=0, shard=0, lr=0.05, epochs=1,
    )
    engine = ShardedEngine(EngineConfig(workers=0))
    try:
        return engine.reduce(engine.run_tasks([task])).total()
    finally:
        engine.close()


class TestShardBoundaries:
    def test_last_shard_smaller(self, model):
        # 300 sampled users at shard_size 128 -> shards of 128/128/44.
        pop = ShardedUserPopulation(n_users=2_000, seed=7)
        ids = pop.sample_users(np.random.default_rng(0), 300)
        sharded = _reduce_ids(pop, ids, model, shard_size=MICRO_BATCH)
        assert sharded.tobytes() == _reduce_inline(pop, ids, model).tobytes()

    def test_single_shard_degenerate(self, model):
        # Everything fits one shard: the plan is a single span and the
        # reduction tree is a leaf.
        pop = ShardedUserPopulation(n_users=500, seed=7)
        ids = pop.sample_users(np.random.default_rng(0), 60)
        sharded = _reduce_ids(pop, ids, model, shard_size=8 * MICRO_BATCH)
        assert sharded.tobytes() == _reduce_inline(pop, ids, model).tobytes()

    def test_zero_participant_shard_after_churn(self, model):
        # Depart every user of the population's second shard; sampling
        # then yields ids that skip it entirely, and the engine plan
        # (over *sampled* users) must not care.
        pop = ShardedUserPopulation(n_users=512, shard_size=128, seed=7)
        mask = pop.active_mask()
        second = np.arange(128, 256)
        pop._materialise(1)
        pop._active[1][:] = False
        pop._active_counts[1] = 0
        ids = pop.sample_users(np.random.default_rng(0), 200)
        assert not np.intersect1d(ids, second).size
        sharded = _reduce_ids(pop, ids, model, shard_size=MICRO_BATCH)
        assert sharded.tobytes() == _reduce_inline(pop, ids, model).tobytes()
        assert mask.all()  # pre-churn snapshot untouched by the run

    def test_empty_sample(self, model):
        pop = ShardedUserPopulation(n_users=100, seed=7)
        ids = pop.sample_users(np.random.default_rng(0), 0)
        assert _reduce_ids(pop, ids, model, MICRO_BATCH).tobytes() == \
            _reduce_inline(pop, ids, model).tobytes()

    def test_workers_match_inline(self, model):
        pop = ShardedUserPopulation(n_users=2_000, seed=9)
        ids = pop.sample_users(np.random.default_rng(1), 300)
        sharded = _reduce_ids(pop, ids, model, shard_size=MICRO_BATCH, workers=2)
        assert sharded.tobytes() == _reduce_inline(pop, ids, model).tobytes()


class TestJobSource:
    def test_record_counts_for_matches_range(self):
        pop = ShardedUserPopulation(n_users=1_000, shard_size=256, seed=3)
        ids = np.array([0, 255, 256, 999])
        expected = np.array([pop.record_counts(i, i + 1)[0] for i in ids])
        assert np.array_equal(pop.record_counts_for(ids), expected)

    def test_record_counts_for_bounds(self):
        pop = ShardedUserPopulation(n_users=10, seed=3)
        with pytest.raises(ValueError):
            pop.record_counts_for(np.array([10]))

    def test_jobs_deterministic_in_user_id(self):
        # A user's records depend only on (data_seed, user_id): the same
        # user materialised from different shard groupings is identical.
        pop = ShardedUserPopulation(n_users=1_000, seed=3)
        ids = pop.sample_users(np.random.default_rng(2), 40)
        whole = materialise_shard_jobs(
            pop.shard_job_source(ids, DATA_SEED, N_FEATURES)["spec"]
        )
        part = materialise_shard_jobs(
            pop.shard_job_source(ids[10:20], DATA_SEED, N_FEATURES)["spec"]
        )
        for j_whole, j_part in zip(whole[10:20], part):
            assert j_whole.x.tobytes() == j_part.x.tobytes()
            assert j_whole.y.tobytes() == j_part.y.tobytes()

    def test_min_records_floor(self):
        pop = ShardedUserPopulation(n_users=100_000, seed=3)
        ids = np.arange(99_000, 99_100)  # deep-tail users: tiny Zipf mass
        spec = pop.shard_job_source(ids, DATA_SEED, N_FEATURES)["spec"]
        assert spec["record_counts"].min() >= 1

    def test_loader_rejects_zero_counts(self):
        with pytest.raises(ValueError, match="at least one record"):
            materialise_shard_jobs({
                "user_ids": np.array([0]),
                "record_counts": np.array([0]),
                "data_seed": 0,
                "n_features": 2,
            })
