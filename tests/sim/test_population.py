"""Tests for the sharded, lazily-materialised user population."""

import numpy as np
import pytest

from repro.data.allocation import sharded_zipf_counts, zipf_weights
from repro.sim.population import ShardedUserPopulation


class TestLazyMaterialisation:
    def test_setup_materialises_nothing(self):
        pop = ShardedUserPopulation(1_000_000, seed=0)
        assert pop.n_materialised_shards == 0
        assert pop.resident_bytes == 0
        assert pop.n_active == 1_000_000

    def test_touch_materialises_only_hit_shards(self):
        pop = ShardedUserPopulation(1_000_000, seed=0)
        pop.active_mask(0, 100)
        assert pop.n_materialised_shards == 1

    def test_memmap_backing_files_created(self, tmp_path):
        pop = ShardedUserPopulation(200_000, backing_dir=tmp_path, seed=0)
        pop.active_mask(0, 10)
        files = sorted(p.name for p in tmp_path.iterdir())
        assert any(f.startswith("active_") for f in files)
        assert any(f.startswith("records_") for f in files)

    def test_small_population_stays_in_ram(self, tmp_path):
        pop = ShardedUserPopulation(100, backing_dir=tmp_path, seed=0)
        pop.active_mask(0, 100)
        assert list(tmp_path.iterdir()) == []

    def test_touch_order_does_not_change_contents(self):
        a = ShardedUserPopulation(300_000, shard_size=100_000, seed=3)
        b = ShardedUserPopulation(300_000, shard_size=100_000, seed=3)
        fwd = a.record_counts(0, 300_000)
        # b touches the last shard first.
        b.record_counts(250_000, 300_000)
        rev = b.record_counts(0, 300_000)
        assert np.array_equal(fwd, rev)

    def test_record_counts_follow_zipf_ranks(self):
        pop = ShardedUserPopulation(1_000, seed=0, expected_records=100_000)
        counts = pop.record_counts()
        # Early ranks carry more records on average than late ranks.
        assert counts[:100].mean() > counts[-100:].mean() * 1.5


class TestChurn:
    def test_rates_shift_active_count(self):
        pop = ShardedUserPopulation(10_000, seed=0)
        rng = np.random.default_rng(0)
        arrivals, departures = pop.apply_churn(rng, departure_rate=0.2)
        assert arrivals == 0 and departures > 0
        assert pop.n_active == 10_000 - departures

    def test_arrivals_reactivate(self):
        pop = ShardedUserPopulation(5_000, seed=0)
        rng = np.random.default_rng(0)
        pop.apply_churn(rng, departure_rate=0.5)
        low = pop.n_active
        pop.apply_churn(rng, arrival_rate=0.5)
        assert pop.n_active > low

    def test_deterministic_in_rng(self):
        def run():
            pop = ShardedUserPopulation(20_000, seed=1)
            rng = np.random.default_rng(42)
            for _ in range(5):
                pop.apply_churn(rng, departure_rate=0.1, arrival_rate=0.05)
            return pop.active_mask()

        assert np.array_equal(run(), run())

    def test_rejects_bad_rates(self):
        pop = ShardedUserPopulation(100, seed=0)
        with pytest.raises(ValueError):
            pop.apply_churn(np.random.default_rng(0), departure_rate=1.5)

    def test_churn_without_flips_stays_lazy(self):
        # Flip counts are drawn from the known shard totals before any
        # materialisation; a rate yielding zero flips touches no shard.
        pop = ShardedUserPopulation(1_000_000, seed=0)
        arrivals, departures = pop.apply_churn(
            np.random.default_rng(0), departure_rate=1e-12
        )
        assert (arrivals, departures) == (0, 0)
        assert pop.n_materialised_shards == 0


class TestSampling:
    def test_sample_is_active_and_distinct(self):
        pop = ShardedUserPopulation(50_000, shard_size=16_384, seed=0)
        rng = np.random.default_rng(0)
        pop.apply_churn(rng, departure_rate=0.3)
        sample = pop.sample_users(rng, 1_000)
        assert len(np.unique(sample)) == 1_000
        mask = pop.active_mask()
        assert mask[sample].all()

    def test_oversample_rejected(self):
        pop = ShardedUserPopulation(100, seed=0)
        with pytest.raises(ValueError):
            pop.sample_users(np.random.default_rng(0), 101)


class TestStateRoundtrip:
    def test_churned_state_restores_exactly(self):
        pop = ShardedUserPopulation(30_000, shard_size=8_192, seed=5)
        rng = np.random.default_rng(7)
        pop.apply_churn(rng, departure_rate=0.2, arrival_rate=0.1)
        state = pop.state_dict()
        fresh = ShardedUserPopulation(30_000, shard_size=8_192, seed=5)
        fresh.load_state(state)
        assert np.array_equal(pop.active_mask(), fresh.active_mask())
        assert np.array_equal(pop.record_counts(), fresh.record_counts())
        assert fresh.n_active == pop.n_active

    def test_geometry_mismatch_rejected(self):
        pop = ShardedUserPopulation(1_000, seed=0)
        other = ShardedUserPopulation(2_000, seed=0)
        with pytest.raises(ValueError):
            other.load_state(pop.state_dict())


class TestShardedZipfCounts:
    def test_counts_sum_to_total(self):
        rng = np.random.default_rng(0)
        chunks = list(sharded_zipf_counts(10_000, 5_000, rng, shard_size=1_024))
        assert sum(c.sum() for _, c in chunks) == 10_000
        starts = [s for s, _ in chunks]
        assert starts == list(range(0, 5_000, 1_024))

    def test_matches_one_shot_distribution(self):
        # Mean per-user counts converge to n_records * zipf_weights.
        rng = np.random.default_rng(1)
        n_users, n_records = 200, 200_000
        total = np.zeros(n_users)
        for start, counts in sharded_zipf_counts(
            n_records, n_users, rng, alpha=0.8, shard_size=64
        ):
            total[start : start + len(counts)] = counts
        expected = n_records * zipf_weights(n_users, 0.8)
        assert np.abs(total - expected).max() / expected.max() < 0.15

    def test_rejects_bad_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            list(sharded_zipf_counts(-1, 10, rng))
        with pytest.raises(ValueError):
            list(sharded_zipf_counts(10, 0, rng))
        with pytest.raises(ValueError):
            list(sharded_zipf_counts(10, 10, rng, shard_size=0))
