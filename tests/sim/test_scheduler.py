"""Tests for the federation scheduler: oracle equivalence and policies."""

import numpy as np
import pytest

from repro.core import Trainer, RoundParticipation, participation_weights, realised_sensitivity
from repro.core.methods.uldp_avg import UldpAvg
from repro.data import build_creditcard_benchmark
from repro.sim import (
    BufferedAsyncPolicy,
    ChurnProcess,
    FederationSimulator,
    IidSiloDropout,
    LogNormalLatency,
    SemiSyncPolicy,
    SimConfig,
    SiloOutageWindows,
    SyncPolicy,
    staleness_weight,
)


def tiny_fed(seed=0, n_users=10, n_silos=3):
    return build_creditcard_benchmark(
        n_users=n_users, n_silos=n_silos, n_records=200, n_test=60, seed=seed
    )


def tiny_method(**kwargs):
    defaults = dict(noise_multiplier=1.0, local_epochs=1, weighting="proportional")
    defaults.update(kwargs)
    return UldpAvg(**defaults)


class TestOracleEquivalence:
    def test_sync_zero_dropout_matches_trainer_exactly(self):
        fed = tiny_fed()
        config = SimConfig(rounds=3, policy=SyncPolicy(), seed=11)
        sim = FederationSimulator(fed, tiny_method(), config)
        sim.run()

        oracle = Trainer(tiny_fed(), tiny_method(), rounds=3, seed=11)
        oracle_history = oracle.run()

        assert np.array_equal(sim.trainer.params, oracle.params)
        assert sim.history.records == oracle_history.records
        assert sim.history.participation == oracle_history.participation

    def test_oracle_holds_for_every_renorm(self):
        # Under full participation all renorm strategies are the identity.
        finals = []
        for renorm in ("none", "survivors", "carryover"):
            config = SimConfig(rounds=2, renorm=renorm, seed=4)
            sim = FederationSimulator(tiny_fed(), tiny_method(), config)
            sim.run()
            finals.append(sim.trainer.params)
        assert np.array_equal(finals[0], finals[1])
        assert np.array_equal(finals[0], finals[2])


class TestParticipationWeights:
    def test_full_participation_is_identity(self):
        w = np.full((3, 4), 0.25)
        p = RoundParticipation(silo_mask=np.ones(3, dtype=bool), renorm="survivors")
        assert np.array_equal(participation_weights(w, p), w)

    def test_survivors_restore_column_sums(self):
        w = np.full((4, 5), 0.25)
        p = RoundParticipation(
            silo_mask=np.array([True, True, False, False]), renorm="survivors"
        )
        realised = participation_weights(w, p)
        assert np.allclose(realised.sum(axis=0), 1.0)
        assert realised_sensitivity(realised) == pytest.approx(1.0)

    def test_none_shrinks_column_sums(self):
        w = np.full((4, 5), 0.25)
        p = RoundParticipation(
            silo_mask=np.array([True, True, True, False]), renorm="none"
        )
        assert realised_sensitivity(participation_weights(w, p)) == pytest.approx(0.75)

    def test_carryover_gain_raises_sensitivity(self):
        w = np.full((2, 3), 0.5)
        p = RoundParticipation(
            silo_mask=np.array([True, True]),
            silo_gain=np.array([2.0, 1.0]),
            renorm="carryover",
        )
        assert realised_sensitivity(participation_weights(w, p)) == pytest.approx(1.5)

    def test_user_mask_zeroes_departed(self):
        w = np.full((2, 3), 0.5)
        p = RoundParticipation(
            silo_mask=np.ones(2, dtype=bool),
            user_mask=np.array([True, False, True]),
        )
        realised = participation_weights(w, p)
        assert realised[:, 1].sum() == 0.0

    def test_rejects_unknown_renorm(self):
        with pytest.raises(ValueError):
            RoundParticipation(silo_mask=np.ones(2, dtype=bool), renorm="magic")


class TestDropoutPolicies:
    def test_outage_window_excludes_silo(self):
        fed = tiny_fed()
        config = SimConfig(
            rounds=4,
            renorm="survivors",
            dropout=SiloOutageWindows({0: (1, 3)}),
            seed=2,
        )
        sim = FederationSimulator(fed, tiny_method(), config)
        sim.run()
        silos = [p.silos_seen for p in sim.history.participation]
        assert silos == [3, 2, 2, 3]

    def test_all_silos_down_is_a_noop_release(self):
        fed = tiny_fed()
        config = SimConfig(
            rounds=1,
            dropout=SiloOutageWindows({s: (0, 1) for s in range(fed.n_silos)}),
            seed=0,
        )
        sim = FederationSimulator(fed, tiny_method(), config)
        p0 = sim.trainer.params.copy()
        sim.run()
        assert np.array_equal(sim.trainer.params, p0)
        releases = sim.method.accountant.releases
        assert len(releases) == 1 and releases[0].sensitivity == 0.0
        assert sim.history.participation[0].silos_seen == 0

    def test_dropout_with_renorm_none_reduces_budget_honestly(self):
        # Uniform weights: every user loses exactly 1/3 of their weight
        # when one of three silos is down and nothing renormalises.
        fed = tiny_fed()
        config = SimConfig(
            rounds=3, renorm="none", dropout=SiloOutageWindows({0: (0, 3)}), seed=6
        )
        sim = FederationSimulator(fed, tiny_method(weighting="uniform"), config)
        sim.run()
        ideal = FederationSimulator(
            tiny_fed(), tiny_method(weighting="uniform"), SimConfig(rounds=3, seed=6)
        )
        ideal.run()
        # Missing weight means realised sensitivity < 1 -> smaller epsilon.
        assert sim.history.final.epsilon < ideal.history.final.epsilon
        for release in sim.method.accountant.releases:
            assert release.sensitivity == pytest.approx(2 / 3)

    def test_carryover_charges_higher_epsilon(self):
        fed = tiny_fed()
        dropout = SiloOutageWindows({0: (0, 2)})
        carry = FederationSimulator(
            fed,
            tiny_method(),
            SimConfig(rounds=4, renorm="carryover", dropout=dropout, seed=6),
        )
        carry.run()
        sensitivities = [r.sensitivity for r in carry.method.accountant.releases]
        # The silo returns at round 2 with gain 2: sensitivity above 1.
        assert max(sensitivities) > 1.0
        ideal = FederationSimulator(
            tiny_fed(), tiny_method(), SimConfig(rounds=4, seed=6)
        )
        ideal.run()
        assert carry.history.final.epsilon > ideal.history.final.epsilon

    def test_noise_rescale_off_charges_reduced_noise_scale(self):
        fed = tiny_fed()
        config = SimConfig(
            rounds=1,
            renorm="survivors",
            dropout=SiloOutageWindows({0: (0, 1)}),
            noise_rescale=False,
            seed=3,
        )
        sim = FederationSimulator(fed, tiny_method(), config)
        sim.run()
        (release,) = sim.method.accountant.releases
        assert release.noise_scale == pytest.approx(np.sqrt(2 / 3))
        assert release.effective_noise_multiplier < 1.0


class TestSemiSync:
    def test_slow_silo_misses_deadline(self):
        fed = tiny_fed()
        speed = (1.0, 1.0, 50.0)
        config = SimConfig(
            rounds=3,
            policy=SemiSyncPolicy(deadline=5.0),
            renorm="survivors",
            latency=LogNormalLatency(median=1.0, sigma=0.1, silo_speed=speed),
            seed=0,
        )
        sim = FederationSimulator(fed, tiny_method(), config)
        sim.run()
        assert all(p.silos_seen == 2 for p in sim.history.participation)
        assert sim.clock == pytest.approx(15.0)


class TestChurnScenario:
    def test_departed_users_leave_the_roster(self):
        fed = tiny_fed(n_users=20)
        config = SimConfig(
            rounds=4,
            renorm="survivors",
            churn=ChurnProcess(departure_rate=0.3),
            seed=1,
        )
        sim = FederationSimulator(fed, tiny_method(), config)
        sim.run()
        users = [p.users_seen for p in sim.history.participation]
        assert users[-1] < users[0]
        assert sim.population.total_departures > 0


class TestBufferedAsync:
    def asim(self, rounds=3, seed=0, **policy_kwargs):
        fed = tiny_fed()
        defaults = dict(buffer_size=2, staleness_exponent=0.5)
        defaults.update(policy_kwargs)
        config = SimConfig(
            rounds=rounds,
            policy=BufferedAsyncPolicy(**defaults),
            latency=LogNormalLatency(median=1.0, sigma=0.5),
            seed=seed,
        )
        return FederationSimulator(fed, tiny_method(), config)

    def test_releases_match_round_count(self):
        sim = self.asim(rounds=4)
        sim.run()
        assert len(sim.history.round_seconds) == 4
        assert len(sim.method.accountant.releases) == 4
        assert np.all(np.isfinite(sim.trainer.params))

    def test_staleness_weight_discounts(self):
        assert staleness_weight(0) == 1.0
        assert staleness_weight(3, 0.5) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            staleness_weight(-1)

    def test_sensitivity_bookkeeping_recorded(self):
        sim = self.asim(rounds=5, seed=2)
        sim.run()
        releases = sim.method.accountant.releases
        assert all(r.noise_scale <= 1.0 + 1e-12 for r in releases)
        assert all(r.sensitivity > 0 for r in releases)

    def test_subsampling_rejected(self):
        fed = tiny_fed()
        method = tiny_method(user_sample_rate=0.5)
        with pytest.raises(ValueError):
            FederationSimulator(
                fed, method, SimConfig(rounds=1, policy=BufferedAsyncPolicy())
            )

    def test_methods_without_silo_api_rejected(self):
        from repro.core import Default

        fed = tiny_fed()
        with pytest.raises(TypeError):
            FederationSimulator(
                fed, Default(), SimConfig(rounds=1, policy=BufferedAsyncPolicy())
            )


class TestSecureMethodGuard:
    def test_secure_method_refuses_participation(self):
        from repro.protocol import SecureUldpAvg

        method = SecureUldpAvg.__new__(SecureUldpAvg)
        # The guard is backend-conditional (crypto_backend="masked" accepts
        # dropout); pin a Paillier backend on the bare instance.
        method.crypto_backend = "fast"
        with pytest.raises(NotImplementedError):
            SecureUldpAvg.round(
                method,
                0,
                np.zeros(3),
                RoundParticipation(silo_mask=np.ones(2, dtype=bool)),
            )


class TestConfigValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(rounds=0)
        with pytest.raises(ValueError):
            SimConfig(rounds=1, renorm="magic")
        with pytest.raises(ValueError):
            SimConfig(rounds=1, carryover_max_gain=0.5)
        with pytest.raises(ValueError):
            SemiSyncPolicy(deadline=0)
        with pytest.raises(ValueError):
            BufferedAsyncPolicy(buffer_size=0)
        with pytest.raises(ValueError):
            IidSiloDropout(prob=1.0)
