"""Kill/resume of a *masked secure* simulation must be bit-identical.

Mirrors ``tests/sim/test_checkpoint.py`` for the ``crypto_backend="masked"``
path: the pairwise mask streams are derived from the protocol round
counter, so a resume that lost (or double-counted) that counter would mask
round k+1 with round k's streams -- cancellation would still hide the bug
in the aggregate, which is why the assertions pin the full trainer state
bit for bit, including rounds aggregated after the resume.
"""

import numpy as np
import pytest

from repro.api import RunSpec
from repro.api.runner import build_simulator, checkpoint_extra
from repro.sim import build_scenario, continue_simulation, save_checkpoint


def masked_spec(seed=9):
    return RunSpec.from_dict({
        "seed": seed,
        # flaky-silos drops silos mid-run, so resumed rounds exercise the
        # dropout-recovery path, not just full-roster cancellation.
        "sim": {"scenario": "flaky-silos", "scale": "smoke"},
        "method": {"name": "secure-uldp-avg", "local_epochs": 1, "sigma": 1.0},
        "crypto": {"backend": "masked"},
    })


def assert_identical(a, b):
    """Full bit-identity of two finished simulators (checkpoint suite's)."""
    assert np.array_equal(a.trainer.params, b.trainer.params)
    assert a.history.records == b.history.records
    assert a.history.participation == b.history.participation
    assert a.history.comm == b.history.comm
    assert a.round_log == b.round_log
    assert np.array_equal(a.method.accountant._rhos, b.method.accountant._rhos)
    assert a.method.accountant.history == b.method.accountant.history
    assert a.method.accountant.releases == b.method.accountant.releases
    assert a.trainer.rng.bit_generator.state == b.trainer.rng.bit_generator.state
    assert a.sim_rng.bit_generator.state == b.sim_rng.bit_generator.state


class TestMaskedKillAndResume:
    def test_killed_mid_run_resumes_bit_identically(self, tmp_path):
        spec = masked_spec()
        uninterrupted = build_simulator(spec)
        uninterrupted.run()

        killed = build_simulator(spec)
        killed.run(stop_after=1)  # "crash" after the first masked round
        save_checkpoint(tmp_path, killed, extra=checkpoint_extra(spec))
        resumed = continue_simulation(str(tmp_path))
        assert resumed.done
        assert_identical(uninterrupted, resumed)
        # The mask schedule resumed where it stopped: both protocols sit at
        # the same round counter and derived identical per-round keys
        # (otherwise params above could not be bit-identical).
        assert (
            resumed.method.masked_protocol.round_no
            == uninterrupted.method.masked_protocol.round_no
        )

    def test_protocol_round_counter_survives_the_roundtrip(self, tmp_path):
        spec = masked_spec(seed=4)
        sim = build_simulator(spec)
        sim.run(stop_after=2)
        saved_round_no = sim.method.masked_protocol.round_no
        assert saved_round_no > 0  # masked rounds actually ran
        save_checkpoint(tmp_path, sim, extra=checkpoint_extra(spec))

        fresh = build_simulator(spec)
        assert fresh.method.masked_protocol.round_no == 0
        from repro.sim import load_checkpoint

        state, _ = load_checkpoint(tmp_path)
        fresh.load_state(state)
        assert fresh.method.masked_protocol.round_no == saved_round_no

    def test_resume_with_wrong_method_is_refused(self, tmp_path):
        # A checkpoint carrying masked-protocol state must not silently
        # load into a plaintext method (whose masks would never re-align).
        spec = masked_spec(seed=2)
        sim = build_simulator(spec)
        sim.run(stop_after=1)
        save_checkpoint(tmp_path, sim, extra=checkpoint_extra(spec))
        from repro.sim import load_checkpoint

        state, _ = load_checkpoint(tmp_path)
        plain = build_scenario("flaky-silos", scale="smoke", seed=2)
        with pytest.raises(ValueError, match="secure-protocol state"):
            plain.load_state(state)

    def test_wrong_method_refusal_names_the_likely_cause(self, tmp_path):
        # The refusal must point at the actionable mistake (an edited
        # scenario/method), not just state that loading failed.
        spec = masked_spec(seed=2)
        sim = build_simulator(spec)
        sim.run(stop_after=1)
        save_checkpoint(tmp_path, sim, extra=checkpoint_extra(spec))
        from repro.sim import load_checkpoint

        state, _ = load_checkpoint(tmp_path)
        plain = build_scenario("flaky-silos", scale="smoke", seed=2)
        with pytest.raises(
            ValueError,
            match="rebuilt method cannot restore it; was the scenario's "
            "method changed",
        ):
            plain.load_state(state)

    def test_resume_with_wrong_crypto_backend_is_refused(self, tmp_path):
        # Masked-protocol state into a Paillier-backend rebuild: the method
        # *has* the restore hook, but the backends disagree -- the refusal
        # must name the crypto section, not the method.
        spec = masked_spec(seed=3)
        sim = build_simulator(spec)
        sim.run(stop_after=1)
        save_checkpoint(tmp_path, sim, extra=checkpoint_extra(spec))
        from repro.sim import load_checkpoint

        state, _ = load_checkpoint(tmp_path)
        paillier_tree = spec.to_dict()
        paillier_tree["crypto"] = {"backend": "fast", "paillier_bits": 256}
        # ideal-sync: the Paillier path refuses dropout rounds outright,
        # which would mask the error under test on flaky-silos.
        paillier_tree["sim"]["scenario"] = "ideal-sync"
        paillier = build_simulator(RunSpec.from_dict(paillier_tree))
        with pytest.raises(
            ValueError,
            match="disagree about the crypto backend; was the spec's "
            "crypto section changed",
        ):
            paillier.load_state(state)
