"""Bit-identical checkpoint/resume tests (the acceptance-criterion suite).

A simulation killed at round k and resumed from its checkpoint must match
an uninterrupted run's final params, history, and accountant state
*exactly* -- not approximately.  Every assertion here is exact equality.
"""

import json

import numpy as np
import pytest

from repro.sim import (
    CheckpointError,
    build_scenario,
    continue_simulation,
    load_checkpoint,
    resume_simulator,
    run_scenario,
    save_checkpoint,
)

#: The scenarios covering every state machine: carryover gains, async
#: pending buffers, churned populations, and plain sync.
SCENARIOS = ["ideal-sync", "carryover-makeup", "async-fedbuff", "user-churn"]


def assert_identical(a, b):
    """Full bit-identity of two finished simulators."""
    assert np.array_equal(a.trainer.params, b.trainer.params)
    assert a.history.records == b.history.records
    assert a.history.participation == b.history.participation
    assert a.round_log == b.round_log
    assert np.array_equal(a.method.accountant._rhos, b.method.accountant._rhos)
    assert a.method.accountant.history == b.method.accountant.history
    assert a.method.accountant.releases == b.method.accountant.releases
    assert a.trainer.rng.bit_generator.state == b.trainer.rng.bit_generator.state
    assert a.sim_rng.bit_generator.state == b.sim_rng.bit_generator.state


class TestKillAndResume:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_killed_at_round_k_resumes_bit_identically(self, scenario, tmp_path):
        uninterrupted = run_scenario(scenario, scale="smoke", seed=9)

        killed = build_scenario(scenario, scale="smoke", seed=9)
        killed.run(stop_after=1)  # "crash" after the first release
        save_checkpoint(
            tmp_path,
            killed,
            extra={"scenario": scenario, "scale": "smoke", "seed": 9, "rounds": None},
        )
        resumed = continue_simulation(str(tmp_path))
        assert resumed.done
        assert_identical(uninterrupted, resumed)

    def test_checkpoint_every_round_still_identical(self, tmp_path):
        uninterrupted = run_scenario("flaky-silos", scale="smoke", seed=2)
        checkpointed = run_scenario(
            "flaky-silos",
            scale="smoke",
            seed=2,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
        )
        assert_identical(uninterrupted, checkpointed)
        # The final snapshot on disk restores to the same end state too.
        resumed, extra = resume_simulator(str(tmp_path))
        assert extra["scenario"] == "flaky-silos"
        assert resumed.done
        assert_identical(uninterrupted, resumed)

    def test_double_kill_chain(self, tmp_path):
        """Crash twice (after rounds 1 and 2); the chain still matches."""
        uninterrupted = run_scenario("carryover-makeup", scale="smoke", seed=5)

        sim = build_scenario("carryover-makeup", scale="smoke", seed=5)
        extra = {"scenario": "carryover-makeup", "scale": "smoke", "seed": 5,
                 "rounds": None}
        sim.run(stop_after=1)
        save_checkpoint(tmp_path, sim, extra=extra)
        second, _ = resume_simulator(str(tmp_path))
        second.run(stop_after=2)
        save_checkpoint(tmp_path, second, extra=extra)
        final = continue_simulation(str(tmp_path))
        assert_identical(uninterrupted, final)


class TestCheckpointFormat:
    def test_schema_validated(self, tmp_path):
        sim = build_scenario("ideal-sync", scale="smoke", seed=0)
        save_checkpoint(tmp_path, sim)
        (tmp_path / "state.json").write_text('{"schema": "bogus"}')
        with pytest.raises(ValueError):
            load_checkpoint(tmp_path)

    def test_resume_requires_scenario_metadata(self, tmp_path):
        sim = build_scenario("ideal-sync", scale="smoke", seed=0)
        save_checkpoint(tmp_path, sim)  # no extra payload
        with pytest.raises(ValueError):
            resume_simulator(str(tmp_path))

    def test_snapshots_are_versioned_and_pruned(self, tmp_path):
        extra = {"scenario": "ideal-sync", "scale": "smoke", "seed": 0,
                 "rounds": None}
        sim = build_scenario("ideal-sync", scale="smoke", seed=0)
        sim.run(stop_after=1)
        save_checkpoint(tmp_path, sim, extra=extra)
        sim.run(stop_after=2)
        save_checkpoint(tmp_path, sim, extra=extra)
        npz = list(tmp_path.glob("arrays-*.npz"))
        # Only the latest arrays file survives, and state.json points at it.
        assert [p.name for p in npz] == ["arrays-00000002.npz"]
        resumed, _ = resume_simulator(str(tmp_path))
        assert resumed.rounds_completed == 2

    def test_truncated_arrays_file_refused(self, tmp_path):
        """A half-written npz (torn download, full disk) must not resume."""
        sim = build_scenario("ideal-sync", scale="smoke", seed=0)
        sim.run(stop_after=1)
        save_checkpoint(tmp_path, sim, extra={"scenario": "ideal-sync"})
        blob = tmp_path / "arrays-00000001.npz"
        blob.write_bytes(blob.read_bytes()[: blob.stat().st_size // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(tmp_path)
        # CheckpointError is a ValueError: existing callers' handling holds.
        with pytest.raises(ValueError):
            load_checkpoint(tmp_path)

    def test_flipped_payload_byte_fails_digest(self, tmp_path):
        """Bit rot inside the npz is caught even when the zip still opens."""
        sim = build_scenario("ideal-sync", scale="smoke", seed=0)
        sim.run(stop_after=1)
        save_checkpoint(tmp_path, sim, extra={"scenario": "ideal-sync"})
        meta = json.loads((tmp_path / "state.json").read_text())
        # Tamper with a recorded digest: the (intact) npz no longer matches
        # state.json, which is indistinguishable from a corrupted payload.
        key = next(iter(meta["array_digests"]))
        meta["array_digests"][key] = "0" * 64
        (tmp_path / "state.json").write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="SHA-256 digest"):
            load_checkpoint(tmp_path)

    def test_missing_array_refused(self, tmp_path):
        sim = build_scenario("ideal-sync", scale="smoke", seed=0)
        sim.run(stop_after=1)
        save_checkpoint(tmp_path, sim, extra={"scenario": "ideal-sync"})
        meta = json.loads((tmp_path / "state.json").read_text())
        meta["array_digests"]["ghost"] = "0" * 64
        (tmp_path / "state.json").write_text(json.dumps(meta))
        with pytest.raises(CheckpointError, match="does not contain"):
            load_checkpoint(tmp_path)

    def test_corrupt_state_json_refused(self, tmp_path):
        sim = build_scenario("ideal-sync", scale="smoke", seed=0)
        sim.run(stop_after=1)
        save_checkpoint(tmp_path, sim, extra={"scenario": "ideal-sync"})
        state = tmp_path / "state.json"
        state.write_text(state.read_text()[:-40])
        with pytest.raises(CheckpointError, match="state.json"):
            load_checkpoint(tmp_path)

    def test_digests_recorded_and_verified_on_clean_load(self, tmp_path):
        sim = build_scenario("ideal-sync", scale="smoke", seed=0)
        sim.run(stop_after=1)
        save_checkpoint(tmp_path, sim, extra={"scenario": "ideal-sync"})
        meta = json.loads((tmp_path / "state.json").read_text())
        assert meta["array_digests"]  # manifest present...
        state, _ = load_checkpoint(tmp_path)  # ...and verifies cleanly
        fresh = build_scenario("ideal-sync", scale="smoke", seed=0)
        fresh.load_state(state)
        assert np.array_equal(fresh.trainer.params, sim.trainer.params)

    def test_state_dict_roundtrips_through_disk(self, tmp_path):
        sim = build_scenario("async-fedbuff", scale="smoke", seed=1)
        sim.run(stop_after=2)
        save_checkpoint(tmp_path, sim, extra={"scenario": "async-fedbuff"})
        state, extra = load_checkpoint(tmp_path)
        assert extra == {"scenario": "async-fedbuff"}
        fresh = build_scenario("async-fedbuff", scale="smoke", seed=1)
        fresh.load_state(state)
        assert np.array_equal(fresh.trainer.params, sim.trainer.params)
        assert fresh.rounds_completed == 2
        assert len(fresh._pending) == len(sim._pending)
        for a, b in zip(fresh._pending, sim._pending):
            assert a.silo == b.silo and a.finish == b.finish
            assert np.array_equal(a.payload, b.payload)
