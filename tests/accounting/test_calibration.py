"""Tests for epsilon-targeted calibration of sigma and q."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.calibration import (
    _epsilon,
    calibrate_noise_multiplier,
    calibrate_sample_rate,
)


class TestCalibrateNoise:
    def test_achieves_target(self):
        sigma = calibrate_noise_multiplier(2.0, 1e-5, steps=100)
        assert _epsilon(sigma, 1.0, 100, 1e-5) <= 2.0

    def test_is_tight(self):
        """A noticeably smaller sigma must miss the target."""
        sigma = calibrate_noise_multiplier(2.0, 1e-5, steps=100)
        assert _epsilon(sigma * 0.9, 1.0, 100, 1e-5) > 2.0

    @given(
        target=st.floats(0.5, 20.0),
        steps=st.integers(1, 500),
    )
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_target(self, target, steps):
        tight = calibrate_noise_multiplier(target, 1e-5, steps)
        loose = calibrate_noise_multiplier(target * 2, 1e-5, steps)
        assert loose <= tight * 1.01

    def test_subsampling_needs_less_noise(self):
        full = calibrate_noise_multiplier(1.0, 1e-5, steps=50, sample_rate=1.0)
        sub = calibrate_noise_multiplier(1.0, 1e-5, steps=50, sample_rate=0.1)
        assert sub < full

    def test_paper_setting_roundtrip(self):
        """sigma=5, T=10: calibrating to the resulting epsilon recovers ~5."""
        eps = _epsilon(5.0, 1.0, 10, 1e-5)
        sigma = calibrate_noise_multiplier(eps, 1e-5, steps=10)
        assert sigma == pytest.approx(5.0, rel=0.01)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            calibrate_noise_multiplier(0.0, 1e-5, 10)
        with pytest.raises(ValueError):
            calibrate_noise_multiplier(1.0, 1e-5, 0)
        with pytest.raises(ValueError):
            calibrate_noise_multiplier(1.0, 1e-5, 10, sample_rate=0.0)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            calibrate_noise_multiplier(1e-9, 1e-5, steps=10_000, sigma_max=10.0)


class TestCalibrateSampleRate:
    def test_achieves_target(self):
        q = calibrate_sample_rate(0.5, 1e-5, steps=100, noise_multiplier=5.0)
        assert q < 1.0
        assert _epsilon(5.0, q, 100, 1e-5) <= 0.5

    def test_returns_one_when_budget_ample(self):
        assert calibrate_sample_rate(100.0, 1e-5, steps=10, noise_multiplier=5.0) == 1.0

    def test_is_maximal(self):
        q = calibrate_sample_rate(0.5, 1e-5, steps=100, noise_multiplier=5.0)
        assert _epsilon(5.0, min(1.0, q + 0.02), 100, 1e-5) > 0.5

    def test_tighter_budget_smaller_q(self):
        loose = calibrate_sample_rate(1.0, 1e-5, steps=100, noise_multiplier=5.0)
        tight = calibrate_sample_rate(0.3, 1e-5, steps=100, noise_multiplier=5.0)
        assert tight < loose

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            calibrate_sample_rate(-1.0, 1e-5, 10, 5.0)
        with pytest.raises(ValueError):
            calibrate_sample_rate(1.0, 1e-5, 10, 0.0)

    def test_unreachable_raises(self):
        # sigma tiny: even q -> 0 cannot hit a microscopic budget.
        with pytest.raises(ValueError):
            calibrate_sample_rate(1e-8, 1e-5, steps=100_000, noise_multiplier=0.3)
