"""Tests for sub-sampled Gaussian RDP (Lemma 4 / Mironov et al. 2019)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.rdp import gaussian_rdp
from repro.accounting.subsampled import (
    subsampled_gaussian_rdp,
    subsampled_gaussian_rdp_curve,
    subsampled_rdp_closed_form,
)


class TestTightBound:
    def test_q_one_equals_plain_gaussian(self):
        for alpha in (2.0, 4.0, 16.0, 3.5):
            assert subsampled_gaussian_rdp(1.0, 2.0, alpha) == pytest.approx(
                gaussian_rdp(2.0, alpha)
            )

    def test_q_zero_is_free(self):
        assert subsampled_gaussian_rdp(0.0, 2.0, 8.0) == 0.0

    @given(
        q=st.floats(0.001, 0.5),
        sigma=st.floats(0.5, 20.0),
        alpha=st.integers(2, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_subsampling_never_hurts(self, q, sigma, alpha):
        sub = subsampled_gaussian_rdp(q, sigma, float(alpha))
        full = gaussian_rdp(sigma, float(alpha))
        assert 0 <= sub <= full + 1e-12

    @given(q=st.floats(0.01, 0.3), sigma=st.floats(1.0, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_q(self, q, sigma):
        lo = subsampled_gaussian_rdp(q / 2, sigma, 8.0)
        hi = subsampled_gaussian_rdp(q, sigma, 8.0)
        assert lo <= hi + 1e-15

    def test_fractional_alpha_interpolates(self):
        # rho at fractional orders should lie between neighbouring integers
        # (the RDP curve is increasing in alpha).
        q, sigma = 0.05, 4.0
        r2 = subsampled_gaussian_rdp(q, sigma, 2.0)
        r25 = subsampled_gaussian_rdp(q, sigma, 2.5)
        r3 = subsampled_gaussian_rdp(q, sigma, 3.0)
        assert r2 <= r25 <= r3

    def test_small_q_quadratic_scaling(self):
        # For small q, rho ~ q^2; halving q should cut rho by ~4x.
        sigma, alpha = 5.0, 8.0
        r1 = subsampled_gaussian_rdp(0.02, sigma, alpha)
        r2 = subsampled_gaussian_rdp(0.01, sigma, alpha)
        assert r1 / r2 == pytest.approx(4.0, rel=0.15)

    def test_known_value_regression(self):
        # Reference value cross-checked against the closed-form bound and
        # the quadratic approximation; pinned to catch silent regressions.
        rho = subsampled_gaussian_rdp(0.01, 5.0, 16.0)
        assert rho == pytest.approx(3.28371e-05, rel=1e-3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            subsampled_gaussian_rdp(-0.1, 1.0, 2.0)
        with pytest.raises(ValueError):
            subsampled_gaussian_rdp(0.5, 0.0, 2.0)
        with pytest.raises(ValueError):
            subsampled_gaussian_rdp(0.5, 1.0, 1.0)

    def test_curve_scales_with_steps(self):
        one = subsampled_gaussian_rdp_curve(0.1, 2.0, steps=1)
        ten = subsampled_gaussian_rdp_curve(0.1, 2.0, steps=10)
        np.testing.assert_allclose(ten, 10 * one)


class TestClosedFormBound:
    @given(
        q=st.floats(0.001, 0.2),
        sigma=st.floats(1.0, 10.0),
        alpha=st.integers(2, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_upper_bounds_tight_computation(self, q, sigma, alpha):
        tight = subsampled_gaussian_rdp(q, sigma, float(alpha))
        loose = subsampled_rdp_closed_form(q, sigma, alpha)
        assert tight <= loose + 1e-12

    def test_rejects_fractional_alpha(self):
        with pytest.raises(ValueError):
            subsampled_rdp_closed_form(0.1, 2.0, 2.5)  # type: ignore[arg-type]

    def test_q_zero(self):
        assert subsampled_rdp_closed_form(0.0, 2.0, 8) == 0.0


class TestPaperScale:
    def test_figure2_base_parameters_are_tractable(self):
        """The Fig. 2 setting: sigma=5, q=0.01, 1e5 steps -> finite RDP."""
        curve = subsampled_gaussian_rdp_curve(0.01, 5.0, steps=100_000)
        assert np.all(np.isfinite(curve))
        assert np.all(curve >= 0)
        # Composition over 1e5 steps of a q=0.01 mechanism should be modest
        # at small orders (this is what makes DP-SGD usable at all).
        assert curve[3] < 50  # alpha = 2.0 entry
