"""Tests for the high-level PrivacyAccountant."""

import math

import numpy as np
import pytest

from repro.accounting import PrivacyAccountant
from repro.accounting.conversion import rdp_curve_to_dp
from repro.accounting.rdp import gaussian_rdp_curve
from repro.accounting.subsampled import subsampled_gaussian_rdp_curve


class TestStepAccumulation:
    def test_single_gaussian_event(self):
        acct = PrivacyAccountant()
        acct.step(noise_multiplier=5.0)
        np.testing.assert_allclose(acct.rdp_curve, gaussian_rdp_curve(5.0, 1))

    def test_steps_compose_linearly(self):
        a = PrivacyAccountant()
        for _ in range(10):
            a.step(noise_multiplier=5.0)
        b = PrivacyAccountant()
        b.step(noise_multiplier=5.0, steps=10)
        np.testing.assert_allclose(a.rdp_curve, b.rdp_curve)

    def test_subsampled_event(self):
        acct = PrivacyAccountant()
        acct.step(noise_multiplier=5.0, sample_rate=0.1, steps=3)
        np.testing.assert_allclose(
            acct.rdp_curve, subsampled_gaussian_rdp_curve(0.1, 5.0, 3)
        )

    def test_zero_steps_noop(self):
        acct = PrivacyAccountant()
        acct.step(noise_multiplier=5.0, steps=0)
        assert np.all(acct.rdp_curve == 0)
        assert acct.history == []

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            PrivacyAccountant().step(5.0, steps=-1)

    def test_reset(self):
        acct = PrivacyAccountant()
        acct.step(5.0, steps=4)
        acct.reset()
        assert np.all(acct.rdp_curve == 0)
        assert acct.history == []


class TestEpsilon:
    def test_matches_theorem1_shape(self):
        """Theorem 1/3: eps = min_alpha T*alpha/(2 sigma^2) + conversion."""
        sigma, rounds, delta = 5.0, 100, 1e-5
        acct = PrivacyAccountant()
        acct.step(noise_multiplier=sigma, steps=rounds)
        eps = acct.get_epsilon(delta)
        expected, _ = rdp_curve_to_dp(gaussian_rdp_curve(sigma, rounds), delta)
        assert eps == pytest.approx(expected)

    def test_epsilon_monotone_in_rounds(self):
        acct = PrivacyAccountant()
        eps_values = []
        for _ in range(5):
            acct.step(noise_multiplier=5.0, steps=20)
            eps_values.append(acct.get_epsilon(1e-5))
        assert all(b > a for a, b in zip(eps_values, eps_values[1:]))

    def test_subsampling_amplifies(self):
        full = PrivacyAccountant()
        full.step(5.0, sample_rate=1.0, steps=50)
        sub = PrivacyAccountant()
        sub.step(5.0, sample_rate=0.1, steps=50)
        assert sub.get_epsilon(1e-5) < full.get_epsilon(1e-5)

    def test_alpha_reported(self):
        acct = PrivacyAccountant()
        acct.step(5.0, steps=10)
        eps, alpha = acct.get_epsilon_and_alpha(1e-5)
        assert alpha > 1
        assert math.isfinite(eps)

    def test_noiseless_event_gives_infinite_epsilon(self):
        acct = PrivacyAccountant()
        acct.step(noise_multiplier=0.0)
        assert acct.get_epsilon(1e-5) == math.inf
        # ...and stays infinite after further noisy steps (composition).
        acct.step(noise_multiplier=5.0)
        assert acct.get_epsilon(1e-5) == math.inf


class TestGroupEpsilon:
    def test_group_routes(self):
        acct = PrivacyAccountant()
        acct.step(5.0, sample_rate=0.01, steps=1000)
        eps_rdp = acct.get_group_epsilon(1e-5, group_size=8, route="rdp")
        eps_dp = acct.get_group_epsilon(1e-5, group_size=8, route="dp")
        plain = acct.get_epsilon(1e-5)
        assert eps_rdp > plain
        assert eps_dp > plain

    def test_unknown_route_rejected(self):
        acct = PrivacyAccountant()
        acct.step(5.0)
        with pytest.raises(ValueError):
            acct.get_group_epsilon(1e-5, 2, route="magic")


class TestMergeMax:
    def test_parallel_composition_takes_worst_silo(self):
        """Theorem 2: disjoint silos compose via order-wise max."""
        noisy = PrivacyAccountant()
        noisy.step(2.0, steps=10)  # worse privacy (less noise)
        quiet = PrivacyAccountant()
        quiet.step(8.0, steps=10)
        merged = noisy.merge_max(quiet)
        np.testing.assert_allclose(merged.rdp_curve, noisy.rdp_curve)
        assert len(merged.history) == 2

    def test_merge_rejects_mismatched_grids(self):
        a = PrivacyAccountant()
        b = PrivacyAccountant(alphas=np.array([2.0, 4.0]))
        with pytest.raises(ValueError):
            a.merge_max(b)

    def test_curve_cache_reused(self):
        acct = PrivacyAccountant()
        acct.step(5.0, sample_rate=0.123, steps=1)
        acct.step(5.0, sample_rate=0.123, steps=1)
        assert len(acct._curve_cache) == 1
