"""Tests for RDP->DP conversion (Lemma 2) and group privacy (Lemmas 5, 6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.conversion import rdp_curve_to_dp, rdp_to_dp
from repro.accounting.group import (
    group_dp_from_dp,
    group_epsilon_via_normal_dp,
    group_epsilon_via_rdp,
    group_rdp_curve,
    largest_power_of_two_leq,
)
from repro.accounting.rdp import DEFAULT_ALPHAS, gaussian_rdp_curve
from repro.accounting.subsampled import subsampled_gaussian_rdp_curve


class TestRdpToDp:
    def test_lemma2_formula(self):
        alpha, rho, delta = 10.0, 0.5, 1e-5
        expected = (
            rho + math.log(9.0 / 10.0) - (math.log(delta) + math.log(10.0)) / 9.0
        )
        assert rdp_to_dp(alpha, rho, delta) == pytest.approx(expected)

    @given(rho=st.floats(0.001, 10.0), delta=st.floats(1e-10, 0.1))
    @settings(max_examples=60)
    def test_grid_minimum_beats_any_single_order(self, rho, delta):
        curve = rho * DEFAULT_ALPHAS / DEFAULT_ALPHAS[0]
        eps, best_alpha = rdp_curve_to_dp(curve, delta)
        idx = int(np.argmin(np.abs(DEFAULT_ALPHAS - best_alpha)))
        assert eps <= rdp_to_dp(float(DEFAULT_ALPHAS[idx]), float(curve[idx]), delta) + 1e-12

    def test_epsilon_decreases_with_more_noise(self):
        lo = rdp_curve_to_dp(gaussian_rdp_curve(10.0, steps=100), 1e-5)[0]
        hi = rdp_curve_to_dp(gaussian_rdp_curve(2.0, steps=100), 1e-5)[0]
        assert lo < hi

    def test_epsilon_increases_with_rounds(self):
        e10 = rdp_curve_to_dp(gaussian_rdp_curve(5.0, steps=10), 1e-5)[0]
        e100 = rdp_curve_to_dp(gaussian_rdp_curve(5.0, steps=100), 1e-5)[0]
        assert e10 < e100

    def test_skips_nonfinite_entries(self):
        curve = gaussian_rdp_curve(5.0, steps=10)
        curve[0] = np.inf
        eps, _ = rdp_curve_to_dp(curve, 1e-5)
        assert math.isfinite(eps)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            rdp_to_dp(1.0, 0.5, 1e-5)
        with pytest.raises(ValueError):
            rdp_to_dp(2.0, 0.5, 0.0)
        with pytest.raises(ValueError):
            rdp_to_dp(2.0, -0.5, 1e-5)
        with pytest.raises(ValueError):
            rdp_curve_to_dp(np.array([1.0, 2.0]), 1e-5)  # grid mismatch


class TestLargestPowerOfTwo:
    @pytest.mark.parametrize(
        "k,expected", [(1, 1), (2, 2), (3, 2), (4, 4), (7, 4), (8, 8), (100, 64)]
    )
    def test_values(self, k, expected):
        assert largest_power_of_two_leq(k) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            largest_power_of_two_leq(0)


class TestGroupRdp:
    def test_group_size_one_is_identity(self):
        curve = gaussian_rdp_curve(5.0, steps=10)
        g_alphas, g_rhos = group_rdp_curve(curve, 1)
        np.testing.assert_allclose(g_alphas, DEFAULT_ALPHAS)
        np.testing.assert_allclose(g_rhos, curve)

    def test_doubling_maps_orders_and_rhos(self):
        curve = gaussian_rdp_curve(5.0, steps=1)
        g_alphas, g_rhos = group_rdp_curve(curve, 4)  # c = 2
        # alpha = 16 entry should map to order 4 with rho * 9
        src = int(np.argmin(np.abs(DEFAULT_ALPHAS - 16.0)))
        dst = int(np.argmin(np.abs(g_alphas - 4.0)))
        assert g_alphas[dst] == pytest.approx(4.0)
        assert g_rhos[dst] == pytest.approx(9.0 * curve[src])

    def test_rejects_non_power_of_two(self):
        curve = gaussian_rdp_curve(5.0, steps=1)
        with pytest.raises(ValueError):
            group_rdp_curve(curve, 3)

    def test_epsilon_grows_rapidly_with_group_size(self):
        """The Figure 2 shape: GDP epsilon explodes as k grows."""
        curve = subsampled_gaussian_rdp_curve(0.01, 5.0, steps=10_000)
        eps = [group_epsilon_via_rdp(curve, k, 1e-5) for k in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(eps, eps[1:]))
        # Super-linear blow-up: eps(16)/eps(1) far exceeds 16.
        assert eps[4] / eps[0] > 50

    def test_non_power_of_two_rounds_down(self):
        curve = subsampled_gaussian_rdp_curve(0.01, 5.0, steps=1000)
        assert group_epsilon_via_rdp(curve, 5, 1e-5) == pytest.approx(
            group_epsilon_via_rdp(curve, 4, 1e-5)
        )


class TestGroupNormalDp:
    def test_lemma5_formula(self):
        eps, delta = group_dp_from_dp(0.5, 1e-6, 3)
        assert eps == pytest.approx(1.5)
        assert delta == pytest.approx(3 * math.exp(2 * 0.5) * 1e-6)

    def test_group_size_one_matches_plain_conversion(self):
        curve = gaussian_rdp_curve(5.0, steps=100)
        direct, _ = rdp_curve_to_dp(curve, 1e-5)
        assert group_epsilon_via_normal_dp(curve, 1, 1e-5) == pytest.approx(direct)

    def test_monotone_in_group_size(self):
        curve = subsampled_gaussian_rdp_curve(0.01, 5.0, steps=10_000)
        eps = [group_epsilon_via_normal_dp(curve, k, 1e-5) for k in (1, 2, 4, 8)]
        assert all(b > a for a, b in zip(eps, eps[1:]))

    def test_reported_guarantee_is_valid(self):
        """The search must return a (k*eps_l2, delta_l5<=delta) pair."""
        curve = subsampled_gaussian_rdp_curve(0.01, 5.0, steps=1000)
        k, delta = 4, 1e-5
        eps = group_epsilon_via_normal_dp(curve, k, delta)
        # Recompute: some intermediate delta must reproduce (eps', delta')
        # with eps' <= eps and delta' <= delta.  We verify feasibility by
        # checking the returned eps is achievable from the definition:
        eps_l2 = eps / k
        # invert Lemma 2 at the optimal order is hard; instead check the
        # bound is at least as large as the plain (non-group) epsilon and
        # finite.
        plain, _ = rdp_curve_to_dp(curve, delta)
        assert math.isfinite(eps)
        assert eps > plain
        assert eps_l2 > 0

    def test_comparable_to_rdp_route_within_factor(self):
        """Paper: the two routes differ by roughly 3x at most for small k."""
        curve = subsampled_gaussian_rdp_curve(0.01, 5.0, steps=10_000)
        for k in (2, 4, 8):
            via_rdp = group_epsilon_via_rdp(curve, k, 1e-5)
            via_dp = group_epsilon_via_normal_dp(curve, k, 1e-5)
            ratio = max(via_rdp, via_dp) / min(via_rdp, via_dp)
            assert ratio < 6.0
