"""Tests for Gaussian-mechanism RDP and composition (Lemmas 1 and 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accounting.rdp import (
    DEFAULT_ALPHAS,
    compose_rdp,
    gaussian_rdp,
    gaussian_rdp_curve,
    parallel_compose_rdp,
)


class TestGaussianRdp:
    def test_lemma3_formula(self):
        # (alpha, alpha / (2 sigma^2))-RDP
        assert gaussian_rdp(sigma=5.0, alpha=2.0) == pytest.approx(2.0 / 50.0)
        assert gaussian_rdp(sigma=1.0, alpha=10.0) == pytest.approx(5.0)

    @given(
        sigma=st.floats(0.2, 50.0),
        alpha=st.floats(1.01, 1000.0),
    )
    @settings(max_examples=100)
    def test_monotone_in_alpha_and_sigma(self, sigma, alpha):
        rho = gaussian_rdp(sigma, alpha)
        assert rho > 0
        assert gaussian_rdp(sigma, alpha + 1) > rho
        assert gaussian_rdp(sigma * 2, alpha) < rho

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            gaussian_rdp(0.0, 2.0)
        with pytest.raises(ValueError):
            gaussian_rdp(1.0, 1.0)

    def test_curve_matches_pointwise(self):
        curve = gaussian_rdp_curve(sigma=3.0, steps=7)
        for alpha, rho in zip(DEFAULT_ALPHAS, curve):
            assert rho == pytest.approx(7 * gaussian_rdp(3.0, float(alpha)))

    def test_zero_steps_is_zero_curve(self):
        assert np.all(gaussian_rdp_curve(sigma=3.0, steps=0) == 0.0)


class TestComposition:
    def test_sequential_composition_adds(self):
        a = gaussian_rdp_curve(2.0, steps=3)
        b = gaussian_rdp_curve(2.0, steps=5)
        np.testing.assert_allclose(compose_rdp(a, b), gaussian_rdp_curve(2.0, steps=8))

    def test_parallel_composition_takes_max(self):
        a = gaussian_rdp_curve(2.0, steps=3)
        b = gaussian_rdp_curve(4.0, steps=3)  # less noise-y curve is smaller
        np.testing.assert_allclose(parallel_compose_rdp(a, b), a)

    def test_composition_rejects_mismatched_grids(self):
        a = gaussian_rdp_curve(2.0, steps=1)
        b = gaussian_rdp_curve(2.0, steps=1, alphas=np.array([2.0, 3.0]))
        with pytest.raises(ValueError):
            compose_rdp(a, b)
        with pytest.raises(ValueError):
            parallel_compose_rdp(a, b)

    def test_composition_rejects_empty(self):
        with pytest.raises(ValueError):
            compose_rdp()


class TestDefaultAlphas:
    def test_strictly_increasing_and_above_one(self):
        assert np.all(np.diff(DEFAULT_ALPHAS) > 0)
        assert DEFAULT_ALPHAS[0] > 1

    def test_extends_far_enough_for_group_conversion(self):
        # Lemma 6 with k = 64 divides orders by 64; we still need orders > 1
        # afterwards with some headroom.
        assert DEFAULT_ALPHAS[-1] >= 64 * 512
