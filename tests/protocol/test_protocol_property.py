"""Property-based tests: Protocol 1 correctness over random inputs.

Theorem 4 holds for *any* deltas/noise within the magnitude budget and any
histogram within N_max; hypothesis explores that space on a fixed protocol
instance (setup is the expensive part), plus a seeded sweep over random
histogram shapes.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.protocol import PrivateWeightingProtocol

HIST = np.array([
    [2, 0, 3, 1, 1],
    [1, 2, 0, 2, 1],
    [3, 1, 1, 0, 2],
])


@pytest.fixture(scope="module")
def proto():
    p = PrivateWeightingProtocol(HIST, n_max=16, paillier_bits=256, seed=42)
    p.run_setup()
    return p


def build_inputs(proto, flat_values, d):
    """Deterministically spread hypothesis-provided floats over the inputs."""
    values = iter(flat_values)

    def take():
        try:
            return next(values)
        except StopIteration:
            return 0.5

    deltas, noises = [], []
    for s in range(proto.n_silos):
        per_user = {}
        for u in range(proto.n_users):
            if proto.histogram[s, u] > 0:
                per_user[u] = np.array([take() for _ in range(d)])
        deltas.append(per_user)
        noises.append(np.array([take() for _ in range(d)]))
    return deltas, noises


class TestTheorem4Property:
    @given(
        flat=st.lists(
            st.floats(-50.0, 50.0, allow_nan=False), min_size=10, max_size=60
        ),
        d=st.integers(1, 3),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_secure_equals_plain_for_any_values(self, proto, flat, d):
        deltas, noises = build_inputs(proto, flat, d)
        secure = proto.run_round(deltas, noises)
        plain = proto.plaintext_reference(deltas, noises)
        tolerance = proto.n_silos * (proto.n_users + 1) * proto.precision
        assert np.max(np.abs(secure - plain)) <= tolerance

    @given(
        sample=st.lists(st.integers(0, 4), min_size=0, max_size=5, unique=True),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_sampled_subset(self, proto, sample):
        rng = np.random.default_rng(7)
        deltas, noises = build_inputs(proto, rng.standard_normal(40).tolist(), 2)
        sampled = np.array(sample, dtype=int)
        secure = proto.run_round(deltas, noises, sampled_users=sampled)
        plain = proto.plaintext_reference(deltas, noises, sampled_users=sampled)
        tolerance = proto.n_silos * (proto.n_users + 1) * proto.precision
        assert np.max(np.abs(secure - plain)) <= tolerance


class TestRandomHistograms:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_shapes(self, seed):
        rng = np.random.default_rng(seed)
        n_silos = int(rng.integers(2, 5))
        n_users = int(rng.integers(2, 7))
        hist = rng.integers(0, 4, size=(n_silos, n_users))
        # Every silo needs at least one record for a meaningful test; the
        # protocol itself tolerates empty silos.
        hist[:, 0] = np.maximum(hist[:, 0], 1)
        proto = PrivateWeightingProtocol(hist, n_max=16, paillier_bits=256, seed=seed)
        proto.run_setup()
        deltas, noises = build_inputs(proto, rng.standard_normal(80).tolist(), 3)
        secure = proto.run_round(deltas, noises)
        plain = proto.plaintext_reference(deltas, noises)
        tolerance = proto.n_silos * (proto.n_users + 1) * proto.precision
        assert np.max(np.abs(secure - plain)) <= tolerance
