"""Unit tests for the protocol party roles (step-level behaviour)."""

import random

import numpy as np
import pytest

from repro.crypto.dh import DHGroup
from repro.protocol.parties import ServerParty, SiloParty


@pytest.fixture(scope="module")
def group():
    return DHGroup.test_group()


def make_silos(group, counts, n_max=16, seed=0):
    rng = random.Random(seed)
    silos = [
        SiloParty(s, np.asarray(row), n_max, group, rng=rng)
        for s, row in enumerate(counts)
    ]
    publics = {s.silo_id: s.dh_public() for s in silos}
    for silo in silos:
        silo.remember_peer_publics(publics)
        silo.receive_dh_publics(publics)
    return silos


class TestSiloParty:
    def test_rejects_negative_counts(self, group):
        with pytest.raises(ValueError):
            SiloParty(0, np.array([-1, 2]), 16, group)

    def test_rejects_count_over_nmax(self, group):
        with pytest.raises(ValueError):
            SiloParty(0, np.array([99]), 16, group)

    def test_only_silo0_distributes_seed(self, group):
        silos = make_silos(group, [[1, 2], [2, 1]])
        with pytest.raises(ValueError):
            silos[1].generate_seed_ciphertexts([0, 1])

    def test_seed_roundtrip(self, group):
        silos = make_silos(group, [[1, 2], [2, 1], [0, 3]])
        cts = silos[0].generate_seed_ciphertexts([0, 1, 2])
        for peer, ct in cts.items():
            silos[peer].receive_seed_ciphertext(ct)
        assert silos[1].shared_seed == silos[0].shared_seed
        assert silos[2].shared_seed == silos[0].shared_seed

    def test_histogram_requires_setup(self, group):
        silos = make_silos(group, [[1, 2], [2, 1]])
        with pytest.raises(RuntimeError):
            silos[0].blinded_masked_histogram()

    def test_pairwise_keys_symmetric(self, group):
        silos = make_silos(group, [[1], [1], [1]])
        assert silos[0].pair_keys[1] == silos[1].pair_keys[0]
        assert silos[0].pair_keys[2] == silos[2].pair_keys[0]
        assert silos[0].pair_keys[1] != silos[0].pair_keys[2]


class TestServerParty:
    def test_invert_requires_aggregation(self):
        server = ServerParty(3, paillier_bits=256, rng=random.Random(0))
        with pytest.raises(RuntimeError):
            server.invert_blinded_totals()

    def test_encrypted_inverses_require_inversion(self):
        server = ServerParty(3, paillier_bits=256, rng=random.Random(0))
        with pytest.raises(RuntimeError):
            server.encrypted_inverses()

    def test_zero_total_user_gets_zero_pseudo_inverse(self):
        server = ServerParty(2, paillier_bits=256, rng=random.Random(0))
        server.aggregate_histograms([[0, 5], [0, 7]])
        server.invert_blinded_totals()
        assert server.blinded_inverses[0] == 0
        assert server.blinded_inverses[1] != 0

    def test_histogram_length_validated(self):
        server = ServerParty(3, paillier_bits=256, rng=random.Random(0))
        with pytest.raises(ValueError):
            server.aggregate_histograms([[1, 2]])

    def test_aggregate_requires_consistent_lengths(self):
        server = ServerParty(1, paillier_bits=256, rng=random.Random(0))
        pk = server.public_key
        rng = random.Random(1)
        a = [pk.encrypt(1, rng=rng), pk.encrypt(2, rng=rng)]
        b = [pk.encrypt(3, rng=rng)]
        with pytest.raises(ValueError):
            server.aggregate_and_decrypt([a, b], 1e-10, 1)

    def test_aggregate_rejects_empty(self):
        server = ServerParty(1, paillier_bits=256, rng=random.Random(0))
        with pytest.raises(ValueError):
            server.aggregate_and_decrypt([], 1e-10, 1)

    def test_decrypt_of_scalar_sum(self):
        """Mini end-to-end of step 2(c) without masks: Enc(a)+Enc(b)."""
        server = ServerParty(1, paillier_bits=256, rng=random.Random(0))
        pk = server.public_key
        rng = random.Random(2)
        from repro.crypto.encoding import encode_scalar

        a = pk.encrypt(encode_scalar(0.25, 1e-10, pk.n) * 4 % pk.n, rng=rng)
        b = pk.encrypt(encode_scalar(-0.5, 1e-10, pk.n) * 4 % pk.n, rng=rng)
        out = server.aggregate_and_decrypt([[a], [b]], 1e-10, 4)
        np.testing.assert_allclose(out, [-0.25], atol=1e-9)
