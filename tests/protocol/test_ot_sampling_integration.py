"""Integration tests for the OT-based private sub-sampling extension."""

import numpy as np
import pytest

from repro.core import Trainer
from repro.data import build_creditcard_benchmark
from repro.protocol import PrivateSubsampler, PrivateWeightingProtocol, SecureUldpAvg

HIST = np.array([
    [3, 1, 2, 1],
    [1, 4, 0, 1],
])


def make_protocol(seed=0):
    proto = PrivateWeightingProtocol(HIST, n_max=16, paillier_bits=256, seed=seed)
    proto.run_setup()
    return proto


def make_inputs(proto, d=4, seed=1):
    rng = np.random.default_rng(seed)
    deltas = [
        {u: rng.standard_normal(d) for u in range(proto.n_users) if proto.histogram[s, u] > 0}
        for s in range(proto.n_silos)
    ]
    noises = [rng.standard_normal(d) for _ in range(proto.n_silos)]
    return deltas, noises


class TestRunRoundOtSampling:
    def test_matches_reference_on_sampled_set(self):
        proto = make_protocol()
        deltas, noises = make_inputs(proto)
        seed = proto.silos[0].shared_seed
        subsampler = PrivateSubsampler(seed, n_slots=2)
        sampled = np.array(subsampler.sampled_users(proto.n_users, round_no=0))

        out = proto.run_round_ot_sampling(deltas, noises, subsampler)
        ref = proto.plaintext_reference(deltas, noises, sampled_users=sampled)
        assert np.max(np.abs(out - ref)) < 1e-6

    def test_multiple_rounds_resample(self):
        proto = make_protocol(seed=1)
        seed = proto.silos[0].shared_seed
        subsampler = PrivateSubsampler(seed, n_slots=2)
        sampled_sets = []
        for r in range(3):
            deltas, noises = make_inputs(proto, seed=10 + r)
            expected_sampled = np.array(subsampler.sampled_users(proto.n_users, r))
            out = proto.run_round_ot_sampling(deltas, noises, subsampler)
            ref = proto.plaintext_reference(
                deltas, noises, sampled_users=expected_sampled
            )
            assert np.max(np.abs(out - ref)) < 1e-6
            sampled_sets.append(tuple(expected_sampled.tolist()))
        # The schedule varies across rounds (with overwhelming probability
        # for 4 users x 3 rounds at q=1/2).
        assert len(set(sampled_sets)) > 1

    def test_wrong_seed_rejected(self):
        proto = make_protocol()
        deltas, noises = make_inputs(proto)
        with pytest.raises(ValueError):
            proto.run_round_ot_sampling(
                deltas, noises, PrivateSubsampler(b"not-the-seed", 2)
            )

    def test_requires_setup(self):
        proto = PrivateWeightingProtocol(HIST, n_max=16, paillier_bits=256, seed=0)
        with pytest.raises(RuntimeError):
            proto.run_round_ot_sampling([{}, {}], [np.zeros(2)] * 2,
                                        PrivateSubsampler(b"x", 2))


class TestSecureUldpAvgWithOt:
    @pytest.fixture(scope="class")
    def fed(self):
        return build_creditcard_benchmark(
            n_users=5, n_silos=2, n_records=80, n_test=30, seed=0
        )

    def test_end_to_end_training(self, fed):
        from repro.nn.model import build_tiny_mlp

        method = SecureUldpAvg(
            noise_multiplier=1.0, local_epochs=1, local_lr=0.1,
            paillier_bits=256, private_subsampling_slots=2,
        )
        model = build_tiny_mlp(30, 2, 2, np.random.default_rng(1))
        history = Trainer(fed, method, rounds=2, model=model, seed=2).run()
        assert len(history.records) == 2
        assert np.isfinite(history.final.loss) or history.final.loss == float("inf")

    def test_accounting_uses_ot_rate(self, fed):
        from repro.nn.model import build_tiny_mlp

        ot = SecureUldpAvg(
            noise_multiplier=5.0, local_epochs=1, paillier_bits=256,
            private_subsampling_slots=4,
        )
        model = build_tiny_mlp(30, 2, 2, np.random.default_rng(1))
        Trainer(fed, ot, rounds=2, model=model, seed=3).run()

        from repro.accounting import PrivacyAccountant

        expected = PrivacyAccountant()
        expected.step(5.0, sample_rate=0.25, steps=2)
        assert ot.epsilon(1e-5) == pytest.approx(expected.get_epsilon(1e-5))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SecureUldpAvg(private_subsampling_slots=1)
        with pytest.raises(ValueError):
            SecureUldpAvg(private_subsampling_slots=2, user_sample_rate=0.5)

    def test_ot_timing_phase_recorded(self, fed):
        from repro.nn.model import build_tiny_mlp

        method = SecureUldpAvg(
            noise_multiplier=1.0, local_epochs=1, paillier_bits=256,
            private_subsampling_slots=2,
        )
        model = build_tiny_mlp(30, 2, 2, np.random.default_rng(1))
        Trainer(fed, method, rounds=1, model=model, seed=4).run()
        assert "ot_private_sampling" in method.timing_report()
