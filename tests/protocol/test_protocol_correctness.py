"""Theorem 4: Protocol 1 computes the same aggregate as the plain method.

|Delta - Delta_sec|_inf must stay within the fixed-point precision P for
arbitrary clipped deltas and noise, including with sub-sampled (zeroed)
users and with users missing from some silos.
"""

import numpy as np
import pytest

from repro.protocol import PrivateWeightingProtocol


def make_protocol(hist, seed=0, **kwargs):
    proto = PrivateWeightingProtocol(
        np.asarray(hist), paillier_bits=256, seed=seed, **kwargs
    )
    proto.run_setup()
    return proto


def random_inputs(proto, d=6, seed=1, scale=1.0):
    rng = np.random.default_rng(seed)
    deltas, noises = [], []
    for s in range(proto.n_silos):
        per_user = {}
        for u in range(proto.n_users):
            if proto.histogram[s, u] > 0:
                per_user[u] = scale * rng.standard_normal(d)
        deltas.append(per_user)
        noises.append(scale * rng.standard_normal(d))
    return deltas, noises


HIST = [
    [3, 0, 2, 1],
    [1, 4, 0, 1],
    [2, 1, 1, 0],
]


def tol(proto):
    """Accumulated fixed-point error bound: each encoded term contributes
    up to precision/2; the aggregate sums |S| * (|U| + 1) terms."""
    return proto.n_silos * (proto.n_users + 1) * proto.precision / 2


class TestTheorem4:
    def test_matches_plaintext_reference(self):
        proto = make_protocol(HIST, n_max=16)
        deltas, noises = random_inputs(proto)
        secure = proto.run_round(deltas, noises)
        plain = proto.plaintext_reference(deltas, noises)
        assert np.max(np.abs(secure - plain)) <= tol(proto)

    def test_multiple_rounds_independent(self):
        proto = make_protocol(HIST, n_max=16)
        for round_seed in (1, 2, 3):
            deltas, noises = random_inputs(proto, seed=round_seed)
            secure = proto.run_round(deltas, noises)
            plain = proto.plaintext_reference(deltas, noises)
            assert np.max(np.abs(secure - plain)) <= tol(proto)

    def test_subsampled_users_zeroed(self):
        proto = make_protocol(HIST, n_max=16)
        deltas, noises = random_inputs(proto)
        sampled = np.array([0, 2])
        secure = proto.run_round(deltas, noises, sampled_users=sampled)
        plain = proto.plaintext_reference(deltas, noises, sampled_users=sampled)
        assert np.max(np.abs(secure - plain)) <= tol(proto)

    def test_nobody_sampled_yields_noise_only(self):
        proto = make_protocol(HIST, n_max=16)
        deltas, noises = random_inputs(proto)
        secure = proto.run_round(deltas, noises, sampled_users=np.array([], dtype=int))
        plain = sum(noises)
        assert np.max(np.abs(secure - plain)) <= tol(proto)

    def test_user_absent_from_some_silos(self):
        hist = [[5, 0], [0, 3]]  # disjoint users
        proto = make_protocol(hist, n_max=8)
        deltas, noises = random_inputs(proto, d=4)
        secure = proto.run_round(deltas, noises)
        plain = proto.plaintext_reference(deltas, noises)
        assert np.max(np.abs(secure - plain)) <= tol(proto)

    def test_weights_are_eq3(self):
        """Decoded aggregate uses exactly w = n_su / N_u."""
        hist = np.array([[3, 1], [1, 1]])
        proto = make_protocol(hist.tolist(), n_max=8)
        d = 3
        # One-hot deltas isolate the weight of each (silo, user) pair.
        deltas = [
            {0: np.ones(d), 1: np.zeros(d)},
            {0: np.zeros(d), 1: np.zeros(d)},
        ]
        noises = [np.zeros(d), np.zeros(d)]
        out = proto.run_round(deltas, noises)
        np.testing.assert_allclose(out, 3.0 / 4.0, atol=tol(proto))

    def test_large_magnitudes_within_budget(self):
        proto = make_protocol(HIST, n_max=16)
        deltas, noises = random_inputs(proto, scale=100.0)
        secure = proto.run_round(deltas, noises)
        plain = proto.plaintext_reference(deltas, noises)
        # Relative fixed-point error grows with magnitude; still tiny.
        assert np.max(np.abs(secure - plain)) <= 1e-6

    def test_magnitude_budget_guard_raises(self):
        # Tiny Paillier modulus + huge values must be rejected, not corrupted.
        proto = PrivateWeightingProtocol(
            np.asarray(HIST), n_max=16, paillier_bits=128, seed=0
        )
        proto.run_setup()
        deltas, noises = random_inputs(proto, scale=1e30)
        with pytest.raises(ValueError):
            proto.run_round(deltas, noises)


class TestValidation:
    def test_requires_setup(self):
        proto = PrivateWeightingProtocol(np.asarray(HIST), paillier_bits=256, seed=0)
        deltas = [dict() for _ in range(3)]
        noises = [np.zeros(2)] * 3
        with pytest.raises(RuntimeError):
            proto.run_round(deltas, noises)

    def test_rejects_single_silo(self):
        with pytest.raises(ValueError):
            PrivateWeightingProtocol(np.array([[1, 2]]), paillier_bits=256, seed=0)

    def test_rejects_user_over_nmax(self):
        with pytest.raises(ValueError):
            PrivateWeightingProtocol(
                np.array([[10, 0], [10, 0]]), n_max=8, paillier_bits=256, seed=0
            )

    def test_rejects_wrong_silo_count(self):
        proto = make_protocol(HIST, n_max=16)
        with pytest.raises(ValueError):
            proto.run_round([{}], [np.zeros(2)])

    def test_silo_rejects_foreign_user_delta(self):
        proto = make_protocol(HIST, n_max=16)
        deltas, noises = random_inputs(proto)
        deltas[0][1] = np.ones(6)  # silo 0 has no records of user 1
        with pytest.raises(ValueError):
            proto.run_round(deltas, noises)

    def test_deterministic_with_seed(self):
        a = make_protocol(HIST, n_max=16, seed=5)
        b = make_protocol(HIST, n_max=16, seed=5)
        deltas, noises = random_inputs(a)
        out_a = a.run_round(deltas, noises)
        out_b = b.run_round(deltas, noises)
        np.testing.assert_allclose(out_a, out_b)
