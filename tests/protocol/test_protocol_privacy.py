"""Theorem 5: structural privacy checks on the server's view.

We cannot prove indistinguishability in a unit test, but we can verify the
mechanics the proof relies on: the server never receives a raw histogram,
its blinded view changes completely under a different shared seed while the
true histogram stays fixed, two histograms with equal blinds produce views
related only through the blind, and individual silo contributions are
masked (they do not equal the unmasked blinded values).
"""

import numpy as np
import pytest

from repro.protocol import PrivateWeightingProtocol

HIST = np.array([
    [3, 0, 2, 1],
    [1, 4, 0, 1],
    [2, 1, 1, 0],
])


def setup_protocol(hist=HIST, seed=0):
    proto = PrivateWeightingProtocol(hist, n_max=16, paillier_bits=256, seed=seed)
    proto.run_setup()
    return proto


class TestServerView:
    def test_raw_counts_never_in_view(self):
        proto = setup_protocol()
        view = proto.view
        raw_counts = set(int(v) for v in HIST.ravel()) | set(
            int(v) for v in HIST.sum(axis=0)
        )
        seen = set()
        for hist in view.masked_histograms:
            seen.update(hist)
        seen.update(view.blinded_totals)
        # Blinded/masked values are ~256-bit field elements; raw counts are
        # tiny integers.  None may appear verbatim.
        assert not (seen & raw_counts)

    def test_masked_contributions_differ_from_blinded_values(self):
        """The additive masks must actually hide each silo's blinded row."""
        proto = setup_protocol()
        silo0 = proto.silos[0]
        assert silo0.blinding is not None
        n = proto.server.public_key.n
        unmasked = [
            silo0.blinding.blind(u, int(HIST[0, u])) % n for u in range(proto.n_users)
        ]
        masked = proto.view.masked_histograms[0]
        assert masked != unmasked

    def test_blinded_totals_factor_correctly(self):
        """B(N_u) = r_u * N_u: the server's view is the blinded total, and
        unblinding (which the server cannot do without R) recovers N_u."""
        proto = setup_protocol()
        n = proto.server.public_key.n
        blinding = proto.silos[0].blinding
        assert blinding is not None
        totals = HIST.sum(axis=0)
        for u in range(proto.n_users):
            expected = blinding.blind(u, int(totals[u]))
            assert proto.view.blinded_totals[u] == expected % n

    def test_view_changes_with_seed_same_histogram(self):
        """Same data, different protocol randomness => disjoint server view.

        This is the mechanical core of the uniformity argument: the blinded
        total is r_u * N_u with r_u fresh, so the view carries no stable
        function of N_u."""
        a = setup_protocol(seed=1)
        b = setup_protocol(seed=2)
        assert set(a.view.blinded_totals).isdisjoint(set(b.view.blinded_totals))

    def test_round_ciphertexts_recorded_but_opaque(self):
        proto = setup_protocol()
        rng = np.random.default_rng(0)
        deltas = []
        for s in range(proto.n_silos):
            deltas.append(
                {u: rng.standard_normal(3) for u in range(proto.n_users) if HIST[s, u] > 0}
            )
        noises = [rng.standard_normal(3) for _ in range(proto.n_silos)]
        proto.run_round(deltas, noises)
        cts = proto.view.round_ciphertexts[0]
        assert len(cts) == proto.n_silos
        # Ciphertexts live in Z_{n^2}: enormous integers, not model values.
        n2 = proto.server.public_key.n_squared
        for vec in cts:
            for value in vec:
                assert 0 < value < n2
                assert value > 2**200

    def test_seed_ciphertexts_hide_seed(self):
        proto = setup_protocol()
        seed = proto.silos[0].shared_seed
        assert seed is not None
        for ct in proto.view.seed_ciphertexts.values():
            assert ct != seed

    def test_all_silos_agree_on_seed(self):
        proto = setup_protocol()
        seeds = {s.shared_seed for s in proto.silos}
        assert len(seeds) == 1


class TestPairwiseMaskCancellation:
    def test_histogram_masks_cancel_in_totals(self):
        """Summing the masked histograms must equal summing unmasked blinded
        histograms: the masks add to zero."""
        proto = setup_protocol()
        n = proto.server.public_key.n
        blinding = proto.silos[0].blinding
        totals_from_masked = proto.view.blinded_totals
        expected = [
            blinding.blind(u, int(HIST.sum(axis=0)[u])) % n for u in range(proto.n_users)
        ]
        assert totals_from_masked == expected
