"""Unit coverage for PhaseTimer (the Fig. 10/11 per-phase instrumentation)."""

import pytest

from repro.protocol.timing import PhaseTimer


class TestPhaseContextManager:
    def test_phase_accumulates_time_and_count(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            pass
        with timer.phase("work"):
            pass
        assert timer.counts["work"] == 2
        assert timer.totals["work"] >= 0.0

    def test_phase_records_even_when_body_raises(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("failing"):
                raise RuntimeError("boom")
        assert timer.counts["failing"] == 1
        assert "failing" in timer.report()


class TestAdd:
    def test_add_accumulates(self):
        timer = PhaseTimer()
        timer.add("offline", 1.5)
        timer.add("offline", 0.5)
        assert timer.totals["offline"] == pytest.approx(2.0)
        assert timer.counts["offline"] == 2

    def test_add_zero_duration_counts(self):
        timer = PhaseTimer()
        timer.add("noop", 0.0)
        assert timer.counts["noop"] == 1
        assert timer.totals["noop"] == 0.0

    def test_add_rejects_negative(self):
        timer = PhaseTimer()
        with pytest.raises(ValueError):
            timer.add("bad", -0.001)
        assert "bad" not in timer.totals


class TestMerge:
    def test_merge_folds_totals_and_counts(self):
        parent = PhaseTimer()
        parent.add("train", 1.0)
        worker = PhaseTimer()
        worker.add("train", 0.5)
        worker.add("encrypt", 2.0)
        result = parent.merge(worker)
        assert result is parent  # chains
        assert parent.totals["train"] == pytest.approx(1.5)
        assert parent.counts["train"] == 2
        assert parent.totals["encrypt"] == pytest.approx(2.0)
        assert parent.counts["encrypt"] == 1

    def test_merge_leaves_source_untouched(self):
        parent = PhaseTimer()
        worker = PhaseTimer()
        worker.add("io", 0.25)
        parent.merge(worker)
        assert worker.totals["io"] == pytest.approx(0.25)
        assert worker.counts["io"] == 1

    def test_merge_empty_is_identity(self):
        parent = PhaseTimer()
        parent.add("a", 1.0)
        parent.merge(PhaseTimer())
        assert parent.report() == {"a": 1.0}
        assert parent.counts["a"] == 1

    def test_merge_many_workers_matches_serial(self):
        serial = PhaseTimer()
        merged = PhaseTimer()
        for i in range(4):
            worker = PhaseTimer()
            for name, seconds in (("setup", 0.1), ("round", 0.2 * (i + 1))):
                serial.add(name, seconds)
                worker.add(name, seconds)
            merged.merge(worker)
        assert merged.counts == serial.counts
        for name in serial.totals:
            assert merged.totals[name] == pytest.approx(serial.totals[name])


class TestReportAndSummary:
    def test_report_returns_copy(self):
        timer = PhaseTimer()
        timer.add("a", 1.0)
        report = timer.report()
        report["a"] = 99.0
        assert timer.totals["a"] == 1.0

    def test_summary_lists_phases_sorted_with_counts(self):
        timer = PhaseTimer()
        timer.add("zulu", 0.25)
        timer.add("alpha", 0.1)
        timer.add("alpha", 0.1)
        summary = timer.summary()
        lines = summary.splitlines()
        assert len(lines) == 2
        assert "alpha" in lines[0] and "(x2)" in lines[0]
        assert "zulu" in lines[1] and "(x1)" in lines[1]
        assert "250.0 ms" in lines[1]

    def test_empty_summary(self):
        assert PhaseTimer().summary() == ""
