"""Tests for the 1-out-of-P OT and private sub-sampling extension."""

import random

import pytest

from repro.crypto.dh import DHGroup
from repro.protocol.oblivious import (
    OTReceiver,
    OTSender,
    PrivateSubsampler,
    transfer,
)


@pytest.fixture(scope="module")
def group():
    return DHGroup.test_group()


class TestOneOfP:
    @pytest.mark.parametrize("n_slots", [2, 3, 5])
    def test_receiver_gets_chosen_message(self, group, n_slots):
        rng = random.Random(n_slots)
        messages = [f"slot-{i}".encode() * 3 for i in range(n_slots)]
        for choice in range(n_slots):
            assert transfer(group, messages, choice, rng=rng) == messages[choice]

    def test_other_slots_undecryptable_with_receiver_secret(self, group):
        """Decrypting a non-chosen slot with the receiver's key yields noise."""
        rng = random.Random(0)
        messages = [b"A" * 16, b"B" * 16, b"C" * 16]
        sender = OTSender(group, 3, rng=rng)
        receiver = OTReceiver(group, sender.public_commitments(), choice=1, rng=rng)
        slots = sender.encrypt_slots(receiver.public_key(), messages)
        # Forcibly decrypt slot 2 with the receiver's secret: must NOT match.
        forged = OTReceiver.__new__(OTReceiver)
        forged.group = receiver.group
        forged.secret = receiver.secret
        forged.choice = 2
        assert forged.decrypt_choice(slots) != messages[2]

    def test_sender_view_independent_of_choice(self, group):
        """The receiver's public key is one group element regardless of
        choice -- the sender sees the same distribution for any choice."""
        rng = random.Random(1)
        sender = OTSender(group, 4, rng=rng)
        pks = [
            OTReceiver(group, sender.public_commitments(), choice=c,
                       rng=random.Random(100 + c)).public_key()
            for c in range(4)
        ]
        # All are valid group elements; none reveals the choice structurally.
        for pk in pks:
            assert 1 < pk < group.prime - 1

    def test_rejects_bad_parameters(self, group):
        with pytest.raises(ValueError):
            OTSender(group, 1)
        sender = OTSender(group, 3, rng=random.Random(0))
        with pytest.raises(ValueError):
            OTReceiver(group, sender.public_commitments(), choice=3)
        with pytest.raises(ValueError):
            sender.encrypt_slots(0, [b"a", b"b", b"c"])
        with pytest.raises(ValueError):
            sender.encrypt_slots(5, [b"a"])  # wrong message count

    def test_paillier_ciphertext_transport(self, group):
        """The actual payload type: Paillier ciphertexts as bytes."""
        import random as pyrandom

        from repro.crypto.paillier import generate_paillier_keypair

        rng = pyrandom.Random(2)
        kp = generate_paillier_keypair(bits=128, rng=rng)
        real = kp.public_key.encrypt(42, rng=rng)
        dummy = kp.public_key.encrypt(0, rng=rng)
        byte_len = (kp.public_key.n_squared.bit_length() + 7) // 8
        messages = [
            real.value.to_bytes(byte_len, "big"),
            dummy.value.to_bytes(byte_len, "big"),
        ]
        received = transfer(group, messages, choice=0, rng=rng)
        from repro.crypto.paillier import PaillierCiphertext

        ct = PaillierCiphertext(int.from_bytes(received, "big"), kp.public_key)
        assert kp.private_key.decrypt(ct) == 42


class TestPrivateSubsampler:
    def test_slots_common_across_silos(self):
        a = PrivateSubsampler(b"shared-seed", 4)
        b = PrivateSubsampler(b"shared-seed", 4)
        for u in range(20):
            assert a.slot_for(u, 0) == b.slot_for(u, 0)

    def test_slots_change_per_round(self):
        s = PrivateSubsampler(b"seed", 4)
        slots_r0 = [s.slot_for(u, 0) for u in range(50)]
        slots_r1 = [s.slot_for(u, 1) for u in range(50)]
        assert slots_r0 != slots_r1

    def test_participation_rate_approximates_1_over_p(self):
        s = PrivateSubsampler(b"seed2", 4)
        total = 0
        n_users, n_rounds = 200, 25
        for r in range(n_rounds):
            total += len(s.sampled_users(n_users, r))
        rate = total / (n_users * n_rounds)
        assert abs(rate - 0.25) < 0.03

    def test_rate_property(self):
        assert PrivateSubsampler(b"x", 5).participation_rate == 0.2

    def test_rejects_single_slot(self):
        with pytest.raises(ValueError):
            PrivateSubsampler(b"x", 1)

    def test_different_seeds_different_schedules(self):
        a = PrivateSubsampler(b"seed-a", 3)
        b = PrivateSubsampler(b"seed-b", 3)
        assert [a.slot_for(u, 0) for u in range(30)] != [
            b.slot_for(u, 0) for u in range(30)
        ]
