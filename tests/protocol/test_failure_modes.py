"""Failure-injection tests: what breaks when protocol assumptions break.

The paper's trust model requires all silos to participate in every round
(secure-aggregation masks only cancel over the full set) and semi-honest
behaviour.  These tests verify the implementation *fails loudly or
detectably* rather than silently producing wrong results when those
assumptions are violated.
"""

import numpy as np
import pytest

from repro.crypto.masking import PairwiseMasker
from repro.protocol import PrivateWeightingProtocol

HIST = np.array([
    [3, 0, 2],
    [1, 4, 1],
    [2, 1, 1],
])


def make_protocol(seed=0):
    proto = PrivateWeightingProtocol(HIST, n_max=16, paillier_bits=256, seed=seed)
    proto.run_setup()
    return proto


def make_inputs(proto, d=4, seed=1):
    rng = np.random.default_rng(seed)
    deltas = [
        {u: rng.standard_normal(d) for u in range(proto.n_users) if proto.histogram[s, u] > 0}
        for s in range(proto.n_silos)
    ]
    noises = [rng.standard_normal(d) for _ in range(proto.n_silos)]
    return deltas, noises


class TestSiloDropout:
    def test_missing_silo_corrupts_aggregate(self):
        """Dropping one silo's ciphertexts leaves uncancelled masks: the
        decrypted aggregate is garbage (enormous), not a plausible value --
        dropout is detectable, matching the all-rounds participation
        assumption."""
        proto = make_protocol()
        deltas, noises = make_inputs(proto)
        enc_inverses = proto.server.encrypted_inverses()
        vectors = []
        for s, silo in enumerate(proto.silos):
            vectors.append(
                silo.weighted_encrypted_delta(
                    enc_inverses, deltas[s], noises[s], round_no=0,
                    precision=proto.precision,
                )
            )
        # Server aggregates only two of three silos.
        partial = proto.server.aggregate_and_decrypt(
            vectors[:2], proto.precision, proto.c_lcm
        )
        reference = proto.plaintext_reference(deltas, noises)
        # The result is wildly off (uncancelled ~n-sized masks decode to
        # astronomically large magnitudes), never a near-miss.
        assert np.max(np.abs(partial - reference)) > 1e6

    def test_full_participation_recovers(self):
        proto = make_protocol()
        deltas, noises = make_inputs(proto)
        out = proto.run_round(deltas, noises)
        ref = proto.plaintext_reference(deltas, noises)
        assert np.max(np.abs(out - ref)) < 1e-6


class TestMaskMisuse:
    def test_context_reuse_breaks_cancellation(self):
        """Masks are bound to (step, round) contexts; reusing a context
        across different value vectors double-counts masks."""
        keys = {1: b"k" * 32}
        a = PairwiseMasker(0, keys, modulus=2**61 - 1)
        b = PairwiseMasker(1, {0: b"k" * 32}, modulus=2**61 - 1)
        m_a = a.mask_vector(3, context="round-0")
        m_b = b.mask_vector(3, context="round-1")  # wrong context
        total = [(x + y) % (2**61 - 1) for x, y in zip(m_a, m_b)]
        assert total != [0, 0, 0]

    def test_same_context_cancels(self):
        a = PairwiseMasker(0, {1: b"k" * 32}, modulus=2**61 - 1)
        b = PairwiseMasker(1, {0: b"k" * 32}, modulus=2**61 - 1)
        m_a = a.mask_vector(3, context="round-0")
        m_b = b.mask_vector(3, context="round-0")
        assert [(x + y) % (2**61 - 1) for x, y in zip(m_a, m_b)] == [0, 0, 0]


class TestHistogramTampering:
    def test_inconsistent_silo_histogram_shifts_weights_only(self):
        """A silo lying about its counts (semi-honest violation) changes
        weights but cannot break decryption -- quantifying the blast
        radius."""
        proto_honest = make_protocol(seed=3)
        deltas, noises = make_inputs(proto_honest)
        honest = proto_honest.run_round(deltas, noises)

        lying_hist = HIST.copy()
        lying_hist[0, 0] = 9  # silo 0 inflates its count for user 0
        proto_lying = PrivateWeightingProtocol(
            lying_hist, n_max=16, paillier_bits=256, seed=3
        )
        proto_lying.run_setup()
        lying = proto_lying.run_round(deltas, noises)

        # Both decode to finite, plausible aggregates...
        assert np.all(np.isfinite(lying))
        # ...but user 0's effective weight moved (3/6 -> 9/12).
        assert not np.allclose(lying, honest, atol=1e-8)

    def test_user_exceeding_nmax_rejected_at_construction(self):
        bad = HIST.copy()
        bad[0, 0] = 100
        with pytest.raises(ValueError):
            PrivateWeightingProtocol(bad, n_max=16, paillier_bits=256, seed=0)


class TestEncodingOverflowInjection:
    def test_overflow_guard_triggers_before_corruption(self):
        proto = make_protocol()
        deltas, noises = make_inputs(proto)
        # Must breach n/2 after the 1/P fixed-point scaling and the C_LCM
        # factor: for a 256-bit modulus that needs ~1e65.
        deltas[0][0] = np.full(4, 1e65)
        with pytest.raises(ValueError, match="magnitude budget"):
            proto.run_round(deltas, noises)
