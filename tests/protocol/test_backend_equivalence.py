"""Differential harness: the three secure backends against each other.

The masked backend's correctness contract, end to end through
:class:`SecureUldpAvg`:

- **exactly** equal to the Paillier backends under full participation
  (both decode the identical integer arithmetic), and
- equal to the plaintext :class:`UldpAvg` within fixed-point tolerance
  under *every* participation pattern, including exhaustively enumerated
  dropout subsets at |S| <= 4 (which the Paillier backends reject).
"""

import itertools

import numpy as np
import pytest

from repro.core import Trainer, UldpAvg
from repro.core.weighting import RoundParticipation
from repro.data import build_creditcard_benchmark
from repro.nn.model import build_tiny_mlp
from repro.protocol import SecureUldpAvg


@pytest.fixture(scope="module")
def fed():
    return build_creditcard_benchmark(
        n_users=6, n_silos=3, n_records=120, n_test=40, seed=0
    )


@pytest.fixture(scope="module")
def fed4():
    """Four silos for the exhaustive |S| <= 4 dropout enumeration."""
    return build_creditcard_benchmark(
        n_users=8, n_silos=4, n_records=160, n_test=40, seed=1
    )


def make_model():
    return build_tiny_mlp(30, 2, 2, np.random.default_rng(42))


def run(method, fed, rounds=2, seed=0, participations=None):
    model = make_model()
    trainer = Trainer(fed, method, rounds=rounds, model=model, seed=seed)
    if participations is None:
        trainer.run()
    else:
        for part in participations:
            trainer.step(participation=part)
    return model.get_flat_params(), trainer.history


def masked(**kwargs):
    kwargs.setdefault("local_epochs", 1)
    kwargs.setdefault("noise_multiplier", 1.0)
    kwargs.setdefault("local_lr", 0.1)
    return SecureUldpAvg(crypto_backend="masked", **kwargs)


def plain(**kwargs):
    kwargs.setdefault("local_epochs", 1)
    kwargs.setdefault("noise_multiplier", 1.0)
    kwargs.setdefault("local_lr", 0.1)
    return UldpAvg(weighting="proportional", **kwargs)


class TestFullParticipation:
    def test_masked_equals_paillier_exactly(self, fed):
        """Bit-for-bit: both backends decode the same integer arithmetic."""
        paillier_params, _ = run(
            SecureUldpAvg(local_epochs=1, noise_multiplier=1.0, local_lr=0.1,
                          paillier_bits=256),
            fed, seed=7,
        )
        masked_params, _ = run(masked(), fed, seed=7)
        assert np.array_equal(masked_params, paillier_params)

    def test_masked_equals_reference_paillier_exactly(self, fed):
        reference_params, _ = run(
            SecureUldpAvg(local_epochs=1, noise_multiplier=1.0, local_lr=0.1,
                          paillier_bits=256, crypto_backend="reference"),
            fed, rounds=1, seed=3,
        )
        masked_params, _ = run(masked(), fed, rounds=1, seed=3)
        assert np.array_equal(masked_params, reference_params)

    def test_masked_matches_plaintext_within_encoding(self, fed):
        plain_params, _ = run(plain(), fed, seed=7)
        masked_params, _ = run(masked(), fed, seed=7)
        np.testing.assert_allclose(masked_params, plain_params, atol=1e-6)

    def test_subsampling_matches_plaintext(self, fed):
        # The masked path keeps the plaintext Algorithm 4 visibility model,
        # so server-side Poisson sampling aligns draw for draw.
        plain_params, _ = run(plain(user_sample_rate=0.5), fed, seed=11)
        masked_params, _ = run(masked(user_sample_rate=0.5), fed, seed=11)
        np.testing.assert_allclose(masked_params, plain_params, atol=1e-6)

    def test_epsilon_identical(self, fed):
        _, plain_hist = run(plain(noise_multiplier=5.0), fed, seed=3)
        _, masked_hist = run(masked(noise_multiplier=5.0), fed, seed=3)
        assert masked_hist.final.epsilon == pytest.approx(
            plain_hist.final.epsilon
        )


class TestDropoutEquivalence:
    def test_every_survivor_subset_matches_plaintext(self, fed4):
        """Exhaustive enumeration at |S| = 4: every non-empty survivor
        subset trains identically to the plaintext method under the same
        roster (the recovered masked sum equals the plaintext sum over
        survivors)."""
        for r in range(1, 5):
            for survivors in itertools.combinations(range(4), r):
                mask = np.zeros(4, dtype=bool)
                mask[list(survivors)] = True
                parts = [RoundParticipation(silo_mask=mask.copy())]
                plain_params, _ = run(
                    plain(), fed4, seed=5, participations=parts
                )
                masked_params, _ = run(
                    masked(), fed4, seed=5, participations=parts
                )
                np.testing.assert_allclose(
                    masked_params, plain_params, atol=1e-6,
                    err_msg=f"survivors={survivors}",
                )

    def test_multi_round_churn_matches_plaintext(self, fed):
        parts = [
            RoundParticipation(silo_mask=np.array([True, False, True])),
            None,
            RoundParticipation(silo_mask=np.array([False, True, True])),
        ]
        plain_params, plain_hist = run(
            plain(), fed, rounds=3, seed=13, participations=parts
        )
        masked_params, masked_hist = run(
            masked(), fed, rounds=3, seed=13, participations=parts
        )
        np.testing.assert_allclose(masked_params, plain_params, atol=1e-6)
        assert masked_hist.participation == plain_hist.participation

    def test_renormed_weights_match_plaintext(self, fed):
        # Survivor renormalisation breaks the exact n_su/N_u form, hitting
        # the rounded-numerator fallback; agreement degrades only to the
        # 1/(2*C_LCM) rounding bound, far inside the 1e-6 tolerance.
        parts = [RoundParticipation(
            silo_mask=np.array([True, False, True]), renorm="survivors"
        )]
        plain_params, _ = run(plain(), fed, seed=17, participations=parts)
        masked_params, _ = run(masked(), fed, seed=17, participations=parts)
        np.testing.assert_allclose(masked_params, plain_params, atol=1e-6)

    def test_uplink_bytes_charge_survivors_only(self, fed):
        method = masked()
        parts = [RoundParticipation(silo_mask=np.array([True, False, True]))]
        _, hist = run(method, fed, rounds=1, seed=2, participations=parts)
        per_coord = method.masked_protocol.mask_bytes
        dim = 68  # tiny MLP parameter count
        assert hist.comm[0].uplink_bytes == 2 * dim * per_coord


class TestMinSurvivorsQuorum:
    """``min_survivors`` bounds the false-dropout attack surface: a round
    whose survivor set is smaller aborts with QuorumError instead of
    aggregating (docs/protocol_performance.md)."""

    def test_round_below_quorum_aborts(self, fed):
        method = masked(min_survivors=2)
        trainer = Trainer(fed, method, rounds=1, model=make_model(), seed=0)
        from repro.core.weighting import QuorumError

        with pytest.raises(QuorumError, match="below min_survivors=2"):
            trainer.step(
                participation=RoundParticipation(
                    silo_mask=np.array([False, False, True])
                )
            )

    def test_round_at_quorum_still_aggregates(self, fed):
        parts = [RoundParticipation(silo_mask=np.array([True, False, True]))]
        plain_params, _ = run(plain(), fed, seed=5, participations=parts)
        quorum_params, _ = run(
            masked(min_survivors=2), fed, seed=5, participations=parts
        )
        np.testing.assert_allclose(quorum_params, plain_params, atol=1e-6)

    def test_min_survivors_validated(self):
        with pytest.raises(ValueError, match="min_survivors"):
            masked(min_survivors=0)


class TestPaillierStillRejectsDropout:
    """Satellite regression: the Paillier backends must keep refusing
    partial participation, and the error must route users to ``masked``."""

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_rejects_with_pointer_to_masked(self, fed, backend):
        method = SecureUldpAvg(
            local_epochs=1, noise_multiplier=1.0, paillier_bits=256,
            crypto_backend=backend,
        )
        trainer = Trainer(fed, method, rounds=1, model=make_model(), seed=0)
        with pytest.raises(NotImplementedError) as err:
            trainer.step(
                participation=RoundParticipation(
                    silo_mask=np.array([True, False, True])
                )
            )
        assert "crypto_backend='masked'" in str(err.value)

    def test_masked_rejects_ot_subsampling(self):
        with pytest.raises(ValueError, match="Paillier-specific"):
            SecureUldpAvg(crypto_backend="masked", private_subsampling_slots=4)


class TestMaskedMethodSurface:
    def test_timing_report_has_masked_phases(self, fed):
        method = masked()
        run(method, fed, rounds=1, seed=0)
        report = method.timing_report()
        for phase in ("keygen", "key_exchange", "mask_and_upload", "aggregate"):
            assert phase in report

    def test_uplink_payload_bytes_uses_mask_width(self, fed):
        method = masked()
        run(method, fed, rounds=1, seed=0)
        assert method.uplink_payload_bytes() == 68 * method.masked_protocol.mask_bytes
