"""End-to-end tests: SecureUldpAvg == plaintext ULDP-AVG-w (Theorem 4)."""

import numpy as np
import pytest

from repro.core import Trainer, UldpAvg
from repro.data import build_creditcard_benchmark
from repro.nn.model import build_tiny_mlp
from repro.protocol import SecureUldpAvg


@pytest.fixture(scope="module")
def fed():
    return build_creditcard_benchmark(
        n_users=6, n_silos=3, n_records=120, n_test=40, seed=0
    )


def make_model():
    return build_tiny_mlp(30, 2, 2, np.random.default_rng(42))  # 68 params


def run(method, fed, rounds=2, seed=0):
    model = make_model()
    trainer = Trainer(fed, method, rounds=rounds, model=model, seed=seed)
    history = trainer.run()
    return model.get_flat_params(), history


class TestSecureMatchesPlain:
    def test_parameters_match_within_precision(self, fed):
        plain_params, _ = run(
            UldpAvg(weighting="proportional", local_epochs=1, noise_multiplier=1.0,
                    local_lr=0.1),
            fed, seed=7,
        )
        secure_params, _ = run(
            SecureUldpAvg(local_epochs=1, noise_multiplier=1.0, local_lr=0.1,
                          paillier_bits=256),
            fed, seed=7,
        )
        # Same trainer seed => same local training and noise draws; the only
        # difference is fixed-point quantisation, amplified by global_lr.
        np.testing.assert_allclose(secure_params, plain_params, atol=1e-6)

    def test_epsilon_identical(self, fed):
        _, plain_hist = run(
            UldpAvg(weighting="proportional", local_epochs=1, noise_multiplier=5.0),
            fed, seed=3,
        )
        _, secure_hist = run(
            SecureUldpAvg(local_epochs=1, noise_multiplier=5.0, paillier_bits=256),
            fed, seed=3,
        )
        assert secure_hist.final.epsilon == pytest.approx(plain_hist.final.epsilon)

    def test_subsampling_matches(self, fed):
        plain_params, _ = run(
            UldpAvg(weighting="proportional", local_epochs=1, noise_multiplier=1.0,
                    local_lr=0.1, user_sample_rate=0.5),
            fed, seed=11,
        )
        secure_params, _ = run(
            SecureUldpAvg(local_epochs=1, noise_multiplier=1.0, local_lr=0.1,
                          user_sample_rate=0.5, paillier_bits=256),
            fed, seed=11,
        )
        # Same seed => same Poisson sampling on the server side.  The secure
        # variant trains every user locally (silos are sampling-blind) but
        # the aggregate cancels unsampled users, so *aggregates* agree even
        # though per-silo work differs.  Noise draws happen after training
        # in both paths, per silo, so they align too.
        np.testing.assert_allclose(secure_params, plain_params, atol=1e-6)

    def test_timing_report_has_protocol_phases(self, fed):
        method = SecureUldpAvg(local_epochs=1, noise_multiplier=1.0, paillier_bits=256)
        run(method, fed, rounds=1, seed=0)
        report = method.timing_report()
        for phase in ("keygen", "key_exchange", "blinded_histogram",
                      "encrypt_weights", "silo_weighted_encryption",
                      "aggregate_decrypt"):
            assert phase in report
            assert report[phase] >= 0

    def test_display_name(self):
        assert SecureUldpAvg().display_name == "ULDP-AVG-w (secure)"
