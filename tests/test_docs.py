"""Documentation health: worked examples run, docstring coverage holds.

- The epsilon values in ``docs/privacy_accounting.md`` are executable
  doctests; this cross-checks every number printed in the document
  against the accounting implementation.
- Every public module under ``src/repro`` must carry a module docstring
  (the ``make docs-check`` gate, enforced here so tier-1 catches it).
- The README and architecture docs must exist and mention the load-bearing
  entry points they document.
"""

import doctest
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"


def test_privacy_accounting_doc_examples():
    results = doctest.testfile(
        str(DOCS / "privacy_accounting.md"),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, "document lost its doctest examples"
    assert results.failed == 0


def test_public_modules_have_docstrings():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        from check_docstrings import modules_missing_docstrings
    finally:
        sys.path.pop(0)
    missing = modules_missing_docstrings()
    assert not missing, f"modules missing docstrings: {missing}"


def test_docs_exist_and_reference_entry_points():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    architecture = (DOCS / "architecture.md").read_text(encoding="utf-8")
    assert "UldpAvg" in readme and "quickstart" in readme.lower()
    assert "engine" in readme
    assert "repro.core" in architecture and "Protocol 1" in architecture
    assert "bench_engine_speedup" in architecture
