"""The numeric planner: predictions, rendering, capacity inversion."""

import pytest

from repro.api.spec import RunSpec
from repro.cost.planner import CostError, predict, solve_max_users
from repro.cost.workload import resolve_dim

TRAIN_TREE = {
    "name": "planner-train",
    "rounds": 3,
    "dataset": {"users": 100, "silos": 5, "records": 4000},
    "method": {"name": "uldp-avg-w", "local_epochs": 2},
}


def _spec(**extra) -> RunSpec:
    return RunSpec.from_dict({**TRAIN_TREE, **extra})


class TestPredict:
    def test_train_report_totals(self):
        report = predict(_spec())
        assert report.family == "dense"
        assert report.rounds == 3
        assert report.round_totals["seconds"] > 0
        dim = resolve_dim(_spec())
        # Dense uncompressed wire: 8 bytes/param to/from every silo.
        assert report.round_totals["uplink_bytes"] == 5 * 8 * dim
        assert report.round_totals["downlink_bytes"] == 5 * 8 * dim
        assert report.run_totals["uplink_bytes"] == 3 * 5 * 8 * dim
        # Memory is resident, not cumulative: run total == round total.
        assert report.run_totals["memory_bytes"] == report.round_totals[
            "memory_bytes"
        ]

    def test_secure_fast_report_has_crypto_phases(self):
        report = predict(
            _spec(
                method={"name": "secure-uldp-avg"},
                crypto={"backend": "fast", "paillier_bits": 512},
            )
        )
        names = [ph.name for ph in report.phases]
        assert "keygen" in names and "silo_weighted_encryption" in names
        assert report.setup_totals["seconds"] > 0
        dim = resolve_dim(_spec())
        assert report.round_totals["cipher_elements"] == 5 * dim
        assert report.round_totals["uplink_bytes"] == 5 * dim * 128

    def test_simulation_spec_priced(self):
        report = predict(
            RunSpec.from_dict(
                {
                    "name": "sim",
                    "sim": {"scenario": "ideal-sync", "scale": "smoke"},
                }
            )
        )
        assert report.family == "sim"
        assert report.round_totals["seconds"] > 0

    def test_render_mentions_each_phase(self):
        report = predict(_spec())
        text = report.render()
        for ph in report.phases:
            assert ph.name in text
        assert "total (run, T=3)" in text

    def test_unknown_dataset_raises_cost_error(self):
        spec = _spec(dataset={"name": "synthetic", "users": 8, "silos": 2})
        with pytest.raises(CostError, match="synthetic"):
            predict(spec)


class TestSolveMaxUsers:
    def test_budget_is_respected_and_tight(self):
        """max_users is the largest count within budget, holding
        records-per-user (here 4000/100 = 40) fixed as users scale."""
        budget = 5.0
        answer = solve_max_users(_spec(), budget_seconds=budget)
        u = answer.max_users
        assert u >= 1

        def round_seconds(users: int) -> float:
            spec = _spec(
                dataset={**TRAIN_TREE["dataset"], "users": users,
                         "records": 40 * users}
            )
            return predict(spec).round_totals["seconds"]

        assert round_seconds(u) <= budget
        assert round_seconds(u + 1) > budget

    def test_monotone_in_budget(self):
        small = solve_max_users(_spec(), budget_seconds=1.0).max_users
        large = solve_max_users(_spec(), budget_seconds=10.0).max_users
        assert small < large

    def test_binding_budget_is_the_minimum(self):
        answer = solve_max_users(
            _spec(), budget_seconds=10.0, budget_memory_bytes=1e6
        )
        assert answer.max_users == min(answer.per_budget.values())
        assert set(answer.per_budget) == {"round_seconds", "memory_bytes"}

    def test_budgets_fall_back_to_cost_section(self):
        spec = _spec(cost={"budget_seconds": 5.0})
        explicit = solve_max_users(_spec(), budget_seconds=5.0)
        from_spec = solve_max_users(spec)
        assert from_spec.max_users == explicit.max_users

    def test_no_budget_raises(self):
        with pytest.raises(CostError, match="no budget"):
            solve_max_users(_spec())

    def test_render_marks_binding_budget(self):
        answer = solve_max_users(
            _spec(), budget_seconds=10.0, budget_memory_bytes=1e6
        )
        assert "<- binding" in answer.render()
