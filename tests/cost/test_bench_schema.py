"""The bench-file schema contract (repro.cost.bench_schema)."""

import math
from pathlib import Path

import pytest

from repro.cost.bench_schema import (
    BENCH_SCHEMA,
    validate_bench_file,
    validate_bench_tree,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def good_tree() -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "host": {
            "cpu_count": 8,
            "platform": "Linux",
            "python": "3.12.0",
            "timestamp": "2026-01-01T00:00:00+00:00",
        },
        "some_section": {"seconds": 1.5, "label": "x", "counts": [1, 2]},
    }


class TestValidateTree:
    def test_good_tree_passes(self):
        assert validate_bench_tree(good_tree()) == []

    def test_wrong_schema_tag(self):
        tree = dict(good_tree(), schema="uldp-fl-bench/v0")
        assert any("schema" in p for p in validate_bench_tree(tree))

    def test_missing_host_field(self):
        tree = good_tree()
        del tree["host"]["cpu_count"]
        assert any("cpu_count" in p for p in validate_bench_tree(tree))

    def test_nan_leaf_rejected(self):
        tree = good_tree()
        tree["some_section"]["seconds"] = math.nan
        problems = validate_bench_tree(tree)
        assert any("non-finite" in p for p in problems)

    def test_bool_cpu_count_rejected(self):
        tree = good_tree()
        tree["host"]["cpu_count"] = True
        assert any("cpu_count" in p for p in validate_bench_tree(tree))

    def test_no_sections_rejected(self):
        tree = good_tree()
        del tree["some_section"]
        assert any("no result sections" in p for p in validate_bench_tree(tree))

    def test_non_table_root(self):
        assert validate_bench_tree([1, 2]) != []


class TestCommittedFiles:
    """Every committed BENCH_*.json is valid calibration input."""

    @pytest.mark.parametrize(
        "path", sorted(REPO_ROOT.glob("BENCH_*.json")), ids=lambda p: p.name
    )
    def test_committed_file_valid(self, path):
        assert validate_bench_file(path) == []

    def test_bench_corpus_present(self):
        # The calibration corpus the cost model is fitted from.
        names = {p.name for p in REPO_ROOT.glob("BENCH_*.json")}
        assert {
            "BENCH_engine.json",
            "BENCH_protocol.json",
            "BENCH_compression.json",
            "BENCH_scaleout.json",
            "BENCH_sim.json",
        } <= names


def _load_bench_conftest():
    # Load by explicit path: a bare ``import conftest`` would collide
    # with whichever conftest.py pytest imported first in a full run.
    import importlib.util

    path = REPO_ROOT / "benchmarks" / "conftest.py"
    spec = importlib.util.spec_from_file_location("bench_conftest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestWriterRejectsBadTrees:
    def test_write_bench_json_refuses_nan(self, tmp_path, monkeypatch):
        bench_conftest = _load_bench_conftest()
        monkeypatch.setattr(bench_conftest, "RESULTS_DIR", tmp_path)
        with pytest.raises(ValueError, match="non-finite"):
            bench_conftest.write_bench_json(
                "BENCH_x.json", {"section": {"seconds": math.inf}}
            )
        assert not (tmp_path / "BENCH_x.json").exists()

    def test_write_bench_json_accepts_good_tree(self, tmp_path, monkeypatch):
        bench_conftest = _load_bench_conftest()
        monkeypatch.setattr(bench_conftest, "RESULTS_DIR", tmp_path)
        path = bench_conftest.write_bench_json(
            "BENCH_x.json", {"section": {"seconds": 1.0}}
        )
        assert validate_bench_file(path) == []
