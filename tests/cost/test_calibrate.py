"""Calibration: fitting, persistence round-trip, and the drift gate."""

import json
from pathlib import Path

import pytest

from repro.cost.calibrate import (
    DEFAULT_CALIBRATION_PATH,
    Calibration,
    CalibrationError,
    byte_check_rows,
    drift_rows,
    fit_calibration,
    load_benches,
    load_calibration,
)
from repro.cost.model import CONSTANT_DEFS

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def committed() -> Calibration:
    return load_calibration()


@pytest.fixture(scope="module")
def benches() -> dict:
    return load_benches(REPO_ROOT)


class TestFit:
    def test_refit_reproduces_committed_constants(self, committed):
        """Fitting from the committed benches is deterministic and matches
        the committed calibration.json (the CI drift gate's baseline)."""
        fresh, groups = fit_calibration(REPO_ROOT)
        assert set(fresh.constants) == set(committed.constants)
        for name, value in committed.constants.items():
            assert fresh.constants[name] == pytest.approx(value, rel=1e-9), name
        assert groups  # at least one fit group contributed

    def test_every_constant_is_registered(self, committed):
        for name in committed.constants:
            assert name in CONSTANT_DEFS

    def test_constants_positive(self, committed):
        for name, value in committed.constants.items():
            assert value >= 0, name


class TestRoundTrip:
    def test_save_load_bit_exact(self, committed, tmp_path):
        out = tmp_path / "calibration.json"
        committed.save(out)
        reloaded = load_calibration(out)
        assert reloaded.constants == committed.constants
        assert reloaded.schema == committed.schema
        # Byte-for-byte stable: saving the reloaded object changes nothing.
        again = tmp_path / "again.json"
        reloaded.save(again)
        assert again.read_bytes() == out.read_bytes()

    def test_committed_file_round_trips(self, committed, tmp_path):
        """The committed calibration.json is exactly what save() writes."""
        out = tmp_path / "calibration.json"
        committed.save(out)
        assert out.read_bytes() == DEFAULT_CALIBRATION_PATH.read_bytes()

    def test_unknown_constant_rejected(self, committed):
        data = committed.to_dict()
        data["constants"]["not_a_constant"] = 1.0
        with pytest.raises(CalibrationError, match="not_a_constant"):
            Calibration.from_dict(data)

    def test_wrong_schema_rejected(self, committed):
        data = dict(committed.to_dict(), schema="cost-calibration/v0")
        with pytest.raises(CalibrationError, match="schema"):
            Calibration.from_dict(data)


class TestDriftGate:
    def test_committed_predictions_within_gate(self, committed, benches):
        rows = drift_rows(committed, benches)
        assert rows
        bad = [r for r in rows if not r["ok"]]
        assert bad == []
        # Gated rows dominate: the gate is not vacuously green.
        assert sum(r["gated"] for r in rows) >= len(rows) // 2

    def test_byte_formulas_match_benches_exactly(self, benches):
        rows = byte_check_rows(benches)
        assert rows
        for row in rows:
            assert row["ok"], row
            assert row["predicted"] == row["measured"], row

    def test_missing_bench_dir_raises(self, tmp_path):
        with pytest.raises(CalibrationError):
            load_benches(tmp_path)


class TestCheckerScripts:
    """The CI entry points exercise the same code paths and exit 0."""

    def test_check_bench_schema_main(self, capsys):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_bench_schema", REPO_ROOT / "tools" / "check_bench_schema.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert mod.main([]) == 0
        assert "conform" in capsys.readouterr().out

    def test_check_cost_drift_main(self, capsys, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_cost_drift", REPO_ROOT / "tools" / "check_cost_drift.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        report = tmp_path / "report.json"
        assert mod.main(["--report", str(report)]) == 0
        assert "within 2x" in capsys.readouterr().out
        payload = json.loads(report.read_text())
        assert payload["failures"] == 0
        assert payload["predictions"] and payload["byte_checks"]
