"""CLI surface of the cost model: `repro cost` and sweep cost pruning."""

from pathlib import Path

import pytest

from repro.api.spec import RunSpec, SpecError
from repro.api.sweep import run_sweep
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIG05 = str(REPO_ROOT / "examples" / "specs" / "fig05.toml")

SMALL = """
name = "cost-cli"
rounds = 2

[dataset]
users = 8
silos = 2
records = 120

[method]
name = "uldp-avg-w"
local_epochs = 1
"""


@pytest.fixture
def config(tmp_path):
    path = tmp_path / "run.toml"
    path.write_text(SMALL)
    return str(path)


class TestCostCommand:
    def test_fig05_prediction(self, capsys):
        """The acceptance-criteria invocation prints the per-phase table."""
        assert main(["cost", "--config", FIG05]) == 0
        out = capsys.readouterr().out
        assert "family=cnn" in out
        assert "local_train" in out
        assert "total (run, T=3)" in out
        for column in ("seconds", "uplink", "downlink", "ciphertexts", "memory"):
            assert column in out

    def test_set_overrides_reach_the_model(self, config, capsys):
        assert main(["cost", "--config", config]) == 0
        base = capsys.readouterr().out
        assert main([
            "cost", "--config", config, "--set", "dataset.records=240",
        ]) == 0
        doubled = capsys.readouterr().out
        assert base != doubled

    def test_solve_for_users(self, config, capsys):
        assert main([
            "cost", "--config", config,
            "--solve-for", "users", "--budget-seconds", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "max users per round within budget" in out
        assert "round_seconds" in out

    def test_solve_without_budget_fails_cleanly(self, config, capsys):
        assert main(["cost", "--config", config, "--solve-for", "users"]) == 2
        assert "no budget" in capsys.readouterr().err

    def test_unknown_set_path_suggests(self, config, capsys):
        assert main([
            "cost", "--config", config, "--set", "dataset.user=9",
        ]) == 2
        assert "dataset.users" in capsys.readouterr().err

    def test_unpriceable_dataset_fails_cleanly(self, config, capsys):
        assert main([
            "cost", "--config", config, "--set", "dataset.name=synthetic",
        ]) == 2
        assert "synthetic" in capsys.readouterr().err


SWEEP_TREE = {
    "name": "prune-sweep",
    "rounds": 1,
    "eval_every": 1,
    "dataset": {"users": 8, "silos": 2, "records": 120},
    "method": {"name": "uldp-avg-w", "local_epochs": 1},
    "sweep": {"dataset.records": [60, 120, 2400]},
}


class TestSweepPruning:
    def test_over_budget_points_skipped(self):
        sweep = run_sweep(
            RunSpec.from_dict(SWEEP_TREE), prune_cost_seconds=0.5
        )
        assert [p.point.spec.dataset.records for p in sweep.pruned] == [2400]
        assert [p.spec.dataset.records for p in sweep.points] == [60, 120]
        assert sweep.pruned[0].metric == "run_seconds"
        assert sweep.pruned[0].predicted > 0.5

    def test_surviving_points_identical_to_unpruned(self):
        """Pruning only removes points; survivors are bit-identical."""
        pruned = run_sweep(
            RunSpec.from_dict(SWEEP_TREE), prune_cost_seconds=0.5
        )
        unpruned = run_sweep(
            RunSpec.from_dict(
                {**SWEEP_TREE, "sweep": {"dataset.records": [60, 120]}}
            )
        )
        assert [r.spec_hash for r in pruned.results] == [
            r.spec_hash for r in unpruned.results
        ]
        for a, b in zip(pruned.results, unpruned.results):
            assert a.history.final.metric == b.history.final.metric
            assert a.history.final.loss == b.history.final.loss

    def test_all_points_pruned_is_an_error(self):
        with pytest.raises(SpecError, match="removed all"):
            run_sweep(RunSpec.from_dict(SWEEP_TREE), prune_cost_bytes=1.0)

    def test_cli_logs_pruned_points(self, tmp_path, capsys):
        path = tmp_path / "sweep.toml"
        path.write_text(
            SMALL
            + '\n[sweep]\n"dataset.records" = [60, 120, 2400]\n'
        )
        assert main([
            "sweep", "--config", str(path),
            "--set", "rounds=1",
            "--prune-cost-seconds", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "cost pruning skipped 1 grid point(s)" in out
        assert "dataset.records=2400" in out
        assert "run_seconds" in out
