"""Symbolic invariants of the cost model (repro.cost.model).

These pin the *structure* of the expressions: monotonicity in the
workload symbols, exact agreement of the wire-byte formulas with the
runtime implementations they mirror, and the documented masked-vs-
Paillier payload ratio.
"""

import pytest
import sympy as sp

from repro.api.spec import RunSpec
from repro.compress import CompressionSpec
from repro.cost import model as M
from repro.cost.calibrate import load_calibration
from repro.cost.model import (
    build_cost_model,
    ciphertext_bytes_expr,
    keep_count_expr,
    mask_bytes_expr,
    payload_bytes_expr,
)

#: Baseline numeric point every monotonicity probe perturbs.
BASE = {
    M.USERS: 100,
    M.SILOS: 5,
    M.DIM: 4130,
    M.RECORDS_PER_USER: 40,
    M.EPOCHS: 2,
    M.FEATURES: 30,
    M.ROUNDS: 5,
    M.KEY_BITS: 512,
    M.MASK_BITS: 256,
    M.POPULATION: 100,
    M.PARTICIPATION: 1.0,
}


def _spec(tree=None) -> RunSpec:
    base = {"dataset": {"users": 100, "silos": 5, "records": 4000}}
    base.update(tree or {})
    return RunSpec.from_dict(base)


def _run_seconds(spec: RunSpec):
    model = build_cost_model(spec)
    return model.run_total("seconds").subs(load_calibration().symbol_subs())


class TestMonotonicity:
    """More work can never be predicted cheaper."""

    def probe(self, expr, symbol, lo, hi):
        a = float(sp.N(expr.subs({**BASE, symbol: lo})))
        b = float(sp.N(expr.subs({**BASE, symbol: hi})))
        assert 0 < a < b, f"{symbol}: {a} !< {b}"

    def test_seconds_monotone_in_users(self):
        expr = _run_seconds(_spec())
        self.probe(expr, M.USERS, 100, 1000)

    def test_seconds_monotone_in_dim(self):
        expr = _run_seconds(_spec())
        self.probe(expr, M.DIM, 100, 10_000)

    def test_secure_monotone_in_silos(self):
        # fast and masked backends do per-silo crypto work; the reference
        # backend's seconds are per-user (one exponentiation per
        # user-coordinate), so for it the silo count moves the wire bytes.
        for backend in ("fast", "masked"):
            expr = _run_seconds(
                _spec(
                    {
                        "method": {"name": "secure-uldp-avg"},
                        "crypto": {"backend": backend},
                    }
                )
            )
            self.probe(expr, M.SILOS, 5, 50)
        reference = build_cost_model(
            _spec(
                {
                    "method": {"name": "secure-uldp-avg"},
                    "crypto": {"backend": "reference"},
                }
            )
        )
        self.probe(reference.run_total("uplink_bytes"), M.SILOS, 5, 50)

    def test_secure_seconds_monotone_in_key_bits(self):
        expr = _run_seconds(
            _spec(
                {
                    "method": {"name": "secure-uldp-avg"},
                    "crypto": {"backend": "fast"},
                }
            )
        )
        self.probe(expr, M.KEY_BITS, 512, 3072)

    def test_uplink_monotone_in_dim(self):
        model = build_cost_model(_spec({"compression": {"sparsify": "topk"}}))
        self.probe(model.run_total("uplink_bytes"), M.DIM, 100, 10_000)


class TestExactWireFormulas:
    """The symbolic byte formulas mirror the runtime implementations."""

    def test_identity_compression_reduces_to_dense(self):
        # CompressionSpec.none() must collapse *exactly* to the
        # uncompressed expression -- same sympy expr, not just same value.
        assert sp.simplify(
            payload_bytes_expr(CompressionSpec.none()) - payload_bytes_expr(None)
        ) == 0
        assert payload_bytes_expr(None) == 8 * M.DIM
        assert keep_count_expr(CompressionSpec.none()) == M.DIM

    def test_payload_bytes_matches_runtime(self):
        specs = [
            CompressionSpec.none(),
            CompressionSpec(sparsify="topk", fraction=0.05),
            CompressionSpec(sparsify="randk", fraction=0.01),
            CompressionSpec(sparsify="topk", fraction=0.1, quantize_bits=8),
            CompressionSpec(quantize_bits=4),
        ]
        for comp in specs:
            for dim in (1, 7, 65, 4130, 19162):
                expected = comp.payload_bytes(dim)
                got = int(payload_bytes_expr(comp).subs({M.DIM: dim}))
                assert got == expected, (comp, dim)
                assert int(
                    keep_count_expr(comp).subs({M.DIM: dim})
                ) == comp.keep_count(dim)

    def test_ciphertext_bytes(self):
        assert int(ciphertext_bytes_expr().subs({M.KEY_BITS: 512})) == 128
        assert int(ciphertext_bytes_expr().subs({M.KEY_BITS: 3072})) == 768

    def test_masked_vs_paillier_24x_ratio(self):
        """docs/secure_aggregation.md: at 3072-bit keys a Paillier
        ciphertext (768 B) is 24x a 256-bit mask field element (32 B)."""
        cipher = ciphertext_bytes_expr().subs({M.KEY_BITS: 3072})
        mask = mask_bytes_expr().subs({M.MASK_BITS: 256})
        assert int(mask) == 32
        assert sp.Rational(cipher, mask) == 24


class TestModelStructure:
    def test_phase_lookup_and_constants(self):
        model = build_cost_model(
            _spec(
                {
                    "method": {"name": "secure-uldp-avg"},
                    "crypto": {"backend": "fast"},
                }
            )
        )
        assert model.backend == "fast"
        assert model.phase("keygen").per == "setup"
        used = model.constants_used()
        assert "paillier_keygen" in used
        assert "masked_setup" not in used
        for name in used:
            assert name in M.CONSTANT_DEFS

    def test_memory_totals_take_max_not_sum(self):
        model = build_cost_model(
            _spec(
                {
                    "method": {"name": "secure-uldp-avg"},
                    "crypto": {"backend": "masked"},
                }
            )
        )
        total = model.total("memory_bytes")
        parts = [
            ph.memory_bytes for ph in model.phases if ph.memory_bytes != 0
        ]
        assert len(parts) > 1
        point = {**BASE, M.PARTICIPATION: 1}
        assert float(sp.N(total.subs(point))) == max(
            float(sp.N(p.subs(point))) for p in parts
        )

    def test_run_total_is_setup_plus_rounds_times_round(self):
        model = build_cost_model(_spec())
        lhs = model.run_total("seconds")
        rhs = model.total("seconds", "setup") + M.ROUNDS * model.total(
            "seconds", "round"
        )
        assert sp.simplify(lhs - rhs) == 0

    def test_network_phase_only_with_cost_bandwidth(self):
        plain = build_cost_model(_spec())
        assert all(ph.name != "network" for ph in plain.phases)
        wired = build_cost_model(_spec({"cost": {"bandwidth_mbps": 100.0}}))
        net = wired.phase("network")
        seconds = net.seconds.subs(
            {**BASE, M.BANDWIDTH: 100e6 / 8, M.RETRY: 0.0}
        )
        # 100 Mbit/s moving the dense round traffic: bytes / (bytes/s).
        round_bytes = (
            wired.total("uplink_bytes", "round")
            + wired.total("downlink_bytes", "round")
        ).subs(BASE)
        assert float(seconds) == pytest.approx(
            float(round_bytes) / (100e6 / 8), rel=1e-12
        )
