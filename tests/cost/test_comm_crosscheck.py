"""Predicted wire bytes == the TrainingHistory byte ledger, exactly.

The cost model's byte formulas claim to mirror the runtime's accounting
bit for bit; this runs a tiny training job for every method x backend x
compression combination and compares each round's ledger entry to the
planner's per-round totals.  Also pins the broadcast-downlink semantics:
downlink goes to every silo that received the round-start broadcast,
not just the silos whose upload survived.
"""

import numpy as np
import pytest

from repro.api.runner import run
from repro.api.spec import RunSpec
from repro.core.methods import UldpAvg
from repro.core.weighting import RoundParticipation
from repro.cost.planner import predict
from repro.data import build_creditcard_benchmark
from repro.nn.model import build_tiny_mlp

TINY = {
    "name": "crosscheck",
    "rounds": 2,
    "eval_every": 2,
    "dataset": {"users": 8, "silos": 2, "records": 120, "test_records": 40},
    "method": {"local_epochs": 1},
}


def ledger_matches_prediction(tree: dict) -> None:
    spec = RunSpec.from_dict(tree)
    report = predict(spec)
    history = run(spec).history
    assert len(history.comm) == tree["rounds"]
    for record in history.comm:
        assert record.uplink_bytes == int(report.round_totals["uplink_bytes"]), (
            record,
            report.round_totals,
        )
        assert record.downlink_bytes == int(
            report.round_totals["downlink_bytes"]
        ), (record, report.round_totals)


class TestPlaintextMethods:
    @pytest.mark.parametrize(
        "method",
        ["default", "uldp-naive", "uldp-group", "uldp-sgd", "uldp-avg",
         "uldp-avg-w"],
    )
    def test_dense_ledger(self, method):
        ledger_matches_prediction(
            {**TINY, "method": {"name": method, "local_epochs": 1}}
        )


class TestCompression:
    @pytest.mark.parametrize(
        "compression",
        [
            {"sparsify": "topk", "fraction": 0.05},
            {"sparsify": "randk", "fraction": 0.1, "error_feedback": True},
            {"sparsify": "topk", "fraction": 0.1, "quantize_bits": 8},
            {"quantize_bits": 4},
            {"sparsify": "topk", "fraction": 0.05, "downlink": True},
        ],
        ids=["topk", "randk-ef", "topk-q8", "q4-dense", "topk-downlink"],
    )
    def test_compressed_ledger(self, compression):
        ledger_matches_prediction(
            {
                **TINY,
                "method": {"name": "uldp-avg-w", "local_epochs": 1},
                "compression": compression,
            }
        )


class TestSecureBackends:
    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_paillier_ledger(self, backend):
        # rand-k keeps the ciphertext count small enough to actually
        # encrypt in a test; 256-bit keys are the protocol's test tier.
        ledger_matches_prediction(
            {
                **TINY,
                "method": {"name": "secure-uldp-avg", "local_epochs": 1},
                "crypto": {"backend": backend, "paillier_bits": 256},
                "compression": {"sparsify": "randk", "fraction": 0.01},
            }
        )

    def test_masked_ledger(self):
        ledger_matches_prediction(
            {
                **TINY,
                "method": {"name": "secure-uldp-avg", "local_epochs": 1},
                "crypto": {"backend": "masked"},
            }
        )


class TestBroadcastRecipients:
    """Downlink is charged to broadcast recipients, not contributors."""

    def _prepared(self):
        fed = build_creditcard_benchmark(
            n_users=10, n_silos=3, n_records=300, n_test=60, seed=0
        )
        method = UldpAvg(local_epochs=1, noise_multiplier=0.0)
        model = build_tiny_mlp(fed.test_x.shape[1], 8, 2, np.random.default_rng(1))
        method.prepare(fed, model, np.random.default_rng(0))
        return method, model.get_flat_params()

    def test_deadline_miss_still_consumes_downlink(self):
        method, params = self._prepared()
        dense = params.size * 8
        participation = RoundParticipation(
            silo_mask=np.array([True, False, False]),
            broadcast_mask=np.array([True, True, False]),
        )
        method.round(0, params, participation=participation)
        # One contributor's uplink; two silos fetched the broadcast.
        assert method.last_comm.uplink_bytes == 1 * dense
        assert method.last_comm.downlink_bytes == 2 * dense

    def test_all_down_round_still_charges_broadcast(self):
        method, params = self._prepared()
        dense = params.size * 8
        participation = RoundParticipation(
            silo_mask=np.array([False, False, False]),
            broadcast_mask=np.array([True, True, False]),
        )
        method.round(0, params, participation=participation)
        assert method.last_comm.uplink_bytes == 0
        assert method.last_comm.downlink_bytes == 2 * dense

    def test_without_broadcast_mask_recipients_default_to_contributors(self):
        method, params = self._prepared()
        dense = params.size * 8
        participation = RoundParticipation(
            silo_mask=np.array([True, True, False])
        )
        method.round(0, params, participation=participation)
        assert method.last_comm.downlink_bytes == 2 * dense
