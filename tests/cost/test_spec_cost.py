"""The [cost] spec section: validation, hash invariance, overrides."""

import pytest

from repro.api.spec import RunSpec, SpecError, apply_overrides

BASE = {
    "name": "priced-spec",
    "dataset": {"users": 20, "silos": 2, "records": 200},
}


class TestHashInvariance:
    def test_cost_section_never_changes_the_spec_hash(self):
        """[cost] is an observer's annotation, like [obs]: two runs that
        differ only in cost budgets are the same experiment."""
        plain = RunSpec.from_dict(BASE)
        priced = RunSpec.from_dict(
            {**BASE, "cost": {"budget_seconds": 30.0, "bandwidth_mbps": 100.0}}
        )
        assert priced.hash() == plain.hash()
        assert "cost" not in plain.canonical_json()

    def test_to_dict_round_trips_cost(self):
        tree = {**BASE, "cost": {"budget_uplink_bytes": 1e6, "retry_overhead": 0.1}}
        spec = RunSpec.from_dict(tree)
        assert spec.cost.budget_uplink_bytes == 1e6
        assert spec.cost.retry_overhead == 0.1
        again = RunSpec.from_dict(spec.to_dict())
        assert again.cost == spec.cost
        assert again.hash() == spec.hash()


class TestValidation:
    def test_negative_budget_rejected(self):
        with pytest.raises(SpecError, match="budget_seconds"):
            RunSpec.from_dict({**BASE, "cost": {"budget_seconds": -1.0}})

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(SpecError, match="bandwidth_mbps"):
            RunSpec.from_dict({**BASE, "cost": {"bandwidth_mbps": 0.0}})

    def test_negative_retry_rejected(self):
        with pytest.raises(SpecError, match="retry_overhead"):
            RunSpec.from_dict({**BASE, "cost": {"retry_overhead": -0.5}})

    def test_unknown_cost_key_suggests(self):
        with pytest.raises(SpecError, match="budget_seconds"):
            RunSpec.from_dict({**BASE, "cost": {"budget_secs": 5.0}})


class TestOverrides:
    def test_dotted_path_sets_cost_budget(self):
        tree = apply_overrides(dict(BASE), {"cost.budget_seconds": 12.5})
        spec = RunSpec.from_dict(tree)
        assert spec.cost.budget_seconds == 12.5

    def test_typo_in_cost_path_suggests(self):
        with pytest.raises(SpecError, match="cost.budget_seconds"):
            apply_overrides(dict(BASE), {"cost.budget_second": 12.5})
