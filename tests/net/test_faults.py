"""Fault-plan unit tests: parsing, determinism, and resume-safety.

The key property: every draw is a pure function of ``(seed, silo,
round)`` -- a killed and restarted silo process replays the identical
fault schedule, which is what keeps chaos runs resumable.
"""

import pytest

from repro.net.faults import ACTIONS, FaultEvent, FaultPlan


class TestFromTree:
    def test_empty_tree_is_ideal(self):
        assert FaultPlan.from_tree({}).is_ideal
        assert FaultPlan.from_tree(None).is_ideal

    def test_round_shorthand_equals_unit_window(self):
        short = FaultPlan.from_tree(
            {"events": [{"silo": 2, "action": "timeout", "round": 1}]}
        )
        window = FaultPlan.from_tree(
            {"events": [{"silo": 2, "action": "timeout",
                         "start": 1, "stop": 2}]}
        )
        assert short.events == window.events
        assert not short.is_ideal

    def test_rejects_round_and_window_together(self):
        with pytest.raises(ValueError, match=r"events\[0\]: give either"):
            FaultPlan.from_tree(
                {"events": [{"silo": 0, "action": "decline",
                             "round": 1, "stop": 3}]}
            )

    def test_rejects_event_without_rounds(self):
        with pytest.raises(ValueError, match=r"events\[0\]: needs round"):
            FaultPlan.from_tree(
                {"events": [{"silo": 0, "action": "decline"}]}
            )

    def test_rejects_unknown_plan_key(self):
        with pytest.raises(ValueError, match="unknown fault-plan key"):
            FaultPlan.from_tree({"drop_rat": 0.1})

    def test_rejects_unknown_event_key(self):
        with pytest.raises(ValueError, match=r"events\[1\]: unknown key"):
            FaultPlan.from_tree(
                {"events": [
                    {"silo": 0, "action": "decline", "round": 0},
                    {"silo": 1, "action": "decline", "round": 0,
                     "duration": 2},
                ]}
            )

    def test_rejects_unknown_action_with_the_valid_set(self):
        with pytest.raises(ValueError, match="action must be one of"):
            FaultPlan.from_tree(
                {"events": [{"silo": 0, "action": "explode", "round": 0}]}
            )

    def test_rejects_bad_windows_and_rates(self):
        with pytest.raises(ValueError, match="start < stop"):
            FaultEvent(silo=0, action="decline", start=3, stop=3)
        with pytest.raises(ValueError, match="silo must be non-negative"):
            FaultEvent(silo=-1, action="decline", start=0, stop=1)
        with pytest.raises(ValueError, match="drop_rate"):
            FaultPlan(drop_rate=1.0)  # certain failure is not chaos

    def test_tree_round_trips(self):
        plan = FaultPlan.from_tree({
            "events": [
                {"silo": 2, "action": "timeout", "round": 1, "value": 3.0},
                {"silo": 0, "action": "partition", "start": 0, "stop": 2},
            ],
            "drop_rate": 0.25,
            "seed": 7,
        })
        again = FaultPlan.from_tree(plan.to_tree())
        assert again.events == plan.events
        assert again.drop_rate == plan.drop_rate
        assert again.seed == plan.seed


class TestSchedule:
    def test_events_for_honours_the_half_open_window(self):
        plan = FaultPlan(events=(
            FaultEvent(silo=1, action="delay", start=2, stop=4, value=0.5),
        ))
        assert plan.events_for(1, 1) == []
        assert len(plan.events_for(1, 2)) == 1
        assert len(plan.events_for(1, 3)) == 1
        assert plan.events_for(1, 4) == []
        assert plan.events_for(0, 3) == []  # other silos untouched

    def test_drops_is_a_pure_function_of_seed_silo_round(self):
        one = FaultPlan(drop_rate=0.5, seed=3)
        two = FaultPlan(drop_rate=0.5, seed=3)  # a "restarted process"
        schedule = [(s, t, one.drops(s, t))
                    for s in range(4) for t in range(20)]
        assert schedule == [(s, t, two.drops(s, t))
                            for s in range(4) for t in range(20)]

    def test_different_seeds_differ(self):
        a = FaultPlan(drop_rate=0.5, seed=0)
        b = FaultPlan(drop_rate=0.5, seed=1)
        draws_a = [a.drops(s, t) for s in range(4) for t in range(32)]
        draws_b = [b.drops(s, t) for s in range(4) for t in range(32)]
        assert draws_a != draws_b

    def test_zero_rate_never_drops(self):
        plan = FaultPlan(drop_rate=0.0, seed=9)
        assert not any(plan.drops(s, t)
                       for s in range(4) for t in range(50))

    def test_rate_is_roughly_honoured(self):
        plan = FaultPlan(drop_rate=0.3, seed=5)
        draws = [plan.drops(s, t) for s in range(10) for t in range(100)]
        assert 0.2 < sum(draws) / len(draws) < 0.4

    def test_action_vocabulary_is_stable(self):
        # The docs and spec files name these literally; renaming one is a
        # breaking change that must be deliberate.
        assert ACTIONS == ("decline", "timeout", "delay", "duplicate",
                           "corrupt", "crash", "partition")
