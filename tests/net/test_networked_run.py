"""Networked-runtime oracle tests (server + silo clients in threads).

The acceptance criterion for ``repro.net``: a run over real sockets on an
ideal network is **bit-identical** to the in-process
:class:`FederationSimulator` -- same params, records, participation,
comm ledger, and round log.  Fault-injected runs are then compared
against in-process simulations with the equivalent dropout pattern, so
even the chaos paths have exact oracles.

Silos run as threads (not processes) here: the engine walks silos
serially, so threads are safe, and a single process keeps these tests
fast.  Real multi-process chaos lives in ``test_chaos.py``.
"""

import threading

import numpy as np
import pytest

from repro.api import RunSpec
from repro.api.runner import build_simulator
from repro.core.weighting import QuorumError
from repro.net.server import FederationServer
from repro.net.silo_client import SiloClient


def networked(tree, n_silos=3):
    """Serve ``tree`` with ``n_silos`` client threads on an OS-assigned
    port; returns ``(server, history, silo_exit_codes, quorum_error)``."""
    server = FederationServer(RunSpec.from_dict(tree))
    port = server.bind()
    codes = {}

    def run_silo(s):
        codes[s] = SiloClient(RunSpec.from_dict(tree), s, port=port).run()

    threads = [
        threading.Thread(target=run_silo, args=(s,), daemon=True)
        for s in range(n_silos)
    ]
    for th in threads:
        th.start()
    hist, err = None, None
    try:
        hist = server.serve()
    except QuorumError as exc:
        err = exc
    for th in threads:
        th.join(timeout=60)
    return server, hist, codes, err


def in_process(tree):
    """The same spec run entirely in-process (the oracle)."""
    sim = build_simulator(
        RunSpec.from_dict({k: v for k, v in tree.items() if k != "net"})
    )
    sim.run()
    return sim


def assert_bit_identical(server, hist, sim):
    assert np.array_equal(server.sim.trainer.params, sim.trainer.params)
    assert hist.records == sim.history.records
    assert hist.participation == sim.history.participation
    assert hist.comm == sim.history.comm
    # Networked rounds that observed a dropout carry an extra
    # silos_observed_down annotation; everything else must match exactly.
    stripped = [
        {k: v for k, v in e.items() if k != "silos_observed_down"}
        for e in server.sim.round_log
    ]
    assert stripped == sim.round_log


def base_tree(**net):
    net.setdefault("port", 0)
    net.setdefault("join_timeout", 20.0)
    net.setdefault("round_timeout", 60.0)
    net.setdefault("ping_timeout", 5.0)
    return {
        "name": "net-oracle",
        "seed": 3,
        "sim": {"scenario": "ideal-sync", "scale": "smoke"},
        "net": net,
    }


class TestIdealNetworkOracle:
    def test_bit_identical_to_in_process_simulator(self):
        tree = base_tree()
        server, hist, codes, err = networked(tree)
        assert err is None
        assert set(codes.values()) == {0}
        assert_bit_identical(server, hist, in_process(tree))

    def test_loop_engine_bit_identical(self):
        # The remote executor hands the loop engine plain per-silo dicts,
        # preserving its summation order exactly.
        tree = base_tree()
        tree["method"] = {"name": "uldp-avg-w", "local_epochs": 1,
                         "engine": "loop"}
        server, hist, codes, err = networked(tree)
        assert err is None and set(codes.values()) == {0}
        assert_bit_identical(server, hist, in_process(tree))

    def test_history_is_spec_stamped(self):
        tree = base_tree()
        _, hist, _, _ = networked(tree)
        from repro.api.spec import spec_hash

        assert hist.spec_hash == spec_hash(RunSpec.from_dict(tree))


class TestFaultOracles:
    def test_decline_fault_matches_outage_simulation(self):
        # "Silo 2 declines round 1" over the network must equal the
        # in-process simulator with the same scripted outage window --
        # the exact-oracle fault (no wall clocks involved).
        tree = base_tree(faults={"events": [
            {"silo": 2, "action": "decline", "round": 1}]})
        server, hist, codes, err = networked(tree)
        assert err is None and set(codes.values()) == {0}
        assert [(p.round, p.silos_seen) for p in hist.participation] == [
            (1, 3), (2, 2), (3, 3)]
        observed = [e.get("silos_observed_down", 0)
                    for e in server.sim.round_log]
        assert observed == [0, 1, 0]
        assert_bit_identical(server, hist, outage_comparator({2: (1, 2)}))

    def test_timeout_fault_becomes_a_dropout(self):
        # Silo 2 sleeps past the 2s round deadline in round index 1: the
        # server must observe a real deadline miss, drop the silo for the
        # round, retry from the snapshot, and still match the outage
        # oracle bit for bit (the aborted attempt leaves no RNG trace).
        tree = base_tree(
            round_timeout=2.0, ping_timeout=2.0,
            faults={"events": [
                {"silo": 2, "action": "timeout", "round": 1, "value": 3.0}]},
        )
        server, hist, codes, err = networked(tree)
        assert err is None
        assert [(p.round, p.silos_seen) for p in hist.participation] == [
            (1, 3), (2, 2), (3, 3)]
        observed = [e.get("silos_observed_down", 0)
                    for e in server.sim.round_log]
        assert observed == [0, 1, 0]
        assert_bit_identical(server, hist, outage_comparator({2: (1, 2)}))

    def test_masked_secure_backend_recovers_networked_dropout(self):
        # A real deadline miss (not a polite decline): the masked
        # backend's dropout recovery must absorb a silo the *network*
        # observed down, not just simulated participation masks.
        tree = base_tree(
            round_timeout=2.0, ping_timeout=2.0,
            faults={"events": [
                {"silo": 1, "action": "timeout", "round": 1, "value": 3.0}]},
        )
        tree["method"] = {"name": "secure-uldp-avg", "local_epochs": 1}
        tree["crypto"] = {"backend": "masked"}
        server, hist, codes, err = networked(tree)
        assert err is None
        assert [(p.round, p.silos_seen) for p in hist.participation] == [
            (1, 3), (2, 2), (3, 3)]
        assert hist.records[-1].epsilon > 0

    def test_quorum_abort_reaches_every_silo(self):
        tree = base_tree(min_quorum=3, faults={"events": [
            {"silo": 0, "action": "decline", "round": 1}]})
        server, hist, codes, err = networked(tree)
        assert hist is None
        assert isinstance(err, QuorumError)
        assert "below net.min_quorum=3" in str(err)
        # The abort was broadcast: every silo exited with the abort code.
        assert set(codes.values()) == {1}


def outage_comparator(windows):
    """In-process simulator matching the smoke ideal-sync scenario with a
    scripted :class:`SiloOutageWindows` dropout -- the exact oracle for
    decline/timeout faults (seed wiring mirrors ``build_scenario``)."""
    from repro.core import UldpAvg
    from repro.data import build_creditcard_benchmark
    from repro.sim import SiloOutageWindows, SimConfig, SyncPolicy
    from repro.sim.scheduler import FederationSimulator

    fed = build_creditcard_benchmark(
        n_users=12, n_silos=3, distribution="zipf", n_records=300,
        n_test=80, seed=3,
    )
    method = UldpAvg(noise_multiplier=5.0, local_epochs=1,
                     weighting="proportional")
    config = SimConfig(rounds=3, seed=4, delta=1e-5, eval_every=1,
                       policy=SyncPolicy(), renorm="none",
                       dropout=SiloOutageWindows(windows))
    sim = FederationSimulator(fed, method, config)
    sim.run()
    return sim
