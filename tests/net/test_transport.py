"""Transport-layer unit tests: backoff schedules, deadlines, stale drains."""

import random
import socket
import time

import pytest

from repro.net.transport import (
    DeadlineExceeded,
    MessageSocket,
    RetryPolicy,
    TransportError,
    connect_with_retry,
)
from repro.net.wire import send_frame


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    ma, mb = MessageSocket(a), MessageSocket(b)
    yield ma, mb
    ma.close()
    mb.close()


class TestRetryPolicy:
    def test_schedule_is_deterministic_given_the_rng(self):
        policy = RetryPolicy(retries=6, base_delay=0.1, max_delay=2.0,
                             jitter=0.5)
        one = list(policy.delays(random.Random(42)))
        two = list(policy.delays(random.Random(42)))
        assert one == two
        assert len(one) == 6

    def test_delays_grow_then_cap(self):
        policy = RetryPolicy(retries=8, base_delay=0.1, max_delay=2.0,
                             jitter=0.0)
        delays = list(policy.delays(random.Random(0)))
        assert delays[:5] == [0.1, 0.2, 0.4, 0.8, 1.6]
        assert delays[5:] == [2.0, 2.0, 2.0]

    def test_jitter_bounds(self):
        policy = RetryPolicy(retries=50, base_delay=1.0, max_delay=1.0,
                             jitter=0.5)
        for d in policy.delays(random.Random(7)):
            assert 1.0 <= d < 1.5


class TestConnectWithRetry:
    def test_unreachable_port_raises_after_budget(self):
        # Grab a port the OS just released: nothing listens on it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        policy = RetryPolicy(retries=2, base_delay=0.01, max_delay=0.02)
        with pytest.raises(TransportError, match="could not connect"):
            connect_with_retry("127.0.0.1", port, policy, random.Random(0))

    def test_succeeds_against_a_listener(self):
        server = socket.create_server(("127.0.0.1", 0))
        port = server.getsockname()[1]
        sock = connect_with_retry(
            "127.0.0.1", port, RetryPolicy(retries=0), random.Random(0)
        )
        assert sock.gettimeout() is None  # blocking mode for frame reads
        sock.close()
        server.close()


class TestMessageSocket:
    def test_recv_deadline(self, pair):
        _, mb = pair
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            mb.recv(timeout=0.1)
        assert time.monotonic() - start < 2.0

    def test_socket_usable_after_deadline(self, pair):
        ma, mb = pair
        with pytest.raises(DeadlineExceeded):
            mb.recv(timeout=0.05)
        ma.send("ping", {"round": 0})
        assert mb.recv(timeout=1.0).type == "ping"

    def test_recv_matching_skips_stale_frames(self, pair):
        ma, mb = pair
        ma.send("pong", {"round": 1})  # a late heartbeat from round 1
        ma.send("update", {"round": 1})  # a duplicated old update
        ma.send("update", {"round": 2})
        frame = mb.recv_matching("update", 2, timeout=1.0)
        assert frame.payload["round"] == 2

    def test_recv_matching_gives_up_on_spam(self, pair):
        ma, mb = pair
        for _ in range(MessageSocket.MAX_STALE_FRAMES + 1):
            ma.send("pong", {"round": 0})
        with pytest.raises(TransportError, match="stale frames"):
            mb.recv_matching("update", 5, timeout=1.0)

    def test_recv_matching_deadline_covers_the_drain(self, pair):
        _, mb = pair
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            mb.recv_matching("update", 3, timeout=0.1)
        assert time.monotonic() - start < 2.0

    def test_send_to_closed_peer_raises_transport_error(self, pair):
        ma, mb = pair
        mb.close()
        with pytest.raises(TransportError):
            # The first send may land in the dead buffer; the pipe error
            # surfaces within a couple of writes.
            for _ in range(4):
                ma.send("ping", {"round": 0})

    def test_send_raw_delivers_prepacked_bytes(self, pair):
        # The corrupt-fault hook: bytes pass through untouched.
        from repro.net.wire import pack_frame, recv_frame

        ma, mb = pair
        ma.send_raw(pack_frame("ping", {"round": 7}))
        assert recv_frame(mb.sock).payload["round"] == 7
