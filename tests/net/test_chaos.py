"""Multi-process chaos tests: real ``kill -9``, real crashed silos.

These drive the installed CLI (``repro serve --spawn-silos``) in
subprocesses -- the same invocation the CI net-smoke job and a real
deployment use -- so they cover process boundaries the threaded oracle
tests in ``test_networked_run.py`` cannot: a SIGKILLed server resuming
from its checkpoint, and a silo process dying mid-run via ``os._exit``.

They are the slowest tests in the suite (each ``serve`` spawns four
Python processes); everything is bounded by explicit timeouts so a hang
fails rather than wedges.
"""

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time

REPO_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def write_spec(path, port, extra=""):
    path.write_text(f"""
name = "net-chaos"
seed = 11

[sim]
scenario = "ideal-sync"
scale = "smoke"
checkpoint_dir = "{path.parent / 'ckpt'}"
checkpoint_every = 1

[net]
port = {port}
join_timeout = 30.0
round_timeout = 60.0
ping_timeout = 10.0
{extra}""")


def env():
    return dict(os.environ, PYTHONPATH=REPO_SRC)


def serve(*args, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", "repro", "serve", *args],
        env=env(), capture_output=True, text=True, timeout=timeout,
    )


class TestKillMinusNine:
    def test_sigkilled_server_resumes_bit_identically(self, tmp_path):
        """The tentpole acceptance test: SIGKILL the whole process group
        mid-run, resume from the checkpoint, and the final history JSON
        equals an uninterrupted run's byte for byte."""
        spec = tmp_path / "spec.toml"
        write_spec(spec, free_port())
        ckpt = tmp_path / "ckpt"

        ref = serve("--config", str(spec), "--spawn-silos",
                    "--output", str(tmp_path / "ref.json"))
        assert ref.returncode == 0, ref.stderr[-2000:]

        # Same spec (and port -- the listener sets SO_REUSEADDR, and the
        # output embeds the spec, so it must not change between runs);
        # kill server + spawned silos the moment the first round's
        # checkpoint lands.
        import shutil

        shutil.rmtree(ckpt)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--config", str(spec),
             "--spawn-silos", "--output", str(tmp_path / "never.json")],
            env=env(), start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        state = ckpt / "state.json"
        deadline = time.time() + 180
        killed = False
        try:
            while time.time() < deadline:
                if state.exists():
                    try:
                        meta = json.loads(state.read_text())
                    except json.JSONDecodeError:
                        continue  # mid-write; the atomic rename is coming
                    if meta["state"]["round"] >= 1:
                        os.killpg(proc.pid, signal.SIGKILL)
                        killed = True
                        break
                time.sleep(0.02)
        finally:
            if not killed:
                os.killpg(proc.pid, signal.SIGKILL)
        proc.wait()
        assert killed, "never saw a round-1 checkpoint to kill"
        assert not (tmp_path / "never.json").exists()
        time.sleep(1.0)

        res = serve("--resume", str(ckpt), "--spawn-silos",
                    "--output", str(tmp_path / "resumed.json"))
        assert res.returncode == 0, res.stderr[-2000:]
        assert "resumed from" in res.stdout

        ref_hist = json.loads((tmp_path / "ref.json").read_text())
        resumed = json.loads((tmp_path / "resumed.json").read_text())
        assert resumed == ref_hist


class TestCrashFault:
    def test_crashed_silo_becomes_a_dropout(self, tmp_path):
        """A silo process that dies with ``os._exit`` mid-run (the crash
        fault) is observed as a dropout; the run completes on the
        survivors without operator intervention."""
        spec = tmp_path / "spec.toml"
        write_spec(spec, free_port(), extra="""
[net.faults]
events = [{ silo = 2, action = "crash", round = 1 }]
""")
        res = serve("--config", str(spec), "--spawn-silos",
                    "--output", str(tmp_path / "out.json"))
        assert res.returncode == 0, res.stderr[-2000:]

        (hist,) = json.loads((tmp_path / "out.json").read_text())
        part = [(p["round"], p["silos_seen"]) for p in hist["participation"]]
        # Silo 2 crashes when round index 1's frame arrives and never
        # comes back; rounds 2 and 3 run with the two survivors.
        assert part == [(1, 3), (2, 2), (3, 2)]
        assert len(hist["records"]) == 3
