"""[net] spec-section tests: validation messages and hash-stable round-trips.

The handshake rejects a silo whose spec hash differs from the server's,
so the [net] section (fault plan included) must survive every
serialisation path -- dict, TOML file, checkpoint JSON -- with an
identical hash.
"""

import pytest

from repro.api import RunSpec
from repro.api.spec import SpecError, spec_hash


def net_tree(**net):
    base = {
        "name": "net-spec-test",
        "seed": 3,
        "sim": {"scenario": "ideal-sync", "scale": "smoke"},
        "net": net,
    }
    return base


class TestValidation:
    def test_net_requires_sim(self):
        with pytest.raises(SpecError, match=r"only meaningful alongside \[sim\]"):
            RunSpec.from_dict({"seed": 0, "net": {"port": 0}})

    def test_defaults_validate(self):
        spec = RunSpec.from_dict(net_tree())
        assert spec.net.host == "127.0.0.1"
        assert spec.net.min_quorum == 1
        assert spec.net.faults == {}

    @pytest.mark.parametrize("field,value,msg", [
        ("port", 70000, "port must lie"),
        ("round_timeout", 0, "round_timeout must be positive"),
        ("min_quorum", 0, "min_quorum must be at least 1"),
        ("backoff_jitter", 1.5, "backoff_jitter must lie"),
        ("connect_retries", -1, "connect_retries must be non-negative"),
    ])
    def test_bad_values_named_in_the_error(self, field, value, msg):
        with pytest.raises(SpecError, match=msg):
            RunSpec.from_dict(net_tree(**{field: value}))

    def test_fault_tree_validated_at_spec_time(self):
        # A typo'd fault plan fails at validate-config time, not minutes
        # into a chaos run, and keeps the events[i] locator.
        with pytest.raises(SpecError, match=r"faults: events\[0\]"):
            RunSpec.from_dict(net_tree(
                faults={"events": [{"silo": 0, "action": "melt",
                                    "round": 1}]}
            ))

    def test_unknown_net_key_rejected(self):
        with pytest.raises(SpecError, match="quorum_min"):
            RunSpec.from_dict(net_tree(quorum_min=2))


class TestRoundTrips:
    FAULTS = {
        "events": [
            {"silo": 2, "action": "timeout", "round": 1, "value": 3.0},
            {"silo": 0, "action": "partition", "start": 0, "stop": 2,
             "value": 0.5},
        ],
        "drop_rate": 0.1,
        "seed": 7,
    }

    def test_dict_round_trip_is_hash_identical(self):
        spec = RunSpec.from_dict(net_tree(min_quorum=2, faults=self.FAULTS))
        again = RunSpec.from_dict(spec.to_dict())
        assert spec_hash(again) == spec_hash(spec)
        assert again.net == spec.net

    def test_toml_round_trip_is_hash_identical(self, tmp_path):
        spec = RunSpec.from_dict(net_tree(
            port=9000, round_timeout=2.0, min_quorum=2, faults=self.FAULTS
        ))
        path = tmp_path / "net.toml"
        path.write_text(spec.to_toml())
        again = RunSpec.from_file(path)
        assert spec_hash(again) == spec_hash(spec)
        assert again.net.faults == self.FAULTS

    def test_net_section_changes_the_hash(self):
        # The handshake leans on this: a server and silo disagreeing
        # about timeouts or fault plans must not pass as "same spec".
        base = RunSpec.from_dict(net_tree())
        tweaked = RunSpec.from_dict(net_tree(round_timeout=1.0))
        assert spec_hash(base) != spec_hash(tweaked)
