"""Wire-protocol unit tests: framing, integrity, and failure surfaces.

Every test runs over a real ``socketpair`` so the byte stream crosses an
actual kernel buffer -- the same code path TCP traffic takes, minus the
network.
"""

import socket
import threading

import numpy as np
import pytest

from repro.net.wire import (
    MAGIC,
    ChecksumError,
    ConnectionClosed,
    WireError,
    pack_frame,
    recv_frame,
    send_frame,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def roundtrip(pair, msg_type, payload=None, arrays=None):
    a, b = pair
    # Send from a thread: a frame larger than the socketpair buffer would
    # otherwise deadlock sendall against our own recv.
    sender = threading.Thread(
        target=send_frame, args=(a, msg_type, payload, arrays)
    )
    sender.start()
    frame = recv_frame(b)
    sender.join()
    return frame


class TestRoundTrip:
    def test_payload_and_arrays_survive(self, pair):
        arrays = {
            "params": np.linspace(-1.0, 1.0, 4130),
            "mask": np.array([[True, False], [False, True]]),
            "counts": np.arange(12, dtype=np.int32).reshape(3, 4),
        }
        payload = {"round": 3, "noise_std": 0.25, "users": [0, 5, 7]}
        frame = roundtrip(pair, "update", payload, arrays)
        assert frame.type == "update"
        assert frame.payload == payload
        assert set(frame.arrays) == set(arrays)
        for name, arr in arrays.items():
            assert frame.arrays[name].dtype == arr.dtype
            assert np.array_equal(frame.arrays[name], arr)

    def test_float_bits_exact(self, pair):
        # The oracle property rests on this: raw-byte transport, no text
        # round-trip, so every IEEE-754 bit pattern survives.
        arr = np.frombuffer(
            np.random.default_rng(0).bytes(8 * 64), dtype=np.float64
        ).copy()
        frame = roundtrip(pair, "update", arrays={"x": arr})
        assert frame.arrays["x"].tobytes() == arr.tobytes()

    def test_empty_frame(self, pair):
        frame = roundtrip(pair, "ping")
        assert frame.type == "ping"
        assert frame.payload == {}
        assert frame.arrays == {}

    def test_back_to_back_frames(self, pair):
        a, b = pair
        send_frame(a, "ping", {"round": 0})
        send_frame(a, "ping", {"round": 1})
        assert recv_frame(b).payload["round"] == 0
        assert recv_frame(b).payload["round"] == 1

    def test_received_array_is_writable(self, pair):
        # recv_frame must hand back an owned copy, not a frombuffer view.
        frame = roundtrip(pair, "compute", arrays={"p": np.zeros(4)})
        frame.arrays["p"][0] = 1.0  # would raise on a read-only view

    def test_object_dtype_rejected(self):
        with pytest.raises(WireError, match="object dtype"):
            pack_frame("update", arrays={"bad": np.array([object()])})


class TestCorruption:
    def test_flipped_blob_byte_fails_checksum(self, pair):
        a, b = pair
        data = pack_frame("update", {"round": 1}, {"x": np.arange(8.0)})
        data = data[:-1] + bytes([data[-1] ^ 0xFF])
        a.sendall(data)
        with pytest.raises(ChecksumError):
            recv_frame(b)

    def test_flipped_header_byte_fails_checksum(self, pair):
        a, b = pair
        data = pack_frame("update", {"round": 1})
        # Byte 8 sits inside the JSON header (after magic + hlen).
        data = data[:8] + bytes([data[8] ^ 0xFF]) + data[9:]
        a.sendall(data)
        with pytest.raises(ChecksumError):
            recv_frame(b)

    def test_bad_magic_rejected(self, pair):
        a, b = pair
        data = pack_frame("ping")
        a.sendall(b"HTTP" + data[4:])
        with pytest.raises(WireError, match="magic"):
            recv_frame(b)

    def test_wrong_wire_version_rejected(self, pair):
        import json
        import struct
        import zlib

        header = json.dumps(
            {"v": 99, "type": "ping", "payload": {}, "blobs": []}
        ).encode()
        a, b = pair
        a.sendall(
            MAGIC + struct.pack(">I", len(header)) + header
            + struct.pack(">I", zlib.crc32(header))
        )
        with pytest.raises(WireError, match="wire version"):
            recv_frame(b)

    def test_oversized_frame_rejected_before_allocation(self, pair):
        import struct

        a, b = pair
        a.sendall(MAGIC + struct.pack(">I", 0xFFFFFFFF))
        with pytest.raises(WireError, match="wire limit"):
            recv_frame(b)


class TestConnectionClose:
    def test_clean_close_between_frames(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionClosed):
            recv_frame(b)

    def test_close_mid_frame_is_not_clean(self, pair):
        a, b = pair
        data = pack_frame("update", {"round": 2}, {"x": np.arange(16.0)})
        a.sendall(data[: len(data) // 2])
        a.close()
        with pytest.raises(WireError, match="mid-frame") as err:
            recv_frame(b)
        assert not isinstance(err.value, ConnectionClosed)
