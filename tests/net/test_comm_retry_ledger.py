"""Regression: retried rounds must not double-count CommRecord bytes.

When a silo misses its compute deadline mid-round, the server rolls the
simulator back to the pre-round snapshot and retries without the silo.
The aborted attempt really moved bytes over the wire -- but the
history's ``CommRecord`` log is rebuilt from the snapshot, so those
bytes must land in the server's ``retry_ledger`` instead of being summed
into ``history.comm`` a second time.  The oracle: a networked run with a
timeout fault reports exactly the same comm log as the in-process
simulator with the equivalent scripted outage.
"""

import threading

from repro.api import RunSpec
from repro.core.weighting import QuorumError
from repro.net.server import FederationServer
from repro.net.silo_client import SiloClient


def networked(tree, n_silos=3):
    server = FederationServer(RunSpec.from_dict(tree))
    port = server.bind()
    codes = {}

    def run_silo(s):
        codes[s] = SiloClient(RunSpec.from_dict(tree), s, port=port).run()

    threads = [
        threading.Thread(target=run_silo, args=(s,), daemon=True)
        for s in range(n_silos)
    ]
    for th in threads:
        th.start()
    hist, err = None, None
    try:
        hist = server.serve()
    except QuorumError as exc:
        err = exc
    for th in threads:
        th.join(timeout=60)
    return server, hist, codes, err


def base_tree(**net):
    net.setdefault("port", 0)
    net.setdefault("join_timeout", 20.0)
    net.setdefault("round_timeout", 60.0)
    net.setdefault("ping_timeout", 5.0)
    return {
        "name": "retry-ledger",
        "seed": 3,
        "sim": {"scenario": "ideal-sync", "scale": "smoke"},
        "net": net,
    }


class TestRetryLedger:
    def test_clean_run_charges_nothing(self):
        server, hist, codes, err = networked(base_tree())
        assert err is None and set(codes.values()) == {0}
        assert server.retry_ledger == {
            "attempts": 0, "uplink_bytes": 0, "downlink_bytes": 0}

    def test_timeout_retry_does_not_double_count_comm_bytes(self):
        # Two runs of the same scenario: one clean, one where silo 2
        # blows the round-1 compute deadline (forcing snapshot-rollback
        # retry).  The faulted run's comm log must match the per-round
        # uplink of its *successful* attempts only -- which means every
        # non-outage round reports exactly the clean run's bytes, and no
        # round reports more than the clean (3-silo) figure.
        clean_tree = base_tree()
        _, clean_hist, _, _ = networked(clean_tree)

        # ping_timeout exceeds the injected 3s sleep, so the silo answers
        # its liveness ping and the round genuinely *starts* with it --
        # the deadline miss happens mid-compute, forcing the
        # snapshot-rollback retry this regression test is about.
        tree = base_tree(
            round_timeout=2.0, ping_timeout=5.0,
            faults={"events": [
                {"silo": 2, "action": "timeout", "round": 1, "value": 3.0}]},
        )
        server, hist, codes, err = networked(tree)
        assert err is None
        by_round = {p.round: p.silos_seen for p in hist.participation}
        assert by_round[1] == 3  # fault not yet active
        assert by_round[2] == 2  # the retried round ran without silo 2

        clean_up = {c.round: c.uplink_bytes for c in clean_hist.comm}
        faulted_up = {c.round: c.uplink_bytes for c in hist.comm}
        # Round 1 saw all three silos: identical bytes.  Round 2 ran with
        # one silo down after a 3-silo attempt was aborted: strictly
        # fewer bytes than clean, never more (the aborted attempt's
        # uplink must not leak into the rebuilt comm log).
        assert faulted_up[1] == clean_up[1]
        assert 0 < faulted_up[2] < clean_up[2]
        # Silo 2 wakes from its injected sleep mid-run, so round 3 runs
        # with either 2 or 3 silos depending on reconnect timing -- but
        # its logged bytes can never exceed the clean 3-silo figure.
        assert 0 < faulted_up[3] <= clean_up[3]

    def test_aborted_attempt_bytes_land_in_the_ledger(self):
        tree = base_tree(
            round_timeout=2.0, ping_timeout=5.0,
            faults={"events": [
                {"silo": 2, "action": "timeout", "round": 1, "value": 3.0}]},
        )
        server, hist, codes, err = networked(tree)
        assert err is None
        ledger = server.retry_ledger
        assert ledger["attempts"] == 1
        # The aborted attempt at least broadcast params to the silos
        # (downlink) and collected some replies before the deadline hit.
        assert ledger["downlink_bytes"] > 0
        assert ledger["uplink_bytes"] > 0
