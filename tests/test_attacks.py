"""Tests for the membership-inference attack extension."""

import numpy as np
import pytest

from repro.attacks import (
    attack_auc,
    membership_advantage,
    record_membership_scores,
    run_membership_experiment,
    user_membership_scores,
)
from repro.core import Default, Trainer, UldpAvg
from repro.data import build_creditcard_benchmark, build_tcgabrca_benchmark
from repro.nn.model import build_tiny_mlp


class TestAttackMetrics:
    def test_auc_perfect_separation(self):
        assert attack_auc(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 1.0

    def test_auc_chance(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        assert attack_auc(scores, scores) == pytest.approx(0.5)

    def test_auc_inverted(self):
        assert attack_auc(np.array([0.0]), np.array([1.0])) == 0.0

    def test_auc_requires_both_sides(self):
        with pytest.raises(ValueError):
            attack_auc(np.array([]), np.array([1.0]))

    def test_advantage_bounds(self):
        adv = membership_advantage(np.array([5.0, 6.0]), np.array([1.0, 2.0]))
        assert adv == 1.0
        adv = membership_advantage(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert adv == pytest.approx(0.0, abs=0.51)  # small-sample wiggle

    def test_advantage_nonnegative(self):
        rng = np.random.default_rng(0)
        adv = membership_advantage(rng.normal(size=50), rng.normal(size=50))
        assert 0.0 <= adv <= 1.0


class TestScoreExtraction:
    @pytest.fixture(scope="class")
    def overfit_setup(self):
        """A deliberately overfit model: strong membership signal.

        30% of the *training* labels are flipped: fitting them requires
        memorisation, which is exactly what loss-threshold membership
        inference detects (clean test records keep higher loss).
        """
        fed = build_creditcard_benchmark(
            n_users=10, n_silos=2, n_records=60, n_test=60, seed=0
        )
        rng = np.random.default_rng(9)
        for silo in fed.silos:
            flip = rng.random(silo.n_records) < 0.3
            silo.y = np.where(flip, 1 - silo.y, silo.y)
        model = build_tiny_mlp(30, 64, 2, np.random.default_rng(1))
        method = Default(local_epochs=60, local_lr=0.3, batch_size=None)
        Trainer(fed, method, rounds=5, model=model, seed=1).run()
        return fed, model

    def test_record_scores_shapes(self, overfit_setup):
        fed, model = overfit_setup
        members, nonmembers = record_membership_scores(model, fed)
        assert len(members) == fed.n_records
        assert len(nonmembers) == len(fed.test_x)

    def test_overfit_model_leaks_membership(self, overfit_setup):
        fed, model = overfit_setup
        members, nonmembers = record_membership_scores(model, fed)
        assert attack_auc(members, nonmembers) > 0.6

    def test_user_scores_shapes(self, overfit_setup):
        fed, model = overfit_setup
        members, nonmembers = user_membership_scores(
            model, fed, rng=np.random.default_rng(2)
        )
        present_users = int((fed.user_totals() > 0).sum())
        assert len(members) == present_users
        assert len(nonmembers) > 0

    def test_user_level_leak_at_least_record_level(self, overfit_setup):
        """Averaging a user's records sharpens the signal -- the paper's
        cumulative-risk argument."""
        fed, model = overfit_setup
        rec = attack_auc(*record_membership_scores(model, fed))
        usr = attack_auc(
            *user_membership_scores(model, fed, rng=np.random.default_rng(3))
        )
        assert usr >= rec - 0.1

    def test_survival_task_supported(self):
        fed = build_tcgabrca_benchmark(n_users=8, silo_sizes=(40, 40), seed=0)
        model = Trainer(
            fed, Default(local_epochs=2, local_lr=0.05), rounds=2, seed=0
        ).model
        members, nonmembers = record_membership_scores(model, fed)
        assert np.all(np.isfinite(members))
        assert 0.0 <= attack_auc(members, nonmembers) <= 1.0


class TestExperimentRunner:
    def test_dp_reduces_leakage_vs_overfit_baseline(self):
        """The paper's motivating comparison: ULDP noise should push the
        user-level attack toward chance relative to a non-private overfit
        model."""
        fed = build_creditcard_benchmark(
            n_users=10, n_silos=2, n_records=60, n_test=60, seed=3
        )
        rng = np.random.default_rng(13)
        for silo in fed.silos:
            flip = rng.random(silo.n_records) < 0.3
            silo.y = np.where(flip, 1 - silo.y, silo.y)
        overfit = run_membership_experiment(
            fed, Default(local_epochs=30, local_lr=0.3), rounds=5, seed=4,
            model=build_tiny_mlp(30, 32, 2, np.random.default_rng(5)),
        )
        private = run_membership_experiment(
            fed, UldpAvg(noise_multiplier=5.0, local_epochs=1), rounds=5, seed=4,
            model=build_tiny_mlp(30, 32, 2, np.random.default_rng(5)),
        )
        assert private.user_auc < overfit.user_auc
        assert "ULDP-AVG" in private.row()

    def test_result_row_format(self):
        fed = build_creditcard_benchmark(
            n_users=6, n_silos=2, n_records=40, n_test=40, seed=6
        )
        result = run_membership_experiment(
            fed, Default(local_epochs=1), rounds=1, seed=7,
            model=build_tiny_mlp(30, 4, 2, np.random.default_rng(8)),
        )
        row = result.row()
        assert "record AUC=" in row and "user AUC=" in row
