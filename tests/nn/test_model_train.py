"""Tests for Sequential, parameter flattening, training, and DP-SGD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clipping import l2_clip
from repro.nn.dpsgd import dpsgd_train, per_sample_clipped_gradient_sum
from repro.nn.losses import BCEWithLogitsLoss, SoftmaxCrossEntropyLoss
from repro.nn.model import (
    Sequential,
    build_cox_linear,
    build_creditcard_mlp,
    build_logistic,
    build_mnist_cnn,
    build_tiny_mlp,
)
from repro.nn.train import evaluate_accuracy, evaluate_loss, predict, train_epochs


class TestFlattening:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        model = build_tiny_mlp(4, 8, 2, rng)
        flat = model.get_flat_params()
        assert flat.size == model.num_params
        model.set_flat_params(np.zeros_like(flat))
        assert np.all(model.get_flat_params() == 0)
        model.set_flat_params(flat)
        np.testing.assert_array_equal(model.get_flat_params(), flat)

    def test_set_preserves_layer_views(self):
        rng = np.random.default_rng(1)
        model = build_tiny_mlp(3, 4, 2, rng)
        first_weight = model.layers[0].weight
        model.set_flat_params(np.ones(model.num_params))
        # The layer's array object must be updated in place, not replaced.
        assert first_weight is model.layers[0].weight
        assert np.all(first_weight == 1.0)

    def test_rejects_wrong_size(self):
        model = build_tiny_mlp(3, 4, 2, np.random.default_rng(2))
        with pytest.raises(ValueError):
            model.set_flat_params(np.zeros(model.num_params + 1))

    def test_clone_is_independent(self):
        rng = np.random.default_rng(3)
        model = build_tiny_mlp(3, 4, 2, rng)
        clone = model.clone()
        clone.set_flat_params(np.zeros(clone.num_params))
        assert not np.all(model.get_flat_params() == 0)

    def test_flat_grads_match_layer_grads(self):
        rng = np.random.default_rng(4)
        model = build_tiny_mlp(3, 4, 2, rng)
        x = rng.standard_normal((5, 3))
        loss = SoftmaxCrossEntropyLoss()
        model.zero_grad()
        loss.forward(model.forward(x), np.zeros(5, dtype=int))
        model.backward(loss.backward())
        flat = model.get_flat_grads()
        assert flat.size == model.num_params
        assert np.linalg.norm(flat) > 0


class TestModelFactories:
    def test_creditcard_mlp_size(self):
        model = build_creditcard_mlp(np.random.default_rng(0))
        assert 3500 <= model.num_params <= 4500  # paper: ~4K params

    def test_mnist_cnn_size(self):
        model = build_mnist_cnn(np.random.default_rng(0))
        assert 15000 <= model.num_params <= 25000  # paper: ~20K params

    def test_small_medical_models(self):
        assert build_logistic(np.random.default_rng(0)).num_params < 100
        assert build_cox_linear(np.random.default_rng(0)).num_params < 100

    def test_mnist_cnn_forward_shape(self):
        rng = np.random.default_rng(1)
        model = build_mnist_cnn(rng)
        out = model.forward(rng.standard_normal((3, 1, 14, 14)))
        assert out.shape == (3, 10)


class TestTraining:
    def test_loss_decreases_on_separable_data(self):
        rng = np.random.default_rng(5)
        n = 120
        x = rng.standard_normal((n, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        model = build_tiny_mlp(4, 16, 2, rng)
        loss = SoftmaxCrossEntropyLoss()
        before = evaluate_loss(model, loss, x, y)
        train_epochs(model, loss, x, y, lr=0.5, epochs=30, rng=rng, batch_size=32)
        after = evaluate_loss(model, loss, x, y)
        assert after < before
        assert evaluate_accuracy(model, x, y) > 0.85

    def test_full_batch_deterministic(self):
        rng1 = np.random.default_rng(6)
        x = rng1.standard_normal((20, 3))
        y = rng1.integers(0, 2, 20)
        m1 = build_tiny_mlp(3, 5, 2, np.random.default_rng(7))
        m2 = build_tiny_mlp(3, 5, 2, np.random.default_rng(7))
        train_epochs(m1, SoftmaxCrossEntropyLoss(), x, y, 0.1, 5, np.random.default_rng(8))
        train_epochs(m2, SoftmaxCrossEntropyLoss(), x, y, 0.1, 5, np.random.default_rng(9))
        # Full-batch (batch_size=None) ignores shuffling, so results agree
        # despite different rngs.
        np.testing.assert_allclose(m1.get_flat_params(), m2.get_flat_params())

    def test_rejects_empty_dataset(self):
        model = build_tiny_mlp(3, 4, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            train_epochs(
                model,
                SoftmaxCrossEntropyLoss(),
                np.zeros((0, 3)),
                np.zeros(0),
                0.1,
                1,
                np.random.default_rng(0),
            )

    def test_predict_batches_consistently(self):
        rng = np.random.default_rng(10)
        model = build_tiny_mlp(4, 6, 3, rng)
        x = rng.standard_normal((100, 4))
        np.testing.assert_allclose(
            predict(model, x, batch_size=7), model.forward(x), atol=1e-12
        )

    def test_binary_accuracy_single_logit(self):
        rng = np.random.default_rng(11)
        model = build_logistic(rng, in_features=2)
        model.set_flat_params(np.array([1.0, 0.0, 0.0]))  # w=(1,0), b=0
        x = np.array([[2.0, 0.0], [-2.0, 0.0]])
        assert evaluate_accuracy(model, x, np.array([1, 0])) == 1.0


class TestDpSgd:
    def test_per_sample_clipping_bounds_sum(self):
        rng = np.random.default_rng(12)
        model = build_tiny_mlp(3, 4, 2, rng)
        x = rng.standard_normal((6, 3)) * 100  # force large gradients
        y = rng.integers(0, 2, 6)
        clip = 0.5
        total = per_sample_clipped_gradient_sum(
            model, SoftmaxCrossEntropyLoss(), x, y, clip
        )
        assert np.linalg.norm(total) <= 6 * clip + 1e-9

    def test_zero_noise_full_sampling_is_clipped_gd(self):
        rng = np.random.default_rng(13)
        x = rng.standard_normal((8, 3))
        y = rng.integers(0, 2, 8)
        m1 = build_tiny_mlp(3, 4, 2, np.random.default_rng(14))
        m2 = m1.clone()
        loss = SoftmaxCrossEntropyLoss()
        dpsgd_train(
            m1, loss, x, y, lr=0.1, steps=1, clip=1e9, noise_multiplier=0.0,
            sample_rate=1.0, rng=np.random.default_rng(15),
        )
        # Manual: plain full-batch mean gradient step (clip too large to bind).
        m2.zero_grad()
        loss2 = SoftmaxCrossEntropyLoss()
        loss2.forward(m2.forward(x), y)
        m2.backward(loss2.backward())
        m2.set_flat_params(m2.get_flat_params() - 0.1 * m2.get_flat_grads())
        np.testing.assert_allclose(m1.get_flat_params(), m2.get_flat_params(), atol=1e-10)

    def test_noise_changes_parameters(self):
        rng = np.random.default_rng(16)
        x = rng.standard_normal((5, 3))
        y = rng.integers(0, 2, 5)
        model = build_tiny_mlp(3, 4, 2, rng)
        before = model.get_flat_params()
        dpsgd_train(
            model, SoftmaxCrossEntropyLoss(), x, y, lr=0.1, steps=1, clip=1.0,
            noise_multiplier=1.0, sample_rate=0.5, rng=np.random.default_rng(17),
        )
        assert not np.allclose(before, model.get_flat_params())

    def test_rejects_bad_parameters(self):
        rng = np.random.default_rng(18)
        model = build_tiny_mlp(3, 4, 2, rng)
        x, y = np.zeros((2, 3)), np.zeros(2)
        loss = SoftmaxCrossEntropyLoss()
        with pytest.raises(ValueError):
            dpsgd_train(model, loss, x, y, 0.1, 1, clip=1.0, noise_multiplier=1.0,
                        sample_rate=0.0, rng=rng)
        with pytest.raises(ValueError):
            dpsgd_train(model, loss, x, y, 0.1, 1, clip=-1.0, noise_multiplier=1.0,
                        sample_rate=0.5, rng=rng)
        with pytest.raises(ValueError):
            dpsgd_train(model, loss, x, y, 0.1, 1, clip=1.0, noise_multiplier=-1.0,
                        sample_rate=0.5, rng=rng)


class TestClipping:
    @given(st.integers(1, 30), st.floats(0.1, 10.0))
    @settings(max_examples=50)
    def test_clip_norm_bound(self, dim, clip):
        rng = np.random.default_rng(dim)
        v = rng.standard_normal(dim) * 10
        clipped = l2_clip(v, clip)
        assert np.linalg.norm(clipped) <= clip + 1e-9

    def test_short_vector_unchanged(self):
        v = np.array([0.1, 0.2])
        np.testing.assert_array_equal(l2_clip(v, 10.0), v)

    def test_direction_preserved(self):
        v = np.array([3.0, 4.0])
        clipped = l2_clip(v, 1.0)
        np.testing.assert_allclose(clipped, v / 5.0)

    def test_zero_vector(self):
        np.testing.assert_array_equal(l2_clip(np.zeros(3), 1.0), np.zeros(3))

    def test_returns_copy(self):
        v = np.array([1.0, 2.0])
        out = l2_clip(v, 10.0)
        out[0] = 99.0
        assert v[0] == 1.0

    def test_rejects_nonpositive_clip(self):
        with pytest.raises(ValueError):
            l2_clip(np.ones(2), 0.0)

    def test_nonfinite_vector_clipped_to_zero(self):
        # inf * min(1, C/inf) would be NaN; the clip must instead drop the
        # diverged update entirely (sensitivity-preserving).
        out = l2_clip(np.array([np.inf, 1.0]), 1.0)
        np.testing.assert_array_equal(out, [0.0, 0.0])
        out = l2_clip(np.array([np.nan, 1.0]), 1.0)
        np.testing.assert_array_equal(out, [0.0, 0.0])

    def test_nonfinite_clip_factor_is_zero(self):
        from repro.core.clipping import clip_factor

        assert clip_factor(np.array([np.inf]), 1.0) == 0.0
