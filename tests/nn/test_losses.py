"""Tests for losses: analytic gradients vs finite differences, known values."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import (
    BCEWithLogitsLoss,
    CoxPHLoss,
    SoftmaxCrossEntropyLoss,
    concordance_index,
)


def numeric_grad_loss(loss, pred, target, eps=1e-6):
    grad = np.zeros_like(pred, dtype=np.float64)
    it = np.nditer(pred, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = pred[idx]
        pred[idx] = orig + eps
        hi = loss.forward(pred, target)
        pred[idx] = orig - eps
        lo = loss.forward(pred, target)
        pred[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_loss(self):
        loss = SoftmaxCrossEntropyLoss()
        value = loss.forward(np.zeros((4, 10)), np.arange(4))
        assert value == pytest.approx(math.log(10))

    @given(st.integers(2, 6), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_gradient_matches_numeric(self, n, classes):
        rng = np.random.default_rng(n * 10 + classes)
        pred = rng.standard_normal((n, classes))
        target = rng.integers(0, classes, size=n)
        loss = SoftmaxCrossEntropyLoss()
        loss.forward(pred, target)
        np.testing.assert_allclose(
            loss.backward(), numeric_grad_loss(loss, pred, target), atol=1e-6
        )

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(0)
        pred = rng.standard_normal((5, 3))
        loss = SoftmaxCrossEntropyLoss()
        loss.forward(pred, np.zeros(5, dtype=int))
        np.testing.assert_allclose(loss.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_extreme_logits_stable(self):
        loss = SoftmaxCrossEntropyLoss()
        pred = np.array([[1000.0, -1000.0], [-1000.0, 1000.0]])
        value = loss.forward(pred, np.array([0, 1]))
        assert math.isfinite(value)
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropyLoss().forward(np.zeros((3, 2)), np.zeros(4))


class TestBCEWithLogits:
    def test_known_value(self):
        loss = BCEWithLogitsLoss()
        assert loss.forward(np.zeros(4), np.ones(4)) == pytest.approx(math.log(2))

    @given(st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_gradient_matches_numeric(self, n):
        rng = np.random.default_rng(n)
        pred = rng.standard_normal(n)
        target = rng.integers(0, 2, size=n).astype(float)
        loss = BCEWithLogitsLoss()
        loss.forward(pred, target)
        np.testing.assert_allclose(
            loss.backward(), numeric_grad_loss(loss, pred, target), atol=1e-6
        )

    def test_column_vector_shape_preserved(self):
        loss = BCEWithLogitsLoss()
        pred = np.zeros((3, 1))
        loss.forward(pred, np.ones(3))
        assert loss.backward().shape == (3, 1)

    def test_extreme_logits_stable(self):
        loss = BCEWithLogitsLoss()
        assert math.isfinite(loss.forward(np.array([1e4, -1e4]), np.array([1.0, 0.0])))

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError):
            BCEWithLogitsLoss().forward(np.zeros(3), np.zeros(4))


class TestCoxPHLoss:
    def _target(self, times, events):
        return np.stack([np.asarray(times, float), np.asarray(events, float)], axis=1)

    def test_two_record_hand_computation(self):
        # Records: (t=1, event), (t=2, censored).  Risk set of the event is
        # both records: loss = -(eta0 - log(e^eta0 + e^eta1)).
        eta = np.array([0.3, -0.2])
        target = self._target([1.0, 2.0], [1, 0])
        expected = -(eta[0] - math.log(math.exp(eta[0]) + math.exp(eta[1])))
        assert CoxPHLoss().forward(eta, target) == pytest.approx(expected)

    @given(st.integers(3, 10))
    @settings(max_examples=20, deadline=None)
    def test_gradient_matches_numeric(self, n):
        rng = np.random.default_rng(n)
        pred = rng.standard_normal(n)
        times = rng.uniform(0.1, 10.0, size=n)
        events = rng.integers(0, 2, size=n)
        if events.sum() == 0:
            events[0] = 1
        target = self._target(times, events)
        loss = CoxPHLoss()
        loss.forward(pred, target)
        np.testing.assert_allclose(
            loss.backward(), numeric_grad_loss(loss, pred, target), atol=1e-6
        )

    def test_column_vector_shape_preserved(self):
        loss = CoxPHLoss()
        pred = np.array([[0.1], [0.2], [0.3]])
        loss.forward(pred, self._target([1, 2, 3], [1, 1, 0]))
        assert loss.backward().shape == (3, 1)

    def test_rejects_no_events(self):
        with pytest.raises(ValueError):
            CoxPHLoss().forward(np.zeros(3), self._target([1, 2, 3], [0, 0, 0]))

    def test_rejects_single_record(self):
        with pytest.raises(ValueError):
            CoxPHLoss().forward(np.zeros(1), self._target([1], [1]))

    def test_lower_loss_for_correct_ranking(self):
        # Predicting higher risk for the earlier event should reduce loss.
        target = self._target([1.0, 2.0, 3.0], [1, 1, 1])
        good = CoxPHLoss().forward(np.array([2.0, 1.0, 0.0]), target)
        bad = CoxPHLoss().forward(np.array([0.0, 1.0, 2.0]), target)
        assert good < bad


class TestConcordanceIndex:
    def test_perfect_ranking(self):
        times = np.array([1.0, 2.0, 3.0])
        events = np.array([1, 1, 1])
        assert concordance_index(np.array([3.0, 2.0, 1.0]), times, events) == 1.0

    def test_inverted_ranking(self):
        times = np.array([1.0, 2.0, 3.0])
        events = np.array([1, 1, 1])
        assert concordance_index(np.array([1.0, 2.0, 3.0]), times, events) == 0.0

    def test_ties_count_half(self):
        times = np.array([1.0, 2.0])
        events = np.array([1, 0])
        assert concordance_index(np.array([0.5, 0.5]), times, events) == 0.5

    def test_censored_records_not_events(self):
        # With no events there are no comparable pairs -> 0.5 by convention.
        times = np.array([1.0, 2.0])
        events = np.array([0, 0])
        assert concordance_index(np.array([1.0, 0.0]), times, events) == 0.5

    def test_hand_computed_mixed_case(self):
        times = np.array([1.0, 2.0, 3.0])
        events = np.array([1, 0, 1])
        risk = np.array([3.0, 1.0, 2.0])
        # Comparable pairs: (0,1), (0,2): both concordant. Record 2 has an
        # event but no later records -> not comparable.
        assert concordance_index(risk, times, events) == 1.0
