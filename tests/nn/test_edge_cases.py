"""Edge-case tests for the NN substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.dpsgd import per_sample_clipped_gradient_sum
from repro.nn.layers import AvgPool2d, Conv2d, Linear, MaxPool2d
from repro.nn.losses import CoxPHLoss, DegenerateBatchError, SoftmaxCrossEntropyLoss
from repro.nn.model import Sequential, build_tiny_mlp
from repro.nn.optim import SGD
from repro.nn.train import iterate_minibatches, train_epochs


class TestConvShapes:
    @given(
        size=st.integers(4, 12),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 3),
        padding=st.integers(0, 2),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_shape_formula(self, size, kernel, stride, padding):
        if size + 2 * padding < kernel:
            return
        rng = np.random.default_rng(0)
        layer = Conv2d(1, 2, kernel, rng, stride=stride, padding=padding)
        out = layer.forward(rng.standard_normal((1, 1, size, size)))
        expected = (size + 2 * padding - kernel) // stride + 1
        assert out.shape == (1, 2, expected, expected)

    def test_single_pixel_input(self):
        rng = np.random.default_rng(1)
        layer = Conv2d(3, 4, 1, rng)
        out = layer.forward(rng.standard_normal((2, 3, 1, 1)))
        assert out.shape == (2, 4, 1, 1)


class TestPoolEdges:
    def test_avgpool_odd_input_cropped(self):
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        out = AvgPool2d(2).forward(x)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 3 + 4) / 4)

    def test_maxpool_gradient_on_cropped_region_is_zero(self):
        x = np.arange(9.0).reshape(1, 1, 3, 3)
        layer = MaxPool2d(2)
        layer.forward(x)
        dx = layer.backward(np.ones((1, 1, 1, 1)))
        # Cropped row/column receive no gradient.
        assert np.all(dx[0, 0, 2, :] == 0)
        assert np.all(dx[0, 0, :, 2] == 0)


class TestSequentialEdges:
    def test_empty_model(self):
        model = Sequential([])
        assert model.num_params == 0
        assert model.get_flat_params().size == 0
        x = np.ones((2, 3))
        np.testing.assert_array_equal(model.forward(x), x)

    def test_single_layer_flatten_grads(self):
        rng = np.random.default_rng(2)
        model = Sequential([Linear(2, 2, rng)])
        model.zero_grad()
        assert np.all(model.get_flat_grads() == 0)

    def test_optimizer_rejects_bad_lr(self):
        model = build_tiny_mlp(2, 2, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            SGD(model, lr=0.0)


class TestMinibatchIteration:
    @given(n=st.integers(1, 50), batch=st.integers(1, 60))
    @settings(max_examples=40)
    def test_covers_all_indices_exactly_once(self, n, batch):
        rng = np.random.default_rng(0)
        seen = np.concatenate(list(iterate_minibatches(n, batch, rng)))
        assert sorted(seen.tolist()) == list(range(n))

    def test_full_batch_does_not_consume_rng(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state["state"]["state"]
        list(iterate_minibatches(10, 10, rng))
        after = rng.bit_generator.state["state"]["state"]
        assert before == after

    def test_partial_batch_consumes_rng(self):
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state["state"]["state"]
        list(iterate_minibatches(10, 3, rng))
        after = rng.bit_generator.state["state"]["state"]
        assert before != after


class TestDegenerateCoxHandling:
    def _survival(self, times, events):
        return np.stack([np.asarray(times, float), np.asarray(events, float)], axis=1)

    def test_train_epochs_skips_eventless_batches(self):
        rng = np.random.default_rng(4)
        model = build_tiny_mlp(3, 4, 1, rng)
        x = rng.standard_normal((6, 3))
        # First half has events, second half censored only.
        y = self._survival([1, 2, 3, 4, 5, 6], [1, 1, 1, 0, 0, 0])
        before = model.get_flat_params()
        train_epochs(model, CoxPHLoss(), x, y, lr=0.1, epochs=1,
                     rng=np.random.default_rng(5), batch_size=3)
        # Training proceeded (params moved) despite one degenerate batch.
        assert not np.allclose(before, model.get_flat_params())

    def test_all_degenerate_batches_leave_model_unchanged(self):
        rng = np.random.default_rng(6)
        model = build_tiny_mlp(3, 4, 1, rng)
        x = rng.standard_normal((4, 3))
        y = self._survival([1, 2, 3, 4], [0, 0, 0, 0])  # no events at all
        before = model.get_flat_params()
        train_epochs(model, CoxPHLoss(), x, y, lr=0.1, epochs=2,
                     rng=np.random.default_rng(7))
        np.testing.assert_array_equal(before, model.get_flat_params())

    def test_dpsgd_microbatch_skips_degenerate(self):
        rng = np.random.default_rng(8)
        model = build_tiny_mlp(3, 4, 1, rng)
        x = rng.standard_normal((5, 3))
        y = self._survival([1, 2, 3, 4, 5], [1, 1, 0, 0, 1])
        total = per_sample_clipped_gradient_sum(
            model, CoxPHLoss(), x, y, clip=1.0, microbatch_size=2
        )
        # Microbatches: (0,1) ok, (2,3) eventless -> skipped, (4,) single
        # record -> skipped.  Sum is bounded by 1 microbatch * clip... at
        # most ceil(5/2) * clip regardless.
        assert np.linalg.norm(total) <= 3 * 1.0 + 1e-9

    def test_microbatch_size_validated(self):
        model = build_tiny_mlp(2, 2, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            per_sample_clipped_gradient_sum(
                model, SoftmaxCrossEntropyLoss(), np.zeros((2, 2)), np.zeros(2),
                clip=1.0, microbatch_size=0,
            )
