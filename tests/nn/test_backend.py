"""Array backend registry: numpy today, torch/cupy gated behind imports."""

import numpy as np
import pytest

from repro.nn.backend import (
    BACKENDS,
    ArrayBackend,
    BackendUnavailable,
    available_backends,
    get_backend,
    validate_backend,
)


class TestNumpyBackend:
    def test_weighted_sum_matches_matmul_bitwise(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(0, 1, 37)
        rows = rng.standard_normal((37, 11))
        backend = get_backend("numpy")
        assert backend.weighted_sum(w, rows).tobytes() == (w @ rows).tobytes()

    def test_casts_weights_to_contiguous_float64(self):
        backend = get_backend("numpy")
        w = np.ones(4, dtype=np.float32)[::2]  # non-contiguous, wrong dtype
        rows = np.ones((2, 3))
        out = backend.weighted_sum(w, rows)
        assert out.dtype == np.float64
        assert np.array_equal(out, np.full(3, 2.0))

    def test_round_trip_hooks(self):
        backend = get_backend("numpy")
        a = np.arange(6.0)
        assert backend.to_numpy(backend.from_numpy(a)) is a

    def test_batched_module(self):
        import repro.nn.batched as batched

        assert get_backend("numpy").batched is batched


class TestRegistry:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown"):
            get_backend("jax")
        with pytest.raises(ValueError, match="unknown"):
            validate_backend("jax")

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_backends_pinned_to_spec_constant(self):
        # api.spec keeps its own literal copy (import-light idiom); the
        # two must never drift.
        from repro.api.spec import ARRAY_BACKENDS

        assert tuple(ARRAY_BACKENDS) == tuple(BACKENDS)

    def test_gated_backends_raise_without_install(self):
        for name in ("torch", "cupy"):
            try:
                __import__(name)
            except ImportError:
                with pytest.raises(BackendUnavailable):
                    get_backend(name)
            else:  # pragma: no cover - accelerator-equipped machines
                backend = get_backend(name)
                rng = np.random.default_rng(0)
                w = rng.uniform(0, 1, 8)
                rows = rng.standard_normal((8, 3))
                assert np.allclose(backend.weighted_sum(w, rows), w @ rows)

    def test_frozen(self):
        backend = get_backend("numpy")
        assert isinstance(backend, ArrayBackend)
        with pytest.raises(Exception):
            backend.name = "other"
