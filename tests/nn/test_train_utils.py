"""Tests for remaining training utilities and small API corners."""

import numpy as np
import pytest

from repro.accounting.accountant import RdpEvent
from repro.accounting.rdp import DEFAULT_ALPHAS, gaussian_rdp_curve
from repro.accounting.subsampled import subsampled_gaussian_rdp_curve
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.model import build_tiny_mlp
from repro.nn.train import evaluate_loss, predict, train_epochs


class TestEvaluateLoss:
    def test_matches_manual_forward(self):
        rng = np.random.default_rng(0)
        model = build_tiny_mlp(4, 6, 3, rng)
        x = rng.standard_normal((10, 4))
        y = rng.integers(0, 3, 10)
        loss = SoftmaxCrossEntropyLoss()
        manual = loss.forward(model.forward(x), y)
        assert evaluate_loss(model, SoftmaxCrossEntropyLoss(), x, y) == pytest.approx(manual)


class TestPredictEdges:
    def test_empty_input(self):
        model = build_tiny_mlp(4, 6, 2, np.random.default_rng(0))
        out = predict(model, np.zeros((0, 4)))
        assert out.size == 0

    def test_batch_size_one(self):
        rng = np.random.default_rng(1)
        model = build_tiny_mlp(4, 6, 2, rng)
        x = rng.standard_normal((5, 4))
        np.testing.assert_allclose(
            predict(model, x, batch_size=1), model.forward(x), atol=1e-12
        )


class TestTrainEpochsEdges:
    def test_zero_epochs_noop(self):
        rng = np.random.default_rng(2)
        model = build_tiny_mlp(4, 6, 2, rng)
        before = model.get_flat_params()
        x = rng.standard_normal((6, 4))
        y = rng.integers(0, 2, 6)
        train_epochs(model, SoftmaxCrossEntropyLoss(), x, y, lr=0.5, epochs=0,
                     rng=np.random.default_rng(3))
        np.testing.assert_array_equal(before, model.get_flat_params())

    def test_single_record_dataset(self):
        rng = np.random.default_rng(4)
        model = build_tiny_mlp(4, 6, 2, rng)
        x = rng.standard_normal((1, 4))
        y = np.array([1])
        train_epochs(model, SoftmaxCrossEntropyLoss(), x, y, lr=0.1, epochs=3,
                     rng=np.random.default_rng(5))
        # Model fits the single record quickly.
        assert model.forward(x).argmax() == 1


class TestRdpEvent:
    def test_full_participation_curve(self):
        event = RdpEvent(noise_multiplier=4.0, sample_rate=1.0, steps=3)
        np.testing.assert_allclose(
            event.curve(DEFAULT_ALPHAS), gaussian_rdp_curve(4.0, 3)
        )

    def test_subsampled_curve(self):
        event = RdpEvent(noise_multiplier=4.0, sample_rate=0.2, steps=2)
        np.testing.assert_allclose(
            event.curve(DEFAULT_ALPHAS), subsampled_gaussian_rdp_curve(0.2, 4.0, 2)
        )

    def test_frozen(self):
        event = RdpEvent(1.0)
        with pytest.raises(Exception):
            event.steps = 5  # type: ignore[misc]
