"""Finite-difference gradient checks for every layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU, Tanh


def numeric_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(layer, x, atol=1e-5):
    """Check input and parameter gradients against finite differences."""
    rng = np.random.default_rng(0)
    out = layer.forward(x)
    upstream = rng.standard_normal(out.shape)

    def scalar_loss():
        return float(np.sum(layer.forward(x) * upstream))

    layer.zero_grad()
    layer.forward(x)
    dx = layer.backward(upstream)

    np.testing.assert_allclose(dx, numeric_grad(scalar_loss, x), atol=atol)
    for p, g in zip(layer.params, layer.grads):
        np.testing.assert_allclose(g, numeric_grad(scalar_loss, p), atol=atol)


class TestLinear:
    def test_gradients(self):
        rng = np.random.default_rng(1)
        layer = Linear(5, 3, rng)
        check_layer_gradients(layer, rng.standard_normal((4, 5)))

    def test_output_shape(self):
        rng = np.random.default_rng(2)
        layer = Linear(7, 2, rng)
        assert layer.forward(rng.standard_normal((10, 7))).shape == (10, 2)

    def test_grads_accumulate(self):
        rng = np.random.default_rng(3)
        layer = Linear(3, 2, rng)
        x = rng.standard_normal((2, 3))
        g = np.ones((2, 2))
        layer.forward(x)
        layer.backward(g)
        once = layer.grads[0].copy()
        layer.forward(x)
        layer.backward(g)
        np.testing.assert_allclose(layer.grads[0], 2 * once)

    def test_backward_before_forward_raises(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))


class TestActivations:
    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_relu_gradients(self, n, d):
        rng = np.random.default_rng(n * 100 + d)
        # Shift away from 0 to avoid the kink in finite differences.
        x = rng.standard_normal((n, d))
        x[np.abs(x) < 0.05] += 0.1
        check_layer_gradients(ReLU(), x)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_tanh_gradients(self, n, d):
        rng = np.random.default_rng(n * 100 + d)
        check_layer_gradients(Tanh(), rng.standard_normal((n, d)))

    def test_relu_clamps(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = np.arange(24.0).reshape(2, 3, 2, 2)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_gradients(self, stride, padding):
        rng = np.random.default_rng(4)
        layer = Conv2d(2, 3, 3, rng, stride=stride, padding=padding)
        check_layer_gradients(layer, rng.standard_normal((2, 2, 6, 6)))

    def test_output_shape(self):
        rng = np.random.default_rng(5)
        layer = Conv2d(1, 4, 3, rng, padding=1)
        assert layer.forward(rng.standard_normal((3, 1, 8, 8))).shape == (3, 4, 8, 8)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(6)
        layer = Conv2d(1, 1, 2, rng)
        x = rng.standard_normal((1, 1, 3, 3))
        out = layer.forward(x)
        w, b = layer.weight[0, 0], layer.bias[0]
        for i in range(2):
            for j in range(2):
                expected = np.sum(x[0, 0, i : i + 2, j : j + 2] * w) + b
                assert out[0, 0, i, j] == pytest.approx(expected)


class TestPooling:
    def test_maxpool_gradients(self):
        rng = np.random.default_rng(7)
        # Distinct values avoid max ties, keeping finite differences valid.
        x = rng.permutation(64).astype(np.float64).reshape(1, 1, 8, 8)
        check_layer_gradients(MaxPool2d(2), x)

    def test_avgpool_gradients(self):
        rng = np.random.default_rng(8)
        check_layer_gradients(AvgPool2d(2), rng.standard_normal((2, 3, 4, 4)))

    def test_maxpool_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        assert MaxPool2d(2).forward(x)[0, 0, 0, 0] == 4.0

    def test_maxpool_tie_splits_gradient(self):
        x = np.ones((1, 1, 2, 2))
        layer = MaxPool2d(2)
        layer.forward(x)
        dx = layer.backward(np.ones((1, 1, 1, 1)))
        # Gradient mass preserved across the tied maxima.
        assert dx.sum() == pytest.approx(1.0)

    def test_odd_input_cropped(self):
        x = np.arange(25.0).reshape(1, 1, 5, 5)
        out = MaxPool2d(2).forward(x)
        assert out.shape == (1, 1, 2, 2)
