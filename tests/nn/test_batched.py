"""Unit tests for the batched-leading-axis nn substrate.

Covers the per-group-parameters machinery (``Batched*`` layers,
:class:`BatchedSequential`) and the shared-weight per-group gradient
engine (:func:`repro.nn.batched.per_group_gradients`) against per-group
reference computations with the standard layers.
"""

import numpy as np
import pytest

from repro.nn.batched import per_group_gradients
from repro.nn.clip import clip_factor_rows, l2_clip, l2_clip_rows
from repro.nn.layers import BatchedLinear, MaxPool2d
from repro.nn.losses import (
    BCEWithLogitsLoss,
    CoxPHLoss,
    DegenerateBatchError,
    SoftmaxCrossEntropyLoss,
)
from repro.nn.model import batch_model, build_mnist_cnn, build_tiny_mlp


def reference_gradients(model, loss_factory, datasets):
    """Per-group gradients via one standard forward/backward per group."""
    rows = []
    for x, y in datasets:
        local = model.clone()
        loss = loss_factory()
        local.zero_grad()
        try:
            loss.forward(local.forward(x), y)
            local.backward(loss.backward())
            rows.append(local.get_flat_grads())
        except DegenerateBatchError:
            rows.append(np.zeros(local.num_params))
    return np.stack(rows)


class TestBatchedSequential:
    def test_flat_params_roundtrip(self):
        model = build_tiny_mlp(5, 4, 3, np.random.default_rng(0))
        bm = batch_model(model, groups=3)
        bm.set_flat_params(model.get_flat_params())
        flat = bm.get_flat_params()
        assert flat.shape == (3, model.num_params)
        np.testing.assert_array_equal(flat[0], model.get_flat_params())
        np.testing.assert_array_equal(flat[1], flat[2])
        per_group = np.arange(3 * model.num_params, dtype=float).reshape(3, -1)
        bm.set_flat_params(per_group)
        np.testing.assert_array_equal(bm.get_flat_params(), per_group)

    def test_wrong_param_shape_rejected(self):
        model = build_tiny_mlp(5, 4, 3, np.random.default_rng(0))
        bm = batch_model(model, groups=2)
        with pytest.raises(ValueError):
            bm.set_flat_params(np.zeros(7))
        with pytest.raises(ValueError):
            bm.set_flat_params(np.zeros((3, model.num_params)))

    def test_forward_matches_per_group_models(self):
        rng = np.random.default_rng(1)
        model = build_tiny_mlp(6, 5, 2, np.random.default_rng(2))
        bm = batch_model(model, groups=4)
        params = np.stack(
            [model.get_flat_params() + 0.1 * g for g in range(4)]
        )
        bm.set_flat_params(params)
        x = rng.standard_normal((4, 7, 6))
        out = bm.forward(x)
        for g in range(4):
            local = model.clone()
            local.set_flat_params(params[g])
            np.testing.assert_allclose(out[g], local.forward(x[g]), atol=1e-12)

    def test_cnn_forward_backward_matches(self):
        rng = np.random.default_rng(3)
        model = build_mnist_cnn(np.random.default_rng(4), image_size=14, n_classes=3)
        bm = batch_model(model, groups=2)
        bm.set_flat_params(model.get_flat_params())
        x = rng.standard_normal((2, 3, 1, 14, 14))
        out = bm.forward(x)
        bm.zero_grad()
        bm.backward(np.ones_like(out))
        grads = bm.get_flat_grads()
        for g in range(2):
            local = model.clone()
            ref_out = local.forward(x[g])
            local.zero_grad()
            local.backward(np.ones_like(ref_out))
            np.testing.assert_allclose(out[g], ref_out, atol=1e-12)
            np.testing.assert_allclose(grads[g], local.get_flat_grads(), atol=1e-12)

    def test_unsupported_layer_rejected(self):
        from repro.nn.model import Sequential

        with pytest.raises(TypeError):
            batch_model(Sequential([BatchedLinear(2, 2, 1)]), groups=2)


class TestBatchedLinear:
    def test_shape_validation(self):
        layer = BatchedLinear(3, 2, groups=2)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 4, 3)))  # wrong group count
        with pytest.raises(ValueError):
            BatchedLinear(3, 2, groups=0)


class TestPerGroupGradients:
    @pytest.mark.parametrize("hidden", [4, 8])
    def test_matches_reference_mlp(self, hidden):
        rng = np.random.default_rng(0)
        model = build_tiny_mlp(6, hidden, 3, np.random.default_rng(1))
        datasets = []
        for _ in range(5):
            n = int(rng.integers(1, 7))
            datasets.append(
                (rng.standard_normal((n, 6)), rng.integers(0, 3, size=n))
            )
        ref = reference_gradients(model, SoftmaxCrossEntropyLoss, datasets)
        x = np.concatenate([d[0] for d in datasets])
        y = np.concatenate([d[1] for d in datasets])
        out = per_group_gradients(
            model, SoftmaxCrossEntropyLoss(), x, y, [len(d[0]) for d in datasets]
        )
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_matches_reference_cnn(self):
        rng = np.random.default_rng(2)
        model = build_mnist_cnn(np.random.default_rng(3), image_size=14, n_classes=4)
        datasets = []
        for _ in range(4):
            n = int(rng.integers(1, 5))
            datasets.append(
                (rng.standard_normal((n, 1, 14, 14)), rng.integers(0, 4, size=n))
            )
        ref = reference_gradients(model, SoftmaxCrossEntropyLoss, datasets)
        x = np.concatenate([d[0] for d in datasets])
        y = np.concatenate([d[1] for d in datasets])
        out = per_group_gradients(
            model, SoftmaxCrossEntropyLoss(), x, y, [len(d[0]) for d in datasets]
        )
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_degenerate_cox_group_is_zero(self):
        rng = np.random.default_rng(4)
        from repro.nn.model import build_cox_linear

        model = build_cox_linear(np.random.default_rng(5), in_features=4)
        datasets = []
        for g in range(3):
            n = 4
            t = rng.random(n)
            e = rng.integers(0, 2, n) if g != 1 else np.zeros(n)
            datasets.append(
                (rng.standard_normal((n, 4)), np.stack([t, e], axis=1))
            )
        ref = reference_gradients(model, CoxPHLoss, datasets)
        assert np.all(ref[1] == 0.0)
        x = np.concatenate([d[0] for d in datasets])
        y = np.concatenate([d[1] for d in datasets])
        out = per_group_gradients(model, CoxPHLoss(), x, y, [4, 4, 4])
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_row_scale_fuses_clipping(self):
        rng = np.random.default_rng(6)
        model = build_tiny_mlp(5, 4, 1, np.random.default_rng(7))
        datasets = [
            (rng.standard_normal((3, 5)), rng.integers(0, 2, 3)) for _ in range(3)
        ]
        x = np.concatenate([d[0] for d in datasets])
        y = np.concatenate([d[1] for d in datasets])
        sizes = [3, 3, 3]
        plain = per_group_gradients(model, BCEWithLogitsLoss(), x, y, sizes)
        norms_out = np.empty(3)
        scaled = per_group_gradients(
            model, BCEWithLogitsLoss(), x, y, sizes,
            row_scale=lambda norms: 2.0 * np.ones_like(norms),
            norms_out=norms_out,
        )
        np.testing.assert_allclose(scaled, 2.0 * plain, atol=1e-12)
        np.testing.assert_allclose(
            norms_out, np.linalg.norm(plain, axis=1), atol=1e-10
        )

    def test_sizes_validation(self):
        model = build_tiny_mlp(3, 2, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            per_group_gradients(
                model, SoftmaxCrossEntropyLoss(), np.zeros((2, 3)), np.zeros(2), [1, 0, 1]
            )
        with pytest.raises(ValueError):
            per_group_gradients(
                model, SoftmaxCrossEntropyLoss(), np.zeros((2, 3)), np.zeros(2), [3]
            )


class TestRowClipping:
    def test_matches_scalar_clip(self):
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((6, 9)) * np.array([[0.1], [1], [10], [0], [3], [5]])
        clipped = l2_clip_rows(matrix, 1.5)
        for row, ref in zip(clipped, matrix):
            np.testing.assert_allclose(row, l2_clip(ref, 1.5), atol=1e-12)

    def test_nonfinite_rows_zeroed(self):
        matrix = np.ones((3, 4))
        matrix[1, 2] = np.inf
        matrix[2, 0] = np.nan
        clipped = l2_clip_rows(matrix, 1.0)
        assert np.all(clipped[1] == 0.0)
        assert np.all(clipped[2] == 0.0)
        factors = clip_factor_rows(matrix, 1.0)
        assert factors[1] == 0.0 and factors[2] == 0.0

    def test_zero_rows_untouched(self):
        matrix = np.zeros((2, 3))
        assert np.all(l2_clip_rows(matrix, 0.5) == 0.0)
        assert np.all(clip_factor_rows(matrix, 0.5) == 1.0)

    def test_in_place(self):
        matrix = np.full((2, 2), 10.0)
        out = l2_clip_rows(matrix, 1.0, out=matrix)
        assert out is matrix
        np.testing.assert_allclose(np.linalg.norm(matrix, axis=1), 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            l2_clip_rows(np.ones((2, 2)), 0.0)
        with pytest.raises(ValueError):
            clip_factor_rows(np.ones(3), 1.0)
