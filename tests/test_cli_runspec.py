"""Tests for the declarative CLI surface: run / sweep / validate-config,
the shim equivalence, and the clean unknown-name errors."""

import json

import pytest

from repro.cli import main

SMALL_RUN = """
name = "cli-test"
seed = 0
rounds = 2

[dataset]
users = 8
silos = 2
records = 120

[method]
name = "uldp-avg-w"
local_epochs = 1
"""


@pytest.fixture
def config(tmp_path):
    path = tmp_path / "run.toml"
    path.write_text(SMALL_RUN)
    return str(path)


class TestRunCommand:
    def test_config_file(self, config, capsys):
        assert main(["run", "--config", config]) == 0
        out = capsys.readouterr().out
        assert "cli-test (spec " in out
        assert "ULDP-AVG-w" in out
        assert "wire traffic" in out

    def test_set_overrides(self, config, capsys):
        assert main([
            "run", "--config", config,
            "--set", "method.name=uldp-avg", "--set", "method.sigma=1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "ULDP-AVG " in out or "ULDP-AVG\n" in out.replace("  ", " ")

    def test_defaults_without_config(self, capsys):
        assert main([
            "run", "--set", "rounds=1", "--set", "dataset.users=6",
            "--set", "dataset.silos=2", "--set", "dataset.records=80",
            "--set", "method.local_epochs=1",
        ]) == 0
        assert "ULDP-AVG-w" in capsys.readouterr().out

    def test_output_contains_spec_stamp(self, config, capsys, tmp_path):
        out_file = tmp_path / "history.json"
        assert main(["run", "--config", config, "--output", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())[0]
        assert payload["spec"]["name"] == "cli-test"
        assert len(payload["spec_hash"]) == 16

    def test_unknown_override_path(self, config, capsys):
        assert main(["run", "--config", config, "--set", "method.sigm=1"]) == 2
        err = capsys.readouterr().err
        assert "unknown config path" in err and "did you mean" in err

    def test_unknown_method_name(self, config, capsys):
        assert main([
            "run", "--config", config, "--set", "method.name=uldp-avgw",
        ]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'uldp-avg-w'" in err

    def test_unknown_scenario_name(self, capsys):
        assert main(["run", "--set", "sim.scenario=flaky-silo"]) == 2
        assert "did you mean 'flaky-silos'" in capsys.readouterr().err

    def test_sweep_spec_redirected(self, config, capsys):
        code = main([
            "run", "--config", config, "--set", "sweep.method.sigma=[1.0,2.0]",
        ])
        assert code == 2
        assert "sweep" in capsys.readouterr().err

    def test_sim_spec_runs(self, capsys):
        assert main([
            "run", "--set", "sim.scenario=ideal-sync", "--set", "sim.scale=smoke",
        ]) == 0
        out = capsys.readouterr().out
        assert "ULDP-AVG-w" in out


class TestSweepCommand:
    def test_three_sigma_grid_aggregates_one_table(self, config, capsys, tmp_path):
        out_file = tmp_path / "sweep.json"
        assert main([
            "sweep", "--config", config,
            "--set", "sweep.method.sigma=[0.5,1.0,2.0]",
            "--output", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "3 runs" in out
        for sigma in ("0.5", "1.0", "2.0"):
            assert f"method.sigma={sigma}" in out
        payload = json.loads(out_file.read_text())
        assert len(payload) == 3
        hashes = {h["spec_hash"] for h in payload}
        assert len(hashes) == 3  # per-run spec-hashed histories

    def test_spec_without_axes_rejected(self, config, capsys):
        assert main(["sweep", "--config", config]) == 2
        assert "no [sweep] axes" in capsys.readouterr().err


class TestValidateConfigCommand:
    def test_valid_files_ok(self, config, capsys):
        assert main(["validate-config", config]) == 0
        assert "OK (train" in capsys.readouterr().out

    def test_all_committed_examples_validate(self, capsys):
        import glob

        files = sorted(glob.glob("examples/specs/*.toml"))
        assert files, "committed example specs missing"
        assert main(["validate-config", *files]) == 0
        out = capsys.readouterr().out
        assert out.count(": OK") == len(files)

    def test_invalid_value_fails_with_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[method]\nsigma = -1.0\n')
        assert main(["validate-config", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "FAIL" in err and "sigma" in err

    def test_unknown_name_fails_with_suggestion(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[dataset]\nname = "creditcrd"\n')
        assert main(["validate-config", str(bad)]) == 1
        assert "did you mean 'creditcard'" in capsys.readouterr().err

    def test_sweep_children_validated(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('[sweep]\n"method.name" = ["uldp-avg", "nope"]\n')
        assert main(["validate-config", str(bad)]) == 1
        assert "unknown method" in capsys.readouterr().err

    def test_mixed_files_reports_each(self, config, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("[methodd]\n")
        assert main(["validate-config", config, str(bad)]) == 1
        captured = capsys.readouterr()
        assert "OK" in captured.out and "FAIL" in captured.err


class TestShimEquivalence:
    """`repro run` on the shim-generated spec == `repro train` flags."""

    def test_train_flags_equal_config_run(self, tmp_path, capsys):
        flags = [
            "--dataset", "creditcard", "--method", "uldp-avg-w",
            "--rounds", "2", "--users", "8", "--silos", "2",
            "--records", "120", "--local-epochs", "1",
            "--compress", "topk", "--compress-fraction", "0.1",
        ]
        shim_out = tmp_path / "shim.json"
        assert main(["train", *flags, "--output", str(shim_out)]) == 0

        # Re-run the same spec through `repro run --config`.
        import argparse

        from repro.cli import build_parser, train_spec_tree
        from repro.api.spec import RunSpec

        args = build_parser().parse_args(["train", *flags])
        spec = RunSpec.from_dict(train_spec_tree(args))
        spec_file = tmp_path / "spec.toml"
        spec_file.write_text(spec.to_toml())
        run_out = tmp_path / "run.json"
        assert main([
            "run", "--config", str(spec_file), "--output", str(run_out)
        ]) == 0

        shim = json.loads(shim_out.read_text())[0]
        via_config = json.loads(run_out.read_text())[0]
        shim.pop("round_seconds", None)
        via_config.pop("round_seconds", None)
        assert shim == via_config  # including the spec stamp + hash

    def test_methods_command_lists_registry(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "uldp-avg-w" in out and "secure-uldp-avg" in out

    def test_train_unknown_method_clean_error(self, capsys):
        assert main(["train", "--method", "uldp-avgw", "--rounds", "1"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "Traceback" not in err

    def test_train_unknown_dataset_clean_error(self, capsys):
        assert main(["train", "--dataset", "mnizt", "--rounds", "1"]) == 2
        assert "did you mean 'mnist'" in capsys.readouterr().err

    def test_simulate_unknown_scenario_clean_error(self, capsys):
        assert main(["simulate", "--scenario", "ideal-snc"]) == 2
        assert "did you mean 'ideal-sync'" in capsys.readouterr().err
