"""BinnedSum: the partition- and order-independent reduction.

The sharded engine's bit-identity claim rests entirely on these
properties: folding the same micro-batch partials in any grouping, any
order, through any merge tree must give byte-identical bins (and hence
a byte-identical ``total()``).  Plain float addition does not have this
property (OpenBLAS/numpy sums are composition-dependent at ULP level),
which is why the accumulator exists.
"""

import math

import numpy as np
import pytest

from repro.core.reduce import BinnedSum, fold_scale, tree_reduce


def _partials(rng, n=64, size=33, scale=8.0):
    """Adversarial addends: wide dynamic range, mixed signs, near-scale."""
    mags = np.exp(rng.uniform(np.log(1e-12), np.log(scale * 0.99), (n, size)))
    return mags * rng.choice([-1.0, 1.0], size=(n, size))


def _fold(vectors, scale):
    acc = BinnedSum(vectors[0].size, scale)
    for v in vectors:
        acc.add(v)
    return acc


class TestPartitionIndependence:
    def test_split_invariance(self):
        rng = np.random.default_rng(0)
        vs = list(_partials(rng))
        whole = _fold(vs, 8.0).total()
        for parts in (1, 2, 3, 7, len(vs)):
            bounds = np.linspace(0, len(vs), parts + 1).astype(int)
            accs = [_fold(vs[a:b], 8.0) for a, b in zip(bounds, bounds[1:]) if b > a]
            assert tree_reduce(accs).total().tobytes() == whole.tobytes()

    def test_order_invariance(self):
        rng = np.random.default_rng(1)
        vs = list(_partials(rng))
        whole = _fold(vs, 8.0).total()
        for seed in range(3):
            perm = np.random.default_rng(seed).permutation(len(vs))
            assert _fold([vs[i] for i in perm], 8.0).total().tobytes() == whole.tobytes()

    def test_merge_order_invariance(self):
        rng = np.random.default_rng(2)
        vs = list(_partials(rng, n=24))
        accs = [_fold(vs[i : i + 3], 8.0) for i in range(0, 24, 3)]
        left = accs[0]
        for a in accs[1:]:
            left.merge(a)
        fresh = [_fold(vs[i : i + 3], 8.0) for i in range(0, 24, 3)]
        assert tree_reduce(list(reversed(fresh))).total().tobytes() == left.total().tobytes()

    def test_accuracy_vs_fsum(self):
        rng = np.random.default_rng(3)
        vs = _partials(rng, n=200, size=5)
        total = _fold(list(vs), 8.0).total()
        exact = np.array([math.fsum(vs[:, j]) for j in range(5)])
        assert np.array_equal(total, exact)


class TestGuards:
    def test_scale_guard(self):
        acc = BinnedSum(3, 4.0)
        with pytest.raises(ValueError, match="magnitude"):
            acc.add(np.array([0.0, 5.0, 0.0]))

    def test_nan_rejected(self):
        acc = BinnedSum(2, 4.0)
        with pytest.raises(ValueError):
            acc.add(np.array([np.nan, 0.0]))

    def test_shape_guard(self):
        acc = BinnedSum(3, 4.0)
        with pytest.raises(ValueError):
            acc.add(np.zeros(4))

    def test_geometry_mismatch_on_merge(self):
        a, b = BinnedSum(3, 4.0), BinnedSum(3, 8.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_scale_positive_finite(self):
        for bad in (0.0, -1.0, np.inf, np.nan):
            with pytest.raises(ValueError):
                BinnedSum(3, bad)


class TestStateRoundTrip:
    def test_state_round_trip(self):
        rng = np.random.default_rng(4)
        acc = _fold(list(_partials(rng, n=10)), 8.0)
        clone = BinnedSum.from_state(acc.state())
        assert clone.total().tobytes() == acc.total().tobytes()
        extra = _partials(rng, n=1)[0]
        acc.add(extra)
        clone.add(extra)
        assert clone.total().tobytes() == acc.total().tobytes()

    def test_merge_counts(self):
        rng = np.random.default_rng(5)
        a = _fold(list(_partials(rng, n=4)), 8.0)
        b = _fold(list(_partials(rng, n=6)), 8.0)
        a.merge(b)
        assert a.count == 10


def test_fold_scale_covers_weighted_chunk():
    # The fold bound: a chunk GEMV of `chunk` clipped rows with weights
    # <= 1 has coordinates at most clip * chunk, and fold_scale rounds
    # that up to a power of two.
    s = fold_scale(1.0, 128)
    assert s >= 128.0 and math.log2(s).is_integer()
    assert fold_scale(0.3, 128) >= 0.3 * 128
    assert math.log2(fold_scale(0.3, 128)).is_integer()


def test_tree_reduce_single():
    rng = np.random.default_rng(6)
    acc = _fold(list(_partials(rng, n=3)), 8.0)
    assert tree_reduce([acc]) is acc
