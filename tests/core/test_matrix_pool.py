"""_MatrixPool: the bounded, per-process buffer pool behind the engine.

Regression tests for the two failure modes of the old module-global
dict: unbounded growth when one process runs many differently-shaped
training jobs, and fork-inherited buffers being shared (and scribbled
on) across processes.
"""

import numpy as np

from repro.core.engine import _MatrixPool, _pooled_matrix


class TestBounding:
    def test_reuses_same_shape(self):
        pool = _MatrixPool()
        a = pool.get((4, 7))
        b = pool.get((4, 7))
        assert a is b

    def test_lru_bound(self):
        pool = _MatrixPool()
        for i in range(pool.MAX_ENTRIES + 5):
            pool.get((i + 1, 3))
        assert len(pool) == pool.MAX_ENTRIES

    def test_lru_evicts_oldest(self):
        pool = _MatrixPool()
        first = pool.get((1, 3))
        for i in range(pool.MAX_ENTRIES):
            pool.get((i + 2, 3))
        # (1, 3) was the least recently used entry, so it was evicted and
        # a fresh buffer is allocated on re-request.
        again = pool.get((1, 3))
        assert again is not first

    def test_touch_refreshes_recency(self):
        pool = _MatrixPool()
        first = pool.get((1, 3))
        for i in range(pool.MAX_ENTRIES - 1):
            pool.get((i + 2, 3))
        pool.get((1, 3))  # refresh: now (2, 3) is the oldest
        pool.get((99, 3))  # evicts (2, 3), not (1, 3)
        assert pool.get((1, 3)) is first


class TestProcessKeying:
    def test_pid_change_resets(self):
        pool = _MatrixPool()
        inherited = pool.get((4, 7))
        # Simulate a fork: the child sees the parent's buffers but a
        # different os.getpid(); first touch must discard them.
        pool._pid = (pool._pid or 0) - 1
        fresh = pool.get((4, 7))
        assert fresh is not inherited
        assert len(pool) == 1


def test_pooled_matrix_shape_and_dtype():
    out = _pooled_matrix((5, 11))
    assert out.shape == (5, 11) and out.dtype == np.float64
    assert _pooled_matrix((5, 11)) is out
