"""Behavioural tests for each FL method (Algorithms 1-4 + DEFAULT)."""

import numpy as np
import pytest

from repro.core.methods import (
    Default,
    UldpAvg,
    UldpGroup,
    UldpNaive,
    UldpSgd,
    build_group_flags,
    resolve_group_size,
)
from repro.data import build_creditcard_benchmark
from repro.data.federated import FederatedDataset, SiloData
from repro.nn.model import build_tiny_mlp


@pytest.fixture()
def small_fed():
    return build_creditcard_benchmark(
        n_users=10, n_silos=3, n_records=300, n_test=60, seed=0
    )


def run_method(method, fed, rounds=2, seed=0, model=None):
    rng = np.random.default_rng(seed)
    if model is None:
        model = build_tiny_mlp(fed.test_x.shape[1], 8, 2, np.random.default_rng(1))
    method.prepare(fed, model, rng)
    params = model.get_flat_params()
    for t in range(rounds):
        params = method.round(t, params)
    return params


class TestDefault:
    def test_round_changes_params(self, small_fed):
        method = Default(local_epochs=1)
        before = build_tiny_mlp(30, 8, 2, np.random.default_rng(1)).get_flat_params()
        after = run_method(method, small_fed, rounds=1)
        assert not np.allclose(before, after)

    def test_not_private(self):
        method = Default()
        assert method.is_private is False
        assert method.epsilon(1e-5) is None

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            Default(global_lr=0.0)
        with pytest.raises(ValueError):
            Default(local_epochs=0)

    def test_round_before_prepare_raises(self):
        with pytest.raises(RuntimeError):
            Default().round(0, np.zeros(3))


class TestUldpNaive:
    def test_epsilon_matches_theorem1(self, small_fed):
        from repro.accounting.conversion import rdp_curve_to_dp
        from repro.accounting.rdp import gaussian_rdp_curve

        method = UldpNaive(noise_multiplier=5.0, local_epochs=1)
        run_method(method, small_fed, rounds=3)
        expected, _ = rdp_curve_to_dp(gaussian_rdp_curve(5.0, steps=3), 1e-5)
        assert method.epsilon(1e-5) == pytest.approx(expected)

    def test_zero_noise_deterministic_given_seed(self, small_fed):
        a = run_method(UldpNaive(noise_multiplier=0.0, local_epochs=1), small_fed, seed=5)
        b = run_method(UldpNaive(noise_multiplier=0.0, local_epochs=1), small_fed, seed=5)
        np.testing.assert_allclose(a, b)

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            UldpNaive(clip=0.0)
        with pytest.raises(ValueError):
            UldpNaive(noise_multiplier=-1.0)


class TestUldpGroup:
    def test_group_size_policies(self, small_fed):
        totals = small_fed.user_totals()
        assert resolve_group_size(small_fed, "max") == int(totals.max())
        assert resolve_group_size(small_fed, "median") == int(np.median(totals[totals > 0]))
        assert resolve_group_size(small_fed, 8) == 8
        with pytest.raises(ValueError):
            resolve_group_size(small_fed, "p99")
        with pytest.raises(ValueError):
            resolve_group_size(small_fed, 0)

    def test_flags_bound_user_contribution(self, small_fed):
        k = 4
        flags = build_group_flags(small_fed, k)
        filtered = small_fed.apply_flags(flags)
        assert filtered.user_totals().max() <= k

    def test_flags_max_keeps_everything(self, small_fed):
        k = int(small_fed.user_totals().max())
        flags = build_group_flags(small_fed, k)
        assert small_fed.apply_flags(flags).n_records == small_fed.n_records

    def test_flags_spread_across_silos(self):
        """Round-robin keeps records in multiple silos when possible."""
        silos = [
            SiloData(np.zeros((5, 2)), np.zeros(5), np.zeros(5, dtype=int)),
            SiloData(np.zeros((5, 2)), np.zeros(5), np.zeros(5, dtype=int)),
        ]
        fed = FederatedDataset(
            silos=silos, n_users=1, test_x=np.zeros((1, 2)), test_y=np.zeros(1),
            task="binary", name="t",
        )
        flags = build_group_flags(fed, 4)
        assert flags[0].sum() == 2 and flags[1].sum() == 2

    def test_group_epsilon_exceeds_record_level(self, small_fed):
        method = UldpGroup(
            group_size=4, noise_multiplier=5.0, local_steps=1, expected_batch_size=16
        )
        run_method(method, small_fed, rounds=2)
        assert method.epsilon(1e-5) > method.record_level_epsilon(1e-5)

    def test_display_name_resolves_policy(self, small_fed):
        method = UldpGroup(group_size="max", local_steps=1)
        rng = np.random.default_rng(0)
        model = build_tiny_mlp(30, 8, 2, rng)
        method.prepare(small_fed, model, rng)
        assert method.display_name == f"ULDP-GROUP-{int(small_fed.user_totals().max())}"

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            UldpGroup(clip=-1.0)
        with pytest.raises(ValueError):
            UldpGroup(local_steps=0)
        with pytest.raises(ValueError):
            UldpGroup(expected_batch_size=0)


class TestUldpAvg:
    def test_epsilon_matches_theorem3(self, small_fed):
        from repro.accounting.conversion import rdp_curve_to_dp
        from repro.accounting.rdp import gaussian_rdp_curve

        method = UldpAvg(noise_multiplier=5.0, local_epochs=1)
        run_method(method, small_fed, rounds=4)
        expected, _ = rdp_curve_to_dp(gaussian_rdp_curve(5.0, steps=4), 1e-5)
        assert method.epsilon(1e-5) == pytest.approx(expected)

    def test_subsampling_reduces_epsilon(self, small_fed):
        full = UldpAvg(noise_multiplier=5.0, local_epochs=1)
        run_method(full, small_fed, rounds=3)
        sub = UldpAvg(noise_multiplier=5.0, local_epochs=1, user_sample_rate=0.3)
        run_method(sub, small_fed, rounds=3)
        assert sub.epsilon(1e-5) < full.epsilon(1e-5)

    def test_display_names(self):
        assert UldpAvg(weighting="uniform").display_name == "ULDP-AVG"
        assert UldpAvg(weighting="proportional").display_name == "ULDP-AVG-w"

    def test_proportional_weights_used(self, small_fed):
        method = UldpAvg(weighting="proportional", local_epochs=1)
        rng = np.random.default_rng(0)
        model = build_tiny_mlp(30, 8, 2, rng)
        method.prepare(small_fed, model, rng)
        hist = small_fed.histogram().astype(float)
        totals = hist.sum(axis=0)
        expected = np.where(totals > 0, hist / np.where(totals > 0, totals, 1), 0.0)
        np.testing.assert_allclose(method.weights, expected)

    def test_default_global_lr_scales_with_size(self, small_fed):
        # Remark 3: eta_g = |S| * sqrt(|U| * Q).
        method = UldpAvg(local_epochs=4)
        rng = np.random.default_rng(0)
        method.prepare(small_fed, build_tiny_mlp(30, 8, 2, rng), rng)
        expected = small_fed.n_silos * np.sqrt(small_fed.n_users * 4)
        assert method.global_lr == pytest.approx(expected)

    def test_clip_stats_recorded(self, small_fed):
        method = UldpAvg(local_epochs=1, record_clip_stats=True, noise_multiplier=0.0)
        run_method(method, small_fed, rounds=2)
        assert len(method.clip_factor_history) == 2
        factors = method.clip_factor_history[0]
        present = ~np.isnan(factors)
        assert present.any()
        assert np.all(factors[present] <= 1.0 + 1e-12)

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            UldpAvg(weighting="learned")
        with pytest.raises(ValueError):
            UldpAvg(user_sample_rate=0.0)
        with pytest.raises(ValueError):
            UldpAvg(user_sample_rate=1.5)
        with pytest.raises(ValueError):
            UldpAvg(local_epochs=0)


class TestUldpSgd:
    def test_round_descends_loss_without_noise(self, small_fed):
        from repro.core.metrics import evaluate_model

        rng = np.random.default_rng(2)
        model = build_tiny_mlp(30, 8, 2, np.random.default_rng(3))
        method = UldpSgd(noise_multiplier=0.0, clip=10.0)
        method.prepare(small_fed, model, rng)
        params = model.get_flat_params()
        model.set_flat_params(params)
        before = evaluate_model(small_fed, model)["loss"]
        for t in range(10):
            params = method.round(t, params)
        model.set_flat_params(params)
        after = evaluate_model(small_fed, model)["loss"]
        assert after < before

    def test_epsilon_same_formula_as_avg(self, small_fed):
        sgd = UldpSgd(noise_multiplier=5.0)
        avg = UldpAvg(noise_multiplier=5.0, local_epochs=1)
        run_method(sgd, small_fed, rounds=2, seed=1)
        run_method(avg, small_fed, rounds=2, seed=2)
        assert sgd.epsilon(1e-5) == pytest.approx(avg.epsilon(1e-5))

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            UldpSgd(weighting="magic")
        with pytest.raises(ValueError):
            UldpSgd(user_sample_rate=2.0)
