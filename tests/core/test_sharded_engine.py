"""ShardedEngine: plans, kernels, and the worker-count bit-identity claim.

The contract under test (docs/scaleout.md): for a fixed ordered job
list, the reduced aggregate is byte-identical for any worker count and
any micro-batch-aligned shard size, because (a) every kernel consumes
jobs in fixed MICRO_BATCH chunks, (b) chunk partials fold into a
BinnedSum whose merge is exact, and (c) results reduce in shard order.
"""

import numpy as np
import pytest

from repro.core.engine import (
    MICRO_BATCH,
    EngineConfig,
    LocalJob,
    ShardedEngine,
    fold_weighted_rows,
    make_shard_task,
    plan_shards,
    run_shard_task,
)
from repro.core.reduce import BinnedSum, fold_scale
from repro.nn import build_logistic


def _jobs(rng, n, d=6, rows=5):
    return [
        LocalJob(
            x=rng.standard_normal((rows, d)),
            y=(rng.random(rows) < 0.5).astype(np.float64),
        )
        for _ in range(n)
    ]


def _tasks(model, params, jobs, weights, shard_size, mode="delta"):
    scale = fold_scale(1.0, MICRO_BATCH)
    out = []
    for i, (a, b) in enumerate(plan_shards(len(jobs), shard_size)):
        out.append(
            make_shard_task(
                mode=mode,
                model=model,
                task="binary",
                params=params,
                jobs=jobs[a:b],
                weights=weights[a:b],
                clip=1.0,
                scale=scale,
                silo=0,
                shard=i,
                lr=0.05,
                epochs=1,
            )
        )
    return out


class TestPlanShards:
    def test_alignment(self):
        for n in (1, MICRO_BATCH - 1, MICRO_BATCH, MICRO_BATCH + 1, 1000):
            for size in (MICRO_BATCH, 2 * MICRO_BATCH, 5 * MICRO_BATCH):
                spans = plan_shards(n, size)
                assert spans[0][0] == 0 and spans[-1][1] == n
                for (a, b), (c, _) in zip(spans, spans[1:]):
                    assert b == c
                    assert a % MICRO_BATCH == 0
                assert all(b - a <= size for a, b in spans)

    def test_unaligned_size_rounds_up(self):
        # plan_shards aligns internally, so any caller-supplied size
        # yields MICRO_BATCH-aligned boundaries.
        spans = plan_shards(3 * MICRO_BATCH, MICRO_BATCH + 1)
        assert spans == [(0, 2 * MICRO_BATCH), (2 * MICRO_BATCH, 3 * MICRO_BATCH)]

    def test_empty(self):
        assert plan_shards(0, MICRO_BATCH) == []

    def test_config_aligns_shard_size(self):
        cfg = EngineConfig(shard_size=1)
        assert cfg.aligned_shard_size == MICRO_BATCH
        cfg = EngineConfig(shard_size=MICRO_BATCH + 1)
        assert cfg.aligned_shard_size == 2 * MICRO_BATCH


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(workers=-1)
        with pytest.raises(ValueError):
            EngineConfig(shard_size=0)
        with pytest.raises(ValueError):
            EngineConfig(backend="jax")


class TestMakeShardTask:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            make_shard_task(
                mode="nope", model=None, task="binary", params=np.zeros(1),
                jobs=[], weights=np.zeros(0), clip=1.0, scale=1.0,
                silo=0, shard=0,
            )

    def test_loader_descriptor_resolves(self):
        rng = np.random.default_rng(0)
        jobs = _jobs(rng, 3)
        import repro.core.engine as eng

        eng._TEST_JOBS = jobs  # module attribute the loader path imports
        try:
            model = build_logistic(np.random.default_rng(1), in_features=6)
            params = model.get_flat_params()
            task = make_shard_task(
                mode="delta", model=model, task="binary", params=params,
                jobs={"loader": "repro.core.engine:_resolve_test_jobs_probe",
                      "spec": {"n": 3}},
                weights=np.full(3, 0.1), clip=1.0,
                scale=fold_scale(1.0, MICRO_BATCH), silo=0, shard=0,
                lr=0.05,
            )
            eng._resolve_test_jobs_probe = lambda spec: eng._TEST_JOBS[: spec["n"]]
            inline = make_shard_task(
                mode="delta", model=model, task="binary", params=params,
                jobs=jobs, weights=np.full(3, 0.1), clip=1.0,
                scale=fold_scale(1.0, MICRO_BATCH), silo=0, shard=0,
                lr=0.05,
            )
            a = run_shard_task(task)
            b = run_shard_task(inline)
            assert BinnedSum.from_state(a["state"]).total().tobytes() == \
                BinnedSum.from_state(b["state"]).total().tobytes()
        finally:
            del eng._TEST_JOBS
            del eng._resolve_test_jobs_probe

    def test_weight_job_mismatch(self):
        rng = np.random.default_rng(0)
        model = build_logistic(np.random.default_rng(1), in_features=6)
        task = make_shard_task(
            mode="delta", model=model, task="binary",
            params=model.get_flat_params(), jobs=_jobs(rng, 3),
            weights=np.full(2, 0.1), clip=1.0,
            scale=fold_scale(1.0, MICRO_BATCH), silo=0, shard=0, lr=0.05,
        )
        with pytest.raises(ValueError, match="weights"):
            run_shard_task(task)


class TestBitIdentity:
    @pytest.fixture()
    def setup(self):
        rng = np.random.default_rng(7)
        jobs = _jobs(rng, 300)
        model = build_logistic(np.random.default_rng(1), in_features=6)
        params = model.get_flat_params()
        weights = np.random.default_rng(2).uniform(0.0, 1.0 / 300, 300)
        return model, params, jobs, weights

    def _total(self, tasks, workers, shard_size):
        engine = ShardedEngine(EngineConfig(workers=workers, shard_size=shard_size))
        try:
            return engine.reduce(engine.run_tasks(tasks)).total()
        finally:
            engine.close()

    @pytest.mark.parametrize("mode", ["delta", "gradient"])
    def test_workers_and_shard_size_invariance(self, setup, mode):
        model, params, jobs, weights = setup
        ref_tasks = _tasks(model, params, jobs, weights, MICRO_BATCH, mode=mode)
        ref = self._total(ref_tasks, 0, MICRO_BATCH)
        for workers, size in [(0, 2 * MICRO_BATCH), (2, MICRO_BATCH), (2, 4096)]:
            tasks = _tasks(model, params, jobs, weights, size, mode=mode)
            assert self._total(tasks, workers, size).tobytes() == ref.tobytes(), (
                f"{mode}: workers={workers} shard_size={size} diverged"
            )

    def test_matches_direct_fold(self, setup):
        # The streamed shard path equals folding the materialised clipped
        # delta matrix with the same chunking -- the oracle the in-process
        # _aggregate path uses.
        from repro.core.engine import batched_clipped_local_deltas

        model, params, jobs, weights = setup
        rows, _ = batched_clipped_local_deltas(
            model, "binary", params, jobs, lr=0.05, epochs=1, clip=1.0
        )
        from repro.nn.backend import get_backend

        acc = BinnedSum(params.size, fold_scale(1.0, MICRO_BATCH))
        fold_weighted_rows(acc, weights, rows, get_backend("numpy"))
        tasks = _tasks(model, params, jobs, weights, 4096)
        assert self._total(tasks, 0, 4096).tobytes() == acc.total().tobytes()


def test_engine_reuse_and_close():
    engine = ShardedEngine(EngineConfig(workers=2, shard_size=MICRO_BATCH))
    assert engine.run_tasks([]) == []
    engine.close()
    engine.close()  # idempotent
