"""Tests for the Trainer, history bookkeeping, and model selection."""

import numpy as np
import pytest

from repro.core import Default, Trainer, UldpAvg, UldpNaive, default_model_for
from repro.core.metrics import make_loss, metric_name, output_width
from repro.data import (
    build_creditcard_benchmark,
    build_heartdisease_benchmark,
    build_mnist_benchmark,
    build_tcgabrca_benchmark,
)
from repro.nn.losses import BCEWithLogitsLoss, CoxPHLoss, SoftmaxCrossEntropyLoss
from repro.nn.model import build_tiny_mlp


@pytest.fixture()
def cc_fed():
    return build_creditcard_benchmark(
        n_users=10, n_silos=3, n_records=240, n_test=60, seed=0
    )


class TestTrainerBasics:
    def test_history_length_and_fields(self, cc_fed):
        model = build_tiny_mlp(30, 8, 2, np.random.default_rng(0))
        trainer = Trainer(cc_fed, UldpAvg(local_epochs=1), rounds=3, model=model, seed=0)
        history = trainer.run()
        assert len(history.records) == 3
        assert history.final.round == 3
        assert history.final.metric_name == "accuracy"
        assert history.final.epsilon is not None

    def test_eval_every(self, cc_fed):
        model = build_tiny_mlp(30, 8, 2, np.random.default_rng(0))
        trainer = Trainer(
            cc_fed, UldpAvg(local_epochs=1), rounds=5, model=model, seed=0, eval_every=2
        )
        history = trainer.run()
        assert [r.round for r in history.records] == [2, 4, 5]

    def test_epsilon_series_increases(self, cc_fed):
        model = build_tiny_mlp(30, 8, 2, np.random.default_rng(0))
        trainer = Trainer(cc_fed, UldpNaive(local_epochs=1), rounds=4, model=model, seed=0)
        eps = trainer.run().series("epsilon")
        assert all(b > a for a, b in zip(eps, eps[1:]))

    def test_nonprivate_epsilon_is_none(self, cc_fed):
        model = build_tiny_mlp(30, 8, 2, np.random.default_rng(0))
        history = Trainer(Default(local_epochs=1) and cc_fed, Default(local_epochs=1),
                          rounds=2, model=model, seed=0).run()
        assert history.final.epsilon is None
        assert "non-private" in history.summary()

    def test_series_rejects_unknown_key(self, cc_fed):
        model = build_tiny_mlp(30, 8, 2, np.random.default_rng(0))
        history = Trainer(cc_fed, Default(local_epochs=1), rounds=1, model=model).run()
        with pytest.raises(ValueError):
            history.series("f1")

    def test_empty_history_final_raises(self):
        from repro.core.trainer import TrainingHistory

        with pytest.raises(ValueError):
            _ = TrainingHistory(method="m", dataset="d").final

    def test_rejects_bad_arguments(self, cc_fed):
        model = build_tiny_mlp(30, 8, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            Trainer(cc_fed, Default(), rounds=0, model=model)
        with pytest.raises(ValueError):
            Trainer(cc_fed, Default(), rounds=1, model=model, delta=0.0)
        with pytest.raises(ValueError):
            Trainer(cc_fed, Default(), rounds=1, model=model, eval_every=0)

    def test_seed_reproducibility(self, cc_fed):
        def run(seed):
            model = build_tiny_mlp(30, 8, 2, np.random.default_rng(7))
            return Trainer(
                cc_fed, UldpAvg(local_epochs=1, noise_multiplier=1.0),
                rounds=2, model=model, seed=seed,
            ).run().final.metric

        assert run(3) == run(3)


class TestDefaultModelSelection:
    def test_creditcard_gets_mlp(self, cc_fed):
        model = default_model_for(cc_fed, np.random.default_rng(0))
        assert 3500 <= model.num_params <= 4500

    def test_mnist_gets_cnn(self):
        fed = build_mnist_benchmark(n_users=5, n_silos=2, n_records=60, n_test=20, seed=0)
        model = default_model_for(fed, np.random.default_rng(0))
        assert model.num_params > 10_000

    def test_heartdisease_gets_logistic(self):
        fed = build_heartdisease_benchmark(n_users=10, seed=0)
        model = default_model_for(fed, np.random.default_rng(0))
        assert model.num_params < 100
        assert output_width(model) == 1

    def test_tcga_gets_cox(self):
        fed = build_tcgabrca_benchmark(n_users=10, seed=0)
        model = default_model_for(fed, np.random.default_rng(0))
        assert model.num_params < 100
        assert fed.task == "survival"


class TestLossSelection:
    def test_by_task_and_width(self, cc_fed):
        mlp = build_tiny_mlp(30, 4, 2, np.random.default_rng(0))
        assert isinstance(make_loss("binary", mlp), SoftmaxCrossEntropyLoss)
        logistic = build_tiny_mlp(13, 4, 1, np.random.default_rng(0))
        assert isinstance(make_loss("binary", logistic), BCEWithLogitsLoss)
        assert isinstance(make_loss("survival", logistic), CoxPHLoss)
        with pytest.raises(ValueError):
            make_loss("ranking", mlp)

    def test_metric_names(self):
        assert metric_name("survival") == "c_index"
        assert metric_name("binary") == "accuracy"


class TestEndToEndSurvival:
    def test_tcga_trainer_produces_cindex(self):
        fed = build_tcgabrca_benchmark(n_users=8, seed=0)
        trainer = Trainer(
            fed, UldpAvg(local_epochs=1, noise_multiplier=1.0, clip=5.0),
            rounds=2, seed=0,
        )
        history = trainer.run()
        assert history.final.metric_name == "c_index"
        assert 0.0 <= history.final.metric <= 1.0
