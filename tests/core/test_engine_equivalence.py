"""Differential tests: loop vs. vectorized engines produce identical rounds.

The loop engine is the seed implementation (one tiny training run per
(silo, user) pair) and serves as the correctness oracle; the vectorized
engine must reproduce its round aggregates exactly -- same RNG stream,
same clipping, same noise -- up to floating-point reassociation
(atol <= 1e-10), for every ULDP method and every task type.
"""

import numpy as np
import pytest

from repro.core import Default, UldpAvg, UldpGroup, UldpNaive, UldpSgd
from repro.data import build_creditcard_benchmark, build_mnist_benchmark, build_tcgabrca_benchmark
from repro.nn.model import build_cox_linear, build_mnist_cnn, build_tiny_mlp

ATOL = 1e-10


@pytest.fixture(scope="module")
def small_fed():
    return build_creditcard_benchmark(
        n_users=12, n_silos=3, n_records=300, n_test=60, seed=0, distribution="zipf"
    )


@pytest.fixture(scope="module")
def survival_fed():
    return build_tcgabrca_benchmark(n_users=10, seed=0)


@pytest.fixture(scope="module")
def image_fed():
    return build_mnist_benchmark(n_users=15, n_silos=3, n_records=240, n_test=40, seed=1)


def run_rounds(method, fed, rounds=2, seed=0, model_builder=None):
    """Train ``rounds`` rounds from a fixed model/seed; returns final params."""
    rng = np.random.default_rng(seed)
    build = model_builder or (
        lambda r: build_tiny_mlp(fed.test_x.shape[1], 8, 2, r)
    )
    model = build(np.random.default_rng(1))
    method.prepare(fed, model, rng)
    params = model.get_flat_params()
    for t in range(rounds):
        params = method.round(t, params)
    return params


def assert_engines_agree(make_method, fed, rounds=2, model_builder=None):
    loop = run_rounds(make_method("loop"), fed, rounds, model_builder=model_builder)
    vec = run_rounds(
        make_method("vectorized"), fed, rounds, model_builder=model_builder
    )
    np.testing.assert_allclose(vec, loop, atol=ATOL, rtol=0)


ULDP_AVG_CONFIGS = [
    pytest.param(dict(local_epochs=1), id="single-step"),
    pytest.param(dict(local_epochs=2), id="multi-epoch"),
    pytest.param(dict(local_epochs=2, batch_size=8), id="minibatch"),
    pytest.param(dict(local_epochs=1, weighting="proportional"), id="proportional"),
    pytest.param(
        dict(local_epochs=1, user_sample_rate=0.5), id="subsampled"
    ),
    pytest.param(
        dict(local_epochs=2, batch_size=8, user_sample_rate=0.5),
        id="minibatch-subsampled",
    ),
]


@pytest.mark.parametrize("kwargs", ULDP_AVG_CONFIGS)
def test_uldp_avg_engines_agree(small_fed, kwargs):
    assert_engines_agree(lambda e: UldpAvg(engine=e, **kwargs), small_fed)


def test_uldp_sgd_engines_agree(small_fed):
    assert_engines_agree(lambda e: UldpSgd(engine=e), small_fed)


def test_uldp_naive_engines_agree(small_fed):
    assert_engines_agree(lambda e: UldpNaive(engine=e), small_fed)


def test_uldp_group_engines_agree(small_fed):
    assert_engines_agree(
        lambda e: UldpGroup(
            group_size=4, local_steps=2, expected_batch_size=16, engine=e
        ),
        small_fed,
    )


def test_default_engines_agree(small_fed):
    assert_engines_agree(lambda e: Default(engine=e), small_fed)


def test_clip_factor_stats_agree(small_fed):
    """record_clip_stats yields the same per-(silo, user) factors."""
    loop = UldpAvg(local_epochs=1, record_clip_stats=True, noise_multiplier=0.0,
                   engine="loop")
    vec = UldpAvg(local_epochs=1, record_clip_stats=True, noise_multiplier=0.0,
                  engine="vectorized")
    run_rounds(loop, small_fed)
    run_rounds(vec, small_fed)
    np.testing.assert_allclose(
        np.array(vec.clip_factor_history),
        np.array(loop.clip_factor_history),
        atol=ATOL, rtol=0,
    )


@pytest.mark.parametrize(
    "make_method",
    [
        pytest.param(lambda e: UldpAvg(local_epochs=1, engine=e), id="avg"),
        pytest.param(lambda e: UldpSgd(engine=e), id="sgd"),
        pytest.param(
            lambda e: UldpGroup(
                group_size=4, local_steps=1, expected_batch_size=8, engine=e
            ),
            id="group",
        ),
    ],
)
def test_survival_engines_agree(survival_fed, make_method):
    """Cox partial likelihood, including degenerate (event-free) users."""
    assert_engines_agree(
        make_method,
        survival_fed,
        model_builder=lambda r: build_cox_linear(
            r, in_features=survival_fed.test_x.shape[1]
        ),
    )


@pytest.mark.parametrize(
    "make_method",
    [
        pytest.param(lambda e: UldpAvg(local_epochs=1, engine=e), id="avg-q1"),
        pytest.param(lambda e: UldpAvg(local_epochs=2, engine=e), id="avg-q2"),
        pytest.param(
            lambda e: UldpGroup(
                group_size=2, local_steps=1, expected_batch_size=64, engine=e
            ),
            id="group",
        ),
    ],
)
def test_cnn_engines_agree(image_fed, make_method):
    """The convolutional (NHWC shared-weight) engine path on the MNIST CNN."""
    assert_engines_agree(
        make_method,
        image_fed,
        model_builder=lambda r: build_mnist_cnn(r, image_size=14),
    )


def test_invalid_engine_rejected():
    with pytest.raises(ValueError):
        UldpAvg(engine="gpu")
