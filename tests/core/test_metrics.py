"""Tests for task-dependent evaluation, including degenerate models."""

import numpy as np
import pytest

from repro.core.metrics import evaluate_model, make_loss, metric_name, output_width
from repro.data import build_creditcard_benchmark, build_tcgabrca_benchmark
from repro.nn.layers import ReLU
from repro.nn.model import Sequential, build_tiny_mlp


class TestOutputWidth:
    def test_mlp(self):
        model = build_tiny_mlp(4, 8, 3, np.random.default_rng(0))
        assert output_width(model) == 3

    def test_no_linear_layer_rejected(self):
        with pytest.raises(ValueError):
            output_width(Sequential([ReLU()]))


class TestEvaluateModel:
    def test_classification_keys(self):
        fed = build_creditcard_benchmark(n_users=5, n_silos=2, n_records=60,
                                         n_test=30, seed=0)
        model = build_tiny_mlp(30, 4, 2, np.random.default_rng(0))
        scores = evaluate_model(fed, model)
        assert set(scores) == {"loss", "accuracy"}
        assert 0 <= scores["accuracy"] <= 1

    def test_survival_keys(self):
        fed = build_tcgabrca_benchmark(n_users=6, silo_sizes=(40, 40), seed=0)
        model = build_tiny_mlp(39, 4, 1, np.random.default_rng(0))
        scores = evaluate_model(fed, model)
        assert set(scores) == {"loss", "c_index"}

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_diverged_classifier_reports_inf_loss(self):
        fed = build_creditcard_benchmark(n_users=5, n_silos=2, n_records=60,
                                         n_test=30, seed=0)
        model = build_tiny_mlp(30, 4, 2, np.random.default_rng(0))
        model.set_flat_params(np.full(model.num_params, np.inf))
        scores = evaluate_model(fed, model)
        assert scores["loss"] == float("inf")
        assert scores["accuracy"] == 0.0

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_diverged_survival_reports_chance(self):
        fed = build_tcgabrca_benchmark(n_users=6, silo_sizes=(40, 40), seed=0)
        model = build_tiny_mlp(39, 4, 1, np.random.default_rng(0))
        model.set_flat_params(np.full(model.num_params, np.nan))
        scores = evaluate_model(fed, model)
        assert scores["loss"] == float("inf")
        assert scores["c_index"] == 0.5


class TestTopLevelExports:
    def test_lazy_exports_resolve(self):
        import repro

        assert repro.SecureUldpAvg.__name__ == "SecureUldpAvg"
        assert callable(repro.calibrate_noise_multiplier)
        assert callable(repro.run_experiment)

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            _ = repro.NotAThing

    def test_dir_includes_exports(self):
        import repro

        names = dir(repro)
        assert "Trainer" in names and "UldpAvg" in names
