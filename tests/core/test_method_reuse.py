"""Regression: Trainer must not mutate the caller's method object.

The seed Trainer assigned ``method.compression = compression``, so a
method instance reused across two trainers silently inherited the first
trainer's compression spec.  The trainer now passes the override through
``prepare(compression=...)`` and the method records it in
``active_compression`` only.
"""

import numpy as np

from repro.compress import CompressionSpec
from repro.core import Trainer, UldpAvg
from repro.data import build_creditcard_benchmark

LOSSY = CompressionSpec(sparsify="topk", fraction=0.1)


def _fed(seed=0):
    return build_creditcard_benchmark(
        n_users=8, n_silos=2, distribution="zipf", n_records=120,
        n_test=60, seed=seed,
    )


class TestMethodReuseAcrossTrainers:
    def test_method_object_not_mutated(self):
        method = UldpAvg(noise_multiplier=1.0, local_epochs=1)
        assert method.compression is None
        Trainer(_fed(), method, rounds=1, seed=0, compression=LOSSY)
        # The trainer-level spec must not be written back onto the method.
        assert method.compression is None
        assert method.active_compression == LOSSY

    def test_second_trainer_does_not_inherit_compression(self):
        method = UldpAvg(noise_multiplier=1.0, local_epochs=1)
        compressed = Trainer(_fed(), method, rounds=2, seed=0, compression=LOSSY)
        compressed.run()
        # Rebinding the same instance without compression must be dense.
        dense = Trainer(_fed(), method, rounds=2, seed=0)
        assert method.active_compression is None
        assert method.compressor is None
        history = dense.run()
        up, _ = history.comm_summary()
        # Dense float64 payloads: n_silos * params * 8 bytes per round.
        expected = 2 * compressed.model.num_params * 8
        assert up == expected

    def test_dense_rerun_matches_fresh_method(self):
        """A reused instance trains exactly like a never-compressed one.

        The training trajectory (metrics, loss, participation, bytes) must
        match a fresh method bit for bit; only epsilon differs, because the
        method's accountant deliberately *accumulates* across bindings
        (reusing a method on the same data keeps consuming its budget).
        """
        reused = UldpAvg(noise_multiplier=1.0, local_epochs=1)
        Trainer(_fed(), reused, rounds=1, seed=0, compression=LOSSY).run()
        reused_history = Trainer(_fed(), reused, rounds=2, seed=0).run()

        fresh = UldpAvg(noise_multiplier=1.0, local_epochs=1)
        fresh_history = Trainer(_fed(), fresh, rounds=2, seed=0).run()

        for a, b in zip(reused_history.records, fresh_history.records):
            assert (a.metric, a.loss) == (b.metric, b.loss)
            assert a.epsilon > b.epsilon  # budget carried over, honestly
        assert reused_history.comm == fresh_history.comm
        assert reused_history.participation == fresh_history.participation

    def test_method_level_spec_still_honoured(self):
        """A spec passed at construction keeps applying without a trainer
        override (and survives rebinding)."""
        method = UldpAvg(noise_multiplier=1.0, local_epochs=1, compression=LOSSY)
        trainer = Trainer(_fed(), method, rounds=1, seed=0)
        assert method.active_compression == LOSSY
        assert method.compressor is not None
        history = trainer.run()
        up, _ = history.comm_summary()
        assert up < trainer.model.num_params * 8  # actually compressed

    def test_trainer_override_beats_method_spec_without_clobbering(self):
        method_spec = CompressionSpec(sparsify="randk", fraction=0.5)
        override = CompressionSpec(sparsify="topk", fraction=0.1)
        method = UldpAvg(noise_multiplier=1.0, local_epochs=1,
                         compression=method_spec)
        Trainer(_fed(), method, rounds=1, seed=0, compression=override)
        assert method.active_compression == override
        assert method.compression == method_spec  # untouched
