"""Tests for the clipping-weight strategies (Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.weighting import (
    RoundParticipation,
    participation_weights,
    proportional_weights,
    subsample_weights,
    uniform_weights,
    validate_weights,
)


class TestUniformWeights:
    def test_values_and_shape(self):
        w = uniform_weights(5, 10)
        assert w.shape == (5, 10)
        assert np.all(w == 0.2)

    def test_column_sums_equal_one(self):
        w = uniform_weights(4, 7)
        np.testing.assert_allclose(w.sum(axis=0), 1.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            uniform_weights(0, 5)


class TestProportionalWeights:
    def test_eq3_hand_example(self):
        hist = np.array([[3, 0], [1, 5]])
        w = proportional_weights(hist)
        np.testing.assert_allclose(w, [[0.75, 0.0], [0.25, 1.0]])

    @given(
        st.integers(2, 6), st.integers(2, 20),
    )
    @settings(max_examples=30)
    def test_column_sums(self, n_silos, n_users):
        rng = np.random.default_rng(n_silos * 100 + n_users)
        hist = rng.integers(0, 10, size=(n_silos, n_users))
        w = proportional_weights(hist)
        totals = hist.sum(axis=0)
        sums = w.sum(axis=0)
        np.testing.assert_allclose(sums[totals > 0], 1.0)
        np.testing.assert_allclose(sums[totals == 0], 0.0)

    def test_absent_user_gets_zero(self):
        hist = np.array([[0], [0]])
        assert np.all(proportional_weights(hist) == 0.0)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            proportional_weights(np.array([[-1, 2]]))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            proportional_weights(np.array([1, 2, 3]))


class TestValidateWeights:
    def test_accepts_valid(self):
        validate_weights(uniform_weights(3, 4))
        validate_weights(proportional_weights(np.array([[2, 1], [0, 1]])))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_weights(np.array([[-0.1], [1.1]]))

    def test_rejects_oversized_column(self):
        with pytest.raises(ValueError):
            validate_weights(np.array([[0.7], [0.7]]))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            validate_weights(np.ones(3))

    def test_rejects_nan_entries(self):
        # Regression: NaN compares False against every bound, so both the
        # sign check and the column-sum check silently passed NaN matrices.
        with pytest.raises(ValueError, match="finite"):
            validate_weights(np.full((2, 3), np.nan))

    def test_rejects_single_nan_among_valid(self):
        w = uniform_weights(2, 3)
        w[0, 1] = np.nan
        with pytest.raises(ValueError, match="finite"):
            validate_weights(w)

    def test_rejects_infinite_entries(self):
        w = uniform_weights(2, 3)
        w[1, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            validate_weights(w)


class TestSubsampleWeights:
    def test_zeroes_unsampled_columns(self):
        w = uniform_weights(2, 4)
        sub = subsample_weights(w, np.array([1, 3]))
        np.testing.assert_allclose(sub[:, [1, 3]], 0.5)
        np.testing.assert_allclose(sub[:, [0, 2]], 0.0)

    def test_original_untouched(self):
        w = uniform_weights(2, 3)
        subsample_weights(w, np.array([0]))
        assert np.all(w == 0.5)

    def test_empty_sample_zeroes_all(self):
        sub = subsample_weights(uniform_weights(2, 3), np.array([], dtype=int))
        assert np.all(sub == 0.0)

    def test_still_valid_after_subsampling(self):
        w = proportional_weights(np.array([[3, 2, 0], [1, 0, 4]]))
        validate_weights(subsample_weights(w, np.array([0, 2])))

    def test_rejects_negative_user_ids(self):
        # Regression: numpy fancy indexing wraps -1 to the last column, so
        # a negative id silently kept the *wrong* user's weights.
        with pytest.raises(ValueError, match=r"\[0, 4\)"):
            subsample_weights(uniform_weights(2, 4), np.array([-1, 2]))

    def test_rejects_out_of_range_user_ids(self):
        with pytest.raises(ValueError, match=r"\[0, 4\)"):
            subsample_weights(uniform_weights(2, 4), np.array([0, 4]))


class TestCarryoverRequiresGains:
    def test_carryover_without_gains_raises(self):
        # Regression: carryover with silo_gain=None silently degraded to
        # renorm="none" inside participation_weights.
        with pytest.raises(ValueError, match="carryover"):
            RoundParticipation(
                silo_mask=np.ones(3, dtype=bool), renorm="carryover"
            )

    def test_carryover_with_gains_still_works(self):
        p = RoundParticipation(
            silo_mask=np.ones(2, dtype=bool),
            silo_gain=np.array([2.0, 1.0]),
            renorm="carryover",
        )
        w = participation_weights(np.full((2, 3), 0.5), p)
        np.testing.assert_allclose(w[0], 1.0)
        np.testing.assert_allclose(w[1], 0.5)
