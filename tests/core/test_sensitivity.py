"""User-level sensitivity invariants (Theorems 1 and 3, Figure 3).

These tests verify the paper's central claim *empirically* using the
library's sensitivity probes (:mod:`repro.core.probes`): with noise
disabled, swapping ALL records of one user changes the cross-silo aggregate
by at most the claimed sensitivity (C for ULDP-AVG/SGD, C*|S| for
ULDP-NAIVE), no matter how many records the user owns.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.methods import UldpAvg, UldpNaive, UldpSgd
from repro.core.probes import (
    HEAVY_USER_LAYOUT,
    N_USERS,
    make_fed,
    prenoise_aggregate,
    replace_user_records,
)
from repro.nn.model import build_tiny_mlp


class TestUldpAvgSensitivity:
    @pytest.mark.parametrize("weighting", ["uniform", "proportional"])
    def test_heavy_user_swap_bounded_by_clip(self, weighting):
        clip = 0.5
        fed_a = make_fed(HEAVY_USER_LAYOUT, N_USERS, seed=0)
        fed_b = replace_user_records(fed_a, user=0, seed=99)
        # global_lr=1 and no averaging denominators: compare raw aggregates.
        agg_a = prenoise_aggregate(
            UldpAvg, fed_a, clip, weighting=weighting, global_lr=1.0, local_lr=0.3,
        )
        agg_b = prenoise_aggregate(
            UldpAvg, fed_b, clip, weighting=weighting, global_lr=1.0, local_lr=0.3,
        )
        n = fed_a.n_users * fed_a.n_silos  # server divides by |U||S|
        sensitivity = np.linalg.norm((agg_a - agg_b) * n)
        assert sensitivity <= clip + 1e-9

    @given(st.integers(0, 3))
    @settings(max_examples=8, deadline=None)
    def test_any_user_swap_bounded(self, user):
        clip = 1.0
        fed_a = make_fed(HEAVY_USER_LAYOUT, N_USERS, seed=3)
        fed_b = replace_user_records(fed_a, user=user, seed=100 + user)
        agg_a = prenoise_aggregate(UldpAvg, fed_a, clip, global_lr=1.0, local_lr=0.5)
        agg_b = prenoise_aggregate(UldpAvg, fed_b, clip, global_lr=1.0, local_lr=0.5)
        n = fed_a.n_users * fed_a.n_silos
        assert np.linalg.norm((agg_a - agg_b) * n) <= clip + 1e-9

    def test_unweighted_clipping_would_violate_bound(self):
        """Sanity: without the weight w=1/|S|, a cross-silo user would
        contribute up to C per *silo* -- confirming the weights are what
        delivers user-level sensitivity C."""
        clip = 0.5
        fed = make_fed(HEAVY_USER_LAYOUT, N_USERS, seed=5)
        # The user appears in all 3 silos, so unweighted worst case is 3C.
        assert fed.n_silos * clip > clip


class TestUldpSgdSensitivity:
    def test_heavy_user_swap_bounded_by_clip(self):
        clip = 0.8
        fed_a = make_fed(HEAVY_USER_LAYOUT, N_USERS, seed=7)
        fed_b = replace_user_records(fed_a, user=0, seed=123)
        agg_a = prenoise_aggregate(UldpSgd, fed_a, clip, global_lr=1.0)
        agg_b = prenoise_aggregate(UldpSgd, fed_b, clip, global_lr=1.0)
        n = fed_a.n_users * fed_a.n_silos
        assert np.linalg.norm((agg_a - agg_b) * n) <= clip + 1e-9


class TestUldpNaiveSensitivity:
    def test_heavy_user_swap_bounded_by_clip_times_silos(self):
        clip = 0.5
        fed_a = make_fed(HEAVY_USER_LAYOUT, N_USERS, seed=9)
        fed_b = replace_user_records(fed_a, user=0, seed=321)
        agg_a = prenoise_aggregate(
            UldpNaive, fed_a, clip, global_lr=1.0, local_lr=0.3, local_epochs=1,
        )
        agg_b = prenoise_aggregate(
            UldpNaive, fed_b, clip, global_lr=1.0, local_lr=0.3, local_epochs=1,
        )
        n_silos = fed_a.n_silos  # server divides by |S|
        sensitivity = np.linalg.norm((agg_a - agg_b) * n_silos)
        assert sensitivity <= clip * n_silos + 1e-9
        # ...and the naive bound is genuinely looser than C: the heavy user
        # can shift more than one silo's clipped delta.
        assert sensitivity > clip / 10


class TestSubsampledSensitivity:
    def test_unsampled_users_contribute_nothing(self):
        """Algorithm 4: zeroed weights remove the user from the round."""
        clip = 1.0
        fed = make_fed(HEAVY_USER_LAYOUT, N_USERS, seed=11)
        rng = np.random.default_rng(0)
        model = build_tiny_mlp(4, 6, 2, np.random.default_rng(42))
        method = UldpAvg(clip=clip, noise_multiplier=0.0, global_lr=1.0,
                         local_lr=0.3, user_sample_rate=1e-12)
        method.prepare(fed, model, rng)
        params = model.get_flat_params()
        new_params = method.round(0, params)
        # With (almost surely) nobody sampled and zero noise, nothing moves.
        np.testing.assert_allclose(new_params, params)
