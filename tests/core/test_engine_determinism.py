"""Satellite determinism suite: worker count never changes the run.

The headline guarantee of the sharded execution layer: the same RunSpec
trained with ``[engine]`` workers=0 / 1 / 4 and different shard sizes
produces a byte-identical TrainingHistory -- round metrics, epsilon,
the comm ledger, participation, and the final model parameters.

The comparison deliberately covers the *semantic* history (and raw
param bytes), not ``spec``/``spec_hash``: the ``[engine]`` section is
part of a run's identity hash by design (it names the execution plan),
so two configs legitimately hash differently while training the same
model.
"""

import numpy as np
import pytest

from repro.api.runner import build_trainer
from repro.api.spec import RunSpec

BASE = {
    "seed": 3,
    "rounds": 3,
    "dataset": {
        "name": "creditcard",
        "users": 12,
        "silos": 3,
        "records": 300,
        "test_records": 60,
        "distribution": "zipf",
    },
    "privacy": {},
}

ENGINE_GRID = [
    None,
    {"workers": 0, "shard_size": 1},
    {"workers": 1, "shard_size": 128},
    {"workers": 4, "shard_size": 256},
    {"workers": 2, "shard_size": 4096},
]


def _fingerprint(tree: dict) -> tuple:
    trainer = build_trainer(RunSpec.from_dict(tree))
    history = trainer.run()
    return (
        tuple((r.round, r.metric, r.loss, r.epsilon) for r in history.records),
        tuple((c.round, c.uplink_bytes, c.downlink_bytes) for c in history.comm),
        tuple((p.round, p.silos_seen, p.users_seen) for p in history.participation),
        trainer.model.get_flat_params().tobytes(),
    )


@pytest.mark.parametrize(
    "method",
    [
        {"name": "uldp-avg"},
        {"name": "uldp-avg-w"},
        {"name": "uldp-sgd"},
        {"name": "uldp-avg", "local_epochs": 2},
    ],
    ids=["avg", "avg-w", "sgd", "avg-2ep"],
)
def test_history_invariant_under_engine_config(method):
    trees = []
    for engine in ENGINE_GRID:
        tree = {**BASE, "name": "determinism", "method": method}
        if engine is not None:
            tree = {**tree, "engine": engine}
        trees.append(tree)
    reference = _fingerprint(trees[0])
    for tree in trees[1:]:
        assert _fingerprint(tree) == reference, (
            f"engine={tree.get('engine')} diverged from the unsharded run"
        )


def test_compressed_history_invariant_under_engine_config():
    # Compression exercises the per-silo payload assembly (the
    # _streamed_compressed path), which must stay on the same fold.
    method = {"name": "uldp-avg"}
    compression = {"sparsify": "topk", "fraction": 0.25, "seed": 3}
    ref = _fingerprint(
        {**BASE, "name": "determinism-c", "method": method, "compression": compression}
    )
    for engine in ({"workers": 2, "shard_size": 128}, {"workers": 0, "shard_size": 1}):
        got = _fingerprint(
            {
                **BASE,
                "name": "determinism-c",
                "method": method,
                "compression": compression,
                "engine": engine,
            }
        )
        assert got == ref


def test_loop_engine_unaffected():
    # The loop oracle never routes through shards; [engine] must not
    # perturb it (streaming only applies to the vectorized engine).
    method = {"name": "uldp-avg", "engine": "loop"}
    ref = _fingerprint({**BASE, "name": "determinism-l", "method": method})
    got = _fingerprint(
        {
            **BASE,
            "name": "determinism-l",
            "method": method,
            "engine": {"workers": 2, "shard_size": 128},
        }
    )
    assert got == ref
