"""Tests for the empirical sensitivity probe utilities."""

import numpy as np
import pytest

from repro.core.methods import UldpAvg
from repro.core.probes import (
    HEAVY_USER_LAYOUT,
    N_USERS,
    make_fed,
    prenoise_aggregate,
    replace_user_records,
)


class TestMakeFed:
    def test_layout_respected(self):
        fed = make_fed(HEAVY_USER_LAYOUT, N_USERS)
        assert fed.n_silos == 3
        assert fed.n_users == N_USERS
        # User 0 is heavy in every silo.
        hist = fed.histogram()
        assert np.all(hist[:, 0] >= 4)

    def test_deterministic(self):
        a = make_fed(HEAVY_USER_LAYOUT, N_USERS, seed=1)
        b = make_fed(HEAVY_USER_LAYOUT, N_USERS, seed=1)
        np.testing.assert_array_equal(a.silos[0].x, b.silos[0].x)

    def test_custom_layout(self):
        fed = make_fed([[0, 1], [1, 1]], 2)
        np.testing.assert_array_equal(fed.histogram(), [[1, 1], [0, 2]])


class TestReplaceUserRecords:
    def test_only_target_user_changed(self):
        fed = make_fed(HEAVY_USER_LAYOUT, N_USERS)
        swapped = replace_user_records(fed, user=0, seed=5)
        for orig, new in zip(fed.silos, swapped.silos):
            mask = orig.user_ids == 0
            # Target user's features changed...
            if mask.any():
                assert not np.allclose(orig.x[mask], new.x[mask])
            # ...everyone else untouched.
            np.testing.assert_array_equal(orig.x[~mask], new.x[~mask])
            np.testing.assert_array_equal(orig.y[~mask], new.y[~mask])

    def test_histogram_unchanged(self):
        fed = make_fed(HEAVY_USER_LAYOUT, N_USERS)
        swapped = replace_user_records(fed, user=2, seed=6)
        np.testing.assert_array_equal(fed.histogram(), swapped.histogram())

    def test_original_not_mutated(self):
        fed = make_fed(HEAVY_USER_LAYOUT, N_USERS)
        before = fed.silos[0].x.copy()
        replace_user_records(fed, user=0, seed=7)
        np.testing.assert_array_equal(fed.silos[0].x, before)


class TestPrenoiseAggregate:
    def test_zero_noise_and_shape(self):
        fed = make_fed(HEAVY_USER_LAYOUT, N_USERS)
        agg = prenoise_aggregate(UldpAvg, fed, clip=1.0, global_lr=1.0, local_lr=0.3)
        assert agg.ndim == 1
        assert np.linalg.norm(agg) > 0  # training moved the model

    def test_repeatable(self):
        fed = make_fed(HEAVY_USER_LAYOUT, N_USERS)
        a = prenoise_aggregate(UldpAvg, fed, clip=1.0, global_lr=1.0, local_lr=0.3)
        b = prenoise_aggregate(UldpAvg, fed, clip=1.0, global_lr=1.0, local_lr=0.3)
        np.testing.assert_allclose(a, b)
