"""Tests for the Theorem 6 convergence diagnostics."""

import numpy as np
import pytest

from repro.core import Trainer, UldpAvg
from repro.core.convergence import diagnose
from repro.data import build_creditcard_benchmark
from repro.nn.model import build_tiny_mlp


def run_method(weighting, fed, clip=1.0, sigma=5.0, rounds=2, seed=0):
    model = build_tiny_mlp(30, 6, 2, np.random.default_rng(1))
    method = UldpAvg(
        clip=clip, noise_multiplier=sigma, local_epochs=1, weighting=weighting,
        record_clip_stats=True,
    )
    Trainer(fed, method, rounds=rounds, model=model, seed=seed).run()
    return method, model


@pytest.fixture(scope="module")
def fed():
    return build_creditcard_benchmark(
        n_users=20, n_silos=4, distribution="zipf",
        n_records=400, n_test=100, seed=0,
    )


class TestDiagnose:
    def test_fields_populated(self, fed):
        method, model = run_method("uniform", fed)
        diag = diagnose(method, model.num_params)
        assert 0.0 < diag.alpha_bar <= 1.0
        assert diag.l1_bias >= 0
        assert diag.l2_bias >= 0
        assert 0.0 <= diag.clip_rate <= 1.0
        assert "alpha_bar=" in diag.summary()

    def test_noise_term_formula(self, fed):
        method, model = run_method("uniform", fed, clip=2.0, sigma=3.0)
        diag = diagnose(method, model.num_params)
        expected = 3.0**2 * 2.0**2 * model.num_params / (4 * 20**2)
        assert diag.noise_term == pytest.approx(expected)

    def test_requires_clip_stats(self, fed):
        method = UldpAvg(local_epochs=1)  # record_clip_stats off
        model = build_tiny_mlp(30, 6, 2, np.random.default_rng(1))
        Trainer(fed, method, rounds=1, model=model, seed=0).run()
        with pytest.raises(ValueError):
            diagnose(method, model.num_params)

    def test_tiny_clip_forces_full_clipping(self, fed):
        method, model = run_method("uniform", fed, clip=1e-6)
        diag = diagnose(method, model.num_params)
        assert diag.clip_rate > 0.95

    def test_huge_clip_means_no_clipping(self, fed):
        # sigma=0: with clip=1e6 the per-silo noise std sigma*C/sqrt(|S|)
        # would otherwise destroy the model between rounds.
        method, model = run_method("uniform", fed, clip=1e6, sigma=0.0)
        diag = diagnose(method, model.num_params)
        assert diag.clip_rate < 0.05
        # With no clipping, all alphas equal their weights; uniform weights
        # then give near-zero variance *among present pairs* but the
        # absent-pair zeros still contribute dispersion.
        assert diag.l2_bias >= 0

    def test_more_noise_larger_noise_term(self, fed):
        lo, model = run_method("uniform", fed, sigma=1.0)
        hi, _ = run_method("uniform", fed, sigma=10.0)
        assert (
            diagnose(hi, model.num_params).noise_term
            > diagnose(lo, model.num_params).noise_term
        )
