"""Tests for the reporting and serialisation utilities."""

import math

import pytest

from repro.core.trainer import ParticipationRecord, RoundRecord, TrainingHistory
from repro.report import (
    ascii_chart,
    comparison_table,
    histories_chart,
    history_from_dict,
    history_to_dict,
    load_histories,
    save_histories,
    sparkline,
)


def make_history(method="ULDP-AVG", n=5, eps=True, participation=False):
    history = TrainingHistory(method=method, dataset="creditcard")
    for t in range(1, n + 1):
        history.records.append(
            RoundRecord(
                round=t,
                metric_name="accuracy",
                metric=0.5 + 0.08 * t,
                loss=2.0 / t,
                epsilon=0.3 * t if eps else None,
            )
        )
        if participation:
            history.participation.append(
                ParticipationRecord(round=t, silos_seen=4 - t % 2, users_seen=90 + t)
            )
    return history


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0]) == "▁▁"

    def test_nonfinite_marked(self):
        s = sparkline([1.0, math.inf, 2.0])
        assert s[1] == "!"

    def test_all_nonfinite(self):
        assert sparkline([math.nan, math.inf]) == "!!"


class TestAsciiChart:
    def test_contains_axes_and_legend(self):
        chart = ascii_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, width=20, height=5)
        assert "+--------------------+" in chart
        assert "* a" in chart and "o b" in chart

    def test_title_rendered(self):
        chart = ascii_chart({"a": [0, 1]}, title="Test Loss")
        assert chart.splitlines()[0] == "Test Loss"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": [math.nan]})

    def test_histories_chart(self):
        chart = histories_chart([make_history("A"), make_history("B")], "metric")
        assert "* A" in chart and "o B" in chart


class TestComparisonTable:
    def test_columns_and_rows(self):
        table = comparison_table([make_history("ULDP-AVG"), make_history("DEFAULT", eps=False)])
        lines = table.splitlines()
        assert len(lines) == 3
        assert "ULDP-AVG" in lines[1]
        assert "(none)" in lines[2]

    def test_includes_sparkline(self):
        table = comparison_table([make_history()])
        assert "▁" in table or "█" in table

    def test_participation_column(self):
        table = comparison_table(
            [make_history(participation=True), make_history("OLD")]
        )
        lines = table.splitlines()
        assert "seen" in lines[0]
        # Mean over rounds 1..5: silos (3,4,3,4,3) -> 3.4, users 91..95 -> 93.
        assert "3.4s/93.0u" in lines[1]
        # Histories without a participation log degrade to a dash.
        assert " - " in lines[2] or lines[2].split()[-2] == "-"


class TestSerialisation:
    def test_roundtrip_dict(self):
        history = make_history()
        restored = history_from_dict(history_to_dict(history))
        assert restored.method == history.method
        assert restored.series("metric") == history.series("metric")
        assert restored.series("epsilon") == history.series("epsilon")

    def test_none_epsilon_preserved(self):
        history = make_history(eps=False)
        restored = history_from_dict(history_to_dict(history))
        assert restored.final.epsilon is None

    def test_participation_roundtrip(self):
        history = make_history(participation=True)
        restored = history_from_dict(history_to_dict(history))
        assert restored.participation == history.participation

    def test_legacy_payload_without_participation_loads(self):
        data = history_to_dict(make_history())
        assert "participation" not in data
        assert history_from_dict(data).participation == []

    def test_schema_validated(self):
        with pytest.raises(ValueError):
            history_from_dict({"schema": "something-else"})

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "histories.json"
        save_histories([make_history("A"), make_history("B")], path)
        restored = load_histories(path)
        assert [h.method for h in restored] == ["A", "B"]
        assert restored[0].final.round == 5
