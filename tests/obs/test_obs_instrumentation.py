"""End-to-end instrumentation: [obs] through the run() entrypoint.

The two acceptance properties of the observability PR:

1. **Disabled is invisible** -- with ``[obs]`` absent (the default) a
   run's history is bit-identical to the same spec with tracing on: the
   recorder consumes no RNG and touches no numerics.
2. **Enabled is faithful** -- the trace file reports every round with
   nonzero durations, and its byte attributes agree exactly with the
   history's ``CommRecord`` log.
"""

import json

import pytest

from repro.api.runner import resolve_trace_path, run
from repro.api.spec import RunSpec
from repro.cli import main
from repro.obs.metrics import get_registry
from repro.obs.summary import load_trace, summarize
from repro.report import history_to_dict


def train_tree(**extra) -> dict:
    tree = {
        "name": "obs-oracle",
        "rounds": 2,
        "seed": 0,
        "dataset": {"users": 8, "silos": 2, "records": 120},
        "method": {"local_epochs": 1},
    }
    tree.update(extra)
    return tree


def obs_tree(tmp_path, **extra) -> dict:
    obs = {"enabled": True, "trace_path": str(tmp_path / "trace.jsonl")}
    obs.update(extra)
    return obs


def strip_volatile(history) -> dict:
    data = history_to_dict(history)
    data.pop("spec", None)  # differs by the [obs] section itself
    data.pop("spec_hash", None)
    return data


class TestDisabledIsInvisible:
    def test_traced_run_is_bit_identical_to_untraced(self, tmp_path):
        plain = run(RunSpec.from_dict(train_tree()))
        traced = run(RunSpec.from_dict(
            train_tree(obs=obs_tree(tmp_path))))
        assert strip_volatile(plain.history) == strip_volatile(traced.history)

    def test_obs_section_does_not_change_the_spec_hash(self, tmp_path):
        plain = RunSpec.from_dict(train_tree())
        traced = RunSpec.from_dict(train_tree(obs=obs_tree(tmp_path)))
        assert plain.hash() == traced.hash()

    def test_disabled_obs_writes_no_trace_file(self, tmp_path):
        tree = train_tree(obs={"enabled": False,
                               "trace_path": str(tmp_path / "t.jsonl")})
        run(RunSpec.from_dict(tree))
        assert not (tmp_path / "t.jsonl").exists()


class TestEnabledIsFaithful:
    @pytest.fixture
    def traced(self, tmp_path):
        spec = RunSpec.from_dict(train_tree(obs=obs_tree(tmp_path)))
        result = run(spec)
        return result, tmp_path / "trace.jsonl"

    def test_every_round_appears_with_nonzero_duration(self, traced):
        result, path = traced
        s = summarize(load_trace(path))
        assert sorted(s["rounds"]) == [1, 2]
        for entry in s["rounds"].values():
            assert entry["dur"] > 0.0

    def test_round_bytes_match_the_history_comm_log(self, traced):
        result, path = traced
        s = summarize(load_trace(path))
        for comm in result.history.comm:
            entry = s["rounds"][comm.round]
            assert entry["uplink_bytes"] == comm.uplink_bytes
            assert entry["downlink_bytes"] == comm.downlink_bytes
            assert comm.uplink_bytes > 0

    def test_run_span_carries_spec_identity(self, traced):
        result, path = traced
        records = load_trace(path)
        (run_span,) = [r for r in records if r.get("kind") == "run"]
        assert run_span["attrs"]["spec_name"] == "obs-oracle"
        assert run_span["attrs"]["spec_hash"] == result.spec_hash

    def test_trainer_metrics_populated(self, traced):
        result, _ = traced
        reg = get_registry()
        rounds = reg.counter("trainer_rounds_total").labels().value
        assert rounds >= 2  # this run's rounds (registry is process-wide)
        uplink = reg.counter("comm_uplink_bytes_total").labels().value
        assert uplink >= sum(c.uplink_bytes for c in result.history.comm)

    def test_trace_summary_cli_exits_zero(self, traced, capsys):
        _, path = traced
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per round" in out

    def test_sample_rate_thins_round_spans(self, tmp_path):
        spec = RunSpec.from_dict(train_tree(
            rounds=8, obs=obs_tree(tmp_path, sample_rate=0.25)))
        run(spec)
        s = summarize(load_trace(tmp_path / "trace.jsonl"))
        assert 0 < len(s["rounds"]) < 8

    def test_simulation_run_traces_rounds_and_releases(self, tmp_path):
        tree = {
            "name": "obs-sim",
            "seed": 1,
            "sim": {"scenario": "ideal-sync", "scale": "smoke"},
            "obs": obs_tree(tmp_path),
        }
        run(RunSpec.from_dict(tree))
        records = load_trace(tmp_path / "trace.jsonl")
        kinds = {r["kind"] for r in records}
        assert "round" in kinds
        assert any(r.get("name") == "sim_release" for r in records
                   if r["kind"] == "event")


class TestResolveTracePath:
    def test_explicit_path_wins(self, tmp_path):
        spec = RunSpec.from_dict(train_tree(
            obs={"enabled": True, "trace_path": str(tmp_path / "x.jsonl")}))
        assert str(resolve_trace_path(spec)) == str(tmp_path / "x.jsonl")

    def test_defaults_next_to_checkpoints(self, tmp_path):
        tree = {
            "name": "obs-ckpt",
            "sim": {"scenario": "ideal-sync", "scale": "smoke",
                    "checkpoint_dir": str(tmp_path / "ckpt")},
            "obs": {"enabled": True},
        }
        spec = RunSpec.from_dict(tree)
        assert str(resolve_trace_path(spec)) == str(
            tmp_path / "ckpt" / "trace.jsonl")


def test_obs_spec_toml_roundtrip(tmp_path):
    toml = tmp_path / "spec.toml"
    toml.write_text(
        'name = "obs-toml"\n'
        "rounds = 1\n"
        "[dataset]\nusers = 6\nsilos = 2\nrecords = 80\n"
        "[obs]\nenabled = true\nsample_rate = 0.5\nmetrics_port = 9100\n"
    )
    from repro.api.spec import load_spec_tree

    spec = RunSpec.from_dict(load_spec_tree(str(toml)))
    assert spec.obs is not None
    assert spec.obs.enabled is True
    assert spec.obs.sample_rate == 0.5
    assert spec.obs.metrics_port == 9100
    # Round-trips through to_dict/from_dict unchanged.
    again = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again.obs == spec.obs
