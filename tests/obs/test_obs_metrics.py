"""Unit coverage for the metrics registry and its expositions."""

import json
import urllib.request

import pytest

from repro.obs.httpd import start_metrics_server
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    get_registry,
    record_phase_timer,
)
from repro.protocol.timing import PhaseTimer


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        fam = reg.counter("rounds_total", help="Rounds run.")
        fam.inc()
        fam.inc(2.5)
        assert fam.labels().value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("c_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("epsilon_spent")
        g.set(4.0)
        g.inc(1.0)
        g.labels().dec(2.0)
        assert g.labels().value == pytest.approx(3.0)

    def test_histogram_buckets_and_cumulative_counts(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0)).labels()
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 1]
        assert h.cumulative_counts() == [1, 2, 3, 4]
        assert h.sum == pytest.approx(55.55)
        assert h.count == 4

    def test_histogram_default_buckets(self):
        reg = MetricsRegistry()
        fam = reg.histogram("t_seconds")
        assert fam.buckets == DEFAULT_BUCKETS

    def test_histogram_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.histogram("bad_seconds", buckets=(1.0, 0.1))


class TestFamiliesAndRegistry:
    def test_labels_key_children_independently(self):
        reg = MetricsRegistry()
        fam = reg.counter("bytes_total")
        fam.labels(type="ping").inc(10)
        fam.labels(type="update").inc(20)
        assert fam.labels(type="ping").value == 10
        assert fam.labels(type="update").value == 20
        assert len(fam.children()) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        fam = reg.counter("c_total")
        fam.labels(a="1", b="2").inc()
        assert fam.labels(b="2", a="1").value == 1

    def test_same_name_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(MetricError):
            reg.gauge("x_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("bad name")
        with pytest.raises(MetricError):
            reg.counter("ok_total").labels(**{"le": "x", "0bad": "y"})

    def test_reset_drops_families(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        reg.reset()
        assert reg.families() == []

    def test_get_registry_is_a_stable_singleton(self):
        assert get_registry() is get_registry()


class TestExposition:
    def build(self):
        reg = MetricsRegistry()
        reg.counter("bytes_total", help="Bytes.", unit="bytes").labels(
            type="ping").inc(7)
        reg.gauge("eps", help="Epsilon.").set(1.25)
        reg.histogram("lat_seconds", help="Latency.",
                      buckets=(0.5, 2.0)).observe(1.0)
        return reg

    def test_prometheus_text_format(self):
        text = self.build().render_prometheus()
        assert "# HELP bytes_total Bytes." in text
        assert "# TYPE bytes_total counter" in text
        assert 'bytes_total{type="ping"} 7' in text
        assert "# TYPE eps gauge" in text
        assert "eps 1.25" in text
        assert 'lat_seconds_bucket{le="0.5"} 0' in text
        assert 'lat_seconds_bucket{le="2"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 1" in text
        assert "lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total").labels(path='a"b\\c\nd').inc()
        text = reg.render_prometheus()
        assert r'path="a\"b\\c\nd"' in text

    def test_snapshot_roundtrips_through_json(self):
        reg = self.build()
        snap = json.loads(reg.render_json())
        assert snap["bytes_total"]["type"] == "counter"
        assert snap["bytes_total"]["unit"] == "bytes"
        assert snap["bytes_total"]["samples"][0] == {
            "labels": {"type": "ping"}, "value": 7.0}
        hist = snap["lat_seconds"]["samples"][0]
        assert hist["count"] == 1
        assert hist["buckets"] == {"0.5": 0, "2": 1, "+Inf": 1}

    def test_families_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        reg.counter("a_total")
        assert [f.name for f in reg.families()] == ["a_total", "z_total"]


class TestPhaseTimerAdapter:
    def test_timer_lands_in_gauges(self):
        reg = MetricsRegistry()
        timer = PhaseTimer()
        timer.add("encrypt", 1.5)
        timer.add("encrypt", 0.5)
        timer.add("aggregate", 3.0)
        record_phase_timer(timer, registry=reg)
        seconds = reg.gauge("protocol_phase_seconds")
        calls = reg.gauge("protocol_phase_calls")
        assert seconds.labels(phase="encrypt").value == pytest.approx(2.0)
        assert calls.labels(phase="encrypt").value == 2
        assert seconds.labels(phase="aggregate").value == pytest.approx(3.0)

    def test_recording_is_idempotent(self):
        reg = MetricsRegistry()
        timer = PhaseTimer()
        timer.add("encrypt", 1.0)
        record_phase_timer(timer, registry=reg)
        record_phase_timer(timer, registry=reg)  # re-sync, not double-count
        assert reg.gauge("protocol_phase_seconds").labels(
            phase="encrypt").value == pytest.approx(1.0)

    def test_custom_prefix_and_labels(self):
        reg = MetricsRegistry()
        timer = PhaseTimer()
        timer.add("mask", 0.25)
        record_phase_timer(timer, prefix="secagg", registry=reg, silo="0")
        value = reg.gauge("secagg_phase_seconds").labels(
            phase="mask", silo="0").value
        assert value == pytest.approx(0.25)


class TestMetricsHttpd:
    def test_serves_prometheus_and_json(self):
        reg = MetricsRegistry()
        reg.counter("up_total", help="Liveness.").inc()
        with start_metrics_server(0, registry=reg) as server:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(base + "/metrics") as resp:
                body = resp.read().decode()
                assert resp.status == 200
                assert "text/plain" in resp.headers["Content-Type"]
                assert "up_total 1" in body
            with urllib.request.urlopen(base + "/metrics.json") as resp:
                snap = json.loads(resp.read().decode())
                assert snap["up_total"]["samples"][0]["value"] == 1.0

    def test_unknown_path_is_404(self):
        with start_metrics_server(0, registry=MetricsRegistry()) as server:
            url = f"http://127.0.0.1:{server.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url)
            assert err.value.code == 404
