"""Shared isolation for the observability tests.

The metrics registry and the trace recorder are process-wide singletons;
every test here starts from a clean registry and the no-op recorder so
ordering between tests (and between this suite and the instrumented
integration tests) cannot leak state.
"""

import pytest

from repro.obs.metrics import get_registry
from repro.obs.trace import set_recorder


@pytest.fixture(autouse=True)
def _clean_obs_state():
    get_registry().reset()
    set_recorder(None)
    yield
    get_registry().reset()
    set_recorder(None)
