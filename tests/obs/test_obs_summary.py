"""Coverage for trace loading, aggregation, and rendering."""

import pytest

from repro.obs.summary import (
    FAULT_EVENTS,
    TraceError,
    load_trace,
    render_summary,
    summarize,
)
from repro.obs.trace import JsonlTraceRecorder


@pytest.fixture
def trace_path(tmp_path):
    """A small but fully featured trace: 2 rounds, 2 silos, one fault."""
    path = tmp_path / "trace.jsonl"
    rec = JsonlTraceRecorder(path, run_id="demo-run")
    with rec.span("run", kind="run", spec_name="demo"):
        for t in (1, 2):
            with rec.span("round", kind="round", round=t) as round_span:
                with rec.span("ping", kind="phase", round=t):
                    pass
                with rec.span("collect_contributions", kind="phase", round=t):
                    for silo in (0, 1):
                        with rec.span("silo_compute", kind="silo", silo=silo,
                                      round=t, uplink_bytes=100 + silo,
                                      downlink_bytes=200 + silo,
                                      deadline_margin=5.0 - t - silo):
                            pass
                for shard, silo in ((0, 0), (1, 0), (2, 1)):
                    with rec.span("shard", kind="shard", shard=shard,
                                  silo=silo) as shard_span:
                        shard_span.set(jobs=4 + shard, seconds=0.01 * (shard + 1))
                round_span.set(seconds=0.5, silos_seen=2, users_seen=10,
                               uplink_bytes=201, downlink_bytes=401)
        rec.event("silo_fault", round=2, silo=1, reason="timeout")
    rec.close()
    return path


class TestLoadTrace:
    def test_loads_records_with_meta_first(self, trace_path):
        records = load_trace(trace_path)
        assert records[0]["kind"] == "meta"
        assert records[0]["run_id"] == "demo-run"
        assert len(records) > 5

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="no trace file"):
            load_trace(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            load_trace(path)

    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(TraceError, match="not JSON"):
            load_trace(path)

    def test_wrong_first_record(self, tmp_path):
        path = tmp_path / "wrong.jsonl"
        path.write_text('{"kind": "round", "name": "round"}\n')
        with pytest.raises(TraceError, match="meta record"):
            load_trace(path)


class TestSummarize:
    def test_rounds_view(self, trace_path):
        s = summarize(load_trace(trace_path))
        assert sorted(s["rounds"]) == [1, 2]
        entry = s["rounds"][1]
        assert entry["silos_seen"] == 2
        assert entry["users_seen"] == 10
        assert entry["uplink_bytes"] == 201
        assert entry["downlink_bytes"] == 401
        assert entry["dur"] > 0.0

    def test_phases_view_sorted_by_total(self, trace_path):
        s = summarize(load_trace(trace_path))
        assert set(s["phases"]) == {"ping", "collect_contributions"}
        totals = [e["total"] for e in s["phases"].values()]
        assert totals == sorted(totals, reverse=True)
        assert s["phases"]["ping"]["count"] == 2

    def test_silos_view(self, trace_path):
        s = summarize(load_trace(trace_path))
        assert sorted(s["silos"]) == ["0", "1"]
        silo1 = s["silos"]["1"]
        assert silo1["count"] == 2
        assert silo1["uplink_bytes"] == 202  # 101 per round
        assert silo1["downlink_bytes"] == 402
        # Tightest margin: round 2, silo 1 -> 5 - 2 - 1 = 2.
        assert silo1["min_deadline_margin"] == pytest.approx(2.0)

    def test_shards_view(self, trace_path):
        s = summarize(load_trace(trace_path))
        assert sorted(s["shards"]) == ["0", "1"]
        silo0 = s["shards"]["0"]
        assert silo0["count"] == 4  # shards 0 and 1, both rounds
        assert silo0["jobs"] == 2 * (4 + 5)
        # kernel seconds come from the span's `seconds` attr (worker
        # compute), not `dur` (parent wall time incl. queueing).
        assert silo0["seconds"] == pytest.approx(2 * (0.01 + 0.02))
        assert silo0["max"] == pytest.approx(0.02)
        assert s["shards"]["1"]["jobs"] == 2 * 6

    def test_faults_view(self, trace_path):
        s = summarize(load_trace(trace_path))
        (fault,) = s["faults"]
        assert fault["name"] == "silo_fault"
        assert fault["attrs"]["reason"] == "timeout"
        assert "silo_fault" in FAULT_EVENTS

    def test_non_fault_events_excluded(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rec = JsonlTraceRecorder(path)
        rec.event("sim_release", round=1)
        rec.event("quorum_abort", round=1)
        rec.close()
        s = summarize(load_trace(path))
        assert [f["name"] for f in s["faults"]] == ["quorum_abort"]


class TestRenderSummary:
    def test_all_sections_present(self, trace_path):
        text = render_summary(load_trace(trace_path))
        assert "trace: schema=uldp-fl-trace/v1" in text
        assert "run=demo-run" in text
        assert "per round" in text
        assert "per phase" in text
        assert "per silo" in text
        assert "per shard (sharded engine)" in text
        assert "slowest" in text
        assert "fault events" in text
        assert "silo_fault" in text

    def test_shard_table_absent_for_unsharded_runs(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rec = JsonlTraceRecorder(path)
        with rec.span("round", kind="round", round=1):
            pass
        rec.close()
        assert "per shard" not in render_summary(load_trace(path))

    def test_slowest_limit_respected(self, trace_path):
        text = render_summary(load_trace(trace_path), slowest=2)
        assert "slowest 2 spans" in text

    def test_minimal_trace_renders(self, tmp_path):
        path = tmp_path / "t.jsonl"
        JsonlTraceRecorder(path).close()
        text = render_summary(load_trace(path))
        assert "0 spans" in text
