"""Unit coverage for the span recorder (repro.obs.trace)."""

import json
import threading

import numpy as np
import pytest

from repro.obs.trace import (
    NULL_RECORDER,
    NULL_SPAN,
    TRACE_SCHEMA,
    JsonlTraceRecorder,
    get_recorder,
    set_recorder,
    use_recorder,
)


def read_records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestNullRecorder:
    def test_default_recorder_is_the_null_recorder(self):
        assert get_recorder() is NULL_RECORDER
        assert NULL_RECORDER.enabled is False

    def test_span_returns_the_shared_null_span(self):
        a = NULL_RECORDER.span("x", kind="round", round=1)
        b = NULL_RECORDER.span("y")
        assert a is NULL_SPAN and b is NULL_SPAN

    def test_null_span_is_a_reusable_context_manager(self):
        with NULL_RECORDER.span("x") as span:
            assert span.set(key="value") is span
        with NULL_RECORDER.span("x"):
            pass  # reusable, not one-shot

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_RECORDER.span("x"):
                raise RuntimeError("boom")

    def test_event_flush_close_are_noops(self):
        NULL_RECORDER.event("anything", detail=1)
        NULL_RECORDER.flush()
        NULL_RECORDER.close()


class TestJsonlTraceRecorder:
    def test_first_record_is_the_meta_line(self, tmp_path):
        rec = JsonlTraceRecorder(tmp_path / "t.jsonl", run_id="demo")
        rec.close()
        records = read_records(tmp_path / "t.jsonl")
        meta = records[0]
        assert meta["kind"] == "meta"
        assert meta["schema"] == TRACE_SCHEMA
        assert meta["run_id"] == "demo"
        assert meta["sample_rate"] == 1.0
        assert isinstance(meta["pid"], int)

    def test_spans_record_nesting_and_attrs(self, tmp_path):
        rec = JsonlTraceRecorder(tmp_path / "t.jsonl")
        with rec.span("run", kind="run"):
            with rec.span("round", kind="round", round=1) as span:
                span.set(uplink_bytes=128)
        rec.close()
        records = read_records(tmp_path / "t.jsonl")[1:]
        # Spans are written as they *close*: inner first.
        inner, outer = records
        assert inner["name"] == "round" and inner["kind"] == "round"
        assert inner["attrs"] == {"round": 1, "uplink_bytes": 128}
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["dur"] >= 0.0 and inner["ts"] > 0.0

    def test_exception_stamps_an_error_attr(self, tmp_path):
        rec = JsonlTraceRecorder(tmp_path / "t.jsonl")
        with pytest.raises(ValueError):
            with rec.span("round", kind="round", round=1):
                raise ValueError("bad round")
        rec.close()
        (record,) = read_records(tmp_path / "t.jsonl")[1:]
        assert record["attrs"]["error"] == "ValueError"

    def test_events_attach_to_the_open_span(self, tmp_path):
        rec = JsonlTraceRecorder(tmp_path / "t.jsonl")
        with rec.span("round", kind="round", round=3):
            rec.event("silo_fault", silo=1, reason="timeout")
        rec.close()
        event, span = read_records(tmp_path / "t.jsonl")[1:]
        assert event["kind"] == "event" and event["name"] == "silo_fault"
        assert event["parent"] == span["id"]
        assert event["attrs"] == {"silo": 1, "reason": "timeout"}

    def test_numpy_attrs_are_coerced_to_json(self, tmp_path):
        rec = JsonlTraceRecorder(tmp_path / "t.jsonl")
        with rec.span("round", kind="round", round=np.int64(2),
                      seconds=np.float64(0.5)):
            pass
        rec.close()
        (record,) = read_records(tmp_path / "t.jsonl")[1:]
        assert record["attrs"] == {"round": 2, "seconds": 0.5}

    def test_append_mode_preserves_earlier_runs(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            rec = JsonlTraceRecorder(path)
            with rec.span("run", kind="run"):
                pass
            rec.close()
        records = read_records(path)
        assert [r["kind"] for r in records] == ["meta", "run", "meta", "run"]

    def test_invalid_sample_rate_rejected(self, tmp_path):
        for rate in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                JsonlTraceRecorder(tmp_path / "t.jsonl", sample_rate=rate)

    def test_round_sampling_is_deterministic_and_partial(self, tmp_path):
        def kept_rounds(path, rate):
            rec = JsonlTraceRecorder(path, sample_rate=rate)
            for t in range(1, 41):
                with rec.span("round", kind="round", round=t):
                    with rec.span("phase", kind="phase"):
                        pass
            rec.close()
            records = read_records(path)[1:]
            return [r["attrs"]["round"] for r in records
                    if r["kind"] == "round"]

        kept_a = kept_rounds(tmp_path / "a.jsonl", 0.25)
        kept_b = kept_rounds(tmp_path / "b.jsonl", 0.25)
        assert kept_a == kept_b  # deterministic in the round number
        assert 0 < len(kept_a) < 40  # genuinely partial

    def test_dropped_round_suppresses_descendants_and_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rec = JsonlTraceRecorder(path, sample_rate=0.25)
        dropped = next(
            t for t in range(1, 100)
            if not rec._sampled_round({"round": t}))
        with rec.span("round", kind="round", round=dropped):
            with rec.span("phase", kind="phase"):
                rec.event("silo_fault", silo=0)
        rec.close()
        assert read_records(path)[1:] == []

    def test_non_round_spans_always_kept_under_sampling(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rec = JsonlTraceRecorder(path, sample_rate=0.01)
        with rec.span("checkpoint", kind="phase"):
            pass
        rec.close()
        assert [r["name"] for r in read_records(path)[1:]] == ["checkpoint"]

    def test_threads_get_independent_span_stacks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rec = JsonlTraceRecorder(path)
        started = threading.Event()

        def worker():
            with rec.span("worker_root", kind="phase"):
                started.set()

        with rec.span("main_root", kind="run"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        rec.close()
        records = {r["name"]: r for r in read_records(path)[1:]}
        # The worker's span is a root, not a child of the main thread's.
        assert records["worker_root"]["parent"] is None
        assert records["main_root"]["parent"] is None

    def test_write_after_close_is_ignored(self, tmp_path):
        rec = JsonlTraceRecorder(tmp_path / "t.jsonl")
        span = rec.span("late", kind="phase")
        span.__enter__()
        rec.close()
        span.__exit__(None, None, None)  # must not raise


class TestUseRecorder:
    def test_installs_and_restores(self, tmp_path):
        rec = JsonlTraceRecorder(tmp_path / "t.jsonl")
        assert get_recorder() is NULL_RECORDER
        with use_recorder(rec) as installed:
            assert installed is rec
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER
        rec.close()

    def test_restores_on_error(self, tmp_path):
        rec = JsonlTraceRecorder(tmp_path / "t.jsonl")
        with pytest.raises(RuntimeError):
            with use_recorder(rec):
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER
        rec.close()

    def test_set_recorder_none_restores_null(self, tmp_path):
        rec = JsonlTraceRecorder(tmp_path / "t.jsonl")
        set_recorder(rec)
        assert get_recorder() is rec
        set_recorder(None)
        assert get_recorder() is NULL_RECORDER
        rec.close()
