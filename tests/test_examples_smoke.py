"""Smoke tests for the example scripts: importable, documented, runnable API.

Full example runs take minutes; these tests import each script (catching
syntax errors, bad imports, and API drift) and verify the structure without
executing ``main()``.
"""

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
class TestExampleScripts:
    def test_imports_cleanly(self, path):
        spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # executes imports + defs, not main()
        assert hasattr(module, "main")

    def test_has_docstring(self, path):
        tree = ast.parse(path.read_text())
        doc = ast.get_docstring(tree)
        assert doc and len(doc) > 40, "examples must explain what they show"

    def test_guarded_main(self, path):
        assert 'if __name__ == "__main__":' in path.read_text()


def test_expected_example_set():
    names = {p.stem for p in EXAMPLE_FILES}
    assert {
        "quickstart",
        "creditcard_tradeoff",
        "medical_cross_silo",
        "private_protocol_demo",
        "mnist_noniid",
        "membership_inference",
    } <= names
