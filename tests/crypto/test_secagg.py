"""Property tests for pairwise-mask secure aggregation (the masked backend).

Covers the tentpole correctness claims at the protocol layer: mask
cancellation under the full roster, exhaustive dropout-pattern recovery,
PRG/key domain separation, fixed-point round-trips at the field boundary,
and the server-view privacy smoke checks.
"""

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encoding import decode_scalar, encode_scalar
from repro.crypto.secagg import (
    MASK_STREAM_CONTEXT,
    MaskedAggregationProtocol,
    derive_round_key,
    encode_weighted_payload,
    weight_numerators,
)


def build_protocol(n_silos, seed=0, **kwargs):
    proto = MaskedAggregationProtocol(n_silos, seed=seed, **kwargs)
    proto.run_setup()
    return proto


def random_vectors(n_silos, d, seed=0, bound=10**9):
    rng = random.Random(seed)
    return [[rng.randrange(bound) for _ in range(d)] for _ in range(n_silos)]


class TestMaskCancellation:
    @pytest.mark.parametrize("n_silos", [1, 2, 3, 5])
    def test_full_roster_sum_is_plain_sum(self, n_silos):
        proto = build_protocol(n_silos, seed=n_silos)
        vectors = random_vectors(n_silos, 5, seed=n_silos)
        totals = proto.run_round(list(vectors))
        expect = [
            sum(v[k] for v in vectors) % proto.modulus for k in range(5)
        ]
        assert totals == expect

    def test_single_upload_is_masked(self):
        # The server must never see a silo's plain vector (n_silos >= 2).
        proto = build_protocol(3, seed=1)
        vectors = random_vectors(3, 6, seed=1)
        proto.run_round(list(vectors))
        uploads = proto.view.masked_vectors[0]
        for s, vec in enumerate(vectors):
            assert uploads[s] != [v % proto.modulus for v in vec]

    def test_rounds_use_independent_masks(self):
        proto = build_protocol(2, seed=2)
        vec = random_vectors(2, 4, seed=2)
        proto.run_round([list(v) for v in vec])
        proto.run_round([list(v) for v in vec])
        first, second = proto.view.masked_vectors
        assert first[0] != second[0]


class TestDropoutRecovery:
    def test_every_survivor_subset_matches_plain_sum(self):
        """Exhaustive |S| <= 4 enumeration: every non-empty survivor subset
        recovers exactly the field sum over survivors."""
        n_silos, d = 4, 5
        vectors = random_vectors(n_silos, d, seed=7)
        for r in range(1, n_silos + 1):
            for survivors in itertools.combinations(range(n_silos), r):
                proto = build_protocol(n_silos, seed=7)
                inputs = [
                    vectors[s] if s in survivors else None
                    for s in range(n_silos)
                ]
                totals = proto.run_round(inputs)
                expect = [
                    sum(vectors[s][k] for s in survivors) % proto.modulus
                    for k in range(d)
                ]
                assert totals == expect, f"survivors={survivors}"

    def test_recovery_after_full_rounds_keeps_round_keys_aligned(self):
        # Dropout in a later round must derive that round's keys, not round 0's.
        proto = build_protocol(3, seed=3)
        vectors = random_vectors(3, 4, seed=3)
        proto.run_round(list(vectors))
        totals = proto.run_round([vectors[0], None, vectors[2]])
        expect = [
            (vectors[0][k] + vectors[2][k]) % proto.modulus for k in range(4)
        ]
        assert totals == expect

    def test_reveals_are_scoped_to_dropped_peers(self):
        proto = build_protocol(4, seed=4)
        vectors = random_vectors(4, 3, seed=4)
        proto.run_round([vectors[0], None, vectors[2], vectors[3]])
        assert proto.view.reveals  # recovery happened
        for _round_no, survivor, revealed in proto.view.reveals:
            assert revealed == (1,)
            assert survivor != 1

    def test_revealed_key_is_not_the_pair_key(self):
        # Recovery hands over the one-way per-round derivation only.
        proto = build_protocol(2, seed=5)
        silo = proto.silos[0]
        revealed = silo.reveal_round_keys([1], round_no=0)
        assert revealed[1] != silo.pair_keys[1]
        assert revealed[1] != silo.reveal_round_keys([1], round_no=1)[1]

    def test_zero_survivors_rejected(self):
        proto = build_protocol(2, seed=6)
        with pytest.raises(ValueError):
            proto.run_round([None, None])


class TestDomainSeparation:
    def test_round_keys_differ_per_round_and_pair(self):
        key_a, key_b = b"k" * 32, b"q" * 32
        seen = {
            derive_round_key(key, r)
            for key in (key_a, key_b)
            for r in range(4)
        }
        assert len(seen) == 8

    def test_pair_key_context_distinct_from_protocol1(self):
        # The masked backend must not share key material with Protocol 1's
        # "secure-agg" masks derived from the same DH secret.
        from repro.crypto.dh import derive_shared_key
        from repro.crypto.secagg import PAIR_KEY_CONTEXT

        assert PAIR_KEY_CONTEXT != "secure-agg"
        assert derive_shared_key(12345, PAIR_KEY_CONTEXT) != derive_shared_key(
            12345, "secure-agg"
        )

    def test_mask_stream_context_is_stable(self):
        # The recovery stream must expand the exact label silos mask with;
        # renaming one side silently breaks dropout recovery.
        assert MASK_STREAM_CONTEXT == "masked-delta"


class TestFixedPointBoundaries:
    @pytest.mark.parametrize("mask_bits", [64, 128])
    def test_signed_decode_at_field_edges(self, mask_bits):
        # The signed mapping on the wire: field elements strictly above
        # n//2 decode negative, n//2 itself decodes positive, n-1 is the
        # smallest negative step.  Asserted on raw field elements because
        # the boundary integers exceed float64's exact range.
        modulus = 1 << mask_bits
        precision = 1e-6
        half = modulus // 2
        assert decode_scalar(0, precision, 1, modulus) == 0.0
        assert decode_scalar(1, precision, 1, modulus) == precision
        assert decode_scalar(modulus - 1, precision, 1, modulus) == -precision
        assert decode_scalar(half, precision, 1, modulus) > 0
        assert decode_scalar(half + 1, precision, 1, modulus) < 0
        assert decode_scalar(half + 1, precision, 1, modulus) == pytest.approx(
            -decode_scalar(half - 1, precision, 1, modulus), rel=1e-12
        )

    def test_negative_values_wrap_to_upper_half(self):
        modulus = 1 << 64
        assert encode_scalar(-1e-6, 1e-6, modulus) == modulus - 1

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=100)
    def test_integer_grid_roundtrip_exact(self, scaled):
        modulus = 1 << 128
        precision = 1e-10
        x = scaled * precision
        decoded = decode_scalar(
            encode_scalar(x, precision, modulus), precision, 1, modulus
        )
        assert decoded == x

    def test_magnitude_guard_raises_on_overflow(self):
        proto = build_protocol(2, seed=8, mask_bits=64, n_max=64)
        with pytest.raises(ValueError, match="magnitude budget"):
            proto.check_round_magnitude(max_abs_value=1.0, num_terms=100)


class TestWeightedEncoding:
    def test_numerators_exact_for_proportional_weights(self):
        hist = np.array([[2, 0, 5], [1, 3, 0], [0, 1, 2]])
        totals = hist.sum(axis=0)
        weights = hist / totals
        c_lcm = 2520  # lcm(1..9)
        nums = weight_numerators(weights, hist, c_lcm)
        for s in range(3):
            for u in range(3):
                assert nums[s, u] == hist[s, u] * (c_lcm // totals[u])

    def test_numerators_round_for_renormed_weights(self):
        hist = np.array([[2], [2]])
        weights = np.array([[0.7], [0.3]])  # not n_su / N_u
        nums = weight_numerators(weights, hist, 840)
        assert nums[0, 0] == round(0.7 * 840)
        assert nums[1, 0] == round(0.3 * 840)

    def test_payload_decodes_to_weighted_sum(self):
        proto = build_protocol(1, seed=9, n_max=4)
        rng = np.random.default_rng(0)
        deltas = {0: rng.standard_normal(6), 1: rng.standard_normal(6)}
        noise = rng.standard_normal(6) * 0.1
        nums = {0: proto.c_lcm // 2, 1: proto.c_lcm // 4}
        payload = encode_weighted_payload(
            deltas, nums, noise, proto.precision, proto.c_lcm, proto.modulus
        )
        decoded = proto.decode_aggregate(payload)
        expect = 0.5 * deltas[0] + 0.25 * deltas[1] + noise
        np.testing.assert_allclose(decoded, expect, atol=1e-9)


class TestProtocolState:
    def test_state_roundtrip_resumes_mask_schedule(self):
        vectors = random_vectors(2, 3, seed=10)
        reference = build_protocol(2, seed=10)
        reference.run_round([list(v) for v in vectors])
        expected = reference.run_round([list(v) for v in vectors])

        first = build_protocol(2, seed=10)
        first.run_round([list(v) for v in vectors])
        resumed = build_protocol(2, seed=10)
        resumed.load_state(first.state_dict())
        assert resumed.round_no == 1
        assert resumed.run_round([list(v) for v in vectors]) == expected
        # And the round-1 uploads (not just the cancelled totals) match.
        assert reference.view.masked_vectors[1] == resumed.view.masked_vectors[0]

    def test_setup_required_before_rounds(self):
        proto = MaskedAggregationProtocol(2, seed=0)
        with pytest.raises(RuntimeError):
            proto.run_round([[1], [2]])

    def test_timer_has_phases(self):
        proto = build_protocol(3, seed=11)
        proto.run_round([[1, 2], None, [5, 6]])
        report = proto.timer.report()
        for phase in ("keygen", "key_exchange", "mask_and_upload",
                      "aggregate", "dropout_recovery"):
            assert phase in report
