"""Tests for multiplicative blinding and fixed-point encoding (Algorithm 5)."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.blinding import BlindingFactory
from repro.crypto.encoding import (
    check_magnitude_budget,
    decode_scalar,
    decode_vector,
    encode_scalar,
    encode_vector,
    lcm_of_counts,
    lcm_up_to,
)

MODULUS = (2**127 - 1) * (2**89 - 1)  # composite, like a Paillier n


class TestBlinding:
    def test_same_seed_same_blinds(self):
        a = BlindingFactory(b"R", MODULUS)
        b = BlindingFactory(b"R", MODULUS)
        assert a.blind_for_user(3) == b.blind_for_user(3)

    def test_different_users_different_blinds(self):
        f = BlindingFactory(b"R", MODULUS)
        assert f.blind_for_user(0) != f.blind_for_user(1)

    def test_blind_coprime_with_modulus(self):
        f = BlindingFactory(b"seed", MODULUS)
        for u in range(20):
            assert math.gcd(f.blind_for_user(u), MODULUS) == 1

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=0, max_value=50))
    @settings(max_examples=50)
    def test_blind_then_invert_recovers_inverse(self, value, user):
        """r_u * (r_u * N_u)^-1 == N_u^-1 mod n (the Protocol 1 identity)."""
        f = BlindingFactory(b"R2", MODULUS)
        if math.gcd(value, MODULUS) != 1:
            return
        blinded = f.blind(user, value)
        blinded_inv = pow(blinded, -1, MODULUS)
        recovered = f.unblind_inverse(user, blinded_inv)
        assert recovered == pow(value, -1, MODULUS)

    def test_blinded_sum_factors(self):
        """sum_s r_u * n_su == r_u * N_u mod n."""
        f = BlindingFactory(b"R3", MODULUS)
        counts = [3, 8, 11]
        blinded_sum = sum(f.blind(7, c) for c in counts) % MODULUS
        assert blinded_sum == f.blind(7, sum(counts))

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            BlindingFactory(b"x", 1)


class TestEncoding:
    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=100)
    def test_scalar_roundtrip(self, x):
        p = 1e-8
        enc = encode_scalar(x, p, MODULUS)
        dec = decode_scalar(enc, p, 1, MODULUS)
        # p/2 quantisation error plus float64 rounding of x/p for large x.
        assert abs(dec - x) <= p / 2 + abs(x) * 1e-12

    def test_negative_maps_to_upper_half(self):
        enc = encode_scalar(-1.0, 1e-3, MODULUS)
        assert enc > MODULUS // 2

    def test_vector_roundtrip(self):
        v = np.array([0.5, -0.25, 1e-5, -3.125])
        enc = encode_vector(v, 1e-10, MODULUS)
        dec = decode_vector(enc, 1e-10, 1, MODULUS)
        np.testing.assert_allclose(dec, v, atol=1e-10)

    def test_clcm_factor_removed_on_decode(self):
        c_lcm = lcm_up_to(12)
        x = 0.75
        enc = encode_scalar(x, 1e-9, MODULUS) * c_lcm % MODULUS
        dec = decode_scalar(enc, 1e-9, c_lcm, MODULUS)
        assert abs(dec - x) < 1e-8

    def test_weighted_division_is_exact(self):
        """n_su * C_LCM / N_u stays integral when N_u <= N_max (Theorem 4)."""
        n_max = 20
        c_lcm = lcm_up_to(n_max)
        for n_u in range(1, n_max + 1):
            assert c_lcm % n_u == 0

    def test_encode_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            encode_scalar(1.0, 0.0, MODULUS)


class TestLcm:
    def test_lcm_up_to_small(self):
        assert lcm_up_to(1) == 1
        assert lcm_up_to(6) == 60
        assert lcm_up_to(10) == 2520

    def test_lcm_growth_is_fast(self):
        # The paper notes C_LCM grows ~ e^N_max; check it exceeds 2^N for
        # moderate N (motivation for restricting admissible counts).
        assert lcm_up_to(40) > 2**40

    def test_lcm_of_counts_restricted(self):
        # Paper's suggestion: restrict counts to powers of ten.
        assert lcm_of_counts([10, 100, 1000, 10000]) == 10000

    def test_lcm_of_counts_rejects_empty(self):
        with pytest.raises(ValueError):
            lcm_of_counts([0, -3])

    def test_lcm_up_to_rejects_zero(self):
        with pytest.raises(ValueError):
            lcm_up_to(0)


class TestMagnitudeBudget:
    def test_reasonable_parameters_fit(self):
        # 512-bit modulus, small model, restricted counts.
        modulus = 2**512
        c_lcm = lcm_of_counts([10, 100, 1000])
        assert check_magnitude_budget(modulus, c_lcm, 1e-10, 1e3, num_terms=10_000)

    def test_huge_clcm_overflows(self):
        modulus = 2**128
        c_lcm = lcm_up_to(100)  # astronomically large
        assert not check_magnitude_budget(modulus, c_lcm, 1e-10, 1e3, num_terms=10)
