"""Tests for Diffie-Hellman agreement, the KDF/stream cipher, and masking."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.dh import (
    DHGroup,
    decrypt_with_key,
    derive_shared_key,
    encrypt_with_key,
)
from repro.crypto.masking import PairwiseMasker, prg_field_elements


@pytest.fixture(scope="module")
def group():
    return DHGroup.test_group()


class TestDiffieHellman:
    def test_shared_secret_agreement(self, group):
        rng = random.Random(0)
        alice = group.keypair(rng=rng)
        bob = group.keypair(rng=rng)
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_distinct_pairs_distinct_secrets(self, group):
        rng = random.Random(1)
        a, b, c = (group.keypair(rng=rng) for _ in range(3))
        assert a.shared_secret(b.public) != a.shared_secret(c.public)

    def test_rejects_degenerate_peer_values(self, group):
        kp = group.keypair(rng=random.Random(2))
        for bad in (0, 1, group.prime - 1, group.prime):
            with pytest.raises(ValueError):
                kp.shared_secret(bad)

    def test_kdf_context_separation(self, group):
        rng = random.Random(3)
        a = group.keypair(rng=rng)
        b = group.keypair(rng=rng)
        s = a.shared_secret(b.public)
        assert derive_shared_key(s, "secure-agg") != derive_shared_key(s, "seed-transport")

    def test_rfc3526_group_loads(self):
        g = DHGroup.rfc3526_2048()
        assert g.prime.bit_length() == 2048
        assert g.generator == 2


class TestDefaultKeygenIsCsprng:
    """The default (rng=None) path must draw from ``secrets``, never the
    seedable global ``random`` state -- a seeded test run must not make
    production keys predictable."""

    def test_default_keypair_leaves_global_random_state_untouched(self, group):
        random.seed(0xBEEF)
        before = random.getstate()
        group.keypair()
        assert random.getstate() == before

    def test_default_keypairs_differ_despite_seeded_global_random(self, group):
        # If keygen secretly read the global PRNG, reseeding between calls
        # would reproduce the same private key.
        random.seed(7)
        a = group.keypair()
        random.seed(7)
        b = group.keypair()
        assert a.private != b.private
        assert a.public != b.public

    def test_explicit_rng_is_reproducible(self, group):
        a = group.keypair(rng=random.Random(42))
        b = group.keypair(rng=random.Random(42))
        assert a.private == b.private and a.public == b.public

    def test_private_key_in_valid_range(self, group):
        kp = group.keypair()
        assert 2 <= kp.private <= group.prime - 3


class TestStreamCipher:
    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=50)
    def test_roundtrip(self, plaintext):
        key = derive_shared_key(123456789, "seed-transport")
        assert decrypt_with_key(key, encrypt_with_key(key, plaintext)) == plaintext

    def test_different_keys_give_different_ciphertexts(self):
        msg = b"shared seed R" * 3
        k1 = derive_shared_key(1, "x")
        k2 = derive_shared_key(2, "x")
        assert encrypt_with_key(k1, msg) != encrypt_with_key(k2, msg)


class TestPrgFieldElements:
    def test_deterministic(self):
        a = prg_field_elements(b"seed", 10, 2**64 + 13)
        b = prg_field_elements(b"seed", 10, 2**64 + 13)
        assert a == b

    def test_context_separation(self):
        a = prg_field_elements(b"seed", 10, 2**64 + 13, context="round-0")
        b = prg_field_elements(b"seed", 10, 2**64 + 13, context="round-1")
        assert a != b

    @given(st.integers(min_value=2, max_value=2**80))
    @settings(max_examples=50)
    def test_in_range(self, modulus):
        values = prg_field_elements(b"s", 8, modulus)
        assert all(0 <= v < modulus for v in values)

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            prg_field_elements(b"s", 1, 1)

    def test_distinct_contexts_yield_independent_streams(self):
        # Not merely unequal: element-wise collisions across many draws
        # would betray correlated streams.
        a = prg_field_elements(b"seed", 64, 2**61 - 1, context="alpha")
        b = prg_field_elements(b"seed", 64, 2**61 - 1, context="beta")
        assert sum(x == y for x, y in zip(a, b)) == 0
        # A context is not interchangeable with seed material either.
        c = prg_field_elements(b"seedalpha", 64, 2**61 - 1, context="")
        assert sum(x == y for x, y in zip(a, c)) == 0

    def test_modulus_two_edge_case(self):
        values = prg_field_elements(b"coin", 256, 2)
        assert set(values) <= {0, 1}
        # Both faces appear: 256 identical draws has probability 2^-255.
        assert set(values) == {0, 1}

    def test_one_byte_modulus_edge_case(self):
        for modulus in (255, 256):
            values = prg_field_elements(b"byte", 512, modulus)
            assert all(0 <= v < modulus for v in values)
            assert max(values) >= modulus - 8  # upper range reachable

    def test_small_modulus_empirical_bias(self):
        # The 16 extra bytes make reduction bias < 2^-128; empirically each
        # residue of a small modulus should appear near-uniformly.  With
        # n=5000 draws over modulus 5, each bucket ~ Binomial(5000, 0.2):
        # std ~= 28, so +-5 std = 140 gives a deterministic-seed test with
        # astronomically low flake probability (and it is seed-fixed anyway).
        modulus, n = 5, 5000
        values = prg_field_elements(b"bias-check", n, modulus)
        expected = n / modulus
        for residue in range(modulus):
            count = values.count(residue)
            assert abs(count - expected) < 140, (residue, count)


class TestPairwiseMasker:
    def _build_parties(self, n_parties, modulus, seed=0):
        """All pairs share a key; return one masker per party."""
        rng = random.Random(seed)
        pair_keys = {}
        for i in range(n_parties):
            for j in range(i + 1, n_parties):
                pair_keys[(i, j)] = rng.randbytes(32)
        maskers = []
        for i in range(n_parties):
            keys = {}
            for j in range(n_parties):
                if j == i:
                    continue
                keys[j] = pair_keys[(min(i, j), max(i, j))]
            maskers.append(PairwiseMasker(i, keys, modulus))
        return maskers

    @pytest.mark.parametrize("n_parties", [2, 3, 5, 8])
    def test_masks_cancel(self, n_parties):
        modulus = 2**127 - 1
        maskers = self._build_parties(n_parties, modulus)
        length = 6
        total = [0] * length
        for m in maskers:
            vec = m.mask_vector(length, context="t")
            for k in range(length):
                total[k] = (total[k] + vec[k]) % modulus
        assert total == [0] * length

    def test_masked_sum_recovers_plain_sum(self):
        modulus = 2**89 - 1
        maskers = self._build_parties(4, modulus, seed=3)
        rng = random.Random(7)
        values = [[rng.randrange(1000) for _ in range(5)] for _ in range(4)]
        masked_total = [0] * 5
        for m, vals in zip(maskers, values):
            mask = m.mask_vector(5, context="round-9")
            for k in range(5):
                masked_total[k] = (masked_total[k] + vals[k] + mask[k]) % modulus
        plain_total = [sum(v[k] for v in values) % modulus for k in range(5)]
        assert masked_total == plain_total

    def test_single_mask_nonzero(self):
        # An individual party's masked value must not equal its plain value
        # (otherwise nothing is hidden).
        maskers = self._build_parties(3, 2**61 - 1, seed=5)
        vec = maskers[0].mask_vector(4, context="c")
        assert any(v != 0 for v in vec)

    def test_contexts_give_independent_masks(self):
        maskers = self._build_parties(2, 2**61 - 1, seed=6)
        assert maskers[0].mask_vector(4, "a") != maskers[0].mask_vector(4, "b")
