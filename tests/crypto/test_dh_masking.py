"""Tests for Diffie-Hellman agreement, the KDF/stream cipher, and masking."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.dh import (
    DHGroup,
    decrypt_with_key,
    derive_shared_key,
    encrypt_with_key,
)
from repro.crypto.masking import PairwiseMasker, prg_field_elements


@pytest.fixture(scope="module")
def group():
    return DHGroup.test_group()


class TestDiffieHellman:
    def test_shared_secret_agreement(self, group):
        rng = random.Random(0)
        alice = group.keypair(rng=rng)
        bob = group.keypair(rng=rng)
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_distinct_pairs_distinct_secrets(self, group):
        rng = random.Random(1)
        a, b, c = (group.keypair(rng=rng) for _ in range(3))
        assert a.shared_secret(b.public) != a.shared_secret(c.public)

    def test_rejects_degenerate_peer_values(self, group):
        kp = group.keypair(rng=random.Random(2))
        for bad in (0, 1, group.prime - 1, group.prime):
            with pytest.raises(ValueError):
                kp.shared_secret(bad)

    def test_kdf_context_separation(self, group):
        rng = random.Random(3)
        a = group.keypair(rng=rng)
        b = group.keypair(rng=rng)
        s = a.shared_secret(b.public)
        assert derive_shared_key(s, "secure-agg") != derive_shared_key(s, "seed-transport")

    def test_rfc3526_group_loads(self):
        g = DHGroup.rfc3526_2048()
        assert g.prime.bit_length() == 2048
        assert g.generator == 2


class TestStreamCipher:
    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=50)
    def test_roundtrip(self, plaintext):
        key = derive_shared_key(123456789, "seed-transport")
        assert decrypt_with_key(key, encrypt_with_key(key, plaintext)) == plaintext

    def test_different_keys_give_different_ciphertexts(self):
        msg = b"shared seed R" * 3
        k1 = derive_shared_key(1, "x")
        k2 = derive_shared_key(2, "x")
        assert encrypt_with_key(k1, msg) != encrypt_with_key(k2, msg)


class TestPrgFieldElements:
    def test_deterministic(self):
        a = prg_field_elements(b"seed", 10, 2**64 + 13)
        b = prg_field_elements(b"seed", 10, 2**64 + 13)
        assert a == b

    def test_context_separation(self):
        a = prg_field_elements(b"seed", 10, 2**64 + 13, context="round-0")
        b = prg_field_elements(b"seed", 10, 2**64 + 13, context="round-1")
        assert a != b

    @given(st.integers(min_value=2, max_value=2**80))
    @settings(max_examples=50)
    def test_in_range(self, modulus):
        values = prg_field_elements(b"s", 8, modulus)
        assert all(0 <= v < modulus for v in values)

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            prg_field_elements(b"s", 1, 1)


class TestPairwiseMasker:
    def _build_parties(self, n_parties, modulus, seed=0):
        """All pairs share a key; return one masker per party."""
        rng = random.Random(seed)
        pair_keys = {}
        for i in range(n_parties):
            for j in range(i + 1, n_parties):
                pair_keys[(i, j)] = rng.randbytes(32)
        maskers = []
        for i in range(n_parties):
            keys = {}
            for j in range(n_parties):
                if j == i:
                    continue
                keys[j] = pair_keys[(min(i, j), max(i, j))]
            maskers.append(PairwiseMasker(i, keys, modulus))
        return maskers

    @pytest.mark.parametrize("n_parties", [2, 3, 5, 8])
    def test_masks_cancel(self, n_parties):
        modulus = 2**127 - 1
        maskers = self._build_parties(n_parties, modulus)
        length = 6
        total = [0] * length
        for m in maskers:
            vec = m.mask_vector(length, context="t")
            for k in range(length):
                total[k] = (total[k] + vec[k]) % modulus
        assert total == [0] * length

    def test_masked_sum_recovers_plain_sum(self):
        modulus = 2**89 - 1
        maskers = self._build_parties(4, modulus, seed=3)
        rng = random.Random(7)
        values = [[rng.randrange(1000) for _ in range(5)] for _ in range(4)]
        masked_total = [0] * 5
        for m, vals in zip(maskers, values):
            mask = m.mask_vector(5, context="round-9")
            for k in range(5):
                masked_total[k] = (masked_total[k] + vals[k] + mask[k]) % modulus
        plain_total = [sum(v[k] for v in values) % modulus for k in range(5)]
        assert masked_total == plain_total

    def test_single_mask_nonzero(self):
        # An individual party's masked value must not equal its plain value
        # (otherwise nothing is hidden).
        maskers = self._build_parties(3, 2**61 - 1, seed=5)
        vec = maskers[0].mask_vector(4, context="c")
        assert any(v != 0 for v in vec)

    def test_contexts_give_independent_masks(self):
        maskers = self._build_parties(2, 2**61 - 1, seed=6)
        assert maskers[0].mask_vector(4, "a") != maskers[0].mask_vector(4, "b")
