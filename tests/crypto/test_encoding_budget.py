"""Boundary coverage for the fixed-point magnitude budget (Theorem 4) and
vector encode/decode consistency with the scalar forms."""

import math

import numpy as np
import pytest

from repro.crypto.encoding import (
    check_magnitude_budget,
    decode_scalar,
    decode_vector,
    encode_scalar,
    encode_vector,
)


class TestCheckMagnitudeBudget:
    MODULUS = 10_000_019  # arbitrary odd modulus; budget is modulus // 2

    def test_exact_half_budget_fails(self):
        # num_terms * max_encoded * c_lcm == modulus // 2 must be rejected:
        # the signed decoding needs strict inequality.
        modulus = 2 * 6 * 100 * 5 + 1  # modulus // 2 == 6 * 100 * 5
        assert math.ceil(9.9 / 0.1) + 1 == 100
        assert not check_magnitude_budget(
            modulus, c_lcm=5, precision=0.1, max_abs_value=9.9, num_terms=6
        )

    def test_one_below_half_budget_passes(self):
        modulus = 2 * 6 * 100 * 5 + 3  # modulus // 2 == budget + 1
        assert check_magnitude_budget(
            modulus, c_lcm=5, precision=0.1, max_abs_value=9.9, num_terms=6
        )

    def test_zero_terms_always_pass(self):
        assert check_magnitude_budget(
            self.MODULUS, c_lcm=10**6, precision=1e-12, max_abs_value=1e9, num_terms=0
        )

    def test_zero_magnitude_uses_safety_margin(self):
        # max_abs_value = 0 still costs ceil(0) + 1 = 1 per term.
        assert check_magnitude_budget(
            self.MODULUS, c_lcm=1, precision=1.0, max_abs_value=0.0,
            num_terms=self.MODULUS // 2 - 1,
        )
        assert not check_magnitude_budget(
            self.MODULUS, c_lcm=1, precision=1.0, max_abs_value=0.0,
            num_terms=self.MODULUS // 2,
        )


class TestEncodingRoundTrip:
    MODULUS = (1 << 127) - 1
    PRECISION = 1e-6

    def test_negative_value_round_trip(self):
        for x in [-1.5, -1e-6, -123.456789, -0.0]:
            encoded = encode_scalar(x, self.PRECISION, self.MODULUS)
            assert 0 <= encoded < self.MODULUS
            decoded = decode_scalar(encoded, self.PRECISION, 1, self.MODULUS)
            assert decoded == pytest.approx(x, abs=self.PRECISION / 2)

    def test_negative_values_map_to_upper_half(self):
        encoded = encode_scalar(-1.0, self.PRECISION, self.MODULUS)
        assert encoded > self.MODULUS // 2

    def test_round_trip_with_c_lcm(self):
        c_lcm = 2520
        for x in [-3.25, 0.0, 7.125]:
            encoded = encode_scalar(x, self.PRECISION, self.MODULUS) * c_lcm % self.MODULUS
            decoded = decode_scalar(encoded, self.PRECISION, c_lcm, self.MODULUS)
            assert decoded == pytest.approx(x, abs=self.PRECISION)

    def test_vector_forms_match_scalar_forms(self):
        rng = np.random.default_rng(0)
        values = np.concatenate([rng.standard_normal(17) * 10, [-0.5, 0.0, 0.5]])
        encoded = encode_vector(values, self.PRECISION, self.MODULUS)
        assert encoded == [
            encode_scalar(float(v), self.PRECISION, self.MODULUS) for v in values
        ]
        decoded = decode_vector(encoded, self.PRECISION, 1, self.MODULUS)
        expected = np.array(
            [decode_scalar(e, self.PRECISION, 1, self.MODULUS) for e in encoded]
        )
        np.testing.assert_array_equal(decoded, expected)

    def test_empty_vector(self):
        assert encode_vector([], self.PRECISION, self.MODULUS) == []
        decoded = decode_vector([], self.PRECISION, 1, self.MODULUS)
        assert decoded.shape == (0,) and decoded.dtype == np.float64

    def test_encode_vector_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            encode_vector([1.0], 0.0, self.MODULUS)
