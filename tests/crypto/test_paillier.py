"""Tests for the Paillier cryptosystem: correctness and homomorphic laws."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_paillier_keypair


@pytest.fixture(scope="module")
def keypair():
    # Small key for fast tests; keygen is the slow part so share it.
    return generate_paillier_keypair(bits=256, rng=random.Random(0))


@pytest.fixture(scope="module")
def rng():
    return random.Random(1)


class TestRoundtrip:
    def test_zero(self, keypair, rng):
        c = keypair.public_key.encrypt(0, rng=rng)
        assert keypair.private_key.decrypt(c) == 0

    def test_small_values(self, keypair, rng):
        for m in (1, 2, 42, 10**6):
            c = keypair.public_key.encrypt(m, rng=rng)
            assert keypair.private_key.decrypt(c) == m

    def test_max_plaintext(self, keypair, rng):
        n = keypair.public_key.n
        c = keypair.public_key.encrypt(n - 1, rng=rng)
        assert keypair.private_key.decrypt(c) == n - 1

    def test_reduction_mod_n(self, keypair, rng):
        n = keypair.public_key.n
        c = keypair.public_key.encrypt(n + 5, rng=rng)
        assert keypair.private_key.decrypt(c) == 5

    def test_negative_via_signed_decrypt(self, keypair, rng):
        c = keypair.public_key.encrypt(-17, rng=rng)
        assert keypair.private_key.decrypt_signed(c) == -17

    def test_ciphertexts_are_randomised(self, keypair, rng):
        c1 = keypair.public_key.encrypt(7, rng=rng)
        c2 = keypair.public_key.encrypt(7, rng=rng)
        assert c1.value != c2.value

    def test_vector_roundtrip(self, keypair, rng):
        values = [0, 1, 99, 12345]
        cts = keypair.public_key.encrypt_vector(values, rng=rng)
        assert keypair.private_key.decrypt_vector(cts) == values


class TestHomomorphism:
    @given(a=st.integers(0, 2**64), b=st.integers(0, 2**64))
    @settings(max_examples=25, deadline=None)
    def test_ciphertext_addition(self, keypair, a, b):
        rng = random.Random(a ^ b)
        pk, sk = keypair.public_key, keypair.private_key
        c = pk.encrypt(a, rng=rng) + pk.encrypt(b, rng=rng)
        assert sk.decrypt(c) == (a + b) % pk.n

    @given(a=st.integers(0, 2**64), k=st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_scalar_multiplication(self, keypair, a, k):
        rng = random.Random(a ^ k)
        pk, sk = keypair.public_key, keypair.private_key
        c = pk.encrypt(a, rng=rng) * k
        assert sk.decrypt(c) == (a * k) % pk.n

    @given(a=st.integers(0, 2**64), b=st.integers(-(2**32), 2**32))
    @settings(max_examples=25, deadline=None)
    def test_scalar_addition(self, keypair, a, b):
        rng = random.Random(a ^ (b & 0xFFFFFFFF))
        pk, sk = keypair.public_key, keypair.private_key
        c = pk.encrypt(a, rng=rng) + b
        assert sk.decrypt(c) == (a + b) % pk.n

    def test_mask_cancellation_in_ciphertext(self, keypair, rng):
        """Adding mask m then -m homomorphically is the identity (mod n)."""
        pk, sk = keypair.public_key, keypair.private_key
        mask = rng.randrange(pk.n)
        c = pk.encrypt(1234, rng=rng)
        c = pk.add_scalar(c, mask)
        c = pk.add_scalar(c, -mask)
        assert sk.decrypt(c) == 1234

    def test_rerandomise_preserves_plaintext(self, keypair, rng):
        pk, sk = keypair.public_key, keypair.private_key
        c = pk.encrypt(555, rng=rng)
        c2 = pk.rerandomise(c, rng=rng)
        assert c2.value != c.value
        assert sk.decrypt(c2) == 555

    def test_weighted_sum_pattern(self, keypair, rng):
        """The exact access pattern of Protocol 1: sum_i k_i * Enc(x_i) + s."""
        pk, sk = keypair.public_key, keypair.private_key
        xs = [3, 5, 7]
        ks = [11, 13, 17]
        scalar = 1000
        total = pk.encrypt(0, rng=rng)
        for x, k in zip(xs, ks):
            total = total + pk.encrypt(x, rng=rng) * k
        total = total + scalar
        expected = sum(x * k for x, k in zip(xs, ks)) + scalar
        assert sk.decrypt(total) == expected % pk.n


class TestKeyCompatibility:
    def test_cross_key_addition_rejected(self, keypair, rng):
        other = generate_paillier_keypair(bits=256, rng=random.Random(99))
        c1 = keypair.public_key.encrypt(1, rng=rng)
        c2 = other.public_key.encrypt(2, rng=rng)
        with pytest.raises(ValueError):
            _ = c1 + c2

    def test_cross_key_decryption_rejected(self, keypair, rng):
        other = generate_paillier_keypair(bits=256, rng=random.Random(98))
        c = other.public_key.encrypt(1, rng=rng)
        with pytest.raises(ValueError):
            keypair.private_key.decrypt(c)

    def test_keygen_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            generate_paillier_keypair(bits=32)

    def test_modulus_bit_length(self, keypair):
        assert keypair.public_key.n.bit_length() == 256
