"""Tests for Miller-Rabin primality testing and prime generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import is_probable_prime, random_distinct_primes, random_prime

KNOWN_PRIMES = [
    2, 3, 5, 7, 11, 13, 101, 7919, 104729, 1299709,
    2**31 - 1,          # Mersenne prime
    (1 << 89) - 1,      # Mersenne prime
]

KNOWN_COMPOSITES = [
    0, 1, 4, 9, 15, 21, 100, 561, 1105, 1729,          # Carmichael numbers included
    2821, 6601, 8911, 41041, 62745, 63973,             # more Carmichael numbers
    2**31, (2**31 - 1) * 3, 104729 * 1299709,
]


class TestIsProbablePrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_accepts_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_rejects_known_composites(self, c):
        assert not is_probable_prime(c)

    def test_rejects_negative(self):
        assert not is_probable_prime(-7)

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=200)
    def test_matches_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_probable_prime(n) == by_trial

    def test_large_prime_product_rejected(self):
        p = random_prime(128, rng=random.Random(1))
        q = random_prime(128, rng=random.Random(2))
        assert not is_probable_prime(p * q)


class TestRandomPrime:
    def test_bit_length_exact(self):
        rng = random.Random(42)
        for bits in (64, 96, 128):
            p = random_prime(bits, rng=rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_top_two_bits_set(self):
        # Needed so p*q has exactly 2*bits bits.
        rng = random.Random(7)
        p = random_prime(64, rng=rng)
        assert (p >> 62) & 0b11 == 0b11

    def test_deterministic_with_seeded_rng(self):
        a = random_prime(96, rng=random.Random(123))
        b = random_prime(96, rng=random.Random(123))
        assert a == b

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            random_prime(4)

    def test_distinct_primes(self):
        p, q = random_distinct_primes(64, rng=random.Random(5))
        assert p != q
        assert is_probable_prime(p) and is_probable_prime(q)
        # product has exactly 128 bits
        assert (p * q).bit_length() == 128
