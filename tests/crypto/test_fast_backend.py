"""Equivalence of the fast crypto backend with the reference backend.

The fast backend (CRT decryption, fixed-base windowed exponentiation,
offline randomizer pools, across-silo process parallelism) must be a pure
performance change: under a seeded RNG every ciphertext, every aggregate,
and every training history must be *bit-identical* to the reference
(seed) implementation.
"""

import random

import numpy as np
import pytest

from repro.crypto.fastexp import FixedBaseExp, choose_window, fixed_base_cost, worthwhile
from repro.crypto.paillier import PaillierCrt, generate_paillier_keypair
from repro.crypto.pool import RandomizerPool
from repro.protocol import PrivateWeightingProtocol
from repro.protocol.oblivious import PrivateSubsampler


@pytest.fixture(scope="module")
def crt_keypair():
    return generate_paillier_keypair(bits=256, rng=random.Random(0), with_crt=True)


@pytest.fixture(scope="module")
def plain_keypair():
    return generate_paillier_keypair(bits=256, rng=random.Random(0))


class TestPaillierCrt:
    def test_same_rng_gives_same_key_with_and_without_crt(self, crt_keypair, plain_keypair):
        assert crt_keypair.public_key == plain_keypair.public_key
        assert crt_keypair.private_key.lam == plain_keypair.private_key.lam
        assert crt_keypair.private_key.crt is not None
        assert plain_keypair.private_key.crt is None

    def test_crt_decrypt_matches_reference(self, crt_keypair, plain_keypair):
        pk = crt_keypair.public_key
        rng = random.Random(7)
        for m in [0, 1, pk.n - 1, pk.n // 2, pk.n // 2 + 1] + [
            rng.randrange(pk.n) for _ in range(20)
        ]:
            ct = pk.encrypt(m, rng=rng)
            assert crt_keypair.private_key.decrypt(ct) == m
            assert crt_keypair.private_key.decrypt(ct) == plain_keypair.private_key.decrypt(ct)

    def test_crt_decrypt_signed(self, crt_keypair):
        pk = crt_keypair.public_key
        rng = random.Random(3)
        for m in [-5, -1, 0, 1, 12345]:
            ct = pk.encrypt(m, rng=rng)
            assert crt_keypair.private_key.decrypt_signed(ct) == m

    def test_pow_to_n_matches_direct(self, crt_keypair):
        pk = crt_keypair.public_key
        crt = crt_keypair.private_key.crt
        rng = random.Random(11)
        for _ in range(10):
            r = rng.randrange(1, pk.n)
            assert crt.pow_to_n(r) == pow(r, pk.n, pk.n_squared)

    def test_rejects_equal_factors(self):
        with pytest.raises(ValueError):
            PaillierCrt.from_factors(17, 17)


class TestFixedBaseExp:
    MOD = 1000003 * 999983  # composite, like n^2

    def test_matches_builtin_pow(self):
        rng = random.Random(1)
        base = rng.randrange(2, self.MOD)
        fb = FixedBaseExp(base, self.MOD, exp_bits=64, window=5)
        for e in [0, 1, 2, 31, 32, (1 << 64) - 1] + [rng.randrange(1 << 64) for _ in range(50)]:
            assert fb.pow(e) == pow(base, e, self.MOD)

    def test_exponent_with_zero_digits(self):
        base = 12345
        fb = FixedBaseExp(base, self.MOD, exp_bits=40, window=8)
        # Exponents whose radix-256 digits are mostly zero exercise the
        # skip-empty-digit path.
        for e in [1 << 8, 1 << 16, 1 << 32, (1 << 32) + 255]:
            assert fb.pow(e) == pow(base, e, self.MOD)

    def test_rejects_out_of_range_exponents(self):
        fb = FixedBaseExp(7, self.MOD, exp_bits=16, window=4)
        with pytest.raises(ValueError):
            fb.pow(-1)
        with pytest.raises(ValueError):
            fb.pow(1 << 16)

    def test_auto_window_grows_with_batch_size(self):
        assert choose_window(512, 4) <= choose_window(512, 100000)

    def test_auto_window_respects_table_memory_cap(self):
        from repro.crypto.fastexp import MAX_TABLE_ENTRIES, _digits

        # Even an enormous batch at paper-scale exponents must not pick a
        # window whose table exceeds the entry cap (gigabytes of bigints).
        w = choose_window(3072, 10**6)
        assert _digits(3072, w) << w <= MAX_TABLE_ENTRIES

    def test_worthwhile_cost_model(self):
        # One exponentiation never amortises a table; a big batch does.
        assert not worthwhile(512, 1)
        assert worthwhile(512, 1024)
        # Cost model sanity: the table term scales with 2^w.
        assert fixed_base_cost(512, 9, 0) > fixed_base_cost(512, 2, 0)


class TestRandomizerPool:
    def test_pooled_encryption_is_bit_identical_to_reference(self, crt_keypair):
        pk = crt_keypair.public_key
        pool = RandomizerPool(pk, crt=crt_keypair.private_key.crt, rng=random.Random(5))
        pool.refill(8)
        reference_rng = random.Random(5)
        for m in range(8):
            expected = pk.encrypt(m, rng=reference_rng)
            assert pool.encrypt(m).value == expected.value

    def test_take_falls_back_to_on_demand_generation(self, crt_keypair):
        pk = crt_keypair.public_key
        pool = RandomizerPool(pk, rng=random.Random(9))
        assert len(pool) == 0
        value = pool.take()  # no refill: generated on demand
        expected_rng = random.Random(9)
        r = pk._random_unit(expected_rng)
        assert value == pow(r, pk.n, pk.n_squared)

    def test_pooled_ciphertexts_decrypt_correctly(self, crt_keypair):
        pool = RandomizerPool(
            crt_keypair.public_key, crt=crt_keypair.private_key.crt, rng=random.Random(2)
        )
        pool.refill(3)
        for m in [0, 17, 123456]:
            assert crt_keypair.private_key.decrypt(pool.encrypt(m)) == m

    def test_mismatched_crt_context_rejected(self, crt_keypair):
        other = generate_paillier_keypair(bits=256, rng=random.Random(42), with_crt=True)
        with pytest.raises(ValueError):
            RandomizerPool(crt_keypair.public_key, crt=other.private_key.crt)


HIST = [
    [3, 0, 2, 1],
    [1, 4, 0, 1],
    [2, 1, 1, 0],
]


def make_protocol(backend, seed=0, workers=1):
    proto = PrivateWeightingProtocol(
        np.asarray(HIST), n_max=16, paillier_bits=256, seed=seed,
        crypto_backend=backend, workers=workers,
    )
    proto.run_setup()
    return proto


def round_inputs(proto, d=7, seed=1):
    rng = np.random.default_rng(seed)
    deltas, noises = [], []
    for s in range(proto.n_silos):
        per_user = {
            u: rng.standard_normal(d)
            for u in range(proto.n_users)
            if proto.histogram[s, u] > 0
        }
        deltas.append(per_user)
        noises.append(rng.standard_normal(d))
    return deltas, noises


class TestProtocolBackendEquivalence:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            PrivateWeightingProtocol(
                np.asarray(HIST), paillier_bits=256, seed=0, crypto_backend="quantum"
            )

    def test_run_round_bit_identical(self):
        ref, fast = make_protocol("reference"), make_protocol("fast")
        deltas, noises = round_inputs(ref)
        deltas_f, noises_f = round_inputs(fast)
        agg_ref = ref.run_round(deltas, noises)
        agg_fast = fast.run_round(deltas_f, noises_f)
        assert ref.view.blinded_totals == fast.view.blinded_totals
        assert ref.view.round_ciphertexts == fast.view.round_ciphertexts
        assert np.array_equal(agg_ref, agg_fast)
        assert "offline_randomizers" in fast.timer.report()

    def test_run_round_with_sampling_bit_identical(self):
        ref, fast = make_protocol("reference"), make_protocol("fast")
        deltas, noises = round_inputs(ref)
        deltas_f, noises_f = round_inputs(fast)
        sampled = np.array([0, 2])
        agg_ref = ref.run_round(deltas, noises, sampled_users=sampled)
        agg_fast = fast.run_round(deltas_f, noises_f, sampled_users=sampled)
        assert ref.view.round_ciphertexts == fast.view.round_ciphertexts
        assert np.array_equal(agg_ref, agg_fast)

    def test_multiple_rounds_stay_in_lockstep(self):
        ref, fast = make_protocol("reference"), make_protocol("fast")
        for r in range(3):
            deltas, noises = round_inputs(ref, seed=10 + r)
            deltas_f, noises_f = round_inputs(fast, seed=10 + r)
            agg_ref = ref.run_round(deltas, noises)
            agg_fast = fast.run_round(deltas_f, noises_f)
            assert np.array_equal(agg_ref, agg_fast)
        assert ref.view.round_ciphertexts == fast.view.round_ciphertexts

    def test_process_pool_matches_serial(self):
        serial, pooled = make_protocol("fast", workers=1), make_protocol("fast", workers=2)
        deltas, noises = round_inputs(serial)
        deltas_p, noises_p = round_inputs(pooled)
        agg_serial = serial.run_round(deltas, noises)
        agg_pooled = pooled.run_round(deltas_p, noises_p)
        assert serial.view.round_ciphertexts == pooled.view.round_ciphertexts
        assert np.array_equal(agg_serial, agg_pooled)

    def test_ot_round_enforces_magnitude_budget(self):
        proto = make_protocol("fast")
        sub = PrivateSubsampler(proto.silos[0].shared_seed, n_slots=2)
        deltas, noises = round_inputs(proto, d=4)
        deltas[0][0] = np.full(4, 1e65)  # breaches n/2 for a 256-bit modulus
        with pytest.raises(ValueError, match="magnitude budget"):
            proto.run_round_ot_sampling(deltas, noises, sub)

    def test_ot_sampling_round_bit_identical(self):
        ref, fast = make_protocol("reference"), make_protocol("fast")
        sub_ref = PrivateSubsampler(ref.silos[0].shared_seed, n_slots=2)
        sub_fast = PrivateSubsampler(fast.silos[0].shared_seed, n_slots=2)
        deltas, noises = round_inputs(ref)
        deltas_f, noises_f = round_inputs(fast)
        agg_ref = ref.run_round_ot_sampling(deltas, noises, sub_ref)
        agg_fast = fast.run_round_ot_sampling(deltas_f, noises_f, sub_fast)
        assert np.array_equal(agg_ref, agg_fast)
        sampled = np.array(sub_ref.sampled_users(ref.n_users, 0))
        expected = ref.plaintext_reference(deltas, noises, sampled_users=sampled)
        np.testing.assert_allclose(agg_ref, expected, atol=1e-6)

    def test_matches_plaintext_reference(self):
        fast = make_protocol("fast")
        deltas, noises = round_inputs(fast)
        agg = fast.run_round(deltas, noises)
        np.testing.assert_allclose(agg, fast.plaintext_reference(deltas, noises), atol=1e-6)


class TestSecureMethodBackendEquivalence:
    def test_training_history_identical(self):
        from repro.core import Trainer
        from repro.data import build_creditcard_benchmark
        from repro.nn.model import build_tiny_mlp
        from repro.protocol import SecureUldpAvg

        fed = build_creditcard_benchmark(
            n_users=6, n_silos=3, n_records=120, n_test=40, seed=0
        )
        results = {}
        for backend in ("reference", "fast"):
            method = SecureUldpAvg(
                local_epochs=1, noise_multiplier=1.0, local_lr=0.1,
                paillier_bits=256, crypto_backend=backend,
            )
            model = build_tiny_mlp(30, 2, 2, np.random.default_rng(42))
            trainer = Trainer(fed, method, rounds=2, model=model, seed=7)
            history = trainer.run()
            results[backend] = (model.get_flat_params(), history)
        ref_params, ref_hist = results["reference"]
        fast_params, fast_hist = results["fast"]
        np.testing.assert_array_equal(fast_params, ref_params)
        assert [r.metric for r in fast_hist.records] == [r.metric for r in ref_hist.records]
        assert [r.loss for r in fast_hist.records] == [r.loss for r in ref_hist.records]
