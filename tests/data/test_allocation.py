"""Tests for record allocation schemes (Section 5.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.allocation import (
    allocate_noniid_by_label,
    allocate_presiloed_uniform,
    allocate_presiloed_zipf,
    allocate_uniform,
    allocate_zipf,
    enforce_min_records_per_pair,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalised(self):
        w = zipf_weights(50, 0.5)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w > 0)

    def test_decreasing(self):
        w = zipf_weights(20, 2.0)
        assert np.all(np.diff(w) < 0)

    def test_alpha_zero_is_uniform(self):
        w = zipf_weights(10, 0.0)
        np.testing.assert_allclose(w, 0.1)

    def test_higher_alpha_more_concentrated(self):
        shallow = zipf_weights(100, 0.5)
        steep = zipf_weights(100, 2.0)
        assert steep[0] > shallow[0]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)


class TestFreeAllocation:
    @given(st.integers(50, 500), st.integers(2, 20), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_uniform_shapes_and_ranges(self, n, users, silos):
        rng = np.random.default_rng(n)
        u, s = allocate_uniform(n, users, silos, rng)
        assert len(u) == len(s) == n
        assert u.min() >= 0 and u.max() < users
        assert s.min() >= 0 and s.max() < silos

    def test_uniform_is_roughly_balanced(self):
        rng = np.random.default_rng(0)
        u, s = allocate_uniform(50_000, 10, 5, rng)
        user_counts = np.bincount(u, minlength=10)
        silo_counts = np.bincount(s, minlength=5)
        assert user_counts.std() / user_counts.mean() < 0.05
        assert silo_counts.std() / silo_counts.mean() < 0.05

    @given(st.integers(100, 1000), st.integers(5, 50), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_zipf_shapes_and_ranges(self, n, users, silos):
        rng = np.random.default_rng(n + 1)
        u, s = allocate_zipf(n, users, silos, rng)
        assert len(u) == len(s) == n
        assert u.min() >= 0 and u.max() < users
        assert s.min() >= 0 and s.max() < silos

    def test_zipf_user_counts_skewed(self):
        rng = np.random.default_rng(1)
        u, _ = allocate_zipf(20_000, 100, 5, rng, alpha_user=0.5)
        counts = np.sort(np.bincount(u, minlength=100))[::-1]
        # Top user should hold several times the median user's records.
        assert counts[0] > 3 * max(np.median(counts), 1)

    def test_zipf_silo_concentration_per_user(self):
        """alpha_silo=2.0 concentrates each user's records in one silo."""
        rng = np.random.default_rng(2)
        u, s = allocate_zipf(20_000, 20, 5, rng)
        fracs = []
        for user in range(20):
            mask = u == user
            if mask.sum() < 10:
                continue
            silo_counts = np.bincount(s[mask], minlength=5)
            fracs.append(silo_counts.max() / mask.sum())
        assert np.mean(fracs) > 0.55  # zipf(2.0) puts ~64% on rank 1

    def test_deterministic_given_seed(self):
        a = allocate_zipf(500, 10, 3, np.random.default_rng(7))
        b = allocate_zipf(500, 10, 3, np.random.default_rng(7))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestPresiloedAllocation:
    def test_uniform_respects_silo_sizes(self):
        rng = np.random.default_rng(3)
        sizes = [30, 50, 20]
        lists = allocate_presiloed_uniform(sizes, 10, rng)
        assert [len(l) for l in lists] == sizes
        assert all(l.max() < 10 for l in lists)

    def test_zipf_respects_silo_sizes(self):
        rng = np.random.default_rng(4)
        sizes = [40, 60, 30, 70]
        lists = allocate_presiloed_zipf(sizes, 15, rng)
        assert [len(l) for l in lists] == sizes

    def test_zipf_primary_silo_concentration(self):
        rng = np.random.default_rng(5)
        sizes = [200, 200, 200, 200]
        lists = allocate_presiloed_zipf(sizes, 10, rng, primary_fraction=0.8)
        users = np.concatenate(lists)
        silos = np.concatenate([np.full(sz, i) for i, sz in enumerate(sizes)])
        fracs = []
        for user in range(10):
            mask = users == user
            if mask.sum() < 10:
                continue
            counts = np.bincount(silos[mask], minlength=4)
            fracs.append(counts.max() / mask.sum())
        # Most records of a user should sit in that user's primary silo.
        assert np.mean(fracs) > 0.5

    def test_zipf_rejects_bad_primary_fraction(self):
        with pytest.raises(ValueError):
            allocate_presiloed_zipf([10], 5, np.random.default_rng(0), primary_fraction=0.0)

    def test_zipf_capacity_smaller_than_primary_share(self):
        # The head user's 80% primary share (~80 records) dwarfs every
        # silo's capacity: the fitting must still fill the silos exactly
        # and stay within the user range.
        rng = np.random.default_rng(11)
        sizes = [5, 5, 5]  # total 15 records over 2 users, alpha -> head-heavy
        lists = allocate_presiloed_zipf(sizes, 2, rng, alpha_user=3.0)
        assert [len(l) for l in lists] == sizes
        assert all(l.min() >= 0 and l.max() < 2 for l in lists)

    def test_zipf_single_silo_gets_everyone(self):
        rng = np.random.default_rng(12)
        (assignments,) = allocate_presiloed_zipf([25], 6, rng)
        assert len(assignments) == 25
        assert assignments.max() < 6

    def test_zipf_more_users_than_records(self):
        # Capacities sum below n_users: most users get nothing; the
        # desired-count fallback (uniform once desires are exhausted)
        # must not loop or emit out-of-range ids.
        rng = np.random.default_rng(13)
        lists = allocate_presiloed_zipf([3, 2], 50, rng)
        assert [len(l) for l in lists] == [3, 2]
        assert np.concatenate(lists).max() < 50


class TestNonIidAllocation:
    def test_each_user_sees_at_most_two_labels(self):
        rng = np.random.default_rng(6)
        labels = rng.integers(0, 10, size=5000)
        users, silos = allocate_noniid_by_label(labels, 50, 5, rng, labels_per_user=2)
        for user in range(50):
            seen = np.unique(labels[users == user])
            assert len(seen) <= 2

    def test_all_records_assigned(self):
        rng = np.random.default_rng(7)
        labels = rng.integers(0, 10, size=1000)
        users, silos = allocate_noniid_by_label(labels, 20, 4, rng)
        assert len(users) == len(silos) == 1000
        assert users.max() < 20 and silos.max() < 4

    def test_zipf_silo_variant(self):
        rng = np.random.default_rng(8)
        labels = rng.integers(0, 10, size=2000)
        users, silos = allocate_noniid_by_label(
            labels, 20, 5, rng, silo_distribution="zipf"
        )
        assert silos.max() < 5

    def test_rejects_unknown_silo_distribution(self):
        with pytest.raises(ValueError):
            allocate_noniid_by_label(
                np.zeros(10, dtype=int), 2, 2, np.random.default_rng(0),
                silo_distribution="nope",
            )


class TestMinRecordsEnforcement:
    def test_enforces_minimum(self):
        rng = np.random.default_rng(9)
        users = rng.integers(0, 30, size=100)
        silos = rng.integers(0, 4, size=100)
        fixed = enforce_min_records_per_pair(users, silos, 2, rng)
        for s in range(4):
            in_silo = fixed[silos == s]
            ids, counts = np.unique(in_silo, return_counts=True)
            assert np.all(counts >= 2) or len(ids) == 1

    def test_noop_when_already_satisfied(self):
        users = np.array([0, 0, 1, 1])
        silos = np.array([0, 0, 0, 0])
        fixed = enforce_min_records_per_pair(users, silos, 2, np.random.default_rng(0))
        np.testing.assert_array_equal(fixed, users)

    def test_does_not_mutate_input(self):
        users = np.array([0, 1, 2, 3])
        silos = np.zeros(4, dtype=int)
        enforce_min_records_per_pair(users, silos, 2, np.random.default_rng(0))
        np.testing.assert_array_equal(users, [0, 1, 2, 3])

    def test_rejects_bad_minimum(self):
        with pytest.raises(ValueError):
            enforce_min_records_per_pair(
                np.zeros(3, dtype=int), np.zeros(3, dtype=int), 0, np.random.default_rng(0)
            )

    def test_all_users_under_minimum_merge_into_one(self):
        # Every user holds a single record but min_records=3: the whole
        # silo collapses onto one user (the merge-all branch).
        users = np.array([0, 1, 2, 3])
        silos = np.zeros(4, dtype=int)
        fixed = enforce_min_records_per_pair(users, silos, 3, np.random.default_rng(0))
        assert len(np.unique(fixed)) == 1

    def test_single_user_silo_left_alone(self):
        # One user below the minimum but nobody to merge with: unchanged.
        users = np.array([7])
        silos = np.array([2])
        fixed = enforce_min_records_per_pair(users, silos, 2, np.random.default_rng(0))
        np.testing.assert_array_equal(fixed, [7])

    def test_silo_membership_never_changes(self):
        # The helper reassigns users, never moves records across silos:
        # per-silo record counts are invariant.
        rng = np.random.default_rng(10)
        users = rng.integers(0, 40, size=120)
        silos = rng.integers(0, 5, size=120)
        before = np.bincount(silos, minlength=5)
        enforce_min_records_per_pair(users, silos, 3, rng)
        np.testing.assert_array_equal(np.bincount(silos, minlength=5), before)

    def test_donor_records_go_to_largest_user(self):
        users = np.array([0, 0, 0, 1])  # user 1 has 1 record < 2
        silos = np.zeros(4, dtype=int)
        fixed = enforce_min_records_per_pair(users, silos, 2, np.random.default_rng(0))
        np.testing.assert_array_equal(fixed, [0, 0, 0, 0])
