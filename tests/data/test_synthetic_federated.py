"""Tests for synthetic dataset generators and the FederatedDataset container."""

import numpy as np
import pytest

from repro.data import (
    FederatedDataset,
    SiloData,
    build_creditcard_benchmark,
    build_heartdisease_benchmark,
    build_mnist_benchmark,
    build_tcgabrca_benchmark,
)
from repro.data.synthetic import (
    synthetic_creditcard,
    synthetic_heartdisease,
    synthetic_mnist,
    synthetic_tcgabrca,
)


class TestGenerators:
    def test_creditcard_shapes(self):
        raw = synthetic_creditcard(n_records=1000, n_test=200, seed=0)
        assert raw.x.shape == (1000, 30)
        assert raw.test_x.shape == (200, 30)
        assert set(np.unique(raw.y)) <= {0, 1}
        assert raw.task == "binary"

    def test_creditcard_imbalance(self):
        raw = synthetic_creditcard(n_records=5000, positive_rate=0.2, seed=1)
        rate = raw.y.mean()
        assert 0.15 < rate < 0.25

    def test_creditcard_is_learnable(self):
        """Positive class must be separable from negatives (mean shift)."""
        raw = synthetic_creditcard(n_records=5000, seed=2)
        mu_pos = raw.x[raw.y == 1].mean(axis=0)
        mu_neg = raw.x[raw.y == 0].mean(axis=0)
        assert np.linalg.norm(mu_pos - mu_neg) > 0.5

    def test_mnist_shapes(self):
        raw = synthetic_mnist(n_records=300, n_test=50, image_size=14, seed=0)
        assert raw.x.shape == (300, 1, 14, 14)
        assert raw.task == "multiclass"
        assert raw.y.max() < 10

    def test_mnist_classes_distinct(self):
        raw = synthetic_mnist(n_records=2000, noise_std=0.3, seed=1)
        # Per-class means should be mutually further apart than within-class
        # scatter (i.e. the task is learnable).
        means = np.stack([raw.x[raw.y == c].mean(axis=0).ravel() for c in range(10)])
        dists = np.linalg.norm(means[:, None] - means[None, :], axis=2)
        off_diag = dists[~np.eye(10, dtype=bool)]
        assert off_diag.min() > 1.0

    def test_heartdisease_structure(self):
        xs, ys, raw = synthetic_heartdisease(seed=0)
        assert len(xs) == 4
        assert [len(x) for x in xs] == [303, 261, 46, 130]
        assert raw.task == "binary"

    def test_tcgabrca_structure(self):
        xs, ys, raw = synthetic_tcgabrca(seed=0)
        assert len(xs) == 6
        assert ys[0].shape[1] == 2  # (time, event)
        assert np.all(ys[0][:, 0] > 0)  # positive times
        assert set(np.unique(ys[0][:, 1])) <= {0.0, 1.0}
        assert raw.task == "survival"

    def test_tcgabrca_has_events_and_censoring(self):
        _, ys, _ = synthetic_tcgabrca(seed=3)
        events = np.concatenate([y[:, 1] for y in ys])
        assert 0.3 < events.mean() < 0.9

    def test_determinism(self):
        a = synthetic_creditcard(n_records=100, seed=5)
        b = synthetic_creditcard(n_records=100, seed=5)
        np.testing.assert_array_equal(a.x, b.x)


class TestFederatedDataset:
    def _tiny(self):
        silos = [
            SiloData(np.zeros((4, 2)), np.zeros(4), np.array([0, 0, 1, 2])),
            SiloData(np.zeros((3, 2)), np.zeros(3), np.array([1, 1, 2])),
        ]
        return FederatedDataset(
            silos=silos, n_users=3, test_x=np.zeros((2, 2)), test_y=np.zeros(2),
            task="binary", name="tiny",
        )

    def test_histogram(self):
        fed = self._tiny()
        np.testing.assert_array_equal(
            fed.histogram(), [[2, 1, 1], [0, 2, 1]]
        )

    def test_user_totals(self):
        np.testing.assert_array_equal(self._tiny().user_totals(), [2, 3, 2])

    def test_counts(self):
        fed = self._tiny()
        assert fed.n_silos == 2
        assert fed.n_records == 7
        assert fed.mean_records_per_user() == pytest.approx(7 / 3)

    def test_records_of_user(self):
        fed = self._tiny()
        x, y = fed.silos[0].records_of_user(0)
        assert len(x) == 2

    def test_apply_flags(self):
        fed = self._tiny()
        flags = [np.array([True, False, True, True]), np.array([False, True, True])]
        filtered = fed.apply_flags(flags)
        assert filtered.n_records == 5
        np.testing.assert_array_equal(filtered.histogram().sum(axis=0), [1, 2, 2])
        # Original untouched.
        assert fed.n_records == 7

    def test_apply_flags_validates(self):
        fed = self._tiny()
        with pytest.raises(ValueError):
            fed.apply_flags([np.array([True])] * 2)
        with pytest.raises(ValueError):
            fed.apply_flags([np.ones(4, dtype=bool)])

    def test_rejects_bad_task(self):
        with pytest.raises(ValueError):
            FederatedDataset(
                silos=[], n_users=1, test_x=np.zeros((1, 1)), test_y=np.zeros(1),
                task="regression",
            )

    def test_rejects_out_of_range_user(self):
        with pytest.raises(ValueError):
            FederatedDataset(
                silos=[SiloData(np.zeros((1, 1)), np.zeros(1), np.array([5]))],
                n_users=3, test_x=np.zeros((1, 1)), test_y=np.zeros(1),
                task="binary",
            )

    def test_summary_string(self):
        s = self._tiny().summary()
        assert "|S|=2" in s and "|U|=3" in s


class TestBenchmarkBuilders:
    def test_creditcard_benchmark(self):
        fed = build_creditcard_benchmark(
            n_users=20, n_silos=5, n_records=500, n_test=100, seed=0
        )
        assert fed.n_silos == 5
        assert fed.n_users == 20
        assert fed.n_records == 500
        assert fed.task == "binary"

    def test_mnist_benchmark_noniid(self):
        fed = build_mnist_benchmark(
            n_users=10, n_silos=3, n_records=300, n_test=50, non_iid=True, seed=0
        )
        for user in range(10):
            labels = set()
            for silo in fed.silos:
                _, y = silo.records_of_user(user)
                labels.update(np.unique(y).tolist())
            assert len(labels) <= 2

    def test_heartdisease_benchmark(self):
        fed = build_heartdisease_benchmark(n_users=25, seed=0)
        assert fed.n_silos == 4
        assert [s.n_records for s in fed.silos] == [303, 261, 46, 130]

    def test_tcgabrca_min_two_records(self):
        fed = build_tcgabrca_benchmark(n_users=30, distribution="zipf", seed=0)
        hist = fed.histogram()
        present = hist[hist > 0]
        assert present.min() >= 2

    def test_zipf_distribution_accepted(self):
        fed = build_creditcard_benchmark(
            n_users=50, distribution="zipf", n_records=1000, n_test=100, seed=1
        )
        totals = fed.user_totals()
        assert totals.max() > 3 * max(np.median(totals), 1)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            build_creditcard_benchmark(distribution="normal", n_records=100, n_test=10)

    def test_seed_reproducibility(self):
        a = build_creditcard_benchmark(n_users=10, n_records=200, n_test=20, seed=9)
        b = build_creditcard_benchmark(n_users=10, n_records=200, n_test=20, seed=9)
        np.testing.assert_array_equal(a.histogram(), b.histogram())
