"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestEpsilonCommand:
    def test_basic_query(self, capsys):
        assert main(["epsilon", "--sigma", "5.0", "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert "eps=" in out and "alpha=" in out

    def test_group_conversion_reported(self, capsys):
        main([
            "epsilon", "--sigma", "5.0", "--steps", "1000",
            "--sample-rate", "0.01", "--group-size", "8",
        ])
        out = capsys.readouterr().out
        assert "group-privacy conversion (k=8" in out

    def test_matches_accountant(self, capsys):
        from repro.accounting import PrivacyAccountant

        main(["epsilon", "--sigma", "5.0", "--steps", "100"])
        out = capsys.readouterr().out
        acct = PrivacyAccountant()
        acct.step(5.0, steps=100)
        expected = acct.get_epsilon(1e-5)
        reported = float(out.split("=> eps=")[1].split()[0])
        assert reported == pytest.approx(expected, abs=1e-3)


class TestCalibrateCommand:
    def test_solve_sigma(self, capsys):
        assert main(["calibrate", "--target-epsilon", "2.0", "--steps", "100"]) == 0
        out = capsys.readouterr().out
        assert "sigma=" in out

    def test_solve_q(self, capsys):
        main([
            "calibrate", "--target-epsilon", "0.5", "--steps", "100",
            "--solve-for", "q", "--sigma", "5.0",
        ])
        out = capsys.readouterr().out
        assert "q=" in out


class TestDatasetsCommand:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("creditcard", "mnist", "heartdisease", "tcgabrca"):
            assert name in out


class TestTrainCommand:
    def test_small_run_with_output(self, capsys, tmp_path):
        out_file = tmp_path / "history.json"
        code = main([
            "train", "--dataset", "creditcard", "--method", "uldp-avg",
            "--rounds", "2", "--users", "8", "--silos", "2",
            "--records", "120", "--local-epochs", "1",
            "--output", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ULDP-AVG" in out
        payload = json.loads(out_file.read_text())
        assert payload[0]["schema"] == "uldp-fl-history/v1"
        assert len(payload[0]["records"]) == 2

    def test_default_method(self, capsys):
        code = main([
            "train", "--dataset", "creditcard", "--method", "default",
            "--rounds", "1", "--users", "6", "--silos", "2",
            "--records", "80", "--local-epochs", "1",
        ])
        assert code == 0
        assert "(none)" in capsys.readouterr().out

    def test_compressed_run_reports_wire_traffic(self, capsys):
        code = main([
            "train", "--dataset", "creditcard", "--method", "uldp-avg-w",
            "--rounds", "2", "--users", "8", "--silos", "2",
            "--records", "120", "--local-epochs", "1",
            "--compress", "topk", "--compress-fraction", "0.05",
            "--quantize-bits", "8", "--error-feedback",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wire traffic" in out

    def test_modifier_flags_without_lossy_pipeline_rejected(self, capsys):
        code = main([
            "train", "--dataset", "creditcard", "--method", "uldp-avg-w",
            "--rounds", "1", "--users", "6", "--silos", "2",
            "--records", "80", "--local-epochs", "1", "--error-feedback",
        ])
        assert code == 2
        assert "--compress" in capsys.readouterr().err

    def test_lossy_compression_on_unsupported_method_rejected(self, capsys):
        code = main([
            "train", "--dataset", "creditcard", "--method", "default",
            "--rounds", "1", "--users", "6", "--silos", "2",
            "--records", "80", "--local-epochs", "1", "--compress", "topk",
        ])
        assert code == 2
        assert "compression" in capsys.readouterr().err

    def test_heartdisease_run(self, capsys):
        code = main([
            "train", "--dataset", "heartdisease", "--method", "uldp-naive",
            "--rounds", "1", "--users", "10", "--local-epochs", "1",
        ])
        assert code == 0
        assert "heartdisease" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])


class TestSimulateCommand:
    def test_list_scenarios(self, capsys):
        assert main(["simulate", "--list"]) == 0
        out = capsys.readouterr().out
        assert "ideal-sync" in out and "async-fedbuff" in out

    def test_requires_scenario_or_resume(self, capsys):
        assert main(["simulate"]) == 2

    def test_run_checkpoint_and_resume(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        out_file = tmp_path / "history.json"
        code = main([
            "simulate", "--scenario", "silo-outage", "--scale", "smoke",
            "--checkpoint-dir", str(ckpt), "--checkpoint-every", "1",
            "--output", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ULDP-AVG-w" in out and "releases" in out
        payload = json.loads(out_file.read_text())
        assert payload[0]["participation"]

        assert main(["simulate", "--resume", str(ckpt)]) == 0
        assert "resumed from" in capsys.readouterr().out
