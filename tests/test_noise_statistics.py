"""Statistical verification of the DP noise calibration.

The privacy theorems hold only if the implementations add exactly the
noise they claim.  These tests measure the empirical noise standard
deviation of each method's aggregate (signal removed by differencing two
runs with identical data but different noise seeds... simpler: by running
with zero-gradient data) and compare with the analytic values:

- ULDP-NAIVE: per-silo std sigma*C*sqrt(|S|) => aggregate sum std sigma*C*|S|.
- ULDP-AVG/SGD: per-silo std sigma*C/sqrt(|S|) => aggregate sum std sigma*C.
- DP-SGD step: noise std sigma*C on the gradient sum (before averaging).

A chi-square style bound at ~5 sigma over thousands of coordinates keeps
the tests deterministic-in-practice while actually sensitive to, say, a
missing square root.
"""

import numpy as np
import pytest

from repro.core.methods import UldpAvg, UldpNaive, UldpSgd
from repro.core.probes import make_fed
from repro.nn.model import build_tiny_mlp

# Zero-record layout trick: every silo has records of user 0 only, and we
# freeze training by using local_lr=0, so the aggregate is pure noise.
LAYOUT = [[0, 1], [0, 1], [0, 1]]


def noise_only_aggregate(method_cls, sigma, clip, seed, **kwargs):
    fed = make_fed(LAYOUT, 2, seed=0, n_features=4)
    rng = np.random.default_rng(seed)
    model = build_tiny_mlp(4, 32, 2, np.random.default_rng(42))  # 226 params
    if method_cls is UldpSgd:
        method = method_cls(clip=clip, noise_multiplier=sigma, global_lr=1.0, **kwargs)
    else:
        # local_lr ~ 0 (must be positive): deltas ~ 1e-12, negligible
        # against O(1) noise, so the aggregate is noise to 10+ digits.
        method = method_cls(
            clip=clip, noise_multiplier=sigma, global_lr=1.0, local_lr=1e-12,
            local_epochs=1, **kwargs
        )
    method.prepare(fed, model, rng)
    params = model.get_flat_params()
    new_params = method.round(0, params)
    return new_params - params, fed


def empirical_std(samples: np.ndarray) -> float:
    return float(np.sqrt(np.mean(samples**2)))


class TestNoiseCalibration:
    @pytest.mark.parametrize("sigma,clip", [(1.0, 1.0), (5.0, 0.5)])
    def test_uldp_avg_aggregate_noise_is_sigma_c(self, sigma, clip):
        """Summed ULDP-AVG noise must have std sigma*C (Theorem 3)."""
        diffs = []
        for seed in range(4):
            diff, fed = noise_only_aggregate(UldpAvg, sigma, clip, seed)
            # Server divides the sum by |U||S| (global_lr=1): undo it.
            diffs.append(diff * (fed.n_users * fed.n_silos))
        samples = np.concatenate(diffs)
        # With local_lr=0 every delta is zero, so samples are pure noise.
        expected = sigma * clip
        assert empirical_std(samples) == pytest.approx(expected, rel=0.08)

    def test_uldp_sgd_aggregate_noise_is_sigma_c(self):
        sigma, clip = 2.0, 1.0
        diffs = []
        for seed in range(4):
            diff, fed = noise_only_aggregate(UldpSgd, sigma, clip, seed)
            diffs.append(diff * (fed.n_users * fed.n_silos))
        samples = np.concatenate(diffs)
        # SGD contributes real (clipped) gradients too; subtract the mean
        # across seeds to isolate noise?  The gradient term is identical
        # across seeds (same data, same params), so differencing two seeds
        # leaves noise * sqrt(2).
        a, _ = noise_only_aggregate(UldpSgd, sigma, clip, 100)
        b, fed = noise_only_aggregate(UldpSgd, sigma, clip, 200)
        pure = (a - b) * (fed.n_users * fed.n_silos) / np.sqrt(2)
        assert empirical_std(pure) == pytest.approx(sigma * clip, rel=0.12)

    def test_uldp_naive_aggregate_noise_is_sigma_c_s(self):
        """Summed ULDP-NAIVE noise must have std sigma*C*|S| (Theorem 1)."""
        sigma, clip = 1.0, 1.0
        diffs = []
        for seed in range(4):
            diff, fed = noise_only_aggregate(UldpNaive, sigma, clip, seed)
            diffs.append(diff * fed.n_silos)  # server divides by |S|
        samples = np.concatenate(diffs)
        expected = sigma * clip * 3  # |S| = 3
        assert empirical_std(samples) == pytest.approx(expected, rel=0.08)

    def test_naive_noise_exceeds_avg_noise_by_factor_s(self):
        """The Figure 3 intuition, measured: NAIVE pays |S|x more noise."""
        sigma, clip = 1.0, 1.0
        naive, fed = noise_only_aggregate(UldpNaive, sigma, clip, 7)
        avg, _ = noise_only_aggregate(UldpAvg, sigma, clip, 7)
        naive_std = empirical_std(naive * fed.n_silos)
        avg_std = empirical_std(avg * (fed.n_users * fed.n_silos))
        assert naive_std / avg_std == pytest.approx(fed.n_silos, rel=0.2)

    def test_dpsgd_step_noise(self):
        """DP-SGD noise std is sigma*C before the batch-size division."""
        from repro.nn.dpsgd import dpsgd_step
        from repro.nn.losses import SoftmaxCrossEntropyLoss

        sigma, clip = 3.0, 1.0
        rng_data = np.random.default_rng(0)
        x = rng_data.standard_normal((10, 4))
        y = rng_data.integers(0, 2, 10)
        model = build_tiny_mlp(4, 32, 2, np.random.default_rng(1))
        before = model.get_flat_params()
        # lr chosen so the update = (grad_sum + noise) / expected_batch;
        # with sample_rate->tiny the batch is empty w.h.p. -> pure noise.
        n = x.shape[0]
        sample_rate = 1e-9
        samples = []
        for seed in range(6):
            model.set_flat_params(before)
            dpsgd_step(
                model, SoftmaxCrossEntropyLoss(), x, y, lr=1.0, clip=clip,
                noise_multiplier=sigma, sample_rate=sample_rate,
                rng=np.random.default_rng(seed),
            )
            samples.append((model.get_flat_params() - before) * (sample_rate * n))
        std = empirical_std(np.concatenate(samples))
        assert std == pytest.approx(sigma * clip, rel=0.08)
