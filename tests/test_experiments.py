"""Tests for the experiment registry and the CLI figure subcommand."""

import pytest

from repro.cli import main
from repro.experiments import (
    available_experiments,
    describe_experiment,
    run_experiment,
    run_experiment_multi_seed,
)


class TestRegistry:
    def test_lists_figures(self):
        names = available_experiments()
        assert "fig02" in names and "fig04" in names and "fig09" in names

    def test_descriptions(self):
        for name in available_experiments():
            assert len(describe_experiment(name)) > 10

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")
        with pytest.raises(KeyError):
            describe_experiment("fig99")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig04", scale="huge")


class TestSmokeScaleRuns:
    def test_fig02(self):
        result = run_experiment("fig02", scale="smoke")
        ks = [r["k"] for r in result.rows]
        assert ks == [1, 2, 4, 8, 16, 32, 64]
        eps = [r["eps_rdp_route"] for r in result.rows]
        assert all(b > a for a, b in zip(eps, eps[1:]))
        assert "k" in result.table()

    def test_fig04(self):
        result = run_experiment("fig04", scale="smoke")
        methods = [h.method for h in result.histories]
        assert "DEFAULT" in methods and "ULDP-AVG-w" in methods
        assert "DEFAULT" in result.table()

    def test_fig06(self):
        result = run_experiment("fig06", scale="smoke")
        assert len(result.histories) == 5

    def test_fig08(self):
        result = run_experiment("fig08", scale="smoke")
        assert [h.method for h in result.histories] == ["ULDP-AVG", "ULDP-AVG-w"]

    def test_fig09(self):
        result = run_experiment("fig09", scale="smoke")
        eps = [r["epsilon"] for r in result.rows]
        assert all(b > a for a, b in zip(eps, eps[1:]))

    def test_fig12(self):
        result = run_experiment("fig12", scale="smoke")
        by_dist = {r["distribution"]: r for r in result.rows}
        assert by_dist["zipf"]["top_silo_fraction"] > by_dist["uniform"]["top_silo_fraction"]


class TestMultiSeed:
    def test_history_experiment_aggregated(self):
        result = run_experiment_multi_seed("fig08", scale="smoke", seeds=(0, 1))
        assert "mean +/- std over 2 seeds" in result.description
        assert len(result.rows) == 2  # two methods
        for row in result.rows:
            assert "metric_mean" in row and "metric_std" in row
            assert row["metric_std"] >= 0

    def test_row_experiment_aggregated(self):
        result = run_experiment_multi_seed("fig12", scale="smoke", seeds=(0, 1))
        for row in result.rows:
            assert "max_records_mean" in row
            assert row["distribution"] in ("uniform", "zipf")

    def test_deterministic_quantity_has_zero_std(self):
        # Epsilon is a pure accounting quantity: identical across seeds.
        result = run_experiment_multi_seed("fig09", scale="smoke", seeds=(0, 1))
        for row in result.rows:
            assert row["epsilon_std"] == pytest.approx(0.0, abs=1e-12)

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            run_experiment_multi_seed("fig08", seeds=())


class TestFigureCli:
    def test_list(self, capsys):
        assert main(["figure", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out

    def test_run_fig02(self, capsys):
        assert main(["figure", "fig02", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "group-privacy" in out

    def test_missing_name_errors(self, capsys):
        assert main(["figure"]) == 2

    def test_output_file(self, capsys, tmp_path):
        out_file = tmp_path / "fig08.json"
        assert main([
            "figure", "fig08", "--scale", "smoke", "--output", str(out_file)
        ]) == 0
        assert out_file.exists()
