"""Unit tests for the compression primitives: spec, sparsify, quantize,
and the stateful pipeline (error feedback, byte ledger, checkpoint state)."""

import numpy as np
import pytest

from repro.compress import (
    DOWNLINK_SLOT,
    CompressionSpec,
    UpdateCompressor,
    dequantize,
    quantize_stochastic,
    randk_indices,
    scatter,
    topk_indices,
)


class TestCompressionSpec:
    def test_default_is_identity(self):
        assert CompressionSpec().is_identity
        assert CompressionSpec.none().is_identity

    def test_lossy_specs_not_identity(self):
        assert not CompressionSpec(sparsify="topk", fraction=0.1).is_identity
        assert not CompressionSpec(quantize_bits=8).is_identity

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CompressionSpec(sparsify="magic")
        with pytest.raises(ValueError):
            CompressionSpec(fraction=0.0)
        with pytest.raises(ValueError):
            CompressionSpec(fraction=1.5)
        with pytest.raises(ValueError):
            CompressionSpec(quantize_bits=1)
        with pytest.raises(ValueError):
            CompressionSpec(quantize_bits=32)
        with pytest.raises(ValueError):
            CompressionSpec(index_bytes=0)

    def test_rejects_noop_modifiers_on_identity_spec(self):
        # error_feedback/downlink silently do nothing without a lossy
        # stage; the spec refuses the combination outright.
        with pytest.raises(ValueError, match="identity"):
            CompressionSpec(error_feedback=True)
        with pytest.raises(ValueError, match="identity"):
            CompressionSpec(downlink=True)
        # With any lossy stage both flags are meaningful.
        CompressionSpec(quantize_bits=8, error_feedback=True, downlink=True)

    def test_keep_count(self):
        spec = CompressionSpec(sparsify="topk", fraction=0.05)
        assert spec.keep_count(1000) == 50
        assert spec.keep_count(10) == 1   # ceil(0.5) with floor at 1
        assert spec.keep_count(1) == 1
        assert CompressionSpec().keep_count(1000) == 1000

    def test_payload_bytes_dense(self):
        assert CompressionSpec().payload_bytes(100) == 800

    def test_payload_bytes_sparse(self):
        spec = CompressionSpec(sparsify="topk", fraction=0.1)
        # 10 indices * 4B + 10 values * 8B
        assert spec.payload_bytes(100) == 10 * 4 + 10 * 8

    def test_payload_bytes_sparse_quantized(self):
        spec = CompressionSpec(sparsify="topk", fraction=0.1, quantize_bits=8)
        # 10 indices * 4B + scale 8B + 10 levels * 1B
        assert spec.payload_bytes(100) == 40 + 8 + 10

    def test_payload_bytes_odd_bit_packing(self):
        spec = CompressionSpec(quantize_bits=3)
        # 10 values * 3 bits = 30 bits -> 4 bytes, + 8B scale
        assert spec.payload_bytes(10) == 8 + 4


class TestSparsify:
    def test_topk_selects_largest_magnitudes(self):
        v = np.array([0.1, -5.0, 2.0, 0.0, -3.0])
        np.testing.assert_array_equal(topk_indices(v, 2), [1, 4])

    def test_topk_indices_sorted_and_full(self):
        v = np.array([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(topk_indices(v, 3), [0, 1, 2])

    def test_topk_tie_break_deterministic(self):
        v = np.array([1.0, 1.0, 1.0, 1.0])
        np.testing.assert_array_equal(topk_indices(v, 2), [0, 1])

    def test_topk_rejects_bad_k(self):
        with pytest.raises(ValueError):
            topk_indices(np.ones(3), 0)
        with pytest.raises(ValueError):
            topk_indices(np.ones(3), 4)

    def test_randk_is_sorted_unique_in_range(self):
        rng = np.random.default_rng(0)
        idx = randk_indices(100, 17, rng)
        assert len(idx) == 17
        assert np.all(np.diff(idx) > 0)
        assert idx.min() >= 0 and idx.max() < 100

    def test_randk_deterministic_given_rng(self):
        a = randk_indices(50, 10, np.random.default_rng(7))
        b = randk_indices(50, 10, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_scatter_round_trip(self):
        v = np.array([0.0, 2.0, 0.0, -1.0])
        idx = np.array([1, 3])
        np.testing.assert_array_equal(scatter(idx, v[idx], 4), v)

    def test_scatter_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            scatter(np.array([4]), np.array([1.0]), 4)


class TestQuantize:
    def test_round_trip_error_bounded(self):
        rng = np.random.default_rng(0)
        v = rng.standard_normal(500) * 3.0
        block = quantize_stochastic(v, 8, rng)
        back = dequantize(block)
        bound = block.scale / ((1 << 7) - 1)
        assert np.max(np.abs(back - v)) <= bound + 1e-12

    def test_stochastic_rounding_unbiased(self):
        v = np.full(20_000, 0.3)
        rng = np.random.default_rng(1)
        block = quantize_stochastic(v, 4, rng)
        back = dequantize(block)
        # Mean of many stochastic roundings converges to the true value.
        assert np.mean(back) == pytest.approx(0.3, rel=0.02)

    def test_extremes_map_exactly(self):
        v = np.array([-2.0, 0.0, 2.0])
        block = quantize_stochastic(v, 8, np.random.default_rng(0))
        back = dequantize(block)
        np.testing.assert_allclose(back[[0, 2]], [-2.0, 2.0])
        assert back[1] == 0.0

    def test_zero_vector(self):
        block = quantize_stochastic(np.zeros(5), 8, np.random.default_rng(0))
        assert block.scale == 0.0
        np.testing.assert_array_equal(dequantize(block), np.zeros(5))

    def test_nbytes(self):
        block = quantize_stochastic(np.ones(10), 8, np.random.default_rng(0))
        assert block.nbytes == 8 + 10

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            quantize_stochastic(np.array([1.0, np.nan]), 8, np.random.default_rng(0))

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize_stochastic(np.ones(3), 1, np.random.default_rng(0))


class TestUpdateCompressor:
    def spec(self, **kwargs):
        defaults = dict(sparsify="topk", fraction=0.25, error_feedback=True)
        defaults.update(kwargs)
        return CompressionSpec(**defaults)

    def test_identity_returns_input_bytes_dense(self):
        comp = UpdateCompressor(CompressionSpec.none(), 3, 8)
        v = np.arange(8.0)
        out = comp.compress_uplink(0, v)
        np.testing.assert_array_equal(out.dense, v)
        assert out.nbytes == 64
        assert out.kept == 8

    def test_topk_keeps_largest(self):
        comp = UpdateCompressor(self.spec(error_feedback=False), 2, 8)
        v = np.array([0.0, 9.0, 0.1, 0.0, -8.0, 0.2, 0.0, 0.0])
        out = comp.compress_uplink(0, v)
        np.testing.assert_array_equal(
            out.dense, [0.0, 9.0, 0.0, 0.0, -8.0, 0.0, 0.0, 0.0]
        )
        assert out.kept == 2
        assert out.nbytes == 2 * 4 + 2 * 8

    def test_error_feedback_telescopes(self):
        comp = UpdateCompressor(self.spec(), 1, 4)
        v1 = np.array([1.0, 10.0, 0.0, 0.0])
        out1 = comp.compress_uplink(0, v1)
        # Discarded mass lands in the residual...
        np.testing.assert_array_equal(comp.residual(0), v1 - out1.dense)
        # ... and is added to the next payload before selection.
        v2 = np.array([0.0, 0.0, 0.0, 0.0])
        out2 = comp.compress_uplink(0, v2)
        np.testing.assert_array_equal(out2.dense, [1.0, 0.0, 0.0, 0.0])

    def test_residuals_are_per_silo(self):
        comp = UpdateCompressor(self.spec(), 2, 4)
        comp.compress_uplink(0, np.array([1.0, 10.0, 0.0, 0.0]))
        assert comp.residual(1) is None
        comp.compress_downlink(np.array([0.0, 0.0, 2.0, 20.0]))
        np.testing.assert_array_equal(
            comp.residual(DOWNLINK_SLOT), [0.0, 0.0, 2.0, 0.0]
        )

    def test_compress_matches_analytic_bytes(self):
        for spec in [
            CompressionSpec(),
            CompressionSpec(sparsify="topk", fraction=0.3),
            CompressionSpec(sparsify="randk", fraction=0.3, quantize_bits=4),
            CompressionSpec(quantize_bits=8),
        ]:
            comp = UpdateCompressor(spec, 1, 40)
            out = comp.compress_uplink(0, np.linspace(-1, 1, 40))
            assert out.nbytes == spec.payload_bytes(40), spec

    def test_draw_support_requires_randk(self):
        comp = UpdateCompressor(self.spec(), 1, 8)
        with pytest.raises(ValueError):
            comp.draw_support(8)
        randk = UpdateCompressor(
            CompressionSpec(sparsify="randk", fraction=0.5), 1, 8
        )
        assert len(randk.draw_support(8)) == 4

    def test_unknown_silo_rejected(self):
        comp = UpdateCompressor(self.spec(), 2, 4)
        with pytest.raises(ValueError):
            comp.compress_uplink(2, np.zeros(4))

    def test_state_dict_round_trip_bit_identical(self):
        spec = CompressionSpec(
            sparsify="randk", fraction=0.5, quantize_bits=8, error_feedback=True
        )
        a = UpdateCompressor(spec, 2, 16)
        rng = np.random.default_rng(3)
        for r in range(3):
            for s in range(2):
                a.compress_uplink(s, rng.standard_normal(16))
        state = a.state_dict()

        b = UpdateCompressor(spec, 2, 16)
        b.load_state(state)
        payload = np.arange(16.0)
        out_a = a.compress_uplink(0, payload)
        out_b = b.compress_uplink(0, payload)
        np.testing.assert_array_equal(out_a.dense, out_b.dense)
        assert out_a.nbytes == out_b.nbytes

    def test_state_survives_json_style_keys(self):
        # Checkpoints round-trip through JSON, which stringifies dict keys.
        spec = self.spec()
        a = UpdateCompressor(spec, 1, 4)
        a.compress_uplink(0, np.array([1.0, 10.0, 0.0, 0.0]))
        state = a.state_dict()
        state["residuals"] = {str(k): v for k, v in state["residuals"].items()}
        b = UpdateCompressor(spec, 1, 4)
        b.load_state(state)
        np.testing.assert_array_equal(b.residual(0), a.residual(0))
