"""Compression <-> secure-protocol round trip: sparse encode/decode at the
magnitude-budget boundaries, Protocol 1 over a shared random support, and
the SecureUldpAvg validation of admissible specs."""

import numpy as np
import pytest

from repro.compress import CompressionSpec
from repro.core import Trainer, UldpAvg
from repro.crypto.encoding import (
    check_magnitude_budget,
    decode_sparse_vector,
    encode_sparse_vector,
    encode_vector,
)
from repro.data import build_creditcard_benchmark
from repro.nn.model import build_tiny_mlp
from repro.protocol import PrivateWeightingProtocol, SecureUldpAvg


class TestSparseEncoding:
    MODULUS = (1 << 127) - 1
    PRECISION = 1e-6

    def test_matches_dense_encoding_on_support(self):
        values = np.array([1.5, -2.25, 0.0, 3.125, -0.5])
        indices = np.array([0, 3, 4])
        sparse = encode_sparse_vector(values, indices, self.PRECISION, self.MODULUS)
        dense = encode_vector(values, self.PRECISION, self.MODULUS)
        assert sparse == [dense[i] for i in indices]

    def test_round_trip_zeroes_unsent_coordinates(self):
        values = np.array([1.5, -2.25, 7.0, 3.125, -0.5])
        indices = np.array([1, 3])
        encoded = encode_sparse_vector(values, indices, self.PRECISION, self.MODULUS)
        decoded = decode_sparse_vector(
            encoded, indices, 5, self.PRECISION, 1, self.MODULUS
        )
        np.testing.assert_allclose(decoded[[1, 3]], values[[1, 3]], atol=self.PRECISION)
        assert decoded[0] == 0.0 and decoded[2] == 0.0 and decoded[4] == 0.0

    def test_extreme_magnitudes_at_budget_boundary(self):
        # Integer precision keeps every quantity float-exact, so the
        # modulus can be built to sit exactly at the Theorem 4 boundary:
        # num_terms * (ceil(v) + 1) * c_lcm < n // 2 must hold strictly.
        c_lcm, num_terms, precision = 2520, 6, 1.0
        max_abs = 1e9
        max_encoded = int(max_abs) + 1
        modulus = 2 * num_terms * max_encoded * c_lcm + 3  # budget + 1
        assert check_magnitude_budget(modulus, c_lcm, precision, max_abs, num_terms)
        # Two fewer: exactly at the budget, which must be rejected.
        assert not check_magnitude_budget(
            modulus - 2, c_lcm, precision, max_abs, num_terms
        )
        values = np.array([max_abs, -max_abs, 0.0])
        indices = np.array([0, 1])
        encoded = [
            v * c_lcm % modulus
            for v in encode_sparse_vector(values, indices, precision, modulus)
        ]
        decoded = decode_sparse_vector(encoded, indices, 3, precision, c_lcm, modulus)
        np.testing.assert_array_equal(decoded, [max_abs, -max_abs, 0.0])

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError):
            encode_sparse_vector([1.0, 2.0], [2], self.PRECISION, self.MODULUS)
        with pytest.raises(ValueError):
            decode_sparse_vector([1], [5], 3, self.PRECISION, 1, self.MODULUS)
        with pytest.raises(ValueError):
            decode_sparse_vector([1, 2], [0], 3, self.PRECISION, 1, self.MODULUS)


class TestProtocolSparseRound:
    """Protocol 1 restricted to a shared support == plaintext on that support."""

    def protocol(self, hist, **kwargs):
        defaults = dict(n_max=16, paillier_bits=256, precision=1e-8, seed=0)
        defaults.update(kwargs)
        return PrivateWeightingProtocol(hist, **defaults)

    def test_sparse_round_matches_plaintext_reference(self):
        hist = np.array([[3, 0, 2], [1, 4, 2]])
        protocol = self.protocol(hist)
        protocol.run_setup()
        d, k = 12, 4
        rng = np.random.default_rng(5)
        deltas = [
            {0: rng.standard_normal(d), 2: rng.standard_normal(d)},
            {u: rng.standard_normal(d) for u in range(3)},
        ]
        noises = [rng.standard_normal(d) * 0.1 for _ in range(2)]
        support = np.sort(rng.choice(d, size=k, replace=False))

        sparse_deltas = [
            {u: delta[support] for u, delta in per_silo.items()} for per_silo in deltas
        ]
        sparse_noises = [z[support] for z in noises]
        sub = protocol.run_round(sparse_deltas, sparse_noises)
        expected = protocol.plaintext_reference(sparse_deltas, sparse_noises)
        np.testing.assert_allclose(sub, expected, atol=1e-6)

        # Scattered back, unsent coordinates are exactly zero.
        dense = np.zeros(d)
        dense[support] = sub
        assert np.all(dense[np.setdiff1d(np.arange(d), support)] == 0.0)

    def test_sparse_round_respects_magnitude_budget(self):
        # Extreme coordinate magnitudes must still trip the overflow guard
        # when restricted to a support (the bound is per-coordinate).
        hist = np.array([[2, 1], [1, 2]])
        protocol = self.protocol(hist, precision=1e-40)
        protocol.run_setup()
        big = 1e38
        deltas = [{0: np.array([big, -big])}, {1: np.array([big, -big])}]
        noises = [np.zeros(2), np.zeros(2)]
        with pytest.raises(ValueError, match="magnitude budget"):
            protocol.run_round(deltas, noises)


class TestSecureUldpAvgCompression:
    @pytest.fixture(scope="class")
    def fed(self):
        return build_creditcard_benchmark(
            n_users=6, n_silos=3, n_records=120, n_test=40, seed=0
        )

    def run(self, fed, compression=None, seed=7, rounds=2):
        model = build_tiny_mlp(30, 2, 2, np.random.default_rng(42))
        method = SecureUldpAvg(
            local_epochs=1, noise_multiplier=1.0, local_lr=0.1,
            paillier_bits=256, compression=compression,
        )
        trainer = Trainer(fed, method, rounds=rounds, model=model, seed=seed)
        return trainer.run(), method

    def test_randk_shrinks_ciphertext_uplink_exactly(self, fed):
        spec = CompressionSpec(sparsify="randk", fraction=0.25, seed=3)
        dense_hist, method = self.run(fed)
        sparse_hist, _ = self.run(fed, compression=spec)
        dim = method.model.num_params
        k = spec.keep_count(dim)
        ratio = dense_hist.comm[0].uplink_bytes / sparse_hist.comm[0].uplink_bytes
        assert ratio == pytest.approx(dim / k)

    def test_randk_epsilon_identical_to_dense(self, fed):
        spec = CompressionSpec(sparsify="randk", fraction=0.25, seed=3)
        dense_hist, _ = self.run(fed)
        sparse_hist, _ = self.run(fed, compression=spec)
        assert sparse_hist.final.epsilon == dense_hist.final.epsilon

    def test_sparse_secure_training_stays_finite(self, fed):
        spec = CompressionSpec(sparsify="randk", fraction=0.25, seed=3)
        history, _ = self.run(fed, compression=spec)
        assert np.isfinite(history.final.loss)

    @pytest.mark.parametrize(
        "spec",
        [
            CompressionSpec(sparsify="topk", fraction=0.1),
            CompressionSpec(sparsify="randk", fraction=0.1, quantize_bits=8),
            CompressionSpec(sparsify="randk", fraction=0.1, error_feedback=True),
            CompressionSpec(sparsify="randk", fraction=0.1, downlink=True),
        ],
        ids=["topk", "quantized", "error-feedback", "downlink"],
    )
    def test_inadmissible_specs_rejected(self, fed, spec):
        with pytest.raises(ValueError):
            self.run(fed, compression=spec, rounds=1)

    def test_identity_spec_admitted(self, fed):
        history, _ = self.run(fed, compression=CompressionSpec.none(), rounds=1)
        assert history.comm[0].uplink_bytes > 0
