"""End-to-end compression through the Trainer: the oracle equivalence of
``compression="none"``, post-processing invariance of epsilon, byte-ledger
behaviour, and engine parity."""

import numpy as np
import pytest

from repro.compress import CompressionSpec
from repro.core import Default, Trainer, UldpAvg
from repro.data import build_creditcard_benchmark
from repro.report import history_from_dict, history_to_dict


def tiny_fed(seed=0):
    return build_creditcard_benchmark(
        n_users=10, n_silos=3, n_records=200, n_test=60, seed=seed
    )


def tiny_method(**kwargs):
    defaults = dict(noise_multiplier=1.0, local_epochs=1, weighting="proportional")
    defaults.update(kwargs)
    return UldpAvg(**defaults)


def run(compression=None, rounds=3, seed=1, **method_kwargs):
    trainer = Trainer(
        tiny_fed(), tiny_method(**method_kwargs), rounds=rounds, seed=seed,
        compression=compression,
    )
    trainer.run()
    return trainer


LOSSY = CompressionSpec(
    sparsify="topk", fraction=0.1, quantize_bits=8, error_feedback=True
)


class TestOracleEquivalence:
    def test_none_spec_is_bit_identical_to_plain_trainer(self):
        plain = run(compression=None)
        ident = run(compression=CompressionSpec.none())
        assert np.array_equal(plain.params, ident.params)
        assert plain.history.records == ident.history.records
        assert plain.history.participation == ident.history.participation
        # The byte ledger is populated either way (dense defaults).
        assert plain.history.comm == ident.history.comm

    def test_constructor_spec_equals_trainer_spec(self):
        via_trainer = run(compression=LOSSY)
        trainer = Trainer(
            tiny_fed(), tiny_method(compression=LOSSY), rounds=3, seed=1
        )
        trainer.run()
        assert np.array_equal(via_trainer.params, trainer.params)
        assert via_trainer.history.comm == trainer.history.comm


class TestPostProcessingInvariance:
    def test_epsilon_identical_under_lossy_compression(self):
        # Compression happens strictly post-noise: the accountant must see
        # exactly the same calls, so epsilon matches to the last bit.
        plain = run(compression=None)
        compressed = run(compression=LOSSY)
        assert [r.epsilon for r in compressed.history.records] == [
            r.epsilon for r in plain.history.records
        ]

    def test_training_noise_draws_identical(self):
        # The compressor draws from its own stream: after identical rounds,
        # the trainer RNG of compressed and uncompressed runs must agree.
        plain = run(compression=None)
        compressed = run(compression=LOSSY)
        assert plain.rng.bit_generator.state == compressed.rng.bit_generator.state

    def test_compression_reduces_uplink_bytes(self):
        plain = run(compression=None)
        compressed = run(compression=LOSSY)
        ratio = plain.history.total_uplink_bytes / compressed.history.total_uplink_bytes
        assert ratio > 10.0

    def test_compressed_run_still_trains(self):
        compressed = run(compression=LOSSY, rounds=4)
        assert np.all(np.isfinite(compressed.params))
        assert np.isfinite(compressed.history.final.loss)


class TestByteLedger:
    def test_dense_default_bytes(self):
        plain = run(compression=None, rounds=2)
        dim = plain.params.size
        for record in plain.history.comm:
            assert record.uplink_bytes == 3 * dim * 8
            assert record.downlink_bytes == 3 * dim * 8

    def test_identity_spec_counts_dense_bytes(self):
        ident = run(compression=CompressionSpec.none(), rounds=2)
        dim = ident.params.size
        assert ident.history.comm[0].uplink_bytes == 3 * dim * 8

    def test_downlink_compression_shrinks_downlink_only_when_enabled(self):
        up_only = run(compression=LOSSY, rounds=2)
        dim = up_only.params.size
        assert up_only.history.comm[0].downlink_bytes == 3 * dim * 8

        both = run(
            compression=CompressionSpec(
                sparsify="topk", fraction=0.1, quantize_bits=8,
                error_feedback=True, downlink=True,
            ),
            rounds=2,
        )
        assert both.history.comm[0].downlink_bytes < 3 * dim * 8

    def test_comm_summary_and_totals(self):
        trainer = run(compression=LOSSY, rounds=3)
        up_mean, down_mean = trainer.history.comm_summary()
        assert up_mean * 3 == pytest.approx(trainer.history.total_uplink_bytes)
        assert down_mean * 3 == pytest.approx(trainer.history.total_downlink_bytes)

    def test_comm_serialisation_round_trip(self):
        history = run(compression=LOSSY, rounds=2).history
        restored = history_from_dict(history_to_dict(history))
        assert restored.comm == history.comm

    def test_legacy_payload_without_comm_loads(self):
        data = history_to_dict(run(rounds=2).history)
        del data["comm"]
        assert history_from_dict(data).comm == []


class TestEngineParity:
    def test_loop_and_vectorized_report_identical_bytes(self):
        vec = run(compression=LOSSY, engine="vectorized")
        loop = run(compression=LOSSY, engine="loop")
        assert [c.uplink_bytes for c in vec.history.comm] == [
            c.uplink_bytes for c in loop.history.comm
        ]
        # Same RNG discipline as the engine seam: aggregates agree to
        # floating-point precision, so the trajectories stay close.
        np.testing.assert_allclose(vec.params, loop.params, atol=1e-8)


class TestUnsupportedMethods:
    def test_non_avg_method_rejects_lossy_spec(self):
        with pytest.raises(NotImplementedError):
            Trainer(tiny_fed(), Default(), rounds=1, compression=LOSSY)

    def test_non_avg_method_accepts_identity_spec(self):
        trainer = Trainer(
            tiny_fed(), Default(local_epochs=1), rounds=1,
            compression=CompressionSpec.none(),
        )
        trainer.run()
        assert trainer.history.comm[0].uplink_bytes > 0
