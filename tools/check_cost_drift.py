#!/usr/bin/env python
"""The cost-model drift gate: predictions must stay within 2x of benches.

Two modes (both exit non-zero on violation and can emit a JSON report):

- **default**: evaluate the committed ``src/repro/cost/calibration.json``
  against the ``BENCH_*.json`` files in ``--bench-dir`` -- every gated
  measurement's predicted/measured ratio must lie in [1/2, 2], and every
  wire-byte formula must match the benches' accounting *exactly*.
- **--refit**: additionally fit fresh constants from the (typically
  smoke-refreshed) bench files and require each gated constant to land
  within 2x of its committed value -- the perf-regression signal CI
  runs after re-executing the smoke benches.

Measurements under the 2 ms noise floor, the reference backend's
randomized keygen, and other ``gate=False`` rows are reported but never
fail the gate (docs/cost_model.md, "drift-gate semantics").

Usage::

    python tools/check_cost_drift.py [--refit] [--report out.json]
                                     [--bench-dir DIR] [--calibration PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cost import model as cost_model  # noqa: E402
from repro.cost.calibrate import (  # noqa: E402
    DRIFT_FACTOR,
    CalibrationError,
    byte_check_rows,
    drift_rows,
    fit_calibration,
    load_benches,
    load_calibration,
)


def _compare_constants(committed: dict, fresh: dict) -> list[dict]:
    rows = []
    for name in sorted(committed):
        gated = cost_model.CONSTANT_DEFS[name].gate
        old, new = committed[name], fresh.get(name)
        if new is None or old <= 0:
            ratio = float("inf")
        else:
            ratio = new / old
        rows.append(
            {
                "constant": name,
                "committed": old,
                "refit": new,
                "ratio": ratio,
                "gated": gated,
                "ok": (not gated) or (1 / DRIFT_FACTOR <= ratio <= DRIFT_FACTOR),
            }
        )
    return rows


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench-dir", default=str(REPO_ROOT))
    parser.add_argument("--calibration", default=None)
    parser.add_argument(
        "--refit",
        action="store_true",
        help="also re-fit constants from the bench files and compare "
        "against the committed calibration",
    )
    parser.add_argument("--report", default=None, help="write a JSON report here")
    args = parser.parse_args(argv)

    try:
        calibration = load_calibration(args.calibration)
        benches = load_benches(args.bench_dir)
        prediction_rows = drift_rows(calibration, benches)
        byte_rows = byte_check_rows(benches)
    except CalibrationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failures = 0
    print("== prediction vs measured (gated rows must stay within 2x) ==")
    for row in prediction_rows:
        mark = "GATE" if row["gated"] else "    "
        status = "ok" if row["ok"] else "DRIFT"
        if not row["ok"]:
            failures += 1
        print(
            f"{mark} {status:5s} {row['label']:55s} "
            f"measured={row['measured']:<12.5g} "
            f"predicted={row['predicted']:<12.5g} ratio={row['ratio']:.3f}"
        )
    print("\n== wire-byte formulas (must match exactly) ==")
    for row in byte_rows:
        status = "ok" if row["ok"] else "MISMATCH"
        if not row["ok"]:
            failures += 1
        print(
            f"{status:8s} {row['label']:55s} "
            f"predicted={row['predicted']} measured={row['measured']}"
        )

    constant_rows: list[dict] = []
    if args.refit:
        try:
            fresh, _ = fit_calibration(args.bench_dir)
        except CalibrationError as exc:
            print(f"refit error: {exc}", file=sys.stderr)
            return 2
        constant_rows = _compare_constants(calibration.constants, fresh.constants)
        print("\n== refit constants vs committed (gated must stay within 2x) ==")
        for row in constant_rows:
            mark = "GATE" if row["gated"] else "    "
            status = "ok" if row["ok"] else "DRIFT"
            if not row["ok"]:
                failures += 1
            print(
                f"{mark} {status:5s} {row['constant']:30s} "
                f"committed={row['committed']:<12.5g} "
                f"refit={row['refit']:<12.5g} ratio={row['ratio']:.3f}"
            )

    if args.report:
        Path(args.report).write_text(
            json.dumps(
                {
                    "drift_factor": DRIFT_FACTOR,
                    "failures": failures,
                    "predictions": prediction_rows,
                    "byte_checks": byte_rows,
                    "refit_constants": constant_rows,
                },
                indent=1,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"\nreport written to {args.report}")

    if failures:
        print(f"\nFAIL: {failures} gated check(s) drifted beyond 2x")
        return 1
    print("\nall gated cost-model checks within 2x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
