"""Docstring-coverage check: every public module in src/repro needs a docstring.

Used by ``make docs-check`` and ``tests/test_docs.py``.  Exits non-zero and
lists offenders when a module (any ``.py`` file under ``src/repro`` whose
name does not start with an underscore, plus ``__init__.py`` files) lacks a
module-level docstring.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOT = REPO_ROOT / "src" / "repro"


def modules_missing_docstrings(root: Path = SOURCE_ROOT) -> list[Path]:
    """Paths of public modules under ``root`` without a module docstring."""
    missing = []
    for path in sorted(root.rglob("*.py")):
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if ast.get_docstring(tree) is None:
            missing.append(path.relative_to(REPO_ROOT))
    return missing


def main() -> int:
    missing = modules_missing_docstrings()
    checked = len(
        [
            p
            for p in SOURCE_ROOT.rglob("*.py")
            if not p.name.startswith("_") or p.name == "__init__.py"
        ]
    )
    if missing:
        print(f"{len(missing)} public module(s) missing a module docstring:")
        for path in missing:
            print(f"  {path}")
        return 1
    print(f"docstring coverage OK: {checked} public modules all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
