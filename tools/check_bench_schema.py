#!/usr/bin/env python
"""Validate committed ``BENCH_*.json`` files against ``uldp-fl-bench/v1``.

The bench files are the cost model's calibration corpus
(docs/cost_model.md), so CI refuses malformed ones: a missing host
field, a non-numeric measurement, or a NaN that would poison a fit.

Usage::

    python tools/check_bench_schema.py [FILES...]

With no arguments, checks every ``BENCH_*.json`` at the repo root.
Exits non-zero listing every violation.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cost.bench_schema import validate_bench_file  # noqa: E402


def main(argv: list[str]) -> int:
    files = [Path(a) for a in argv] or sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        problems = validate_bench_file(path)
        if problems:
            failures += 1
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {path}")
    if failures:
        print(f"\n{failures} of {len(files)} bench files violate the schema")
        return 1
    print(f"\nall {len(files)} bench files conform to uldp-fl-bench/v1")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
