"""Extension: user/record-level membership inference vs DP method.

The paper's conclusion names this as future work: "empirically compare the
privacy protection of user/record-level DP in FL in terms of particular
attack aspects such as user/record-level membership inference [20]".

Setup: a small Creditcard federation with 30% training-label noise (forcing
memorisation, the signal loss-threshold attacks detect), attacked at both
granularities after training with (a) an overfit non-private baseline,
(b) DEFAULT at moderate epochs, and (c) ULDP-AVG with the paper's sigma=5.

Expected shape: the overfit baseline leaks (AUC well above 0.5, user-level
at least as strong as record-level -- the cumulative-risk argument); the
ULDP-trained model pushes both attacks toward chance.
"""

import numpy as np
from conftest import print_header

from repro.attacks import run_membership_experiment
from repro.core import Default, UldpAvg
from repro.data import build_creditcard_benchmark
from repro.nn.model import build_tiny_mlp


def build_noisy_federation():
    fed = build_creditcard_benchmark(
        n_users=10, n_silos=2, n_records=60, n_test=60, seed=3
    )
    rng = np.random.default_rng(13)
    for silo in fed.silos:
        flip = rng.random(silo.n_records) < 0.3
        silo.y = np.where(flip, 1 - silo.y, silo.y)
    return fed


def run_experiment():
    fed = build_noisy_federation()
    configs = [
        ("overfit (non-private)", Default(local_epochs=60, local_lr=0.3,
                                          batch_size=None), 5),
        ("DEFAULT (moderate)", Default(local_epochs=2, local_lr=0.1), 3),
        ("ULDP-AVG (sigma=5)", UldpAvg(noise_multiplier=5.0, local_epochs=1), 5),
    ]
    results = []
    for label, method, rounds in configs:
        model = build_tiny_mlp(30, 64, 2, np.random.default_rng(5))
        result = run_membership_experiment(fed, method, rounds=rounds, seed=4,
                                           model=model)
        results.append((label, result))
    return results


def test_ext_membership_inference(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_header("Extension: membership inference, record vs user level")
    print(f"{'training':<24s} {'rec AUC':>8s} {'rec adv':>8s} {'usr AUC':>8s} {'usr adv':>8s}")
    for label, r in results:
        print(
            f"{label:<24s} {r.record_auc:8.3f} {r.record_advantage:8.3f} "
            f"{r.user_auc:8.3f} {r.user_advantage:8.3f}"
        )

    by_label = dict(results)
    overfit = by_label["overfit (non-private)"]
    private = by_label["ULDP-AVG (sigma=5)"]
    # The overfit model leaks; user-level aggregation does not weaken the
    # attack (the paper's motivation for user-level DP).
    assert overfit.record_auc > 0.6
    assert overfit.user_auc > overfit.record_auc - 0.1
    # DP training reduces the user-level attack toward chance.
    assert private.user_auc < overfit.user_auc
