"""Scale-out bench: one full DP round over >= 100k sampled users, bounded RAM.

The sharded execution layer's reason to exist: a round whose *naive*
vectorized execution would materialise every sampled user's records and
the full (n_jobs, P) delta matrix at once must instead run in bounded
resident memory -- workers stream micro-batch partial aggregates into
BinnedSum accumulators, and each worker only ever holds its own shard's
records (synthesised via the population's loader descriptor, never
shipped from the parent).

What this measures and asserts:

- **scale** -- a memory-mapped million-user ShardedUserPopulation,
  100_000 sampled users (>= the ISSUE floor), one full ULDP-AVG-style
  DP round: per-user local training, clip, weight, binned aggregation,
  per-silo Gaussian noise.
- **memory** -- the peak RSS overhead of the round (parent high-water
  plus the worker children's peak) stays under a cap that is a fraction
  of the naive footprint; the naive figure is also reported so the
  headroom is visible in BENCH_scaleout.json.
- **fidelity** (smoke scale) -- workers=2 reproduces workers=0 byte for
  byte, the contract tests/core/test_engine_determinism.py pins on the
  real trainer.

Scales:  BENCH_SCALEOUT_SCALE=full   (default; 100k users, 64 features)
         BENCH_SCALEOUT_SCALE=smoke  (CI; 2k users, 16 features)

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_scaleout.py -s
 or:  PYTHONPATH=src python benchmarks/bench_scaleout.py
"""

import os
import resource
import tempfile
import time

import numpy as np
from conftest import print_header, write_bench_json

from repro.core.engine import (
    MICRO_BATCH,
    EngineConfig,
    ShardedEngine,
    make_shard_task,
    plan_shards,
)
from repro.core.reduce import fold_scale
from repro.nn import build_logistic
from repro.sim.population import ShardedUserPopulation

SIGMA = 5.0
CLIP = 1.0
LOCAL_LR = 0.05
N_SILOS = 5
DATA_SEED = 11


def _scale_params():
    scale = os.environ.get("BENCH_SCALEOUT_SCALE", "full")
    if scale == "smoke":
        return scale, dict(
            population=200_000, sampled=2_000, features=16,
            shard_size=512, workers=2,
        )
    return scale, dict(
        population=1_000_000, sampled=100_000, features=64,
        shard_size=4096, workers=2,
    )


# -- memory probes -------------------------------------------------------------


def _proc_status_kb(field: str) -> int:
    with open("/proc/self/status", encoding="ascii") as fh:
        for line in fh:
            if line.startswith(field + ":"):
                return int(line.split()[1])
    raise RuntimeError(f"{field} not in /proc/self/status")


def _parent_rss() -> int:
    return _proc_status_kb("VmRSS") * 1024


def _parent_peak() -> int:
    return _proc_status_kb("VmHWM") * 1024


def _children_peak() -> int:
    """Peak RSS over all reaped worker children (0 before any fork)."""
    return resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * 1024


# -- the round -----------------------------------------------------------------


def _build_tasks(pop, ids, model, params, cfg, features):
    """Shard the sampled users into loader-descriptor tasks, silo-striped."""
    weights_all = 1.0 / len(ids)
    scale = fold_scale(CLIP, MICRO_BATCH)
    tasks = []
    per_silo_jobs = [0] * N_SILOS
    for silo in range(N_SILOS):
        silo_ids = ids[ids % N_SILOS == silo]
        per_silo_jobs[silo] = len(silo_ids)
        for a, b in plan_shards(len(silo_ids), cfg.aligned_shard_size):
            tasks.append(
                make_shard_task(
                    mode="delta",
                    model=model,
                    task="binary",
                    params=params,
                    jobs=pop.shard_job_source(silo_ids[a:b], DATA_SEED, features),
                    weights=np.full(b - a, weights_all),
                    clip=CLIP,
                    scale=scale,
                    silo=silo,
                    shard=len(tasks),
                    lr=LOCAL_LR,
                    epochs=1,
                )
            )
    return tasks, per_silo_jobs


def _dp_round(pop, ids, model, cfg, features, seed=0):
    """One ULDP-AVG-style round; returns (new_params, results, seconds)."""
    params = model.get_flat_params()
    rng = np.random.default_rng(seed)
    noise_std = SIGMA * CLIP / np.sqrt(N_SILOS)
    noises = rng.normal(0.0, noise_std, (N_SILOS, params.size))
    tasks, _ = _build_tasks(pop, ids, model, params, cfg, features)
    engine = ShardedEngine(cfg)
    try:
        start = time.perf_counter()
        results = engine.run_tasks(tasks)
        aggregate = np.sum(noises, axis=0)
        if results:
            aggregate = aggregate + engine.reduce(results).total()
        seconds = time.perf_counter() - start
    finally:
        engine.close()
    return params + aggregate, results, seconds


def test_scaleout():
    scale, p = _scale_params()
    print_header(f"scale-out bench ({scale})")

    with tempfile.TemporaryDirectory(prefix="bench-scaleout-") as backing:
        pop = ShardedUserPopulation(p["population"], backing_dir=backing, seed=7)
        ids = pop.sample_users(np.random.default_rng(0), p["sampled"])
        if scale != "smoke":
            assert len(ids) >= 100_000, "full scale must cover >= 100k users"
        model = build_logistic(np.random.default_rng(1), in_features=p["features"])
        n_params = model.get_flat_params().size

        counts = pop.record_counts_for(ids)
        # What the unsharded vectorized path would hold at once: every
        # sampled user's feature matrix plus the batched delta matrix.
        naive_bytes = int(
            np.maximum(counts, 1).sum() * p["features"] * 8
            + len(ids) * n_params * 8
        )

        baseline_rss = _parent_rss()
        cfg = EngineConfig(workers=p["workers"], shard_size=p["shard_size"])
        new_params, results, seconds = _dp_round(pop, ids, model, cfg, p["features"])

        peak = max(_parent_peak(), _children_peak())
        overhead = max(0, peak - baseline_rss)
        cap = max(256 * 1024 * 1024, int(0.6 * naive_bytes))
        assert overhead < cap, (
            f"round overhead {overhead / 1e6:.0f} MB exceeds the "
            f"{cap / 1e6:.0f} MB bound (naive {naive_bytes / 1e6:.0f} MB)"
        )
        assert np.isfinite(new_params).all()
        expected_shards = sum(
            len(plan_shards(int((ids % N_SILOS == s).sum()), cfg.aligned_shard_size))
            for s in range(N_SILOS)
        )
        assert len(results) == expected_shards

        shard_seconds = [r["seconds"] for r in results]
        section = {
            "scale": scale,
            "population_users": pop.n_users,
            "sampled_users": int(len(ids)),
            "total_records": int(np.maximum(counts, 1).sum()),
            "features": p["features"],
            "n_params": int(n_params),
            "workers": p["workers"],
            "shard_size": cfg.aligned_shard_size,
            "n_shards": len(results),
            "round_seconds": seconds,
            "users_per_second": len(ids) / seconds,
            "mean_shard_seconds": float(np.mean(shard_seconds)),
            "max_shard_seconds": float(np.max(shard_seconds)),
            "baseline_rss_mb": baseline_rss / 1e6,
            "peak_rss_mb": peak / 1e6,
            "overhead_mb": overhead / 1e6,
            "overhead_cap_mb": cap / 1e6,
            "naive_resident_mb": naive_bytes / 1e6,
        }

        if scale == "smoke":
            inproc_cfg = EngineConfig(workers=0, shard_size=p["shard_size"])
            inproc, _, _ = _dp_round(pop, ids, model, inproc_cfg, p["features"])
            assert inproc.tobytes() == new_params.tobytes(), (
                "workers=2 diverged from the in-process round"
            )
            section["bit_identical_to_inprocess"] = True

    path = write_bench_json("BENCH_scaleout.json", {"scaleout": section})
    print(
        f"{len(ids):,} users / {section['total_records']:,} records in "
        f"{seconds:.1f} s ({section['users_per_second']:.0f} users/s) | "
        f"{len(results)} shards x {cfg.aligned_shard_size} | "
        f"peak overhead {overhead / 1e6:.0f} MB "
        f"(cap {cap / 1e6:.0f} MB, naive {naive_bytes / 1e6:.0f} MB)"
    )
    print(f"results written to {path}")


if __name__ == "__main__":
    test_scaleout()
