"""Update-compression bench: wire bytes vs utility on the Figure 5 config.

Runs ULDP-AVG-w on the Fig. 5 MNIST workload twice -- dense float64
payloads vs the compressed pipeline (top-5% sparsification, 8-bit
stochastic quantization, per-silo error feedback) -- and asserts the
PR's contract:

1. **>= 10x uplink byte reduction** (the analytic pipeline delivers ~30x
   at these settings);
2. **identical epsilon to the last bit**: compression is strictly
   post-noise, so the accountant's view is unchanged (post-processing);
3. **small utility delta**: the compressed run's final accuracy stays
   within ``ACCURACY_TOLERANCE`` of the dense run.

A secure-path section measures the random-k ciphertext reduction of the
sparse Protocol 1 round on a small federation.

Results land in ``BENCH_compression.json`` at the repo root, next to the
engine/protocol/sim bench JSONs.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_compression.py -s
 or:  PYTHONPATH=src python benchmarks/bench_compression.py
Scale down (CI smoke):  BENCH_COMPRESSION_SCALE=smoke ... same commands.
"""

import os
import time

import numpy as np
from conftest import host_info, print_header, write_bench_json

from repro.compress import CompressionSpec
from repro.core import Trainer, UldpAvg
from repro.data import build_creditcard_benchmark, build_mnist_benchmark
from repro.nn.model import build_tiny_mlp
from repro.protocol import SecureUldpAvg

SIGMA = 5.0
ROUNDS = 3
MIN_UPLINK_REDUCTION = 10.0
ACCURACY_TOLERANCE = 0.15

#: The bench's compression recipe (the bandwidth scenarios use the same).
SPEC = CompressionSpec(
    sparsify="topk", fraction=0.05, quantize_bits=8, error_feedback=True
)


def _fig05_workload():
    """The Fig. 5 MNIST config (U50 uniform iid), or a CI smoke shrink."""
    scale = os.environ.get("BENCH_COMPRESSION_SCALE", "fig05")
    if scale == "smoke":
        params = dict(n_users=12, n_records=400, n_test=100)
    else:
        params = dict(n_users=50, n_records=1200, n_test=300)
    fed = build_mnist_benchmark(
        n_silos=5, distribution="uniform", non_iid=False, seed=6, **params
    )
    return scale, fed


def _run(fed, compression):
    method = UldpAvg(
        noise_multiplier=SIGMA, local_epochs=1, local_lr=0.1,
        weighting="proportional",
    )
    start = time.perf_counter()
    trainer = Trainer(fed, method, rounds=ROUNDS, seed=7, compression=compression)
    history = trainer.run()
    seconds = time.perf_counter() - start
    return history, seconds


def _bench_plaintext() -> dict:
    scale, fed = _fig05_workload()
    dense_history, dense_seconds = _run(fed, None)
    compressed_history, compressed_seconds = _run(fed, SPEC)

    dense_up = dense_history.total_uplink_bytes
    compressed_up = compressed_history.total_uplink_bytes
    reduction = dense_up / compressed_up
    dense_final = dense_history.final
    compressed_final = compressed_history.final
    accuracy_delta = compressed_final.metric - dense_final.metric

    assert reduction >= MIN_UPLINK_REDUCTION, (
        f"uplink reduction {reduction:.1f}x below the {MIN_UPLINK_REDUCTION}x floor"
    )
    # Post-processing invariance: the accountant saw identical calls.
    assert compressed_final.epsilon == dense_final.epsilon
    assert abs(accuracy_delta) <= ACCURACY_TOLERANCE, (
        f"compressed accuracy drifted {accuracy_delta:+.3f} "
        f"(tolerance {ACCURACY_TOLERANCE})"
    )

    return {
        "scale": scale,
        "rounds": ROUNDS,
        "sigma": SIGMA,
        "n_users": fed.n_users,
        "model_params": dense_history.comm[0].uplink_bytes // (8 * fed.n_silos),
        "spec": {
            "sparsify": SPEC.sparsify,
            "fraction": SPEC.fraction,
            "quantize_bits": SPEC.quantize_bits,
            "error_feedback": SPEC.error_feedback,
        },
        "dense_uplink_bytes": dense_up,
        "compressed_uplink_bytes": compressed_up,
        "uplink_reduction": reduction,
        "dense_accuracy": dense_final.metric,
        "compressed_accuracy": compressed_final.metric,
        "accuracy_delta": accuracy_delta,
        "epsilon": dense_final.epsilon,
        "epsilon_identical": compressed_final.epsilon == dense_final.epsilon,
        "dense_seconds": dense_seconds,
        "compressed_seconds": compressed_seconds,
    }


def _bench_secure() -> dict:
    """Random-k sparse Protocol 1: ciphertext uplink shrinks by d/k."""
    fed = build_creditcard_benchmark(
        n_users=6, n_silos=3, n_records=120, n_test=40, seed=0
    )
    spec = CompressionSpec(sparsify="randk", fraction=0.1, seed=3)

    def run(compression):
        model = build_tiny_mlp(30, 4, 2, np.random.default_rng(42))
        method = SecureUldpAvg(
            local_epochs=1, noise_multiplier=1.0, local_lr=0.1,
            paillier_bits=256, compression=compression,
        )
        start = time.perf_counter()
        history = Trainer(fed, method, rounds=2, model=model, seed=7).run()
        return history, time.perf_counter() - start, model.num_params

    dense_history, dense_seconds, dim = run(None)
    sparse_history, sparse_seconds, _ = run(spec)
    reduction = (
        dense_history.total_uplink_bytes / sparse_history.total_uplink_bytes
    )
    expected = dim / spec.keep_count(dim)
    assert reduction == expected, "ciphertext reduction must be exactly d/k"
    assert sparse_history.final.epsilon == dense_history.final.epsilon
    return {
        "model_params": dim,
        "kept_fraction": spec.fraction,
        "dense_uplink_bytes": dense_history.total_uplink_bytes,
        "sparse_uplink_bytes": sparse_history.total_uplink_bytes,
        "ciphertext_reduction": reduction,
        "dense_seconds": dense_seconds,
        "sparse_seconds": sparse_seconds,
    }


def test_compression_tradeoff():
    """Populate BENCH_compression.json with both measurements."""
    print_header("update-compression bench (fig05 config)")

    plaintext = _bench_plaintext()
    print(
        f"plaintext: {plaintext['uplink_reduction']:.1f}x uplink reduction "
        f"({plaintext['dense_uplink_bytes'] / 1e6:.2f} MB -> "
        f"{plaintext['compressed_uplink_bytes'] / 1e6:.3f} MB over {ROUNDS} rounds) | "
        f"accuracy {plaintext['dense_accuracy']:.3f} -> "
        f"{plaintext['compressed_accuracy']:.3f} "
        f"({plaintext['accuracy_delta']:+.3f}) | eps identical: "
        f"{plaintext['epsilon_identical']}"
    )

    secure = _bench_secure()
    print(
        f"secure randk: {secure['ciphertext_reduction']:.1f}x ciphertext "
        f"reduction at fraction {secure['kept_fraction']} "
        f"({secure['dense_uplink_bytes'] / 1e6:.2f} MB -> "
        f"{secure['sparse_uplink_bytes'] / 1e6:.3f} MB) | "
        f"round time {secure['dense_seconds']:.1f}s -> {secure['sparse_seconds']:.1f}s"
    )

    path = write_bench_json(
        "BENCH_compression.json",
        {
            "plaintext_fig05": plaintext,
            "secure_randk": secure,
            "host": host_info(),
        },
    )
    print(f"results written to {path}")


if __name__ == "__main__":
    test_compression_tradeoff()
