"""Figure 8: the enhanced weighting strategy under skew and many silos.

Paper setting: Creditcard test loss for ULDP-AVG (uniform weights) vs
ULDP-AVG-w (Eq. 3 weights), |S| in {5, 20, 50}, uniform vs zipf record
distribution.  Expected shape: with zipf skew the gap widens as |S| grows
(uniform weights shrink every contribution by 1/|S| even where the user
has all their records in one silo); under uniform allocation the two are
close.
"""

import pytest
from conftest import print_header, run_history

from repro.core import UldpAvg
from repro.data import build_creditcard_benchmark

SIGMA = 5.0
ROUNDS = 5
N_USERS = 100


def run_config(n_silos, distribution):
    fed = build_creditcard_benchmark(
        n_users=N_USERS, n_silos=n_silos, distribution=distribution,
        n_records=3000, n_test=600, seed=12,
    )
    uniform = run_history(
        fed, UldpAvg(noise_multiplier=SIGMA, local_epochs=2), ROUNDS, seed=13
    )
    weighted = run_history(
        fed,
        UldpAvg(noise_multiplier=SIGMA, local_epochs=2, weighting="proportional"),
        ROUNDS, seed=13,
    )
    return fed, uniform, weighted


CONFIGS = [
    pytest.param(5, "uniform", id="S5-uniform"),
    pytest.param(5, "zipf", id="S5-zipf"),
    pytest.param(20, "uniform", id="S20-uniform"),
    pytest.param(20, "zipf", id="S20-zipf"),
    pytest.param(50, "uniform", id="S50-uniform"),
    pytest.param(50, "zipf", id="S50-zipf"),
]


@pytest.mark.parametrize("n_silos,distribution", CONFIGS)
def test_fig08_weighting(benchmark, n_silos, distribution):
    fed, uniform, weighted = benchmark.pedantic(
        run_config, args=(n_silos, distribution), rounds=1, iterations=1
    )

    print_header(
        f"Figure 8 (|S|={n_silos}, {distribution}): "
        f"test loss, ULDP-AVG vs ULDP-AVG-w"
    )
    print(f"{'round':>6s} {'ULDP-AVG':>12s} {'ULDP-AVG-w':>12s}")
    for r, lu, lw in zip(
        uniform.series("round"), uniform.series("loss"), weighted.series("loss")
    ):
        print(f"{int(r):6d} {lu:12.4f} {lw:12.4f}")

    if distribution == "zipf" and n_silos >= 20:
        # The paper's headline: with skew and many silos, Eq. 3 weighting
        # converges visibly faster (lower final loss).
        assert weighted.final.loss < uniform.final.loss
