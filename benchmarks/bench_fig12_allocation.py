"""Figure 12 (appendix): example record allocations on Creditcard.

The paper plots, for |U| = 100 and |S| = 5, the per-user record counts
colour-coded by silo under the uniform and zipf allocations.  This bench
prints the summary statistics of those plots: the user-count distribution
(max / median / min) and the average fraction of a user's records in their
top silo -- near 1/|S| for uniform, high for zipf (alpha_silo = 2).
"""

import numpy as np
from conftest import print_header

from repro.data import build_creditcard_benchmark


def allocation_stats(distribution):
    fed = build_creditcard_benchmark(
        n_users=100, n_silos=5, distribution=distribution,
        n_records=25_000, n_test=100, seed=19,
    )
    hist = fed.histogram()          # (|S|, |U|)
    totals = hist.sum(axis=0)
    present = totals > 0
    top_silo_frac = hist[:, present].max(axis=0) / totals[present]
    return {
        "max": int(totals.max()),
        "median": float(np.median(totals[present])),
        "min": int(totals[present].min()),
        "zero_users": int((~present).sum()),
        "top_silo_frac": float(top_silo_frac.mean()),
        "totals": totals,
    }


def test_fig12_record_allocation(benchmark):
    stats = benchmark.pedantic(
        lambda: {d: allocation_stats(d) for d in ("uniform", "zipf")},
        rounds=1, iterations=1,
    )

    print_header("Figure 12: record allocation on Creditcard (|U|=100, |S|=5, 25K records)")
    print(f"{'':<12s} {'max N_u':>8s} {'median':>8s} {'min':>6s} {'top-silo frac':>14s}")
    for dist in ("uniform", "zipf"):
        s = stats[dist]
        print(
            f"{dist:<12s} {s['max']:8d} {s['median']:8.1f} {s['min']:6d} "
            f"{s['top_silo_frac']:14.3f}"
        )

    uniform, zipf = stats["uniform"], stats["zipf"]
    # Uniform: counts concentrate near the mean (250), silos balanced (~0.2
    # plus sampling noise on ~50 records per user per silo).
    assert uniform["max"] < 2 * 250
    assert uniform["top_silo_frac"] < 0.35
    # Zipf: heavy skew across users and strong silo concentration.
    assert zipf["max"] > 2 * zipf["median"]
    assert zipf["top_silo_frac"] > 0.5
    # Both allocate all 25K records.
    assert uniform["totals"].sum() == zipf["totals"].sum() == 25_000
