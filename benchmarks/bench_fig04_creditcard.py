"""Figure 4: privacy-utility trade-offs on Creditcard.

Paper setting: |S| = 5 silos, |U| in {100, 1000}, uniform and zipf record
allocation, sigma = 5.0, delta = 1e-5; methods DEFAULT, ULDP-NAIVE,
ULDP-GROUP-{max, median, 8, 2}, ULDP-SGD, ULDP-AVG(-w).  Scaled down:
synthetic data, 3-4k records, 5 rounds (the paper trains longer; the
*ordering* of methods is what this bench checks).

Expected shape: DEFAULT best accuracy; ULDP-AVG close behind with small
eps; ULDP-NAIVE small eps but near-chance accuracy; ULDP-GROUP decent
accuracy but eps orders of magnitude larger.
"""

import pytest
from conftest import print_final_table, print_header, print_series_table, run_history

from repro.core import Default, UldpAvg, UldpGroup, UldpNaive, UldpSgd
from repro.data import build_creditcard_benchmark

SIGMA = 5.0
ROUNDS = 5


def make_methods():
    return [
        Default(local_epochs=2),
        UldpNaive(noise_multiplier=SIGMA, local_epochs=2),
        UldpGroup(group_size="max", noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=512, local_lr=1.0),
        UldpGroup(group_size="median", noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=512, local_lr=1.0),
        UldpGroup(group_size=8, noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=512, local_lr=1.0),
        UldpGroup(group_size=2, noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=512, local_lr=1.0),
        UldpSgd(noise_multiplier=SIGMA),
        UldpAvg(noise_multiplier=SIGMA, local_epochs=2),
        UldpAvg(noise_multiplier=SIGMA, local_epochs=2, weighting="proportional"),
    ]


def run_config(n_users, distribution, n_records):
    fed = build_creditcard_benchmark(
        n_users=n_users, n_silos=5, distribution=distribution,
        n_records=n_records, n_test=800, seed=4,
    )
    histories = [run_history(fed, m, ROUNDS, seed=5) for m in make_methods()]
    return fed, histories


CONFIGS = [
    pytest.param(100, "uniform", 4000, id="U100-uniform"),   # Fig 4a
    pytest.param(100, "zipf", 4000, id="U100-zipf"),         # Fig 4b
    pytest.param(1000, "uniform", 3000, id="U1000-uniform"), # Fig 4c
    pytest.param(1000, "zipf", 3000, id="U1000-zipf"),       # Fig 4d
]


@pytest.mark.parametrize("n_users,distribution,n_records", CONFIGS)
def test_fig04_creditcard(benchmark, n_users, distribution, n_records):
    fed, histories = benchmark.pedantic(
        run_config, args=(n_users, distribution, n_records), rounds=1, iterations=1
    )

    print_header(
        f"Figure 4 ({distribution}, |U|={n_users}): Creditcard, "
        f"n-bar={fed.mean_records_per_user():.0f}, sigma={SIGMA}"
    )
    print("\n-- accuracy per round --")
    print_series_table(histories, "metric")
    print("\n-- epsilon per round --")
    print_series_table(histories, "epsilon")
    print("\n-- final --")
    print_final_table(histories)

    by_name = {h.method: h.final for h in histories}
    # Paper shape: group-privacy epsilons dwarf the direct ULDP methods'.
    assert by_name["ULDP-GROUP-8"].epsilon > 10 * by_name["ULDP-AVG"].epsilon
    # NAIVE and AVG share Theorem 1/3's epsilon.
    assert by_name["ULDP-NAIVE"].epsilon == pytest.approx(by_name["ULDP-AVG"].epsilon)
    # The non-private ceiling is at least as good as everything private
    # (up to small-run noise).
    best_private = max(
        f.metric for n, f in by_name.items() if n != "DEFAULT"
    )
    assert by_name["DEFAULT"].metric >= best_private - 0.12
