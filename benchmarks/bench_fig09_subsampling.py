"""Figure 9: user-level sub-sampling (Algorithm 4) privacy amplification.

Paper setting: ULDP-AVG(-w) with server-side Poisson sampling rates
q in {0.1, 0.3, 0.5, 0.7, 1.0} on Creditcard (|U| = 1000) and MNIST
(|U| = 10000, here scaled to a smaller federation).  Expected shape:
epsilon drops sharply with q; utility degrades gracefully, less so when
users are plentiful.
"""

import pytest
from conftest import print_header, run_history

from repro.core import UldpAvg
from repro.data import build_creditcard_benchmark, build_mnist_benchmark

SIGMA = 5.0
RATES = [0.1, 0.3, 0.5, 0.7, 1.0]


def sweep(fed, rounds, local_lr):
    results = []
    for q in RATES:
        method = UldpAvg(
            noise_multiplier=SIGMA, local_epochs=1, local_lr=local_lr,
            weighting="proportional",
            user_sample_rate=None if q == 1.0 else q,
        )
        history = run_history(fed, method, rounds, seed=14)
        results.append((q, history.final))
    return results


def print_sweep(results):
    print(f"{'q':>5s} {'metric':>10s} {'loss':>12s} {'eps(ULDP)':>12s}")
    for q, final in results:
        print(f"{q:5.1f} {final.metric:10.4f} {final.loss:12.4f} {final.epsilon:12.4f}")


def check_amplification(results):
    eps = [f.epsilon for _, f in results]
    # Epsilon strictly increases with q, and the q=0.1 budget is at least
    # ~5x smaller than full participation (sub-sampled RDP amplification).
    assert all(b > a for a, b in zip(eps, eps[1:]))
    assert eps[-1] / eps[0] > 5


def test_fig09a_creditcard_subsampling(benchmark):
    fed = build_creditcard_benchmark(
        n_users=400, n_silos=5, distribution="zipf",
        n_records=3000, n_test=600, seed=15,
    )
    results = benchmark.pedantic(sweep, args=(fed, 4, 0.05), rounds=1, iterations=1)
    print_header("Figure 9a: Creditcard (|U|=400), sub-sampling sweep")
    print_sweep(results)
    check_amplification(results)


def test_fig09b_mnist_subsampling(benchmark):
    fed = build_mnist_benchmark(
        n_users=300, n_silos=5, distribution="zipf",
        n_records=900, n_test=200, seed=16,
    )
    results = benchmark.pedantic(sweep, args=(fed, 2, 0.1), rounds=1, iterations=1)
    print_header("Figure 9b: MNIST (|U|=300), sub-sampling sweep")
    print_sweep(results)
    check_amplification(results)
