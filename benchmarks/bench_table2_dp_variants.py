"""Table 2 (appendix): comparison of DP variants in federated learning.

Table 2 is a qualitative taxonomy; its checkable core is each variant's
*privacy unit* -- which change to the database the guarantee bounds.  This
bench prints the implemented slice of the table and verifies the units
empirically with sensitivity probes (noise disabled, one unit's data
swapped, aggregate shift measured):

- record-level DP (DP-SGD inside ULDP-GROUP): swapping ONE RECORD shifts
  one step's clipped gradient sum by at most 2C;
- user-level DP across silos (ULDP-AVG): swapping ALL RECORDS OF A USER,
  across every silo, shifts the pre-noise aggregate by at most C;
- ULDP-NAIVE: the same swap is only bounded by C * |S|.
"""

import numpy as np
from conftest import print_header

from repro.core.clipping import l2_clip
from repro.core.metrics import make_loss
from repro.nn.dpsgd import per_sample_clipped_gradient_sum
from repro.nn.model import build_tiny_mlp

ROWS = [
    ("Record-level DP (DP-SGD [2])", "record", "per-silo mechanism", "high utility; weak for multi-record users"),
    ("Silo-specific record DP [30,32,33]", "record", "per-silo budgets", "cannot span silos"),
    ("User-level DP, cross-device [16,22,36]", "user (one device)", "secure aggregation", "assumes one user = one device"),
    ("ULDP, cross-silo (this paper)", "user (across silos)", "weighted clipping + Protocol 1", "needs per-user training"),
    ("Group DP in cross-silo FL [32]", "any k records", "group conversion", "super-linear epsilon blow-up"),
    ("Local DP [49,51]", "input record", "local randomisation", "heavy noise"),
]


def record_level_probe():
    """Max shift of a clipped per-sample gradient sum when 1 record changes."""
    rng = np.random.default_rng(0)
    model = build_tiny_mlp(6, 4, 2, rng)
    clip = 0.5
    x = rng.standard_normal((10, 6))
    y = rng.integers(0, 2, 10)
    loss = make_loss("binary", model)
    base = per_sample_clipped_gradient_sum(model, loss, x, y, clip)
    x2, y2 = x.copy(), y.copy()
    x2[3] = 50.0 * rng.standard_normal(6)
    y2[3] = 1 - y2[3]
    swapped = per_sample_clipped_gradient_sum(model, loss, x2, y2, clip)
    return float(np.linalg.norm(base - swapped)), 2 * clip


def user_level_probe():
    """Max aggregate shift when one user's records change in EVERY silo."""
    from repro.core.probes import (
        HEAVY_USER_LAYOUT,
        N_USERS,
        make_fed,
        prenoise_aggregate,
        replace_user_records,
    )
    from repro.core.methods import UldpAvg, UldpNaive

    clip = 0.5
    fed_a = make_fed(HEAVY_USER_LAYOUT, N_USERS, seed=0)
    fed_b = replace_user_records(fed_a, user=0, seed=99)
    n = fed_a.n_users * fed_a.n_silos
    avg_a = prenoise_aggregate(UldpAvg, fed_a, clip, global_lr=1.0, local_lr=0.3)
    avg_b = prenoise_aggregate(UldpAvg, fed_b, clip, global_lr=1.0, local_lr=0.3)
    avg_shift = float(np.linalg.norm((avg_a - avg_b) * n))

    nv_a = prenoise_aggregate(UldpNaive, fed_a, clip, global_lr=1.0, local_lr=0.3,
                              local_epochs=1)
    nv_b = prenoise_aggregate(UldpNaive, fed_b, clip, global_lr=1.0, local_lr=0.3,
                              local_epochs=1)
    naive_shift = float(np.linalg.norm((nv_a - nv_b) * fed_a.n_silos))
    return avg_shift, clip, naive_shift, clip * fed_a.n_silos


def test_table2_dp_variants(benchmark):
    (rec_shift, rec_bound), (avg_shift, avg_bound, nv_shift, nv_bound) = (
        benchmark.pedantic(
            lambda: (record_level_probe(), user_level_probe()), rounds=1, iterations=1
        )
    )

    print_header("Table 2: DP variants in FL (implemented slice + probes)")
    print(f"{'variant':<42s} {'privacy unit':<20s} {'mechanism':<32s}")
    for name, unit, mech, tradeoff in ROWS:
        print(f"{name:<42s} {unit:<20s} {mech:<32s}")
        print(f"{'':<42s} trade-off: {tradeoff}")

    print("\nsensitivity probes (empirical shift <= claimed bound):")
    print(f"  record-level (DP-SGD step):   {rec_shift:.4f} <= {rec_bound:.4f}")
    print(f"  user-level  (ULDP-AVG):       {avg_shift:.4f} <= {avg_bound:.4f}")
    print(f"  user-level  (ULDP-NAIVE):     {nv_shift:.4f} <= {nv_bound:.4f}")

    assert rec_shift <= rec_bound + 1e-9
    assert avg_shift <= avg_bound + 1e-9
    assert nv_shift <= nv_bound + 1e-9
    # The naive bound is genuinely looser: |S| times the direct bound.
    assert nv_bound == avg_bound * 3
