"""Protocol 1 speedup: the fast crypto backend vs. the reference backend.

Reproduces the paper's Fig. 10/11 per-phase breakdown (key generation,
offline randomizer pools, encrypted weight broadcast, per-silo weighted
encryption, aggregation + decryption) for one full `run_round` under both
crypto backends, and asserts the fast backend's wall-clock win:

- **test scale** (512-bit keys, |S| = 5, |U| = 50, d = 1024): the headline
  configuration.  The fast backend must be >= 4x faster end to end, with
  *bit-identical* ciphertexts and aggregates under the seeded protocol RNG
  (the backends share every randomness draw, so any divergence is a bug,
  not noise).
- **paper scale** (3072-bit keys, the paper's security level): a small
  d/|U| configuration that exercises the same phases at production key
  sizes, reported for the breakdown; CRT decryption and the CRT-split
  encryptions dominate here.

Where the time goes (reference backend): one fresh `Enc(0)` per coordinate
per silo, one square-and-multiply `pow(enc_inv, scalar, n^2)` per (user,
coordinate), and non-CRT decryption.  The fast backend pregenerates the
blinding terms offline (CRT split on the server), answers the per-user
scalar powers from a fixed-base window table (~w-fold fewer modular
multiplications, no squarings), and decrypts mod p^2/q^2.

Results are appended to `BENCH_protocol.json` for cross-PR tracking.

Run:  make bench-protocol
 or:  PYTHONPATH=src python -m pytest benchmarks/bench_protocol_speedup.py -s
 or:  PYTHONPATH=src python benchmarks/bench_protocol_speedup.py
"""

import time

import numpy as np
from conftest import print_header, write_bench_json

from repro.protocol import PrivateWeightingProtocol

TARGET_SPEEDUP = 4.0
SEED = 11

# Headline configuration: |S|=5, |U|=50, d=1k-scale at 512-bit test keys.
N_SILOS = 5
N_USERS = 50
DIM = 1024
KEY_BITS = 512
N_MAX = 8

# Paper-scale configuration: the paper's 3072-bit security level, scaled
# down in d/|U| so the breakdown is demonstrable in tens of seconds.
PAPER_KEY_BITS = 3072
PAPER_SILOS = 2
PAPER_USERS = 4
PAPER_DIM = 4


def build_histogram(n_silos, n_users, seed=0):
    """Each user holds records in one or two silos (counts 1..4)."""
    rng = np.random.default_rng(seed)
    hist = np.zeros((n_silos, n_users), dtype=np.int64)
    for u in range(n_users):
        primary = u % n_silos
        hist[primary, u] = rng.integers(1, 5)
        if rng.random() < 0.4 and n_silos > 1:
            secondary = (primary + 1 + rng.integers(n_silos - 1)) % n_silos
            hist[secondary, u] = rng.integers(1, 5)
    return hist


def round_inputs(proto, d, seed=1):
    rng = np.random.default_rng(seed)
    deltas, noises = [], []
    for s in range(proto.n_silos):
        per_user = {
            u: rng.standard_normal(d)
            for u in range(proto.n_users)
            if proto.histogram[s, u] > 0
        }
        deltas.append(per_user)
        noises.append(rng.standard_normal(d))
    return deltas, noises


def timed_round(backend, hist, d, key_bits):
    """Setup + one timed run_round; returns (aggregate, view, phases, seconds)."""
    proto = PrivateWeightingProtocol(
        hist, n_max=N_MAX, paillier_bits=key_bits, seed=SEED,
        crypto_backend=backend,
    )
    proto.run_setup()
    deltas, noises = round_inputs(proto, d)
    start = time.perf_counter()
    aggregate = proto.run_round(deltas, noises)
    seconds = time.perf_counter() - start
    return aggregate, proto.view, proto.timer, seconds


def print_breakdown(title, timers):
    print(f"\n{title}")
    for backend, timer in timers.items():
        print(f"[{backend}]")
        print(timer.summary())


def compare_backends(hist, d, key_bits, label):
    agg_ref, view_ref, timer_ref, t_ref = timed_round("reference", hist, d, key_bits)
    agg_fast, view_fast, timer_fast, t_fast = timed_round("fast", hist, d, key_bits)

    # Bit-exact agreement: same seeded RNG -> same randomness draws -> the
    # two backends must produce *identical* ciphertexts and aggregates.
    assert view_ref.round_ciphertexts == view_fast.round_ciphertexts, (
        "fast backend diverged from the reference at the ciphertext level"
    )
    assert np.array_equal(agg_ref, agg_fast)

    speedup = t_ref / t_fast
    print_header(
        f"Protocol 1 round, {label}: {key_bits}-bit keys, "
        f"|S|={hist.shape[0]}, |U|={hist.shape[1]}, d={d}"
    )
    print(f"reference backend: {t_ref:8.2f} s")
    print(f"fast backend:      {t_fast:8.2f} s   -> speedup {speedup:.1f}x")
    print("ciphertexts and aggregates bit-identical under seeded RNG")
    print_breakdown(
        "per-phase breakdown (Fig. 10/11 style):",
        {"reference": timer_ref, "fast": timer_fast},
    )
    return {
        "key_bits": key_bits,
        "n_silos": int(hist.shape[0]),
        "n_users": int(hist.shape[1]),
        "dim": d,
        "reference_seconds": round(t_ref, 3),
        "fast_seconds": round(t_fast, 3),
        "speedup": round(speedup, 2),
        "phases_reference": {k: round(v, 4) for k, v in timer_ref.report().items()},
        "phases_fast": {k: round(v, 4) for k, v in timer_fast.report().items()},
    }


def test_protocol_speedup_test_keys():
    """Headline: >= 4x end-to-end round speedup at 512-bit test keys."""
    hist = build_histogram(N_SILOS, N_USERS)
    result = compare_backends(hist, DIM, KEY_BITS, label="test scale")
    write_bench_json("BENCH_protocol.json", {"test_scale": result})
    assert result["speedup"] >= TARGET_SPEEDUP, (
        f"fast backend only {result['speedup']:.1f}x faster "
        f"(target {TARGET_SPEEDUP}x)"
    )


def test_protocol_breakdown_paper_keys():
    """Paper-scale 3072-bit keys: per-phase breakdown + exact agreement."""
    hist = build_histogram(PAPER_SILOS, PAPER_USERS)
    result = compare_backends(hist, PAPER_DIM, PAPER_KEY_BITS, label="paper scale")
    write_bench_json("BENCH_protocol.json", {"paper_scale": result})
    # At tiny d the fixed-base table cannot amortise, but CRT decryption
    # and CRT-split encryption must still win outright.
    assert result["speedup"] > 1.0


if __name__ == "__main__":
    test_protocol_speedup_test_keys()
    test_protocol_breakdown_paper_keys()
