"""Secure aggregation speed: reference vs. fast Paillier vs. pairwise masks.

Reproduces the paper's Fig. 10/11 per-phase breakdown (key generation,
offline randomizer pools, encrypted weight broadcast, per-silo weighted
encryption, aggregation + decryption) for one full `run_round` under both
Paillier crypto backends, and benchmarks the ``masked`` backend
(Bonawitz-style pairwise masks, `repro.crypto.secagg`) on the identical
inputs as the three-way comparison:

- **test scale** (512-bit keys, |S| = 5, |U| = 50, d = 1024): the headline
  configuration.  The fast backend must be >= 4x faster than the
  reference, with *bit-identical* ciphertexts and aggregates under the
  seeded protocol RNG; the masked backend must be >= 10x faster still than
  the fast backend and produce the *exact same aggregate* (both decode the
  same integer arithmetic).
- **paper scale** (3072-bit keys, the paper's security level): a small
  d/|U| configuration that exercises the same phases at production key
  sizes, reported for the breakdown; CRT decryption and the CRT-split
  encryptions dominate here.

Per-silo wire cost is recorded alongside: a Paillier round ships one
`2 * key_bits`-bit ciphertext per coordinate, a masked round one
`mask_bits`-bit field element -- byte accounting for both lands in
`BENCH_protocol.json` for cross-PR tracking.

``BENCH_PROTOCOL_SCALE=smoke`` shrinks the test-scale workload (CI's
smoke job) and skips the paper-scale breakdown.

Run:  make bench-protocol
 or:  PYTHONPATH=src python -m pytest benchmarks/bench_protocol_speedup.py -s
 or:  PYTHONPATH=src python benchmarks/bench_protocol_speedup.py
"""

import os
import time

import numpy as np
import pytest
from conftest import print_header, write_bench_json

from repro.core.weighting import proportional_weights
from repro.crypto.secagg import (
    MaskedAggregationProtocol,
    encode_weighted_payload,
    weight_numerators,
)
from repro.protocol import PrivateWeightingProtocol

TARGET_SPEEDUP = 4.0
MASKED_TARGET_SPEEDUP = 10.0
SEED = 11
MASK_BITS = 256

#: "full" (default) or "smoke" -- CI's bench-protocol job runs the same
#: three-way comparison at toy scale.
SCALE = os.environ.get("BENCH_PROTOCOL_SCALE", "full")

# Headline configuration: |S|=5, |U|=50, d=1k-scale at 512-bit test keys.
if SCALE == "smoke":
    N_SILOS, N_USERS, DIM = 3, 12, 64
else:
    N_SILOS, N_USERS, DIM = 5, 50, 1024
KEY_BITS = 512
N_MAX = 8

# Paper-scale configuration: the paper's 3072-bit security level, scaled
# down in d/|U| so the breakdown is demonstrable in tens of seconds.
PAPER_KEY_BITS = 3072
PAPER_SILOS = 2
PAPER_USERS = 4
PAPER_DIM = 4


def build_histogram(n_silos, n_users, seed=0):
    """Each user holds records in one or two silos (counts 1..4)."""
    rng = np.random.default_rng(seed)
    hist = np.zeros((n_silos, n_users), dtype=np.int64)
    for u in range(n_users):
        primary = u % n_silos
        hist[primary, u] = rng.integers(1, 5)
        if rng.random() < 0.4 and n_silos > 1:
            secondary = (primary + 1 + rng.integers(n_silos - 1)) % n_silos
            hist[secondary, u] = rng.integers(1, 5)
    return hist


def round_inputs(hist, d, seed=1):
    rng = np.random.default_rng(seed)
    deltas, noises = [], []
    for s in range(hist.shape[0]):
        per_user = {
            u: rng.standard_normal(d)
            for u in range(hist.shape[1])
            if hist[s, u] > 0
        }
        deltas.append(per_user)
        noises.append(rng.standard_normal(d))
    return deltas, noises


def timed_round(backend, hist, d, key_bits):
    """Setup + one timed run_round; returns (aggregate, view, phases, seconds, proto)."""
    proto = PrivateWeightingProtocol(
        hist, n_max=N_MAX, paillier_bits=key_bits, seed=SEED,
        crypto_backend=backend,
    )
    proto.run_setup()
    deltas, noises = round_inputs(hist, d)
    start = time.perf_counter()
    aggregate = proto.run_round(deltas, noises)
    seconds = time.perf_counter() - start
    return aggregate, proto.view, proto.timer, seconds, proto


def timed_masked_round(hist, d):
    """Masked backend on the identical inputs: encode + mask + sum + decode."""
    proto = MaskedAggregationProtocol(
        hist.shape[0], mask_bits=MASK_BITS, n_max=N_MAX, seed=SEED
    )
    proto.run_setup()
    deltas, noises = round_inputs(hist, d)
    numerators = weight_numerators(proportional_weights(hist), hist, proto.c_lcm)
    start = time.perf_counter()
    vectors = [
        encode_weighted_payload(
            deltas[s],
            {u: numerators[s, u] for u in deltas[s]},
            noises[s],
            proto.precision,
            proto.c_lcm,
            proto.modulus,
        )
        for s in range(hist.shape[0])
    ]
    aggregate = proto.decode_aggregate(proto.run_round(vectors))
    seconds = time.perf_counter() - start
    return aggregate, proto, seconds


def print_breakdown(title, timers):
    print(f"\n{title}")
    for backend, timer in timers.items():
        print(f"[{backend}]")
        print(timer.summary())


def compare_backends(hist, d, key_bits, label):
    agg_ref, view_ref, timer_ref, t_ref, _ = timed_round("reference", hist, d, key_bits)
    agg_fast, view_fast, timer_fast, t_fast, proto_fast = timed_round(
        "fast", hist, d, key_bits
    )
    agg_masked, proto_masked, t_masked = timed_masked_round(hist, d)

    # Bit-exact agreement: same seeded RNG -> same randomness draws -> the
    # two Paillier backends must produce *identical* ciphertexts and
    # aggregates.
    assert view_ref.round_ciphertexts == view_fast.round_ciphertexts, (
        "fast backend diverged from the reference at the ciphertext level"
    )
    assert np.array_equal(agg_ref, agg_fast)
    # The masked backend accumulates the same integers in its own field,
    # so its decoded aggregate matches the Paillier decryption exactly.
    assert np.array_equal(agg_masked, agg_fast), (
        "masked backend diverged from the Paillier aggregate"
    )

    speedup = t_ref / t_fast
    masked_speedup = t_fast / t_masked
    cipher_bytes = d * proto_fast.ciphertext_bytes
    mask_bytes = d * proto_masked.mask_bytes
    print_header(
        f"Secure aggregation round, {label}: {key_bits}-bit keys, "
        f"|S|={hist.shape[0]}, |U|={hist.shape[1]}, d={d}"
    )
    print(f"reference backend: {t_ref:8.2f} s")
    print(f"fast backend:      {t_fast:8.2f} s   -> speedup {speedup:.1f}x")
    print(f"masked backend:    {t_masked:8.3f} s   -> {masked_speedup:.1f}x vs fast")
    print("all three aggregates bit-identical under seeded RNG")
    print(
        f"per-silo uplink: {cipher_bytes} ciphertext bytes (Paillier) vs "
        f"{mask_bytes} mask bytes ({cipher_bytes / mask_bytes:.1f}x smaller)"
    )
    print_breakdown(
        "per-phase breakdown (Fig. 10/11 style):",
        {
            "reference": timer_ref,
            "fast": timer_fast,
            "masked": proto_masked.timer,
        },
    )
    return {
        "key_bits": key_bits,
        "n_silos": int(hist.shape[0]),
        "n_users": int(hist.shape[1]),
        "dim": d,
        "reference_seconds": round(t_ref, 3),
        "fast_seconds": round(t_fast, 3),
        "masked_seconds": round(t_masked, 4),
        "speedup": round(speedup, 2),
        "masked_speedup_vs_fast": round(masked_speedup, 2),
        "mask_bits": MASK_BITS,
        "per_silo_ciphertext_bytes": cipher_bytes,
        "per_silo_mask_bytes": mask_bytes,
        "phases_reference": {k: round(v, 4) for k, v in timer_ref.report().items()},
        "phases_fast": {k: round(v, 4) for k, v in timer_fast.report().items()},
        "phases_masked": {
            k: round(v, 4) for k, v in proto_masked.timer.report().items()
        },
    }


def test_protocol_speedup_test_keys():
    """Headline: fast >= 4x over reference, masked >= 10x over fast."""
    hist = build_histogram(N_SILOS, N_USERS)
    result = compare_backends(hist, DIM, KEY_BITS, label=f"{SCALE} test scale")
    key = "test_scale" if SCALE == "full" else f"test_scale_{SCALE}"
    write_bench_json("BENCH_protocol.json", {key: result})
    if SCALE == "full":
        assert result["speedup"] >= TARGET_SPEEDUP, (
            f"fast backend only {result['speedup']:.1f}x faster "
            f"(target {TARGET_SPEEDUP}x)"
        )
    else:
        # Tiny smoke workloads cannot amortise the fixed-base tables; the
        # fast backend must still not lose to the reference.
        assert result["speedup"] > 1.0
    assert result["masked_speedup_vs_fast"] >= MASKED_TARGET_SPEEDUP, (
        f"masked backend only {result['masked_speedup_vs_fast']:.1f}x faster "
        f"than fast Paillier (target {MASKED_TARGET_SPEEDUP}x)"
    )


def test_protocol_breakdown_paper_keys():
    """Paper-scale 3072-bit keys: per-phase breakdown + exact agreement."""
    if SCALE == "smoke":
        pytest.skip("paper-scale breakdown skipped under BENCH_PROTOCOL_SCALE=smoke")
    hist = build_histogram(PAPER_SILOS, PAPER_USERS)
    result = compare_backends(hist, PAPER_DIM, PAPER_KEY_BITS, label="paper scale")
    write_bench_json("BENCH_protocol.json", {"paper_scale": result})
    # At tiny d the fixed-base table cannot amortise, but CRT decryption
    # and CRT-split encryption must still win outright.
    assert result["speedup"] > 1.0


if __name__ == "__main__":
    test_protocol_speedup_test_keys()
    if SCALE != "smoke":
        test_protocol_breakdown_paper_keys()
