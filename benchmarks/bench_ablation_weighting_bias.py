"""Ablation: why Eq. (3) weighting wins -- sensitivity-budget utilisation.

Each user has a unit weight budget (sum_s w[s,u] <= 1, Theorem 3).  Uniform
weights spend 1/|S| on *every* silo, including silos holding none of the
user's records -- that share of the budget buys nothing.  Eq. (3) weights
spend the entire budget on silos where the user actually has data.  This
bench quantifies the wasted budget

    utilisation(u) = sum_{s : n[s,u] > 0} w[s, u]            (in [0, 1])

under both strategies on a zipf-skewed federation with many silos (the
Fig. 8 regime), alongside the resulting test loss.  It also reports the
dispersion of the weighted clipping factors alpha[s,u] = w[s,u] * kappa
(Remark 4's bias term) restricted to *active* pairs, normalised by their
mean, showing Eq. (3) does not pay for its concentration with higher
relative dispersion.
"""

import numpy as np
from conftest import print_header, run_history

from repro.core import UldpAvg
from repro.data import build_creditcard_benchmark

SIGMA = 5.0
ROUNDS = 3


def utilisation(weights, histogram):
    """Mean over present users of the budget landing on record-bearing silos."""
    active = histogram > 0
    present_users = active.any(axis=0)
    per_user = (weights * active).sum(axis=0)[present_users]
    return float(per_user.mean())


def relative_dispersion(method):
    """std/mean of active weighted clip factors, averaged over rounds."""
    weights = method.weights
    values = []
    for factors in method.clip_factor_history:
        present = ~np.isnan(factors)
        alpha = weights[present] * factors[present]
        if alpha.mean() > 0:
            values.append(float(alpha.std() / alpha.mean()))
    return float(np.mean(values))


def run_ablation():
    fed = build_creditcard_benchmark(
        n_users=100, n_silos=20, distribution="zipf",
        n_records=3000, n_test=400, seed=20,
    )
    out = {}
    for weighting in ("uniform", "proportional"):
        method = UldpAvg(
            noise_multiplier=SIGMA, local_epochs=2, weighting=weighting,
            record_clip_stats=True,
        )
        history = run_history(fed, method, ROUNDS, seed=21)
        out[weighting] = {
            "utilisation": utilisation(method.weights, fed.histogram()),
            "dispersion": relative_dispersion(method),
            "final": history.final,
        }
    return out


def test_ablation_weighting_bias(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print_header(
        "Ablation (Fig. 8 mechanism): weight-budget utilisation, zipf, |S|=20"
    )
    print(f"{'weighting':<14s} {'utilisation':>12s} {'rel.disp.':>10s} "
          f"{'final loss':>12s} {'final acc':>10s}")
    for weighting, r in results.items():
        print(
            f"{weighting:<14s} {r['utilisation']:12.4f} {r['dispersion']:10.4f} "
            f"{r['final'].loss:12.4f} {r['final'].metric:10.4f}"
        )

    # Eq. (3) weights spend the full unit budget; uniform weights waste most
    # of it when records concentrate in few of the 20 silos.
    assert results["proportional"]["utilisation"] > 0.999
    assert results["uniform"]["utilisation"] < 0.5
