"""Figure 6: privacy-utility trade-offs on HeartDisease (FLamby-style).

Paper setting: 4 fixed hospital silos, logistic model (< 100 params),
|U| in {50, 200} (n-bar ~ 10 / ~ 2.5), uniform and zipf allocation,
sigma = 5.0.  The tiny model lets this bench run all method variants at
paper-like round counts.
"""

import pytest
from conftest import print_final_table, print_header, print_series_table, run_history

from repro.core import Default, UldpAvg, UldpGroup, UldpNaive, UldpSgd
from repro.data import build_heartdisease_benchmark

SIGMA = 5.0
ROUNDS = 10


def make_methods():
    return [
        Default(local_epochs=2),
        UldpNaive(noise_multiplier=SIGMA, local_epochs=2),
        UldpGroup(group_size="max", noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=256, local_lr=1.0),
        UldpGroup(group_size="median", noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=256, local_lr=1.0),
        UldpGroup(group_size=2, noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=256, local_lr=1.0),
        UldpSgd(noise_multiplier=SIGMA),
        UldpAvg(noise_multiplier=SIGMA, local_epochs=2),
        UldpAvg(noise_multiplier=SIGMA, local_epochs=2, weighting="proportional"),
    ]


def run_config(n_users, distribution):
    fed = build_heartdisease_benchmark(
        n_users=n_users, distribution=distribution, seed=8
    )
    histories = [run_history(fed, m, ROUNDS, seed=9) for m in make_methods()]
    return fed, histories


CONFIGS = [
    pytest.param(50, "uniform", id="U50-uniform"),   # Fig 6a (n-bar ~ 15)
    pytest.param(50, "zipf", id="U50-zipf"),         # Fig 6b
    pytest.param(200, "uniform", id="U200-uniform"), # Fig 6c (n-bar ~ 3.7)
    pytest.param(200, "zipf", id="U200-zipf"),       # Fig 6d
]


@pytest.mark.parametrize("n_users,distribution", CONFIGS)
def test_fig06_heartdisease(benchmark, n_users, distribution):
    fed, histories = benchmark.pedantic(
        run_config, args=(n_users, distribution), rounds=1, iterations=1
    )

    print_header(
        f"Figure 6 ({distribution}, |U|={n_users}): HeartDisease, "
        f"n-bar={fed.mean_records_per_user():.1f}, sigma={SIGMA}"
    )
    print("\n-- accuracy per round --")
    print_series_table(histories, "metric")
    print("\n-- epsilon per round --")
    print_series_table(histories, "epsilon")
    print("\n-- final --")
    print_final_table(histories)

    by_name = {h.method: h.final for h in histories}
    group_names = [n for n in by_name if n.startswith("ULDP-GROUP")]
    # Every group-privacy epsilon dominates the direct ULDP epsilon.
    for name in group_names:
        assert by_name[name].epsilon > by_name["ULDP-AVG"].epsilon
    # GROUP-max >= GROUP-median >= GROUP-2 in epsilon (larger k, worse bound),
    # modulo the shared record-level base; monotone in k by construction.
    k_eps = sorted(
        (int(n.rsplit("-", 1)[1]), by_name[n].epsilon) for n in group_names
    )
    assert all(e1 <= e2 for (_, e1), (_, e2) in zip(k_eps, k_eps[1:]))
