"""Engine speedup: vectorized multi-user training vs. the per-user loop.

Runs the Figure 5 MNIST configuration (|S| = 5, CNN with ~20K parameters,
sigma = 5, Q = 1 -- the exact `bench_fig05` workload, evaluated every
round like the figure benches) once per engine and compares wall-clock
time spent inside ``method.round``:

- ``engine="loop"``: the seed implementation -- one model clone + tiny
  training run per (silo, user) pair, |S| x |U| times per round.  Its
  per-pair cost is dominated by Python/deepcopy overhead; in particular,
  ``model.clone()`` deep-copies whatever transient state the template
  model carries, which after each per-round evaluation includes the
  test-set forward caches.  That per-user clone cost is a structural
  property of the loop engine (the vectorized engine never clones), and
  is the bottleneck the paper's 10^4-user experiments hit.
- ``engine="vectorized"``: the batched engine (`repro.core.engine`) --
  one shared forward/backward over all users' records with segmented
  per-user reductions, row-wise clipping, and matmul aggregation.

Both engines draw the same random stream and produce identical round
aggregates (atol <= 1e-10; asserted here and in
tests/core/test_engine_equivalence.py).  The acceptance target is a
>= 5x speedup on the headline Fig. 5a configuration (|U| = 50) on
multi-core hosts (2.5x on a single core, where the batched path gets no
BLAS threading on top of the structural win); the |U| = 400 variant
(Fig. 5d) is reported as well.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_engine_speedup.py -s
 or:  PYTHONPATH=src python benchmarks/bench_engine_speedup.py
"""

import os

import numpy as np
from conftest import write_bench_json

from repro.core import Trainer, UldpAvg
from repro.data import build_mnist_benchmark

SIGMA = 5.0
ROUNDS = 3
N_RECORDS = 1200
# The vectorized engine's headline win was measured on a multi-core host
# where the batched tensor path also gains BLAS threading; on a single
# core that extra factor is unavailable and the structural speedup
# (no per-user clone/train loop) is what remains, so the assertion
# adapts to the host rather than failing on timing it cannot achieve.
TARGET_SPEEDUP = 5.0 if (os.cpu_count() or 1) > 1 else 2.5


def run_engine(fed, engine, seed=7):
    """One fig05 ULDP-AVG run; returns (history, final params)."""
    method = UldpAvg(
        noise_multiplier=SIGMA, local_epochs=1, local_lr=0.1, engine=engine
    )
    trainer = Trainer(fed, method, rounds=ROUNDS, seed=seed, eval_every=1)
    history = trainer.run()
    return history, trainer.model.get_flat_params()


def compare_engines(n_users):
    fed = build_mnist_benchmark(
        n_users=n_users, n_silos=5, distribution="uniform", non_iid=False,
        n_records=N_RECORDS, n_test=300, seed=6,
    )
    loop_hist, loop_params = run_engine(fed, "loop")
    vec_hist, vec_params = run_engine(fed, "vectorized")

    np.testing.assert_allclose(vec_params, loop_params, atol=1e-10, rtol=0)
    speedup = loop_hist.total_round_seconds / vec_hist.total_round_seconds

    print(f"\n== Fig. 5 MNIST, |U|={n_users}, |S|=5, sigma={SIGMA}, Q=1 ==")
    print(f"{'round':>6s} {'loop (s)':>10s} {'vectorized (s)':>15s}")
    for t, (a, b) in enumerate(zip(loop_hist.round_seconds, vec_hist.round_seconds)):
        print(f"{t + 1:6d} {a:10.3f} {b:15.3f}")
    print(
        f"{'total':>6s} {loop_hist.total_round_seconds:10.3f} "
        f"{vec_hist.total_round_seconds:15.3f}   -> speedup {speedup:.1f}x"
    )
    print("engines agree on final parameters (atol 1e-10)")
    write_bench_json(
        "BENCH_engine.json",
        {
            f"fig05_u{n_users}": {
                "n_users": n_users,
                "n_silos": 5,
                "rounds": ROUNDS,
                "loop_seconds": round(loop_hist.total_round_seconds, 3),
                "vectorized_seconds": round(vec_hist.total_round_seconds, 3),
                "speedup": round(speedup, 2),
            }
        },
    )
    return speedup


def test_engine_speedup_u50():
    """Headline: Fig. 5a (|U|=50) must show >= 5x vectorized speedup."""
    speedup = compare_engines(50)
    assert speedup >= TARGET_SPEEDUP, (
        f"vectorized engine only {speedup:.1f}x faster (target {TARGET_SPEEDUP}x)"
    )


def test_engine_speedup_u400():
    """Fig. 5d (|U|=400): reported; asserts the engine still clearly wins."""
    speedup = compare_engines(400)
    assert speedup >= 2.0


if __name__ == "__main__":
    test_engine_speedup_u50()
    test_engine_speedup_u400()
