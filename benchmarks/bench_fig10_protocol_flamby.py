"""Figure 10: private weighting protocol on the FLamby-style scenarios.

Paper setting: Protocol 1 running HeartDisease (10 users) and TcgaBrca
(100 users) with zipf allocation; reports local-training time per silo and
the protocol overhead phases (key exchange, blinded histograms,
aggregation).  Paper finding: local training dominates and the whole
round is practical for small models.

Scaled: 512-bit Paillier (paper: 3072-bit) and 30 users for TcgaBrca; the
phase *ordering* is the reproduced result, not absolute times.
"""

import time

import pytest
from conftest import print_header

from repro.core import Trainer
from repro.data import build_heartdisease_benchmark, build_tcgabrca_benchmark
from repro.protocol import SecureUldpAvg

SIGMA = 5.0
ROUNDS = 2


def run_secure(fed, local_lr):
    method = SecureUldpAvg(
        noise_multiplier=SIGMA, local_epochs=1, local_lr=local_lr,
        paillier_bits=512,
    )
    start = time.perf_counter()
    history = Trainer(fed, method, rounds=ROUNDS, seed=17).run()
    total = time.perf_counter() - start
    report = method.timing_report()
    protocol_time = sum(report.values())
    report["local_training_and_rest"] = total - protocol_time
    return history, report


CONFIGS = [
    pytest.param("heartdisease", 10, 0.05, id="heartdisease-U10"),
    pytest.param("tcgabrca", 30, 0.01, id="tcgabrca-U30"),
]


@pytest.mark.parametrize("dataset,n_users,lr", CONFIGS)
def test_fig10_protocol_flamby(benchmark, dataset, n_users, lr):
    if dataset == "heartdisease":
        fed = build_heartdisease_benchmark(n_users=n_users, distribution="zipf", seed=18)
    else:
        fed = build_tcgabrca_benchmark(n_users=n_users, distribution="zipf", seed=18)

    history, report = benchmark.pedantic(
        run_secure, args=(fed, lr), rounds=1, iterations=1
    )

    print_header(
        f"Figure 10 ({dataset}, |U|={n_users}, zipf): Protocol 1 timing, "
        f"{ROUNDS} rounds, 512-bit Paillier"
    )
    for phase, seconds in sorted(report.items(), key=lambda kv: -kv[1]):
        print(f"  {phase:<28s} {seconds * 1000:10.1f} ms")
    print(f"\n  final {history.final.metric_name}={history.final.metric:.4f} "
          f"eps={history.final.epsilon:.3f}")

    # Paper shape: per-silo cryptographic weighting + training dominates the
    # one-off setup phases.
    work = report["silo_weighted_encryption"] + report["local_training_and_rest"]
    setup = report["key_exchange"] + report["blinded_histogram"]
    assert work > setup
