"""Ablation: cryptographic cost drivers of Protocol 1.

Two design choices DESIGN.md calls out:

1. **Paillier key size** -- the per-operation cost of keygen, encryption,
   scalar multiplication (the dominant op: one per user per coordinate per
   silo per round), and decryption, at 256/512/1024-bit moduli.  The paper
   runs 3072-bit; the scaling justifies the smaller default in tests.
2. **C_LCM growth** -- lcm(1..N_max) grows like e^{N_max}, which inflates
   every scalar in the encrypted weighting; restricting admissible user
   record counts (the paper suggests powers of ten) keeps it tiny.
"""

import random

from conftest import print_header

from repro.crypto.encoding import lcm_of_counts, lcm_up_to
from repro.crypto.paillier import generate_paillier_keypair


def test_paillier_operation_costs(benchmark):
    """Benchmark the dominant homomorphic operation at the default size."""
    rng = random.Random(0)
    kp = generate_paillier_keypair(512, rng=rng)
    ct = kp.public_key.encrypt(12345, rng=rng)
    scalar = rng.randrange(kp.public_key.n)

    benchmark(lambda: kp.public_key.mul_scalar(ct, scalar))

    print_header("Ablation: Paillier cost per operation by key size")
    import time

    print(f"{'bits':>6s} {'keygen':>10s} {'encrypt':>10s} {'mul_scalar':>11s} {'decrypt':>10s}")
    for bits in (256, 512, 1024):
        t0 = time.perf_counter()
        kp_b = generate_paillier_keypair(bits, rng=random.Random(bits))
        t_keygen = time.perf_counter() - t0

        r = random.Random(1)
        t0 = time.perf_counter()
        for _ in range(20):
            c = kp_b.public_key.encrypt(999, rng=r)
        t_enc = (time.perf_counter() - t0) / 20

        s = r.randrange(kp_b.public_key.n)
        t0 = time.perf_counter()
        for _ in range(20):
            kp_b.public_key.mul_scalar(c, s)
        t_mul = (time.perf_counter() - t0) / 20

        t0 = time.perf_counter()
        for _ in range(20):
            kp_b.private_key.decrypt(c)
        t_dec = (time.perf_counter() - t0) / 20

        print(
            f"{bits:6d} {t_keygen * 1000:8.1f}ms {t_enc * 1000:8.2f}ms "
            f"{t_mul * 1000:9.2f}ms {t_dec * 1000:8.2f}ms"
        )


def test_clcm_growth(benchmark):
    """C_LCM explodes with N_max; restricted count sets stay tiny."""
    values = benchmark.pedantic(
        lambda: {n: lcm_up_to(n) for n in (10, 20, 40, 80)}, rounds=1, iterations=1
    )

    print_header("Ablation: C_LCM = lcm(1..N_max) growth")
    print(f"{'N_max':>6s} {'bits(C_LCM)':>12s}")
    for n, v in values.items():
        print(f"{n:6d} {v.bit_length():12d}")
    restricted = lcm_of_counts([10, 100, 1000, 10000])
    print(f"\nrestricted counts {{10,100,1000,10000}}: C_LCM = {restricted} "
          f"({restricted.bit_length()} bits)")

    # Exponential growth: bits roughly double when N_max doubles.
    assert values[80].bit_length() > 1.7 * values[40].bit_length()
    # The paper's mitigation keeps it trivially small.
    assert restricted == 10_000
