"""Figure 5: privacy-utility trade-offs on MNIST (CNN, ~20K params).

Paper setting: |S| = 5, |U| in {100, 10000}, uniform/zipf, iid and
user-level non-iid (each user holds at most 2 labels), sigma = 5.0.
Scaled down: synthetic 14x14 images, 1200 records, |U| in {50, 400},
3 rounds, and the method subset the figure differentiates (DEFAULT,
ULDP-NAIVE, ULDP-GROUP-2, ULDP-AVG, ULDP-AVG-w).

Expected shape: DEFAULT converges fastest; ULDP-AVG-w tracks it; the
non-iid + few-users case hurts ULDP-AVG (the paper's highlighted weak
point); ULDP-GROUP-2's epsilon is far larger than ULDP-AVG's.
"""

import pytest
from conftest import print_final_table, print_header, print_series_table, run_history

from repro.core import Default, UldpAvg, UldpGroup, UldpNaive
from repro.data import build_mnist_benchmark

SIGMA = 5.0
ROUNDS = 3
N_RECORDS = 1200


def make_methods():
    return [
        Default(local_epochs=1, local_lr=0.1),
        UldpNaive(noise_multiplier=SIGMA, local_epochs=1, local_lr=0.1),
        UldpGroup(group_size=2, noise_multiplier=SIGMA, local_steps=1,
                  expected_batch_size=256, local_lr=0.5),
        UldpAvg(noise_multiplier=SIGMA, local_epochs=1, local_lr=0.1),
        UldpAvg(noise_multiplier=SIGMA, local_epochs=1, local_lr=0.1,
                weighting="proportional"),
    ]


def run_config(n_users, distribution, non_iid):
    fed = build_mnist_benchmark(
        n_users=n_users, n_silos=5, distribution=distribution, non_iid=non_iid,
        n_records=N_RECORDS, n_test=300, seed=6,
    )
    histories = [run_history(fed, m, ROUNDS, seed=7) for m in make_methods()]
    return fed, histories


CONFIGS = [
    pytest.param(50, "uniform", False, id="U50-uniform-iid"),    # Fig 5a
    pytest.param(50, "zipf", False, id="U50-zipf-iid"),          # Fig 5b
    pytest.param(50, "zipf", True, id="U50-zipf-noniid"),        # Fig 5c
    pytest.param(400, "uniform", False, id="U400-uniform-iid"),  # Fig 5d
    pytest.param(400, "zipf", False, id="U400-zipf-iid"),        # Fig 5e
    pytest.param(400, "zipf", True, id="U400-zipf-noniid"),      # Fig 5f
]


@pytest.mark.parametrize("n_users,distribution,non_iid", CONFIGS)
def test_fig05_mnist(benchmark, n_users, distribution, non_iid):
    fed, histories = benchmark.pedantic(
        run_config, args=(n_users, distribution, non_iid), rounds=1, iterations=1
    )

    label = "non-iid" if non_iid else "iid"
    print_header(
        f"Figure 5 ({distribution}, {label}, |U|={n_users}): MNIST, "
        f"n-bar={fed.mean_records_per_user():.1f}, sigma={SIGMA}"
    )
    print("\n-- test loss per round --")
    print_series_table(histories, "loss")
    print("\n-- accuracy per round --")
    print_series_table(histories, "metric")
    print("\n-- final --")
    print_final_table(histories)

    by_name = {h.method: h.final for h in histories}
    # Group-privacy epsilon exceeds the direct method's even at k=2.
    assert by_name["ULDP-GROUP-2"].epsilon > by_name["ULDP-AVG"].epsilon
    # Epsilons of the direct methods follow Theorem 3 regardless of config.
    assert by_name["ULDP-AVG"].epsilon == pytest.approx(
        by_name["ULDP-NAIVE"].epsilon
    )
