"""Simulation-runtime scale bench: million-user populations + 100-round dropout.

Two measurements of the :mod:`repro.sim` federation runtime:

1. **Population scale** -- builds a >= 1M-user
   :class:`repro.sim.population.ShardedUserPopulation` (memory-mapped,
   lazily-materialised allocation shards), drives 100 rounds of user churn
   across it, and samples participation rosters.  Asserts setup is lazy
   (no shards materialised up front) and effectively instant, and reports
   churn/sampling throughput plus the resident footprint of the
   materialised shards.

2. **Dropout scenario** -- runs the ``flaky-silos`` scenario (iid 30 %
   per-round silo dropout) for 100 rounds end to end, asserting the
   participation log shows real dropout, the accountant recorded one
   honest release per round, and a >= 1M-user population simulation
   completed.  Reports rounds/second.

Both sections land in ``BENCH_sim.json`` at the repo root next to the
engine and protocol bench JSONs.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_sim_scale.py -s
 or:  PYTHONPATH=src python benchmarks/bench_sim_scale.py
"""

import tempfile
import time

import numpy as np
from conftest import host_info, print_header, write_bench_json

from repro.sim import ShardedUserPopulation, run_scenario

POPULATION_USERS = 1_200_000
CHURN_ROUNDS = 100
SCENARIO_ROUNDS = 100
SETUP_BUDGET_SECONDS = 0.5


def _bench_population() -> dict:
    """>= 1M-user population: lazy setup, churn, and roster sampling."""
    rng = np.random.default_rng(0)
    with tempfile.TemporaryDirectory(prefix="bench-sim-pop-") as backing:
        start = time.perf_counter()
        pop = ShardedUserPopulation(POPULATION_USERS, backing_dir=backing, seed=7)
        setup_seconds = time.perf_counter() - start
        assert pop.n_users >= 1_000_000
        assert pop.n_materialised_shards == 0, "setup must stay lazy"
        assert setup_seconds < SETUP_BUDGET_SECONDS

        start = time.perf_counter()
        for _ in range(CHURN_ROUNDS):
            pop.apply_churn(rng, departure_rate=0.01, arrival_rate=0.005)
        churn_seconds = time.perf_counter() - start

        start = time.perf_counter()
        roster = pop.sample_users(rng, 10_000)
        sample_seconds = time.perf_counter() - start
        assert len(np.unique(roster)) == 10_000

        return {
            "n_users": pop.n_users,
            "n_shards": pop.n_shards,
            "setup_seconds": setup_seconds,
            "churn_rounds": CHURN_ROUNDS,
            "churn_seconds": churn_seconds,
            "churn_users_per_second": CHURN_ROUNDS * pop.n_users / churn_seconds,
            "sample_10k_seconds": sample_seconds,
            "resident_mb": pop.resident_bytes / 1e6,
            "active_after_churn": pop.n_active,
            "total_arrivals": pop.total_arrivals,
            "total_departures": pop.total_departures,
        }


def _bench_scenario() -> dict:
    """100-round flaky-silos dropout scenario, end to end."""
    start = time.perf_counter()
    sim = run_scenario("flaky-silos", scale="smoke", seed=0, rounds=SCENARIO_ROUNDS)
    seconds = time.perf_counter() - start
    history = sim.history
    assert len(history.round_seconds) == SCENARIO_ROUNDS
    assert len(sim.method.accountant.releases) == SCENARIO_ROUNDS
    silos_seen = [p.silos_seen for p in history.participation]
    assert min(silos_seen) < sim.fed.n_silos, "dropout never struck in 100 rounds?"
    summary = history.participation_summary()
    assert summary is not None
    final = history.final
    return {
        "scenario": "flaky-silos",
        "rounds": SCENARIO_ROUNDS,
        "seconds": seconds,
        "rounds_per_second": SCENARIO_ROUNDS / seconds,
        "final_metric": final.metric,
        "final_epsilon": final.epsilon,
        "mean_silos_seen": summary[0],
        "mean_users_seen": summary[1],
        "min_silos_seen": int(min(silos_seen)),
    }


def test_sim_scale():
    """Populate BENCH_sim.json with both scale measurements."""
    print_header("simulation runtime scale bench")

    population = _bench_population()
    print(
        f"population: {population['n_users']:,} users in "
        f"{population['n_shards']} shards | setup {population['setup_seconds'] * 1e3:.2f} ms "
        f"(lazy) | {CHURN_ROUNDS} churn rounds in {population['churn_seconds']:.2f} s "
        f"({population['churn_users_per_second']:.3g} user-rounds/s) | "
        f"resident {population['resident_mb']:.1f} MB"
    )

    scenario = _bench_scenario()
    print(
        f"scenario: {scenario['scenario']} x {scenario['rounds']} rounds in "
        f"{scenario['seconds']:.1f} s ({scenario['rounds_per_second']:.2f} rounds/s) | "
        f"mean participation {scenario['mean_silos_seen']:.2f} silos / "
        f"{scenario['mean_users_seen']:.1f} users | eps {scenario['final_epsilon']:.2f}"
    )

    path = write_bench_json(
        "BENCH_sim.json",
        {
            "population_scale": population,
            "dropout_scenario": scenario,
            "host": host_info(),
        },
    )
    print(f"results written to {path}")


if __name__ == "__main__":
    test_sim_scale()
