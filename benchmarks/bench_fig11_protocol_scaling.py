"""Figure 11: protocol execution time vs model size and user count.

Paper setting: artificial dataset, default 16 parameters / 20 users /
3 silos; top row sweeps parameter count 16 -> 1e7, bottom row sweeps users
10 -> 40; per-phase breakdown (key exchange, histogram, per-silo encrypted
training contribution, server aggregation).  Paper finding: the dominant
per-silo encryption cost grows *linearly* with parameter count and with
the number of users.

Scaled: parameter sweep up to 512 (the linearity is the result; 1e7 at
3072-bit keys needs the paper's hour-scale budget) and 256-bit Paillier.
"""

import numpy as np
import pytest
from conftest import print_header

from repro.protocol import PrivateWeightingProtocol

N_SILOS = 3
PAILLIER_BITS = 256


def make_histogram(n_users, rng):
    hist = rng.integers(1, 5, size=(N_SILOS, n_users))
    return hist


def run_protocol_round(n_users, n_params, seed=0):
    rng = np.random.default_rng(seed)
    proto = PrivateWeightingProtocol(
        make_histogram(n_users, rng), n_max=32, paillier_bits=PAILLIER_BITS, seed=seed
    )
    proto.run_setup()
    deltas = []
    for s in range(N_SILOS):
        deltas.append(
            {
                u: rng.standard_normal(n_params)
                for u in range(n_users)
                if proto.histogram[s, u] > 0
            }
        )
    noises = [rng.standard_normal(n_params) for _ in range(N_SILOS)]
    proto.run_round(deltas, noises)
    report = proto.timer.report()
    # Per-silo average, matching the paper's "execution time of local
    # training is averaged by silos".
    report["silo_weighted_encryption"] /= N_SILOS
    return report


def test_fig11_scaling_with_parameters(benchmark):
    sizes = [16, 64, 128, 256, 512]

    def sweep():
        return {d: run_protocol_round(n_users=20, n_params=d) for d in sizes}

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header(
        f"Figure 11 (top): protocol time vs #parameters "
        f"(20 users, {N_SILOS} silos, {PAILLIER_BITS}-bit Paillier)"
    )
    phases = ["key_exchange", "encrypt_weights", "silo_weighted_encryption",
              "aggregate_decrypt"]
    print(f"{'params':>8s} " + " ".join(f"{p:>26s}" for p in phases))
    for d in sizes:
        row = " ".join(f"{reports[d][p] * 1000:24.1f}ms" for p in phases)
        print(f"{d:8d} {row}")

    # Linearity of the dominant phase: 32x params within ~an order of 32x time.
    t_small = reports[16]["silo_weighted_encryption"]
    t_large = reports[512]["silo_weighted_encryption"]
    ratio = t_large / t_small
    assert 8 < ratio < 130, f"expected ~32x growth, got {ratio:.1f}x"
    # The per-silo encryption dominates the server-side weight encryption
    # for large models.
    assert (
        reports[512]["silo_weighted_encryption"] > reports[512]["key_exchange"]
    )


def test_fig11_scaling_with_users(benchmark):
    user_counts = [10, 20, 40]

    def sweep():
        return {u: run_protocol_round(n_users=u, n_params=64) for u in user_counts}

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header(
        f"Figure 11 (bottom): protocol time vs #users "
        f"(64 params, {N_SILOS} silos, {PAILLIER_BITS}-bit Paillier)"
    )
    phases = ["key_exchange", "encrypt_weights", "silo_weighted_encryption",
              "aggregate_decrypt"]
    print(f"{'users':>8s} " + " ".join(f"{p:>26s}" for p in phases))
    for u in user_counts:
        row = " ".join(f"{reports[u][p] * 1000:24.1f}ms" for p in phases)
        print(f"{u:8d} {row}")

    # The per-silo encryption grows with the number of users (every present
    # user adds d ciphertext exponentiations), roughly linearly.
    t10 = reports[10]["silo_weighted_encryption"]
    t40 = reports[40]["silo_weighted_encryption"]
    assert 2 < t40 / t10 < 16, f"expected ~4x growth, got {t40 / t10:.1f}x"
