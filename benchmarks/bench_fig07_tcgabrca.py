"""Figure 7: privacy-utility trade-offs on TcgaBrca (survival / C-index).

Paper setting: 6 fixed silos, linear Cox model, C-index metric,
|U| in {50, 200}, uniform and zipf allocation (>= 2 records per present
user/silo pair, required by the Cox partial likelihood), sigma = 5.0.
"""

import pytest
from conftest import print_final_table, print_header, print_series_table, run_history

from repro.core import Default, UldpAvg, UldpGroup, UldpNaive, UldpSgd
from repro.data import build_tcgabrca_benchmark

SIGMA = 5.0
ROUNDS = 10
LOCAL_LR = 0.01


def make_methods():
    return [
        Default(local_epochs=2, local_lr=LOCAL_LR),
        UldpNaive(noise_multiplier=SIGMA, local_epochs=2, local_lr=LOCAL_LR),
        UldpGroup(group_size="median", noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=128, local_lr=0.1),
        UldpGroup(group_size=8, noise_multiplier=SIGMA, local_steps=2,
                  expected_batch_size=128, local_lr=0.1),
        UldpSgd(noise_multiplier=SIGMA),
        UldpAvg(noise_multiplier=SIGMA, local_epochs=2, local_lr=LOCAL_LR),
        UldpAvg(noise_multiplier=SIGMA, local_epochs=2, local_lr=LOCAL_LR,
                weighting="proportional"),
    ]


def run_config(n_users, distribution):
    fed = build_tcgabrca_benchmark(n_users=n_users, distribution=distribution, seed=10)
    histories = [run_history(fed, m, ROUNDS, seed=11) for m in make_methods()]
    return fed, histories


CONFIGS = [
    pytest.param(50, "uniform", id="U50-uniform"),    # Fig 7a (n-bar ~ 17)
    pytest.param(50, "zipf", id="U50-zipf"),          # Fig 7b
    pytest.param(200, "uniform", id="U200-uniform"),  # Fig 7c (n-bar ~ 4)
    pytest.param(200, "zipf", id="U200-zipf"),        # Fig 7d
]


@pytest.mark.parametrize("n_users,distribution", CONFIGS)
def test_fig07_tcgabrca(benchmark, n_users, distribution):
    fed, histories = benchmark.pedantic(
        run_config, args=(n_users, distribution), rounds=1, iterations=1
    )

    print_header(
        f"Figure 7 ({distribution}, |U|={n_users}): TcgaBrca, "
        f"n-bar={fed.mean_records_per_user():.1f}, sigma={SIGMA}"
    )
    print("\n-- C-index per round --")
    print_series_table(histories, "metric")
    print("\n-- epsilon per round --")
    print_series_table(histories, "epsilon")
    print("\n-- final --")
    print_final_table(histories)

    by_name = {h.method: h.final for h in histories}
    # Cox training data respects the >= 2 records constraint.
    hist = fed.histogram()
    assert hist[hist > 0].min() >= 2
    # Group conversions dominate the direct method's epsilon.
    for name, final in by_name.items():
        if name.startswith("ULDP-GROUP"):
            assert final.epsilon > by_name["ULDP-AVG"].epsilon
    # C-index stays in its valid range for every method and round.
    for h in histories:
        assert all(0.0 <= m <= 1.0 for m in h.series("metric"))
