"""Shared helpers for the reproduction benchmarks.

Each ``bench_figXX_*.py`` regenerates one table or figure of the paper:
it builds the figure's workload (scaled down to laptop size -- see
EXPERIMENTS.md for the scaling notes), runs the figure's methods, and
prints the same rows/series the paper plots.  pytest-benchmark wraps the
whole computation so ``--benchmark-only`` reports wall-clock times.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import Trainer
from repro.cost.bench_schema import BENCH_SCHEMA, validate_bench_tree

#: Machine-readable benchmark results land next to the repo root so the
#: perf trajectory can be diffed across PRs (`BENCH_engine.json`,
#: `BENCH_protocol.json`, `BENCH_sim.json`).
RESULTS_DIR = Path(__file__).resolve().parent.parent


def write_bench_json(filename: str, updates: dict) -> Path:
    """Merge ``updates`` into the machine-readable results file.

    Each bench test contributes its own top-level keys, so partial runs
    (one test, one figure) refresh only their section.  Every write
    (re)stamps the schema tag and the host that produced the numbers, so
    a BENCH file is never compared across machines by accident.  The
    merged tree must conform to the bench schema -- these files are the
    cost model's calibration corpus (docs/cost_model.md), so a NaN or a
    mistyped leaf is rejected at write time, not at fit time.
    """
    path = RESULTS_DIR / filename
    data = json.loads(path.read_text()) if path.exists() else {}
    data.update(updates)
    data["schema"] = BENCH_SCHEMA
    data["host"] = host_info()
    problems = validate_bench_tree(data, name=filename)
    if problems:
        raise ValueError(
            f"{filename} would violate {BENCH_SCHEMA}:\n  "
            + "\n  ".join(problems)
        )
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def host_info() -> dict:
    """Host context recorded alongside throughput numbers (cores, platform)."""
    import datetime
    import os
    import platform

    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
    }


def run_history(fed, method, rounds, seed=0, delta=1e-5, eval_every=1):
    """Train one method and return its TrainingHistory."""
    return Trainer(
        fed, method, rounds=rounds, seed=seed, delta=delta, eval_every=eval_every
    ).run()


def print_header(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def print_series_table(histories, value="metric") -> None:
    """Rows = rounds, columns = methods (the paper's line-plot data)."""
    if not histories:
        return
    rounds = histories[0].series("round")
    names = [h.method for h in histories]
    print(f"{'round':>6s} " + " ".join(f"{n:>18s}" for n in names))
    for i, r in enumerate(rounds):
        cells = []
        for h in histories:
            v = h.series(value)[i]
            cells.append(f"{v:18.4f}" if v is not None else f"{'n/a':>18s}")
        print(f"{int(r):6d} " + " ".join(cells))


def print_final_table(histories) -> None:
    """One row per method: final utility and epsilon."""
    print(f"{'method':<24s} {'metric':>10s} {'loss':>12s} {'eps(ULDP)':>14s}")
    for h in histories:
        f = h.final
        eps = "non-private" if f.epsilon is None else f"{f.epsilon:14.3f}"
        print(f"{h.method:<24s} {f.metric:10.4f} {f.loss:12.4f} {eps:>14s}")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (training runs are slow)."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
