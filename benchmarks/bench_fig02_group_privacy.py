"""Figure 2: group-privacy conversion blow-up.

Paper setting, reproduced exactly (accounting is pure computation, so no
scaling is needed): sub-sampled Gaussian mechanism with sigma = 5.0,
sampling rate q = 0.01, 1e5 iterations, delta = 1e-5; group sizes
k = 1, 2, 4, 8, 16, 32, 64; both conversion routes (group privacy of RDP,
Lemma 6; and of normal DP, Lemma 5 + footnote-1 binary search).

Paper reports (RDP route): eps = 2.85 at k=1, ~2100 at k=32, ~11400 at
k=64 -- a super-linear explosion.  The RDP and normal-DP routes should stay
within roughly 3x of each other for small k.
"""

from conftest import print_header

from repro.accounting.conversion import rdp_curve_to_dp
from repro.accounting.group import group_epsilon_via_normal_dp, group_epsilon_via_rdp
from repro.accounting.subsampled import subsampled_gaussian_rdp_curve

SIGMA = 5.0
Q = 0.01
STEPS = 100_000
DELTA = 1e-5
GROUP_SIZES = [1, 2, 4, 8, 16, 32, 64]


def compute_figure2():
    curve = subsampled_gaussian_rdp_curve(Q, SIGMA, steps=STEPS)
    rows = []
    for k in GROUP_SIZES:
        if k == 1:
            eps_rdp, _ = rdp_curve_to_dp(curve, DELTA)
            eps_dp = eps_rdp
        else:
            eps_rdp = group_epsilon_via_rdp(curve, k, DELTA)
            eps_dp = group_epsilon_via_normal_dp(curve, k, DELTA)
        rows.append((k, eps_rdp, eps_dp))
    return rows


def test_fig02_group_privacy_conversion(benchmark):
    rows = benchmark.pedantic(compute_figure2, rounds=1, iterations=1)

    print_header(
        f"Figure 2: GDP epsilon vs group size k "
        f"(sigma={SIGMA}, q={Q}, steps={STEPS:,}, delta={DELTA})"
    )
    print(f"{'k':>4s} {'eps via RDP (Lemma 6)':>22s} {'eps via DP (Lemma 5)':>22s}")
    for k, eps_rdp, eps_dp in rows:
        print(f"{k:4d} {eps_rdp:22.2f} {eps_dp:22.2f}")

    # Shape assertions matching the paper's observations.
    eps_rdp = [r[1] for r in rows]
    assert 2.5 < eps_rdp[0] < 3.2            # paper: 2.85 at k=1
    assert all(b > a for a, b in zip(eps_rdp, eps_rdp[1:]))  # monotone
    assert eps_rdp[5] > 1000                  # paper: ~2100 at k=32
    assert eps_rdp[6] > 5000                  # paper: ~11400 at k=64
    # Super-linear: doubling k far more than doubles epsilon at the tail.
    assert eps_rdp[6] / eps_rdp[5] > 2.5
    # Routes agree within the paper's "roughly three times at most".
    for k, r, d in rows[1:4]:
        assert max(r, d) / min(r, d) < 6.0
