"""Symbolic per-phase cost expressions for any :class:`repro.api.RunSpec`.

Every phase of a run -- local training, crypto setup, encryption,
upload, broadcast -- gets a closed-form sympy expression in the workload
symbols below for each of five metrics (:data:`METRICS`): wall-clock
seconds, uplink bytes, downlink bytes, ciphertext/mask elements on the
wire, and resident memory.  Byte and element formulas are **exact**
(they mirror :meth:`repro.compress.CompressionSpec.payload_bytes` and
the protocol layer's wire accounting bit for bit -- pinned by
tests/cost/test_comm_crosscheck.py); seconds and memory expressions are
linear in named **calibration constants** (``c_*`` symbols, fitted from
the committed ``BENCH_*.json`` by :mod:`repro.cost.calibrate`).

The expression structure follows the complexity-model approach of
pia-mpc's ``scripts/complexity.py`` (SNIPPETS.md section 1): keep every
cost a small sum of ``constant * shape(symbols)`` terms so the same
expression serves prediction (substitute numbers), calibration (the
shape terms are the design-matrix columns), and capacity planning
(invert for one symbol).

Method coverage:

- plaintext methods (``uldp-avg[-w]``, ``uldp-sgd[-w]``, ``uldp-group``,
  ``uldp-naive`` and other registry entries) share the per-record
  training shape with per-model-family constants (``cnn`` vs ``dense``)
  and differ only through their spec knobs (epochs, compression);
- ``secure-uldp-avg`` adds the crypto phases of its backend: Protocol 1
  under ``reference``/``fast`` Paillier (keygen, offline randomizer
  pools, per-round encryption/decryption, O(key_bits^3) scaling), or the
  pairwise-mask backend (O(S^2) setup, O(S^2 d) per-round masking);
- simulation specs use the scheduler-inclusive per-record constant and
  add churn and population-memory terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import sympy as sp

from repro.api.spec import SECURE_METHOD, CryptoSpec, RunSpec
from repro.compress import CompressionSpec

#: Metric attributes carried by every :class:`PhaseCost`.
METRICS = (
    "seconds",
    "uplink_bytes",
    "downlink_bytes",
    "cipher_elements",
    "memory_bytes",
)

# -- workload symbols ---------------------------------------------------------

USERS = sp.Symbol("U", positive=True)  #: participating users per round
SILOS = sp.Symbol("S", positive=True)  #: silos in the federation
DIM = sp.Symbol("d", positive=True)  #: model parameters (flat dimension)
RECORDS_PER_USER = sp.Symbol("R_u", positive=True)  #: training records per user
EPOCHS = sp.Symbol("E", positive=True)  #: local epochs per round
FEATURES = sp.Symbol("F", positive=True)  #: input features per record
ROUNDS = sp.Symbol("T", positive=True)  #: total federated rounds
KEY_BITS = sp.Symbol("kb", positive=True)  #: Paillier modulus bits
MASK_BITS = sp.Symbol("mb", positive=True)  #: pairwise-mask field bits
WORKERS = sp.Symbol("W", positive=True)  #: sharded-engine worker processes
SHARD_SIZE = sp.Symbol("Sh", positive=True)  #: aligned users per engine shard
POPULATION = sp.Symbol("P", positive=True)  #: total (sharded) user population
PARTICIPATION = sp.Symbol("p", positive=True)  #: expected silo-availability fraction
BANDWIDTH = sp.Symbol("B", positive=True)  #: effective link bytes/second
RETRY = sp.Symbol("r", nonnegative=True)  #: expected retransmission overhead fraction

#: name -> symbol, the planner's substitution vocabulary.
SYMBOLS = {
    "users": USERS,
    "silos": SILOS,
    "dim": DIM,
    "records_per_user": RECORDS_PER_USER,
    "epochs": EPOCHS,
    "features": FEATURES,
    "rounds": ROUNDS,
    "key_bits": KEY_BITS,
    "mask_bits": MASK_BITS,
    "workers": WORKERS,
    "shard_size": SHARD_SIZE,
    "population": POPULATION,
    "participation": PARTICIPATION,
    "bandwidth": BANDWIDTH,
    "retry": RETRY,
}


# -- calibration constants ----------------------------------------------------


@dataclass(frozen=True)
class ConstantDef:
    """One fitted leading constant: what it multiplies and where it comes from.

    ``gate=False`` marks constants excluded from the CI drift gate:
    their source measurement is dominated by noise the model cannot
    capture (randomized prime search, sub-millisecond timer jitter).
    """

    name: str
    unit: str
    doc: str
    gate: bool = True


CONSTANT_DEFS: dict[str, ConstantDef] = {
    c.name: c
    for c in [
        ConstantDef(
            "train_record_cnn",
            "s / (record * epoch * param)",
            "vectorized per-record training work, CNN family (fig05 MNIST)",
        ),
        ConstantDef(
            "train_user_cnn",
            "s / (user * epoch * param)",
            "per-user fixed overhead of a vectorized CNN round "
            "(segmented reductions, clipping rows)",
        ),
        ConstantDef(
            "train_record_dense",
            "s / (record * epoch * param)",
            "per-record training work, dense/logistic family, measured "
            "through the sharded engine (worker overhead folded in)",
        ),
        ConstantDef(
            "sim_record",
            "s / (participating record * param)",
            "per-record work of a scheduler-driven simulation round "
            "(participation draws, weighting, accounting folded in)",
        ),
        ConstantDef(
            "paillier_keygen",
            "s / key_bits^3",
            "fast-backend Paillier keygen (CRT precompute dominates)",
        ),
        ConstantDef(
            "paillier_offline",
            "s / (silo * coord * key_bits^3)",
            "offline randomizer-pool generation, fast backend",
        ),
        ConstantDef(
            "paillier_encrypt",
            "s / (silo * coord * key_bits^3)",
            "per-round weighted encryption, fast backend (fixed-base "
            "windowed exponentiation; per-coordinate, user count amortised "
            "into the precomputed weights)",
        ),
        ConstantDef(
            "paillier_decrypt",
            "s / (coord * key_bits^3)",
            "per-round aggregate decryption (CRT), fast backend",
        ),
        ConstantDef(
            "paillier_misc_base",
            "s",
            "fast-backend setup misc: key exchange + blinded histogram "
            "+ weight encryption, flat part",
        ),
        ConstantDef(
            "paillier_misc_silo_user",
            "s / (silo * user)",
            "fast-backend setup misc, per (silo, user) pair part",
        ),
        ConstantDef(
            "reference_keygen",
            "s",
            "reference-backend keygen: randomized safe-prime search whose "
            "wall-clock varies by multiples run to run -- modelled as a "
            "flat constant and excluded from the drift gate",
            gate=False,
        ),
        ConstantDef(
            "reference_encrypt",
            "s / (user * coord * key_bits^3)",
            "per-round weighted encryption, reference backend "
            "(one modular exponentiation per user-coordinate)",
        ),
        ConstantDef(
            "reference_encrypt_weights",
            "s / (user * key_bits^3)",
            "reference-backend per-user weight encryption (setup)",
        ),
        ConstantDef(
            "reference_decrypt",
            "s / (coord * key_bits^3)",
            "per-round aggregate decryption, reference backend",
        ),
        ConstantDef(
            "masked_setup",
            "s / silo^2",
            "masked-backend setup: DH keygen + pairwise key exchange",
        ),
        ConstantDef(
            "masked_round",
            "s / (silo pair * coord)",
            "per-round pairwise mask stream generation + upload",
        ),
        ConstantDef(
            "churn_user",
            "s / (user * round)",
            "per-round churn process over the full population",
        ),
        ConstantDef(
            "population_memory",
            "bytes / user",
            "resident footprint of a memory-mapped ShardedUserPopulation",
        ),
        ConstantDef(
            "engine_shard_memory",
            "(dimensionless)",
            "multiplier on the analytic in-flight shard footprint "
            "workers * shard * (records_per_user * features + dim) * 8",
        ),
    ]
}


def C(name: str) -> sp.Symbol:
    """The sympy symbol of a registered calibration constant."""
    if name not in CONSTANT_DEFS:
        raise KeyError(
            f"unknown calibration constant {name!r}; "
            f"register it in repro.cost.model.CONSTANT_DEFS"
        )
    return sp.Symbol(f"c_{name}", positive=True)


def constant_symbols() -> dict[sp.Symbol, str]:
    """symbol -> constant name, for substitution bookkeeping."""
    return {C(name): name for name in CONSTANT_DEFS}


# -- exact wire formulas ------------------------------------------------------


def keep_count_expr(comp: CompressionSpec | None, dim=DIM) -> sp.Expr:
    """Symbolic :meth:`CompressionSpec.keep_count`: surviving coordinates."""
    if comp is None or comp.sparsify == "none":
        return dim
    # sp.Float keeps the double's 53-bit value AND 53-bit precision, so
    # frac * dim rounds exactly like the runtime's float product (an
    # exact Rational would differ where the product rounds down across
    # an integer boundary, e.g. 0.1 * 4130 -> 413.0, not 413.000..02).
    frac = sp.Float(comp.fraction)
    return sp.Max(1, sp.Min(dim, sp.ceiling(frac * dim)))


def payload_bytes_expr(comp: CompressionSpec | None, dim=DIM) -> sp.Expr:
    """Symbolic :meth:`CompressionSpec.payload_bytes`: one plaintext payload.

    ``comp=None`` (or the identity spec) is dense float64: ``8 * dim``.
    """
    if comp is None:
        return 8 * dim
    k = keep_count_expr(comp, dim)
    if comp.quantize_bits is not None:
        value_bytes = 8 + sp.ceiling(k * comp.quantize_bits / sp.Integer(8))
    else:
        value_bytes = 8 * k
    if comp.sparsify == "none":
        return value_bytes
    return comp.index_bytes * k + value_bytes


def ciphertext_bytes_expr(key_bits=KEY_BITS) -> sp.Expr:
    """Serialized Paillier ciphertext size: ``ceil(2 * key_bits / 8)``.

    (mirrors :meth:`repro.protocol.runner.SecureAggregationProtocol.\
ciphertext_bytes`; 512-bit keys -> 128 B, 3072-bit -> 768 B)
    """
    return sp.ceiling(2 * key_bits / sp.Integer(8))


def mask_bytes_expr(mask_bits=MASK_BITS) -> sp.Expr:
    """Serialized masked-backend field element size: ``mask_bits / 8``."""
    return mask_bits / sp.Integer(8)


# -- phases -------------------------------------------------------------------

_ZERO = sp.Integer(0)


@dataclass(frozen=True)
class PhaseCost:
    """One phase's five metric expressions.

    ``per`` is ``"setup"`` (paid once per run) or ``"round"`` (paid every
    federated round).  Memory expressions are *resident* footprints, not
    cumulative -- totals take their max, not their sum.
    """

    name: str
    per: str
    seconds: sp.Expr = _ZERO
    uplink_bytes: sp.Expr = _ZERO
    downlink_bytes: sp.Expr = _ZERO
    cipher_elements: sp.Expr = _ZERO
    memory_bytes: sp.Expr = _ZERO

    def __post_init__(self):
        if self.per not in ("setup", "round"):
            raise ValueError("per must be 'setup' or 'round'")


@dataclass(frozen=True)
class CostModel:
    """All phases of one spec's predicted run, still fully symbolic."""

    method: str
    backend: str | None  # crypto backend, or None for plaintext
    family: str  # "cnn" | "dense" | "sim"
    phases: tuple[PhaseCost, ...]
    #: Substitutions the builder already knows are structural (for
    #: reporting; the planner merges workload numbers on top).
    notes: tuple[str, ...] = field(default=())

    def phase(self, name: str) -> PhaseCost:
        for ph in self.phases:
            if ph.name == name:
                return ph
        raise KeyError(f"no phase named {name!r} in this model")

    def total(self, metric: str, per: str | None = None) -> sp.Expr:
        """Sum (max, for memory) of one metric over the selected phases."""
        if metric not in METRICS:
            raise KeyError(f"metric must be one of {METRICS}")
        exprs = [
            getattr(ph, metric)
            for ph in self.phases
            if per is None or ph.per == per
        ]
        exprs = [e for e in exprs if e is not _ZERO]
        if not exprs:
            return _ZERO
        if metric == "memory_bytes":
            return exprs[0] if len(exprs) == 1 else sp.Max(*exprs)
        return sp.Add(*exprs)

    def run_total(self, metric: str) -> sp.Expr:
        """Whole-run total: ``setup + ROUNDS * round`` (max for memory)."""
        if metric == "memory_bytes":
            return self.total(metric)
        return self.total(metric, "setup") + ROUNDS * self.total(metric, "round")

    def constants_used(self) -> list[str]:
        """Names of the calibration constants appearing in any phase."""
        names = constant_symbols()
        found = set()
        for ph in self.phases:
            for metric in METRICS:
                for sym in getattr(ph, metric).free_symbols:
                    if sym in names:
                        found.add(names[sym])
        return sorted(found)


# -- builders -----------------------------------------------------------------


def _train_phase(family: str, sharded: bool) -> PhaseCost:
    """Local training: per-record work scaled by the model dimension.

    The dense-family constant is measured *through* the sharded engine
    (BENCH_scaleout), so worker-pool and BinnedSum merge overhead is
    folded into it rather than carried as a separate unfittable term.
    """
    active_users = PARTICIPATION * USERS
    records = active_users * RECORDS_PER_USER
    if family == "cnn":
        seconds = DIM * EPOCHS * (
            C("train_record_cnn") * records + C("train_user_cnn") * active_users
        )
    elif family == "dense":
        seconds = DIM * EPOCHS * C("train_record_dense") * records
    elif family == "sim":
        seconds = DIM * EPOCHS * C("sim_record") * records
    else:
        raise ValueError(f"unknown model family {family!r}")
    if sharded:
        # Workers hold in-flight shards only: records + delta rows per
        # shard slot, times the live worker count.
        memory = (
            C("engine_shard_memory")
            * WORKERS
            * SHARD_SIZE
            * (RECORDS_PER_USER * FEATURES + DIM)
            * 8
        )
    else:
        # The unsharded vectorized engine materialises every user's
        # records plus the batched per-user delta matrix at once.
        memory = USERS * RECORDS_PER_USER * FEATURES * 8 + USERS * DIM * 8
    return PhaseCost("local_train", "round", seconds=seconds, memory_bytes=memory)


def _plaintext_wire_phases(comp: CompressionSpec | None) -> list[PhaseCost]:
    """Uplink + broadcast of a plaintext method, per round.

    Downlink payloads are dense unless ``comp.downlink`` is set (the
    pipeline only compresses the server broadcast on request); both
    directions are charged to every silo that received the round-start
    broadcast -- the expected count is ``PARTICIPATION * SILOS``.
    """
    up_payload = payload_bytes_expr(comp)
    down_payload = (
        payload_bytes_expr(comp) if comp is not None and comp.downlink else 8 * DIM
    )
    active = PARTICIPATION * SILOS
    return [
        PhaseCost("uplink", "round", uplink_bytes=active * up_payload),
        PhaseCost("broadcast", "round", downlink_bytes=active * down_payload),
    ]


def _secure_phases(
    crypto: CryptoSpec, comp: CompressionSpec | None
) -> list[PhaseCost]:
    """Crypto setup + per-round phases of ``secure-uldp-avg``.

    ``d_eff`` is the ciphertext count per silo: ``keep_count`` under
    rand-k (the only family the secure path admits), else the full dim.
    """
    d_eff = keep_count_expr(comp)
    kb3 = KEY_BITS**3
    phases: list[PhaseCost] = []
    if crypto.backend == "masked":
        active = PARTICIPATION * SILOS
        phases += [
            PhaseCost("mask_setup", "setup", seconds=C("masked_setup") * SILOS**2),
            PhaseCost(
                "mask_and_upload",
                "round",
                seconds=C("masked_round") * active * (SILOS - 1) * d_eff,
                uplink_bytes=active * d_eff * mask_bytes_expr(),
                cipher_elements=active * d_eff,
                memory_bytes=SILOS * d_eff * mask_bytes_expr(),
            ),
            PhaseCost("broadcast", "round", downlink_bytes=active * 8 * DIM),
        ]
        return phases
    # Paillier (Protocol 1) requires the full roster every round.
    cipher_bytes = ciphertext_bytes_expr()
    phases.append(
        PhaseCost("keygen", "setup", seconds=C("paillier_keygen") * kb3)
        if crypto.backend == "fast"
        else PhaseCost("keygen", "setup", seconds=C("reference_keygen"))
    )
    if crypto.backend == "fast":
        phases += [
            PhaseCost(
                "offline_randomizers",
                "setup",
                seconds=C("paillier_offline") * SILOS * d_eff * kb3,
            ),
            PhaseCost(
                "setup_misc",
                "setup",
                seconds=C("paillier_misc_base")
                + C("paillier_misc_silo_user") * SILOS * USERS,
            ),
            PhaseCost(
                "silo_weighted_encryption",
                "round",
                seconds=C("paillier_encrypt") * SILOS * d_eff * kb3,
                uplink_bytes=SILOS * d_eff * cipher_bytes,
                cipher_elements=SILOS * d_eff,
                memory_bytes=SILOS * d_eff * cipher_bytes,
            ),
            PhaseCost(
                "aggregate_decrypt",
                "round",
                seconds=C("paillier_decrypt") * d_eff * kb3,
            ),
        ]
    else:  # reference
        phases += [
            PhaseCost(
                "encrypt_weights",
                "setup",
                seconds=C("reference_encrypt_weights") * USERS * kb3,
            ),
            PhaseCost(
                "silo_weighted_encryption",
                "round",
                seconds=C("reference_encrypt") * USERS * d_eff * kb3,
                uplink_bytes=SILOS * d_eff * cipher_bytes,
                cipher_elements=SILOS * d_eff,
                memory_bytes=SILOS * d_eff * cipher_bytes,
            ),
            PhaseCost(
                "aggregate_decrypt",
                "round",
                seconds=C("reference_decrypt") * d_eff * kb3,
            ),
        ]
    phases.append(PhaseCost("broadcast", "round", downlink_bytes=SILOS * 8 * DIM))
    return phases


def _network_phase(model_phases: list[PhaseCost]) -> PhaseCost:
    """Wall-clock cost of moving the round's bytes over a real link."""
    round_bytes = sp.Add(
        *(
            ph.uplink_bytes + ph.downlink_bytes
            for ph in model_phases
            if ph.per == "round"
        )
    )
    return PhaseCost(
        "network", "round", seconds=round_bytes * (1 + RETRY) / BANDWIDTH
    )


def build_cost_model(spec: RunSpec, family: str | None = None) -> CostModel:
    """Compose the per-phase symbolic cost model of one spec.

    ``family`` (``"cnn"``/``"dense"``) names the training-constant family
    and defaults to the resolved model's family
    (:func:`repro.cost.workload.resolve_family`); simulation specs always
    use the scheduler-inclusive ``"sim"`` constant.
    """
    notes: list[str] = []
    if spec.is_simulation:
        from repro.cost.workload import scenario_traits

        traits = scenario_traits(spec.sim.scenario)
        family = "sim"
        comp = traits.compression
        phases = [_train_phase("sim", sharded=False)]
        # The scenario's population lives in (possibly memory-mapped)
        # shards; its resident footprint is per-user, not per-record.
        phases[0] = replace(
            phases[0], memory_bytes=C("population_memory") * POPULATION
        )
        phases += _plaintext_wire_phases(comp)
        if traits.has_churn:
            phases.append(
                PhaseCost("churn", "round", seconds=C("churn_user") * POPULATION)
            )
        if traits.participation < 1.0:
            notes.append(
                f"scenario {spec.sim.scenario!r}: expected participation "
                f"{traits.participation:g} (iid silo availability)"
            )
        backend = None
    else:
        if family is None:
            from repro.cost.workload import resolve_family

            family = resolve_family(spec)
        sharded = spec.engine is not None and spec.engine.workers > 0
        phases = [_train_phase(family, sharded=sharded)]
        if spec.method.name == SECURE_METHOD:
            crypto = spec.crypto if spec.crypto is not None else CryptoSpec()
            backend = crypto.backend
            phases += _secure_phases(crypto, spec.compression)
        else:
            backend = None
            phases += _plaintext_wire_phases(spec.compression)
    if spec.cost is not None and spec.cost.bandwidth_mbps is not None:
        phases.append(_network_phase(phases))
    return CostModel(
        method=spec.method.name,
        backend=backend,
        family=family,
        phases=tuple(phases),
        notes=tuple(notes),
    )
