"""Closed-form cost model + capacity planner for Uldp-FL runs.

Three layers (see docs/cost_model.md):

- :mod:`repro.cost.model` -- per-phase **sympy expressions** for
  wall-clock seconds, uplink/downlink bytes, ciphertext/mask-element
  counts, and resident memory, composed from any :class:`repro.api.RunSpec`
  (per-method, per-crypto-backend, engine, compression, and sim terms).
- :mod:`repro.cost.calibrate` -- fits the expressions' leading constants
  from the committed ``BENCH_*.json`` files (schema ``uldp-fl-bench/v1``)
  and persists them as a versioned ``calibration.json``.
- :mod:`repro.cost.planner` -- substitutes concrete numbers, renders
  per-phase breakdown tables, and inverts the expressions for capacity
  questions ("max users per round under X seconds / Y bytes").

Surfaced as ``repro cost`` and as ``repro sweep --prune-cost-seconds``;
``tools/check_cost_drift.py`` is the CI gate that keeps predictions
within 2x of fresh measurements.
"""

from repro.cost.calibrate import (
    Calibration,
    fit_calibration,
    load_calibration,
)
from repro.cost.model import (
    METRICS,
    CostModel,
    PhaseCost,
    build_cost_model,
    ciphertext_bytes_expr,
    keep_count_expr,
    payload_bytes_expr,
)
from repro.cost.planner import CostError, CostReport, predict, solve_max_users

__all__ = [
    "METRICS",
    "Calibration",
    "CostError",
    "CostModel",
    "CostReport",
    "PhaseCost",
    "build_cost_model",
    "ciphertext_bytes_expr",
    "fit_calibration",
    "keep_count_expr",
    "load_calibration",
    "payload_bytes_expr",
    "predict",
    "solve_max_users",
]
