"""Resolve a :class:`repro.api.RunSpec` into concrete workload numbers.

The symbolic layer (:mod:`repro.cost.model`) never touches datasets or
models; this module turns a spec into the substitution dict the planner
feeds it -- model dimension (by *building* the registered model against
the benchmark's known input shape, so the count is exact, not guessed),
records per user, crypto parameters, engine layout, and -- for
simulation specs -- the scenario's scale tier, expected participation,
and bundled compression recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

import numpy as np

from repro.api.spec import SECURE_METHOD, CryptoSpec, RunSpec
from repro.compress import CompressionSpec
from repro.cost import model as M


class CostError(ValueError):
    """The cost model cannot resolve or answer something for this spec."""


#: Input shape of each builtin benchmark federation's ``test_x`` -- what
#: the registered model factories consume -- plus its ``model="auto"``
#: resolution (mirrors :func:`repro.core.trainer.default_model_for`).
#: The fixed-silo benchmarks (heartdisease, tcgabrca) have a fixed
#: layout; for them the spec's declared ``records`` is an approximation.
DATASET_TRAITS: dict[str, dict] = {
    "creditcard": {"test_shape": (1, 30), "auto_model": "creditcard-mlp"},
    "mnist": {"test_shape": (1, 1, 14, 14), "auto_model": "mnist-cnn"},
    "heartdisease": {"test_shape": (1, 13), "auto_model": "logistic"},
    "tcgabrca": {"test_shape": (1, 39), "auto_model": "cox-linear"},
}

#: Model families with separately calibrated training constants.  Any
#: registered model not listed here falls back to ``dense`` (per-record
#: linear-algebra work is the dominant shape for every MLP-like model).
CNN_MODELS = ("mnist-cnn",)


def _dataset_name(spec: RunSpec) -> str:
    # Scenario recipes always build the creditcard benchmark
    # (repro.sim.scenarios.build_scenario).
    return "creditcard" if spec.is_simulation else spec.dataset.name


def dataset_traits(spec: RunSpec) -> dict:
    name = _dataset_name(spec)
    if name not in DATASET_TRAITS:
        raise CostError(
            f"dataset.name={name!r}: the cost model only knows the builtin "
            f"benchmarks ({', '.join(sorted(DATASET_TRAITS))}); for a custom "
            f"dataset there is no input shape to size the model from"
        )
    return DATASET_TRAITS[name]


def resolve_model_name(spec: RunSpec) -> str:
    if spec.is_simulation or spec.model.name == "auto":
        return dataset_traits(spec)["auto_model"]
    return spec.model.name


def resolve_features(spec: RunSpec) -> int:
    """Per-record feature count (images count every pixel)."""
    shape = dataset_traits(spec)["test_shape"]
    return int(np.prod(shape[1:]))


def resolve_dim(spec: RunSpec) -> int:
    """Exact flat parameter count: build the registered model once.

    Factories only read ``fed.test_x`` (the input shape), so a stub
    federation with a zero tensor of the benchmark's shape suffices --
    no dataset is generated.
    """
    from repro.api import builtin as _builtin  # noqa: F401  (registry population)
    from repro.api.registries import MODELS

    name = resolve_model_name(spec)
    try:
        factory = MODELS.get(name)
    except KeyError as exc:
        raise CostError(str(exc)) from exc
    stub = SimpleNamespace(test_x=np.zeros(dataset_traits(spec)["test_shape"]))
    try:
        model = factory(np.random.default_rng(0), stub)
    except AttributeError as exc:
        raise CostError(
            f"model {name!r}: its factory needs more than an input shape "
            f"({exc}); the cost model cannot size it analytically"
        ) from exc
    return int(model.get_flat_params().size)


def resolve_family(spec: RunSpec) -> str:
    """Training-constant family of the resolved model."""
    return "cnn" if resolve_model_name(spec) in CNN_MODELS else "dense"


# -- scenario introspection ---------------------------------------------------


@dataclass(frozen=True)
class ScenarioTraits:
    """What a named scenario recipe implies for the cost model."""

    participation: float
    has_churn: bool
    has_bandwidth: bool
    compression: CompressionSpec | None


def scenario_traits(name: str, rounds: int = 8, n_silos: int = 3) -> ScenarioTraits:
    """Build the scenario recipe once and read its cost-relevant knobs.

    Expected participation is exact for iid dropout (``1 - prob``) and
    approximated as 1.0 for windowed outages, deadline misses, and
    byte-cap exclusions -- those depend on draws the closed form cannot
    see (docs/cost_model.md states the approximation).
    """
    from repro.api import builtin as _builtin  # noqa: F401  (registry population)
    from repro.api.registries import SCENARIOS
    from repro.sim.participation import IidSiloDropout

    try:
        factory = SCENARIOS.get(name)
    except KeyError as exc:
        raise CostError(str(exc)) from exc
    recipe = factory(rounds=rounds, n_silos=n_silos)
    dropout = recipe.get("dropout")
    participation = (
        1.0 - dropout.prob if isinstance(dropout, IidSiloDropout) else 1.0
    )
    return ScenarioTraits(
        participation=participation,
        has_churn=recipe.get("churn") is not None,
        has_bandwidth=recipe.get("bandwidth") is not None,
        compression=recipe.get("compression"),
    )


# -- the substitution dict ----------------------------------------------------

#: Mode-default round counts (mirrors RunSpec: 5 for a plain training
#: run; simulations take the scenario scale's count).
TRAIN_DEFAULT_ROUNDS = 5


def resolve_rounds(spec: RunSpec) -> int:
    if spec.rounds is not None:
        return spec.rounds
    if spec.is_simulation:
        from repro.sim.scenarios import _scale_params

        return _scale_params(spec.sim.scale)["rounds"]
    return TRAIN_DEFAULT_ROUNDS


def substitutions(spec: RunSpec) -> dict:
    """symbol -> number for every workload symbol this spec pins down."""
    subs: dict = {}
    if spec.is_simulation:
        from repro.sim.scenarios import _scale_params

        params = _scale_params(spec.sim.scale)
        users, silos = params["n_users"], params["n_silos"]
        records = params["n_records"]
        traits = scenario_traits(
            spec.sim.scenario, rounds=resolve_rounds(spec), n_silos=silos
        )
        participation = traits.participation
    else:
        users, silos = spec.dataset.users, spec.dataset.silos
        records = spec.dataset.records
        participation = 1.0
    subs[M.USERS] = users
    subs[M.SILOS] = silos
    subs[M.DIM] = resolve_dim(spec)
    subs[M.RECORDS_PER_USER] = records / users
    subs[M.EPOCHS] = spec.method.local_epochs
    subs[M.FEATURES] = resolve_features(spec)
    subs[M.ROUNDS] = resolve_rounds(spec)
    subs[M.POPULATION] = users
    subs[M.PARTICIPATION] = participation
    crypto = spec.crypto
    if crypto is None and spec.method.name == SECURE_METHOD:
        crypto = CryptoSpec()
    if crypto is not None:
        subs[M.KEY_BITS] = crypto.paillier_bits
        subs[M.MASK_BITS] = crypto.mask_bits
    if spec.engine is not None and spec.engine.workers > 0:
        from repro.core.engine import EngineConfig

        cfg = EngineConfig(
            workers=spec.engine.workers, shard_size=spec.engine.shard_size
        )
        subs[M.WORKERS] = spec.engine.workers
        subs[M.SHARD_SIZE] = cfg.aligned_shard_size
    if spec.cost is not None and spec.cost.bandwidth_mbps is not None:
        subs[M.BANDWIDTH] = spec.cost.bandwidth_mbps * 1e6 / 8  # bytes/s
        subs[M.RETRY] = spec.cost.retry_overhead
    return subs
