"""Validation of ``BENCH_*.json`` files against schema ``uldp-fl-bench/v1``.

The committed bench files are the cost model's calibration corpus, so
their shape is a contract: a top-level ``schema`` tag, a ``host`` table
with machine metadata, and named result sections whose numeric leaves
are finite (a NaN that slips into a fit poisons every constant).
:func:`repro.cost.calibrate.fit_calibration` refuses unvalidated trees;
``benchmarks/conftest.write_bench_json`` validates on every write; and
``tools/check_bench_schema.py`` runs the same checks in CI.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

BENCH_SCHEMA = "uldp-fl-bench/v1"

#: Required ``host`` fields and their types.
HOST_FIELDS: dict[str, type] = {
    "cpu_count": int,
    "platform": str,
    "python": str,
    "timestamp": str,
}

#: Leaf types a bench value may take.
_LEAF_TYPES = (bool, int, float, str)


def _check_leaves(value, path: str, problems: list[str]) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            if not isinstance(key, str):
                problems.append(f"{path}: non-string key {key!r}")
            else:
                _check_leaves(sub, f"{path}.{key}", problems)
    elif isinstance(value, (list, tuple)):
        for i, sub in enumerate(value):
            _check_leaves(sub, f"{path}[{i}]", problems)
    elif isinstance(value, float):
        if not math.isfinite(value):
            problems.append(f"{path}: non-finite number {value!r}")
    elif value is not None and not isinstance(value, _LEAF_TYPES):
        problems.append(
            f"{path}: unsupported value type {type(value).__name__}"
        )


def validate_bench_tree(tree, name: str = "bench") -> list[str]:
    """All schema problems of one loaded bench tree (empty = valid)."""
    problems: list[str] = []
    if not isinstance(tree, dict):
        return [f"{name}: root must be a table, got {type(tree).__name__}"]
    schema = tree.get("schema")
    if schema != BENCH_SCHEMA:
        problems.append(
            f"{name}.schema: expected {BENCH_SCHEMA!r}, got {schema!r}"
        )
    host = tree.get("host")
    if not isinstance(host, dict):
        problems.append(f"{name}.host: missing or not a table")
    else:
        for field, typ in HOST_FIELDS.items():
            value = host.get(field)
            if not isinstance(value, typ) or isinstance(value, bool):
                problems.append(
                    f"{name}.host.{field}: expected {typ.__name__}, "
                    f"got {type(value).__name__}"
                )
        if isinstance(host.get("cpu_count"), int) and host["cpu_count"] < 1:
            problems.append(f"{name}.host.cpu_count: must be >= 1")
    sections = [k for k in tree if k not in ("schema", "host")]
    if not sections:
        problems.append(f"{name}: no result sections")
    for section in sections:
        if not isinstance(tree[section], dict):
            problems.append(f"{name}.{section}: section must be a table")
        else:
            _check_leaves(tree[section], f"{name}.{section}", problems)
    return problems


def validate_bench_file(path: str | Path) -> list[str]:
    """Schema problems of one ``BENCH_*.json`` file on disk."""
    path = Path(path)
    try:
        tree = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    return validate_bench_tree(tree, name=path.name)
