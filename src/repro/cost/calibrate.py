"""Fit the cost model's leading constants from committed ``BENCH_*.json``.

Every constant multiplies a closed-form shape term (see
:mod:`repro.cost.model`), so calibration is linear: each bench
measurement contributes one row ``measured = sum_j c_j * shape_j(point)``
to a small per-phase least-squares system.  Rows are weighted by
``1/measured`` (relative error -- a 24 s encryption and a 0.7 s one
should pull equally), constants are constrained non-negative (solved by
exhaustive active-set enumeration over the <= 2 columns per group; no
scipy dependency), and measurements under :data:`MIN_FIT_SECONDS` are
excluded from both fitting and drift gating -- they are timer noise at
the resolution the benches record.

The result persists as ``src/repro/cost/calibration.json`` (schema
``cost-calibration/v1``) with the host metadata of the benches it came
from; :func:`load_calibration` round-trips the constants bit-exactly
(pinned by tests/cost/test_calibrate.py).

Two deliberately unfittable measurements are excluded from the drift
gate (``gate=False``): reference-backend keygen (randomized safe-prime
search -- wall-clock varies by multiples between identical runs) and the
secure rand-k *dense* wall-clock in BENCH_compression (a 134-parameter
toy whose runtime is dominated by per-round process-pool setup the
per-coordinate model deliberately does not carry).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import sympy as sp

from repro.api.spec import CryptoSpec
from repro.compress import CompressionSpec
from repro.cost import model as M
from repro.cost.bench_schema import validate_bench_tree
from repro.cost.model import C, _secure_phases, _train_phase

CALIBRATION_SCHEMA = "cost-calibration/v1"

#: Phase measurements below this many seconds are timer noise: excluded
#: from fitting and from the drift gate.
MIN_FIT_SECONDS = 0.002

#: Acceptable predicted/measured ratio band of the CI drift gate.
DRIFT_FACTOR = 2.0

#: Committed calibration location.
DEFAULT_CALIBRATION_PATH = Path(__file__).with_name("calibration.json")

#: The calibration corpus: logical name -> bench file at the repo root.
BENCH_FILES = {
    "engine": "BENCH_engine.json",
    "protocol": "BENCH_protocol.json",
    "compression": "BENCH_compression.json",
    "scaleout": "BENCH_scaleout.json",
    "sim": "BENCH_sim.json",
}

# Fixed workload facts of the benches that their JSON does not repeat
# (constants in the bench scripts; revisit if those scripts change).
FIG05_RECORDS = 1200  # benchmarks/bench_engine_speedup.N_RECORDS
FIG05_SILOS = 5
#: benchmarks/bench_compression plaintext records per scale tier.
COMPRESSION_RECORDS = {"smoke": 400, "full": 1200}
#: benchmarks/bench_compression secure rand-k constants.
SECURE_RANDK = {"rounds": 2, "silos": 3, "paillier_bits": 256}


class CalibrationError(ValueError):
    """The bench corpus cannot support a fit (missing/invalid files)."""


# -- the persisted artifact ---------------------------------------------------


@dataclass(frozen=True)
class Calibration:
    """Fitted constants plus the provenance of the benches behind them."""

    constants: dict[str, float]
    host: dict
    fitted_from: dict[str, str]  # bench file -> host timestamp
    schema: str = CALIBRATION_SCHEMA

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "host": self.host,
            "fitted_from": self.fitted_from,
            "constants": dict(sorted(self.constants.items())),
        }

    def save(self, path: str | Path = DEFAULT_CALIBRATION_PATH) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "Calibration":
        if data.get("schema") != CALIBRATION_SCHEMA:
            raise CalibrationError(
                f"calibration schema {data.get('schema')!r} != "
                f"{CALIBRATION_SCHEMA!r}"
            )
        constants = data.get("constants")
        if not isinstance(constants, dict) or not constants:
            raise CalibrationError("calibration has no constants table")
        unknown = sorted(set(constants) - set(M.CONSTANT_DEFS))
        if unknown:
            raise CalibrationError(f"unknown calibration constants: {unknown}")
        return cls(
            constants={k: float(v) for k, v in constants.items()},
            host=data.get("host", {}),
            fitted_from=data.get("fitted_from", {}),
        )

    def symbol_subs(self) -> dict:
        """``c_*`` symbol -> fitted value, for expression substitution."""
        return {C(name): value for name, value in self.constants.items()}


def load_calibration(path: str | Path | None = None) -> Calibration:
    """Load a calibration file (the committed one by default)."""
    path = Path(path) if path is not None else DEFAULT_CALIBRATION_PATH
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CalibrationError(f"{path}: unreadable calibration ({exc})") from exc
    return Calibration.from_dict(data)


# -- the fit corpus -----------------------------------------------------------


@dataclass(frozen=True)
class FitRow:
    """One measured bench point: where to evaluate the group's expression.

    ``fit=False`` rows are held-out cross-checks: they participate in the
    drift gate but not in the least-squares fit.  ``gate=False`` rows are
    reported but never fail the gate.
    """

    label: str
    subs: dict
    measured: float
    fit: bool = True
    gate: bool = True


@dataclass
class FitGroup:
    """One expression (linear in its constants) with its measured rows."""

    name: str
    expr: sp.Expr
    constants: tuple[str, ...]
    rows: list[FitRow] = field(default_factory=list)
    gate: bool = True
    #: Noise floor on measured values (seconds groups); 0 disables.
    floor: float = MIN_FIT_SECONDS

    def predict(self, constants: dict[str, float], row: FitRow) -> float:
        missing = [c for c in self.constants if c not in constants]
        if missing:
            raise CalibrationError(
                f"{self.name}: calibration is missing constants {missing}"
            )
        expr = self.expr.subs({C(c): constants[c] for c in self.constants})
        return float(expr.subs(row.subs))


def load_benches(bench_dir: str | Path) -> dict[str, dict]:
    """Load + schema-validate the whole calibration corpus."""
    bench_dir = Path(bench_dir)
    benches: dict[str, dict] = {}
    problems: list[str] = []
    for name, filename in BENCH_FILES.items():
        path = bench_dir / filename
        if not path.exists():
            raise CalibrationError(f"missing bench file {path}")
        tree = json.loads(path.read_text())
        problems += validate_bench_tree(tree, name=filename)
        benches[name] = tree
    if problems:
        raise CalibrationError(
            "bench schema violations:\n  " + "\n  ".join(problems)
        )
    return benches


def _fig05_dim() -> int:
    """Exact fig05 CNN parameter count (bench_engine / bench_compression)."""
    from repro.nn.model import build_mnist_cnn

    return int(
        build_mnist_cnn(np.random.default_rng(0), image_size=14)
        .get_flat_params()
        .size
    )


def _creditcard_dim() -> int:
    """Exact creditcard-MLP parameter count (sim scenarios' model)."""
    from repro.nn.model import build_creditcard_mlp

    return int(
        build_creditcard_mlp(np.random.default_rng(0), in_features=30)
        .get_flat_params()
        .size
    )


def _phase_seconds(phases, name: str) -> sp.Expr:
    for ph in phases:
        if ph.name == name:
            return ph.seconds
    raise KeyError(name)


def _train_subs(users, records_total, dim, epochs=1, participation=1.0) -> dict:
    return {
        M.USERS: users,
        M.RECORDS_PER_USER: records_total / users,
        M.DIM: dim,
        M.EPOCHS: epochs,
        M.PARTICIPATION: participation,
    }


def _protocol_subs(section: dict) -> dict:
    return {
        M.SILOS: section["n_silos"],
        M.USERS: section["n_users"],
        M.DIM: section["dim"],
        M.KEY_BITS: section["key_bits"],
        M.MASK_BITS: section["mask_bits"],
        M.PARTICIPATION: 1.0,
    }


def build_fit_groups(benches: dict[str, dict]) -> list[FitGroup]:
    """The full fit/gate corpus: every group's expression and its rows."""
    groups: list[FitGroup] = []
    fig05_dim = _fig05_dim()

    # -- training constants, CNN family (engine bench; the compression
    #    bench's fig05 runs are held-out cross-checks of the same fit).
    cnn = FitGroup(
        "train_cnn",
        _train_phase("cnn", sharded=False).seconds,
        ("train_record_cnn", "train_user_cnn"),
    )
    for key in ("fig05_u50", "fig05_u400"):
        section = benches["engine"].get(key)
        if section:
            cnn.rows.append(
                FitRow(
                    f"engine.{key}.round_seconds",
                    _train_subs(section["n_users"], FIG05_RECORDS, fig05_dim),
                    section["vectorized_seconds"] / section["rounds"],
                )
            )
    plaintext = benches["compression"].get("plaintext_fig05")
    if plaintext:
        records = COMPRESSION_RECORDS[plaintext["scale"]]
        subs = _train_subs(
            plaintext["n_users"], records, plaintext["model_params"]
        )
        for which in ("dense", "compressed"):
            cnn.rows.append(
                FitRow(
                    f"compression.plaintext_fig05.{which}_round_seconds",
                    subs,
                    plaintext[f"{which}_seconds"] / plaintext["rounds"],
                    fit=False,
                )
            )
    groups.append(cnn)

    # -- training constant, dense family + sharded-engine memory
    #    (scaleout bench: one 100k-user DP round through the worker pool).
    scaleout = benches["scaleout"]["scaleout"]
    dense_subs = _train_subs(
        scaleout["sampled_users"], scaleout["total_records"], scaleout["n_params"]
    )
    groups.append(
        FitGroup(
            "train_dense",
            _train_phase("dense", sharded=False).seconds,
            ("train_record_dense",),
            [FitRow("scaleout.round_seconds", dense_subs, scaleout["round_seconds"])],
        )
    )
    mem_subs = {
        **dense_subs,
        M.WORKERS: scaleout["workers"],
        M.SHARD_SIZE: scaleout["shard_size"],
        M.FEATURES: scaleout["features"],
    }
    groups.append(
        FitGroup(
            "engine_memory",
            _train_phase("dense", sharded=True).memory_bytes,
            ("engine_shard_memory",),
            [FitRow("scaleout.overhead_bytes", mem_subs, scaleout["overhead_mb"] * 1e6)],
            floor=0.0,
        )
    )

    # -- scheduler-inclusive per-record constant (sim dropout bench runs
    #    the smoke-scale flaky-silos scenario; participation is the
    #    bench's own measured mean silo availability).
    from repro.sim.scenarios import _scale_params

    dropout = benches["sim"]["dropout_scenario"]
    smoke = _scale_params("smoke")
    groups.append(
        FitGroup(
            "train_sim",
            _train_phase("sim", sharded=False).seconds,
            ("sim_record",),
            [
                FitRow(
                    "sim.dropout_scenario.round_seconds",
                    _train_subs(
                        smoke["n_users"],
                        smoke["n_records"],
                        _creditcard_dim(),
                        participation=dropout["mean_silos_seen"] / smoke["n_silos"],
                    ),
                    dropout["seconds"] / dropout["rounds"],
                )
            ],
        )
    )

    # -- churn + population memory (sim population bench, 1.2M users).
    pop = benches["sim"]["population_scale"]
    groups.append(
        FitGroup(
            "churn",
            C("churn_user") * M.POPULATION,
            ("churn_user",),
            [
                FitRow(
                    "sim.population_scale.churn_round_seconds",
                    {M.POPULATION: pop["n_users"]},
                    pop["churn_seconds"] / pop["churn_rounds"],
                )
            ],
        )
    )
    groups.append(
        FitGroup(
            "population_memory",
            C("population_memory") * M.POPULATION,
            ("population_memory",),
            [
                FitRow(
                    "sim.population_scale.resident_bytes",
                    {M.POPULATION: pop["n_users"]},
                    pop["resident_mb"] * 1e6,
                )
            ],
            floor=0.0,
        )
    )

    # -- protocol phases, one group per (backend, phase), rows across the
    #    bench's scale sections.  Bench phases not in the model (the
    #    reference backend's ~30 ms key exchange next to its 167 s
    #    encryption) are intentionally unmodelled.
    fast = _secure_phases(CryptoSpec(backend="fast"), None)
    ref = _secure_phases(CryptoSpec(backend="reference"), None)
    masked = _secure_phases(CryptoSpec(backend="masked"), None)
    protocol_groups = [
        # (group name, expr, constants, bench phase table, measured keys)
        ("paillier_keygen", _phase_seconds(fast, "keygen"),
         ("paillier_keygen",), "phases_fast", ("keygen",)),
        ("paillier_offline", _phase_seconds(fast, "offline_randomizers"),
         ("paillier_offline",), "phases_fast", ("offline_randomizers",)),
        ("paillier_encrypt", _phase_seconds(fast, "silo_weighted_encryption"),
         ("paillier_encrypt",), "phases_fast", ("silo_weighted_encryption",)),
        ("paillier_decrypt", _phase_seconds(fast, "aggregate_decrypt"),
         ("paillier_decrypt",), "phases_fast", ("aggregate_decrypt",)),
        ("paillier_misc", _phase_seconds(fast, "setup_misc"),
         ("paillier_misc_base", "paillier_misc_silo_user"), "phases_fast",
         ("key_exchange", "blinded_histogram", "encrypt_weights")),
        ("reference_keygen", _phase_seconds(ref, "keygen"),
         ("reference_keygen",), "phases_reference", ("keygen",)),
        ("reference_encrypt", _phase_seconds(ref, "silo_weighted_encryption"),
         ("reference_encrypt",), "phases_reference",
         ("silo_weighted_encryption",)),
        ("reference_encrypt_weights", _phase_seconds(ref, "encrypt_weights"),
         ("reference_encrypt_weights",), "phases_reference",
         ("encrypt_weights",)),
        ("reference_decrypt", _phase_seconds(ref, "aggregate_decrypt"),
         ("reference_decrypt",), "phases_reference", ("aggregate_decrypt",)),
        ("masked_setup", _phase_seconds(masked, "mask_setup"),
         ("masked_setup",), "phases_masked", ("keygen", "key_exchange")),
        ("masked_round", _phase_seconds(masked, "mask_and_upload"),
         ("masked_round",), "phases_masked", ("mask_and_upload",)),
    ]
    for name, expr, constants, table, keys in protocol_groups:
        gate = all(M.CONSTANT_DEFS[c].gate for c in constants)
        group = FitGroup(name, expr, constants, gate=gate)
        for section_name, section in benches["protocol"].items():
            if section_name in ("schema", "host"):
                continue
            phases = section.get(table)
            if not phases:
                continue
            measured = sum(phases.get(k, 0.0) for k in keys)
            group.rows.append(
                FitRow(
                    f"protocol.{section_name}.{name}",
                    _protocol_subs(section),
                    measured,
                )
            )
        groups.append(group)
    return groups


# -- solving ------------------------------------------------------------------


def _nnls(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Non-negative least squares by active-set enumeration (n <= 2)."""
    m, n = A.shape
    best_x, best_resid = None, np.inf
    for mask in range(1, 2**n):
        cols = [j for j in range(n) if mask >> j & 1]
        sol, *_ = np.linalg.lstsq(A[:, cols], b, rcond=None)
        if np.any(sol <= 0):
            continue
        x = np.zeros(n)
        x[cols] = sol
        resid = float(np.linalg.norm(A @ x - b))
        if resid < best_resid:
            best_x, best_resid = x, resid
    if best_x is None:
        raise CalibrationError("no non-negative fit exists for this group")
    return best_x


def solve_group(group: FitGroup) -> dict[str, float]:
    """Weighted NNLS fit of one group's constants from its fit rows."""
    rows = [r for r in group.rows if r.fit and r.measured >= group.floor]
    if not rows:
        raise CalibrationError(
            f"{group.name}: no usable measurements above the "
            f"{group.floor:g} noise floor"
        )
    A = np.array(
        [
            [
                float(sp.diff(group.expr, C(c)).subs(r.subs))
                for c in group.constants
            ]
            for r in rows
        ]
    )
    b = np.array([r.measured for r in rows])
    weights = 1.0 / b  # relative-error weighting
    x = _nnls(A * weights[:, None], b * weights)
    return dict(zip(group.constants, (float(v) for v in x)))


def fit_calibration(
    bench_dir: str | Path,
) -> tuple[Calibration, list[FitGroup]]:
    """Fit every constant from the bench corpus under ``bench_dir``."""
    benches = load_benches(bench_dir)
    groups = build_fit_groups(benches)
    constants: dict[str, float] = {}
    for group in groups:
        constants.update(solve_group(group))
    any_host = next(iter(benches.values()))["host"]
    calibration = Calibration(
        constants=constants,
        host=any_host,
        fitted_from={
            BENCH_FILES[name]: tree["host"]["timestamp"]
            for name, tree in benches.items()
        },
    )
    return calibration, groups


# -- drift + exactness reports ------------------------------------------------


def drift_rows(calibration: Calibration, benches: dict[str, dict]) -> list[dict]:
    """Predicted-vs-measured for every bench row under given constants.

    ``gated`` rows (above the noise floor, in gated groups) must have
    ``ratio`` within ``[1/DRIFT_FACTOR, DRIFT_FACTOR]`` to pass the CI
    gate; the rest are reported for visibility only.
    """
    out = []
    for group in build_fit_groups(benches):
        for row in group.rows:
            predicted = group.predict(calibration.constants, row)
            ratio = predicted / row.measured if row.measured > 0 else np.inf
            gated = group.gate and row.gate and row.measured >= group.floor
            out.append(
                {
                    "group": group.name,
                    "label": row.label,
                    "measured": row.measured,
                    "predicted": predicted,
                    "ratio": ratio,
                    "gated": gated,
                    "ok": (not gated)
                    or (1 / DRIFT_FACTOR <= ratio <= DRIFT_FACTOR),
                }
            )
    return out


def byte_check_rows(benches: dict[str, dict]) -> list[dict]:
    """Exact wire-formula checks: predicted bytes must equal measured.

    No calibration constants are involved -- these pin the byte formulas
    in :mod:`repro.cost.model` to the benches' own accounting.
    """
    rows = []

    def check(label: str, predicted: int, measured: int):
        rows.append(
            {
                "label": label,
                "predicted": int(predicted),
                "measured": int(measured),
                "gated": True,
                "ok": int(predicted) == int(measured),
            }
        )

    for name, section in benches["protocol"].items():
        if name in ("schema", "host"):
            continue
        cipher = int(
            M.ciphertext_bytes_expr().subs({M.KEY_BITS: section["key_bits"]})
        )
        check(
            f"protocol.{name}.per_silo_ciphertext_bytes",
            section["dim"] * cipher,
            section["per_silo_ciphertext_bytes"],
        )
        check(
            f"protocol.{name}.per_silo_mask_bytes",
            section["dim"] * section["mask_bits"] // 8,
            section["per_silo_mask_bytes"],
        )

    plaintext = benches["compression"].get("plaintext_fig05")
    if plaintext:
        dim = plaintext["model_params"]
        per_round = plaintext["rounds"] * FIG05_SILOS
        check(
            "compression.plaintext_fig05.dense_uplink_bytes",
            per_round * 8 * dim,
            plaintext["dense_uplink_bytes"],
        )
        spec = CompressionSpec(
            sparsify=plaintext["spec"]["sparsify"],
            fraction=plaintext["spec"]["fraction"],
            quantize_bits=plaintext["spec"]["quantize_bits"],
            error_feedback=plaintext["spec"]["error_feedback"],
        )
        check(
            "compression.plaintext_fig05.compressed_uplink_bytes",
            per_round * spec.payload_bytes(dim),
            plaintext["compressed_uplink_bytes"],
        )

    randk = benches["compression"].get("secure_randk")
    if randk:
        dim = randk["model_params"]
        cipher = int(
            M.ciphertext_bytes_expr().subs(
                {M.KEY_BITS: SECURE_RANDK["paillier_bits"]}
            )
        )
        per_round = SECURE_RANDK["rounds"] * SECURE_RANDK["silos"]
        check(
            "compression.secure_randk.dense_uplink_bytes",
            per_round * dim * cipher,
            randk["dense_uplink_bytes"],
        )
        kept = CompressionSpec(
            sparsify="randk", fraction=randk["kept_fraction"]
        ).keep_count(dim)
        check(
            "compression.secure_randk.sparse_uplink_bytes",
            per_round * kept * cipher,
            randk["sparse_uplink_bytes"],
        )
    return rows
