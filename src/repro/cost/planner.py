"""Substitute numbers into the cost model; answer capacity questions.

:func:`predict` turns a spec into a :class:`CostReport` -- per-phase
predicted seconds / uplink / downlink bytes / ciphertext elements /
resident memory, plus per-round, setup, and whole-run totals -- and
:func:`solve_max_users` inverts the (monotone-in-users) expressions by
integer bisection: the largest user count whose predicted *per-round*
seconds / uplink bytes (and whole-run resident memory) stay within the
given budgets, holding records-per-user and every other workload knob
fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import sympy as sp

from repro.api.spec import RunSpec
from repro.cost import model as M
from repro.cost import workload
from repro.cost.calibrate import Calibration, load_calibration
from repro.cost.model import METRICS, CostModel, build_cost_model
from repro.cost.workload import CostError

#: Upper bound of the capacity bisection (one trillion users).
MAX_SOLVE_USERS = 10**12


def _evaluate(expr: sp.Expr, subs: dict, context: str) -> float:
    value = sp.N(expr.subs(subs))
    if value.free_symbols:
        missing = ", ".join(sorted(str(s) for s in value.free_symbols))
        raise CostError(
            f"{context}: unresolved symbols [{missing}] -- the spec does "
            f"not pin them down (see docs/cost_model.md's glossary)"
        )
    return float(value)


@dataclass(frozen=True)
class PhasePrediction:
    """One phase's numeric metrics (per occurrence: per round or once)."""

    name: str
    per: str
    values: dict[str, float]


@dataclass(frozen=True)
class CostReport:
    """Everything ``repro cost`` prints, as plain numbers."""

    spec_name: str
    method: str
    backend: str | None
    family: str
    rounds: int
    phases: list[PhasePrediction]
    round_totals: dict[str, float]
    setup_totals: dict[str, float]
    run_totals: dict[str, float]
    subs: dict[str, float] = field(default_factory=dict)
    notes: tuple[str, ...] = ()

    def render(self) -> str:
        """The per-phase breakdown table (fixed-width, repro-CLI style)."""
        header = (
            f"{'phase':<26s} {'per':<6s} {'seconds':>12s} {'uplink':>14s} "
            f"{'downlink':>14s} {'ciphertexts':>12s} {'memory':>12s}"
        )
        lines = [
            f"cost model: {self.spec_name}  (method={self.method}"
            + (f", backend={self.backend}" if self.backend else "")
            + f", family={self.family}, rounds={self.rounds})",
            header,
        ]

        def row(label: str, per: str, values: dict[str, float]) -> str:
            return (
                f"{label:<26s} {per:<6s} {_seconds(values['seconds']):>12s} "
                f"{_bytes(values['uplink_bytes']):>14s} "
                f"{_bytes(values['downlink_bytes']):>14s} "
                f"{_count(values['cipher_elements']):>12s} "
                f"{_bytes(values['memory_bytes']):>12s}"
            )

        for phase in self.phases:
            lines.append(row(phase.name, phase.per, phase.values))
        lines.append(row("total (one round)", "round", self.round_totals))
        lines.append(row("total (setup)", "setup", self.setup_totals))
        lines.append(row(f"total (run, T={self.rounds})", "run", self.run_totals))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _seconds(v: float) -> str:
    return "-" if v == 0 else f"{v:,.3f} s"


def _bytes(v: float) -> str:
    if v == 0:
        return "-"
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if v >= scale:
            return f"{v / scale:,.2f} {unit}"
    return f"{v:,.0f} B"


def _count(v: float) -> str:
    return "-" if v == 0 else f"{v:,.0f}"


def _resolve_calibration(
    spec: RunSpec, calibration: Calibration | None
) -> Calibration:
    if calibration is not None:
        return calibration
    if spec.cost is not None and spec.cost.calibration is not None:
        return load_calibration(spec.cost.calibration)
    return load_calibration()


def predict(
    spec: RunSpec, calibration: Calibration | None = None
) -> CostReport:
    """Numeric per-phase cost prediction of one spec."""
    calibration = _resolve_calibration(spec, calibration)
    model = build_cost_model(spec)
    subs = workload.substitutions(spec)
    full = {**calibration.symbol_subs(), **subs}
    rounds = int(subs[M.ROUNDS])

    phases = [
        PhasePrediction(
            ph.name,
            ph.per,
            {
                metric: _evaluate(
                    getattr(ph, metric), full, f"{ph.name}.{metric}"
                )
                for metric in METRICS
            },
        )
        for ph in model.phases
    ]
    totals = {
        scope: {
            metric: _evaluate(expr_fn(metric), full, f"{scope} {metric}")
            for metric in METRICS
        }
        for scope, expr_fn in (
            ("round", lambda m: model.total(m, "round")),
            ("setup", lambda m: model.total(m, "setup")),
            ("run", model.run_total),
        )
    }
    return CostReport(
        spec_name=spec.name,
        method=model.method,
        backend=model.backend,
        family=model.family,
        rounds=rounds,
        phases=phases,
        round_totals=totals["round"],
        setup_totals=totals["setup"],
        run_totals=totals["run"],
        subs={name: float(sp.N(subs[sym])) for name, sym in M.SYMBOLS.items() if sym in subs},
        notes=model.notes,
    )


# -- capacity inversion -------------------------------------------------------


@dataclass(frozen=True)
class CapacityAnswer:
    """Result of one ``--solve-for users`` question."""

    max_users: int
    #: metric name -> the per-budget individual maximum.
    per_budget: dict[str, int]
    budgets: dict[str, float]

    def render(self) -> str:
        lines = []
        for metric, limit in sorted(self.per_budget.items()):
            budget = self.budgets[metric]
            shown = (
                _seconds(budget) if metric == "round_seconds" else _bytes(budget)
            )
            lines.append(
                f"  {metric} <= {shown}: max {limit:,} users"
                + ("  <- binding" if limit == self.max_users else "")
            )
        return (
            f"max users per round within budget: {self.max_users:,}\n"
            + "\n".join(lines)
        )


def _max_users_for(expr: sp.Expr, budget: float) -> int:
    """Largest integer U with ``expr(U) <= budget`` (expr monotone in U)."""

    def value(u: int) -> float:
        return float(sp.N(expr.subs({M.USERS: u})))

    if value(1) > budget:
        return 0
    hi = 1
    while value(hi) <= budget:
        hi *= 2
        if hi > MAX_SOLVE_USERS:
            return MAX_SOLVE_USERS
    lo = hi // 2  # value(lo) <= budget < value(hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if value(mid) <= budget:
            lo = mid
        else:
            hi = mid
    return lo


def solve_max_users(
    spec: RunSpec,
    budget_seconds: float | None = None,
    budget_uplink_bytes: float | None = None,
    budget_memory_bytes: float | None = None,
    calibration: Calibration | None = None,
) -> CapacityAnswer:
    """Max users per round under per-round second/byte (and memory) budgets.

    Budgets not passed explicitly fall back to the spec's ``[cost]``
    section; at least one budget must be present.  Records per user and
    every other workload number stay fixed while users scale.
    """
    cost = spec.cost
    if budget_seconds is None and cost is not None:
        budget_seconds = cost.budget_seconds
    if budget_uplink_bytes is None and cost is not None:
        budget_uplink_bytes = cost.budget_uplink_bytes
    if budget_memory_bytes is None and cost is not None:
        budget_memory_bytes = cost.budget_memory_bytes
    budgets = {
        name: value
        for name, value in (
            ("round_seconds", budget_seconds),
            ("round_uplink_bytes", budget_uplink_bytes),
            ("memory_bytes", budget_memory_bytes),
        )
        if value is not None
    }
    if not budgets:
        raise CostError(
            "no budget given: pass --budget-seconds / --budget-uplink-bytes "
            "/ --budget-memory-bytes or set them in the spec's [cost] section"
        )
    calibration = _resolve_calibration(spec, calibration)
    model = build_cost_model(spec)
    subs = workload.substitutions(spec)
    subs.pop(M.USERS, None)
    # The population is always the user count (workload.substitutions),
    # so churn and population-memory terms must scale with the answer.
    subs.pop(M.POPULATION, None)
    full = {**calibration.symbol_subs(), **subs}
    exprs = {
        "round_seconds": model.total("seconds", "round"),
        "round_uplink_bytes": model.total("uplink_bytes", "round"),
        "memory_bytes": model.run_total("memory_bytes"),
    }
    per_budget = {}
    for metric, budget in budgets.items():
        expr = exprs[metric].subs(full).subs({M.POPULATION: M.USERS})
        extra = expr.free_symbols - {M.USERS}
        if extra:
            raise CostError(
                f"solve-for users: unresolved symbols "
                f"[{', '.join(sorted(map(str, extra)))}] in {metric}"
            )
        per_budget[metric] = _max_users_for(expr, budget)
    return CapacityAnswer(
        max_users=min(per_budget.values()),
        per_budget=per_budget,
        budgets=budgets,
    )
