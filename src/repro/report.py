"""Reporting utilities: ASCII charts, tables, and history serialisation.

The paper communicates its results as line plots (utility and epsilon vs
round); this module renders the same series in plain text for terminals and
CI logs, and (de)serialises :class:`repro.core.trainer.TrainingHistory`
objects to JSON so experiments can be archived and re-plotted without
re-running.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.core.trainer import (
    CommRecord,
    ParticipationRecord,
    RoundRecord,
    TrainingHistory,
)

#: Characters for one-line sparklines, low to high.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """One-line unicode sparkline of a numeric series (NaN/inf -> '!')."""
    finite = [v for v in values if v is not None and math.isfinite(v)]
    if not finite:
        return "!" * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in values:
        if v is None or not math.isfinite(v):
            out.append("!")
        elif span == 0:
            out.append(_SPARK[0])
        else:
            idx = int((v - lo) / span * (len(_SPARK) - 1))
            out.append(_SPARK[idx])
    return "".join(out)


def ascii_chart(
    series: dict[str, list[float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Multi-series ASCII line chart (each series gets a distinct marker).

    Series are resampled onto ``width`` columns; the y-axis is shared and
    annotated with min/max.  Non-finite points are skipped.
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*o+x#@%&"
    all_values = [
        v for vs in series.values() for v in vs if v is not None and math.isfinite(v)
    ]
    if not all_values:
        raise ValueError("no finite values to plot")
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, values), marker in zip(series.items(), markers):
        n = len(values)
        if n == 0:
            continue
        for col in range(width):
            src = col * (n - 1) / max(width - 1, 1) if n > 1 else 0
            v = values[int(round(src))]
            if v is None or not math.isfinite(v):
                continue
            row = int((v - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{lo:10.4g} +" + "-" * width + "+")
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def histories_chart(
    histories: list[TrainingHistory], value: str = "metric", **kwargs
) -> str:
    """ASCII chart of one series ('metric', 'loss', 'epsilon') per method."""
    series = {h.method: h.series(value) for h in histories}
    return ascii_chart(series, **kwargs)


def format_bytes(n: float) -> str:
    """Human-readable byte count (KB/MB/GB, decimal units)."""
    if n < 1e3:
        return f"{n:.0f}B"
    for unit, scale in (("KB", 1e3), ("MB", 1e6), ("GB", 1e9)):
        if n < 1e3 * scale:
            return f"{n / scale:.1f}{unit}"
    return f"{n / 1e12:.1f}TB"


def comparison_table(histories: list[TrainingHistory]) -> str:
    """Final-round comparison with sparkline trajectories.

    The ``seen`` column reports the mean per-round participation as
    ``<silos>s/<users>u`` (who actually contributed under dropout/churn);
    the ``up/rd`` column reports the mean per-round uplink bytes (the
    compressed wire size when update compression is active).  Histories
    recorded before either log show ``-``.
    """
    lines = [
        f"{'method':<24s} {'metric':>8s} {'loss':>10s} {'eps':>10s} "
        f"{'seen':>12s} {'up/rd':>9s}  trajectory"
    ]
    for h in histories:
        f = h.final
        eps = "   (none)" if f.epsilon is None else f"{f.epsilon:10.3f}"
        summary = h.participation_summary()
        seen = "-" if summary is None else f"{summary[0]:.1f}s/{summary[1]:.1f}u"
        comm = h.comm_summary()
        uplink = "-" if comm is None else format_bytes(comm[0])
        lines.append(
            f"{h.method:<24s} {f.metric:8.4f} {f.loss:10.4f} {eps:>10s} "
            f"{seen:>12s} {uplink:>9s}  {sparkline(h.series('metric'))}"
        )
    # Merged protocol-phase totals (PhaseTimer seconds accumulated by the
    # trainer) -- a footer rather than a column, since the phase set
    # varies by method.
    merged: dict[str, float] = {}
    for h in histories:
        for phase, seconds in getattr(h, "phase_seconds", {}).items():
            merged[phase] = merged.get(phase, 0.0) + float(seconds)
    if merged:
        parts = [f"{phase}={seconds:.3f}s"
                 for phase, seconds in sorted(merged.items(),
                                              key=lambda kv: -kv[1])]
        lines.append("phase totals: " + "  ".join(parts))
    return "\n".join(lines)


# -- JSON serialisation -------------------------------------------------------


def history_to_dict(history: TrainingHistory) -> dict:
    """Plain-dict form of a history (stable schema, version-tagged).

    The participation and wire-traffic logs ride along under optional
    keys, so archives written by older versions (without them) still load.
    """
    data = {
        "schema": "uldp-fl-history/v1",
        "method": history.method,
        "dataset": history.dataset,
        "records": [
            {
                "round": r.round,
                "metric_name": r.metric_name,
                "metric": r.metric,
                "loss": r.loss,
                "epsilon": r.epsilon,
            }
            for r in history.records
        ],
    }
    # Spec provenance (stamped by repro.api.run): the resolved RunSpec
    # snapshot plus its canonical hash make the archive self-describing.
    if history.spec is not None:
        data["spec"] = history.spec
    if history.spec_hash is not None:
        data["spec_hash"] = history.spec_hash
    if history.participation:
        data["participation"] = [
            {"round": p.round, "silos_seen": p.silos_seen, "users_seen": p.users_seen}
            for p in history.participation
        ]
    if history.comm:
        data["comm"] = [
            {
                "round": c.round,
                "uplink_bytes": c.uplink_bytes,
                "downlink_bytes": c.downlink_bytes,
            }
            for c in history.comm
        ]
    if getattr(history, "phase_seconds", None):
        data["phase_seconds"] = {
            phase: float(seconds)
            for phase, seconds in history.phase_seconds.items()
        }
    return data


def history_from_dict(data: dict) -> TrainingHistory:
    """Inverse of :func:`history_to_dict`; validates the schema tag."""
    if data.get("schema") != "uldp-fl-history/v1":
        raise ValueError(f"unknown history schema: {data.get('schema')!r}")
    history = TrainingHistory(
        method=data["method"],
        dataset=data["dataset"],
        spec=data.get("spec"),
        spec_hash=data.get("spec_hash"),
    )
    for r in data["records"]:
        history.records.append(
            RoundRecord(
                round=int(r["round"]),
                metric_name=r["metric_name"],
                metric=float(r["metric"]),
                loss=float(r["loss"]),
                epsilon=None if r["epsilon"] is None else float(r["epsilon"]),
            )
        )
    for p in data.get("participation", []):
        history.participation.append(
            ParticipationRecord(
                round=int(p["round"]),
                silos_seen=int(p["silos_seen"]),
                users_seen=int(p["users_seen"]),
            )
        )
    for c in data.get("comm", []):
        history.comm.append(
            CommRecord(
                round=int(c["round"]),
                uplink_bytes=int(c["uplink_bytes"]),
                downlink_bytes=int(c["downlink_bytes"]),
            )
        )
    for phase, seconds in data.get("phase_seconds", {}).items():
        history.phase_seconds[str(phase)] = float(seconds)
    return history


def save_histories(histories: list[TrainingHistory], path: str | Path) -> None:
    """Write histories to a JSON file."""
    payload = [history_to_dict(h) for h in histories]
    Path(path).write_text(json.dumps(payload, indent=2))


def load_histories(path: str | Path) -> list[TrainingHistory]:
    """Read histories from a JSON file written by :func:`save_histories`."""
    payload = json.loads(Path(path).read_text())
    return [history_from_dict(d) for d in payload]
