"""Reproduction of Uldp-FL (VLDB 2024): cross-silo user-level DP federated learning.

Subpackages
-----------
- :mod:`repro.accounting` -- RDP/DP privacy accounting (Opacus-equivalent).
- :mod:`repro.crypto` -- Paillier, DH, secure aggregation, blinding.
- :mod:`repro.nn` -- numpy neural-network substrate with manual backprop.
- :mod:`repro.data` -- synthetic datasets and user/silo record allocation.
- :mod:`repro.core` -- the FL framework: ULDP-NAIVE/GROUP/AVG/SGD + FedAVG.
- :mod:`repro.compress` -- post-noise update compression (sparsify,
  quantize, error feedback) + wire-byte accounting.
- :mod:`repro.protocol` -- Protocol 1, the private weighting protocol.
- :mod:`repro.api` -- the declarative surface: :class:`RunSpec` config
  trees, :func:`run`, grid sweeps, and the extension registries.

Quickstart (the declarative API; see ``docs/api.md``)::

    import repro

    spec = repro.RunSpec.from_dict({
        "rounds": 5,
        "dataset": {"name": "creditcard", "users": 100, "silos": 5},
        "method": {"name": "uldp-avg-w", "sigma": 5.0},
    })
    result = repro.run(spec)
    print(result.table())

or, the imperative building blocks it resolves to::

    from repro import build_creditcard_benchmark, Trainer, UldpAvg

    fed = build_creditcard_benchmark(n_users=100, n_silos=5, seed=0)
    method = UldpAvg(clip=1.0, noise_multiplier=5.0, local_epochs=2)
    trainer = Trainer(fed, method, rounds=5, seed=0)
    history = trainer.run()
    print(history.summary())

Top-level names are resolved lazily (PEP 562) so that importing one
subpackage does not pull in the whole library.
"""

__version__ = "1.0.0"

# name -> defining submodule, resolved on first attribute access.
_LAZY_EXPORTS = {
    "RunSpec": "repro.api",
    "RunResult": "repro.api",
    "run": "repro.api",
    "run_sweep": "repro.api",
    "register_dataset": "repro.api",
    "register_method": "repro.api",
    "register_model": "repro.api",
    "register_scenario": "repro.api",
    "register_sparsifier": "repro.api",
    "PrivacyAccountant": "repro.accounting",
    "CompressionSpec": "repro.compress",
    "UpdateCompressor": "repro.compress",
    "Default": "repro.core",
    "Trainer": "repro.core",
    "TrainingHistory": "repro.core",
    "UldpAvg": "repro.core",
    "UldpGroup": "repro.core",
    "UldpNaive": "repro.core",
    "UldpSgd": "repro.core",
    "FederatedDataset": "repro.data",
    "build_creditcard_benchmark": "repro.data",
    "build_heartdisease_benchmark": "repro.data",
    "build_mnist_benchmark": "repro.data",
    "build_tcgabrca_benchmark": "repro.data",
    "PrivateWeightingProtocol": "repro.protocol",
    "SecureUldpAvg": "repro.protocol",
    "calibrate_noise_multiplier": "repro.accounting",
    "calibrate_sample_rate": "repro.accounting",
    "run_experiment": "repro.experiments",
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name):
    if name in _LAZY_EXPORTS:
        import importlib

        module = importlib.import_module(_LAZY_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
