"""Participation dynamics: silo dropout, straggler latency, user churn.

Everything here is a small deterministic-given-rng model the scheduler
queries once per round:

- dropout models answer "which silos are up this round?"
- latency models answer "how long does each silo's local work take?"
  (abstract time units; the semi-synchronous policy compares them to its
  deadline, the async policy uses them to order completion events);
- :class:`BandwidthModel` answers "how long does shipping the round's
  uplink payload take, and does it fit the silo's byte budget at all?" --
  the piece that makes update compression interact with stragglers and
  dropout (compressed payloads transmit faster and fit tighter caps);
- :class:`ChurnProcess` drives arrivals/departures on a
  :class:`repro.sim.population.ShardedUserPopulation`.

All models draw exclusively from the rng handed in, so a checkpoint that
restores the scheduler's rng state resumes the exact same dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.population import ShardedUserPopulation


# -- silo dropout --------------------------------------------------------------


@dataclass(frozen=True)
class NoDropout:
    """Every silo is up every round (the idealised paper setting)."""

    def draw(self, t: int, n_silos: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean up-mask for round ``t``."""
        return np.ones(n_silos, dtype=bool)


@dataclass(frozen=True)
class IidSiloDropout:
    """Each silo independently crashes this round with probability p."""

    prob: float

    def __post_init__(self):
        if not 0 <= self.prob < 1:
            raise ValueError("dropout probability must lie in [0, 1)")

    def draw(self, t: int, n_silos: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean up-mask for round ``t`` (True = silo participates)."""
        return rng.random(n_silos) >= self.prob


@dataclass(frozen=True)
class SiloOutageWindows:
    """Scheduled outages: silo s is down for rounds ``windows[s] = (a, b)``.

    Rounds are half-open: the silo misses rounds a, a+1, ..., b-1.  Models
    maintenance windows / regional incidents rather than random churn.
    """

    windows: dict[int, tuple[int, int]]

    def draw(self, t: int, n_silos: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean up-mask for round ``t``."""
        mask = np.ones(n_silos, dtype=bool)
        for silo, (start, stop) in self.windows.items():
            if 0 <= silo < n_silos and start <= t < stop:
                mask[silo] = False
        return mask


# -- straggler latency ---------------------------------------------------------


@dataclass(frozen=True)
class NoLatency:
    """All silos finish instantly (latency 0 -- never misses a deadline)."""

    def draw(self, t: int, n_silos: int, rng: np.random.Generator) -> np.ndarray:
        """Per-silo completion latencies for round ``t``."""
        return np.zeros(n_silos)


@dataclass(frozen=True)
class LogNormalLatency:
    """Heavy-tailed straggler latencies, optionally skewed per silo.

    ``exp(N(mu, sigma^2))`` scaled by the silo's speed factor: the classic
    straggler model -- most silos cluster near ``exp(mu)``, a few take
    multiples of it.  ``silo_speed[s]`` (default all ones) multiplies silo
    s's latency, modelling persistently slow sites.
    """

    median: float = 1.0
    sigma: float = 0.5
    silo_speed: tuple[float, ...] | None = None

    def __post_init__(self):
        if self.median <= 0:
            raise ValueError("median latency must be positive")
        if self.sigma < 0:
            raise ValueError("latency sigma must be non-negative")

    def draw(self, t: int, n_silos: int, rng: np.random.Generator) -> np.ndarray:
        """Per-silo completion latencies for round ``t``."""
        lat = self.median * np.exp(rng.normal(0.0, self.sigma, size=n_silos))
        if self.silo_speed is not None:
            speed = np.asarray(self.silo_speed, dtype=np.float64)
            if len(speed) != n_silos:
                raise ValueError("need one speed factor per silo")
            lat = lat * speed
        return lat


# -- uplink bandwidth ----------------------------------------------------------


@dataclass(frozen=True)
class BandwidthModel:
    """Per-silo uplink links: transmission time plus optional byte caps.

    The scheduler asks the method for its per-silo uplink payload size
    (compressed when a :class:`repro.compress.CompressionSpec` is active,
    dense ``8 * d`` otherwise) and this model turns bytes into round
    dynamics:

    - **transmission time** ``bytes / (rate * silo_rate[s])`` is added to
      the silo's compute latency, so heavy payloads straggle (and miss
      semi-synchronous deadlines) even on fast compute;
    - **byte caps** exclude a silo outright when its payload exceeds the
      per-round uplink budget -- the regime where dense float64 rounds
      simply cannot participate and compression is what admits them.

    Attributes:
        rate: baseline uplink bytes per abstract clock unit.
        silo_rate: optional per-silo rate multipliers (heterogeneous
            links; < 1 = slower silo).
        byte_cap: per-round uplink budget in bytes -- one scalar for a
            federation-wide cap or one value per silo; None disables caps.
    """

    rate: float
    silo_rate: tuple[float, ...] | None = None
    byte_cap: float | tuple[float, ...] | None = None

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("uplink rate must be positive")
        if self.silo_rate is not None and any(r <= 0 for r in self.silo_rate):
            raise ValueError("silo rate multipliers must be positive")
        caps = (
            self.byte_cap
            if isinstance(self.byte_cap, tuple)
            else (self.byte_cap,)
        )
        if self.byte_cap is not None and any(c <= 0 for c in caps):
            raise ValueError("byte caps must be positive")

    def _rates(self, n_silos: int) -> np.ndarray:
        rates = np.full(n_silos, float(self.rate))
        if self.silo_rate is not None:
            multipliers = np.asarray(self.silo_rate, dtype=np.float64)
            if len(multipliers) != n_silos:
                raise ValueError("need one rate multiplier per silo")
            rates = rates * multipliers
        return rates

    def transmission_times(self, payload_bytes: float, n_silos: int) -> np.ndarray:
        """Per-silo clock units spent shipping one uplink payload."""
        if payload_bytes < 0:
            raise ValueError("payload bytes must be non-negative")
        return payload_bytes / self._rates(n_silos)

    def admitted(self, payload_bytes: float, n_silos: int) -> np.ndarray:
        """Boolean mask of silos whose payload fits their byte cap."""
        if self.byte_cap is None:
            return np.ones(n_silos, dtype=bool)
        caps = np.asarray(
            self.byte_cap
            if isinstance(self.byte_cap, tuple)
            else [self.byte_cap] * n_silos,
            dtype=np.float64,
        )
        if len(caps) != n_silos:
            raise ValueError("need one byte cap per silo")
        return payload_bytes <= caps


# -- user churn ----------------------------------------------------------------


@dataclass(frozen=True)
class ChurnProcess:
    """Per-round user arrival/departure rates applied to a population.

    Departures remove active users (their weights are zeroed through the
    round's ``user_mask``); arrivals re-activate departed users.  The rates
    are per-user per-round probabilities.
    """

    departure_rate: float = 0.0
    arrival_rate: float = 0.0

    def __post_init__(self):
        if not 0 <= self.departure_rate <= 1 or not 0 <= self.arrival_rate <= 1:
            raise ValueError("churn rates must lie in [0, 1]")

    def step(
        self, population: ShardedUserPopulation, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Advance churn one round; returns realised (arrivals, departures)."""
        return population.apply_churn(
            rng,
            departure_rate=self.departure_rate,
            arrival_rate=self.arrival_rate,
        )
