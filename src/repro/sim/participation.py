"""Participation dynamics: silo dropout, straggler latency, user churn.

Everything here is a small deterministic-given-rng model the scheduler
queries once per round:

- dropout models answer "which silos are up this round?"
- latency models answer "how long does each silo's local work take?"
  (abstract time units; the semi-synchronous policy compares them to its
  deadline, the async policy uses them to order completion events);
- :class:`ChurnProcess` drives arrivals/departures on a
  :class:`repro.sim.population.ShardedUserPopulation`.

All models draw exclusively from the rng handed in, so a checkpoint that
restores the scheduler's rng state resumes the exact same dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.population import ShardedUserPopulation


# -- silo dropout --------------------------------------------------------------


@dataclass(frozen=True)
class NoDropout:
    """Every silo is up every round (the idealised paper setting)."""

    def draw(self, t: int, n_silos: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean up-mask for round ``t``."""
        return np.ones(n_silos, dtype=bool)


@dataclass(frozen=True)
class IidSiloDropout:
    """Each silo independently crashes this round with probability p."""

    prob: float

    def __post_init__(self):
        if not 0 <= self.prob < 1:
            raise ValueError("dropout probability must lie in [0, 1)")

    def draw(self, t: int, n_silos: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean up-mask for round ``t`` (True = silo participates)."""
        return rng.random(n_silos) >= self.prob


@dataclass(frozen=True)
class SiloOutageWindows:
    """Scheduled outages: silo s is down for rounds ``windows[s] = (a, b)``.

    Rounds are half-open: the silo misses rounds a, a+1, ..., b-1.  Models
    maintenance windows / regional incidents rather than random churn.
    """

    windows: dict[int, tuple[int, int]]

    def draw(self, t: int, n_silos: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean up-mask for round ``t``."""
        mask = np.ones(n_silos, dtype=bool)
        for silo, (start, stop) in self.windows.items():
            if 0 <= silo < n_silos and start <= t < stop:
                mask[silo] = False
        return mask


# -- straggler latency ---------------------------------------------------------


@dataclass(frozen=True)
class NoLatency:
    """All silos finish instantly (latency 0 -- never misses a deadline)."""

    def draw(self, t: int, n_silos: int, rng: np.random.Generator) -> np.ndarray:
        """Per-silo completion latencies for round ``t``."""
        return np.zeros(n_silos)


@dataclass(frozen=True)
class LogNormalLatency:
    """Heavy-tailed straggler latencies, optionally skewed per silo.

    ``exp(N(mu, sigma^2))`` scaled by the silo's speed factor: the classic
    straggler model -- most silos cluster near ``exp(mu)``, a few take
    multiples of it.  ``silo_speed[s]`` (default all ones) multiplies silo
    s's latency, modelling persistently slow sites.
    """

    median: float = 1.0
    sigma: float = 0.5
    silo_speed: tuple[float, ...] | None = None

    def __post_init__(self):
        if self.median <= 0:
            raise ValueError("median latency must be positive")
        if self.sigma < 0:
            raise ValueError("latency sigma must be non-negative")

    def draw(self, t: int, n_silos: int, rng: np.random.Generator) -> np.ndarray:
        """Per-silo completion latencies for round ``t``."""
        lat = self.median * np.exp(rng.normal(0.0, self.sigma, size=n_silos))
        if self.silo_speed is not None:
            speed = np.asarray(self.silo_speed, dtype=np.float64)
            if len(speed) != n_silos:
                raise ValueError("need one speed factor per silo")
            lat = lat * speed
        return lat


# -- user churn ----------------------------------------------------------------


@dataclass(frozen=True)
class ChurnProcess:
    """Per-round user arrival/departure rates applied to a population.

    Departures remove active users (their weights are zeroed through the
    round's ``user_mask``); arrivals re-activate departed users.  The rates
    are per-user per-round probabilities.
    """

    departure_rate: float = 0.0
    arrival_rate: float = 0.0

    def __post_init__(self):
        if not 0 <= self.departure_rate <= 1 or not 0 <= self.arrival_rate <= 1:
            raise ValueError("churn rates must lie in [0, 1]")

    def step(
        self, population: ShardedUserPopulation, rng: np.random.Generator
    ) -> tuple[int, int]:
        """Advance churn one round; returns realised (arrivals, departures)."""
        return population.apply_churn(
            rng,
            departure_rate=self.departure_rate,
            arrival_rate=self.arrival_rate,
        )
