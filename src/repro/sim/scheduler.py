"""The event-driven federation scheduler driving the Trainer step API.

:class:`FederationSimulator` owns a :class:`repro.core.Trainer` and
advances it one *release* at a time under a :class:`SimConfig`:

- synchronous / semi-synchronous policies: each release is one round; the
  scheduler draws the round's dropout mask, latencies, and churn, builds a
  :class:`repro.core.weighting.RoundParticipation`, and calls
  ``trainer.step(participation)`` -- the method itself performs the
  participation-aware weighting and honest accounting.
- buffered-async policy: silos compute against whatever params they last
  pulled; completion events are processed in virtual-clock order and every
  ``buffer_size`` completions the scheduler merges the buffer with
  staleness weights, performs the sensitivity bookkeeping itself (a user
  may appear in several buffered payloads), steps the accountant, and
  records the release through ``trainer.apply_external_round``.

Two independent RNG streams keep the simulation honest and resumable: the
trainer's stream drives training/noise exactly as in the plain loop, the
scheduler's stream drives participation dynamics.  All scheduler state --
virtual clock, carryover gains, pending async jobs, population flags --
serialises through :meth:`FederationSimulator.state_dict`, which is what
makes killed simulations resume bit-identically
(:mod:`repro.sim.checkpoint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compress import CompressionSpec
from repro.core.methods.base import FLMethod, ParticipationSummary
from repro.core.trainer import Trainer, TrainingHistory
from repro.core.weighting import (
    RENORMS,
    RoundParticipation,
    participation_weights,
)
from repro.data.federated import FederatedDataset
from repro.nn.model import Sequential
from repro.obs.metrics import get_registry
from repro.obs.trace import get_recorder
from repro.sim.participation import (
    BandwidthModel,
    ChurnProcess,
    NoDropout,
    NoLatency,
)
from repro.sim.policies import (
    BufferedAsyncPolicy,
    SemiSyncPolicy,
    SyncPolicy,
    staleness_weight,
)
from repro.sim.population import ShardedUserPopulation

#: Seed-sequence tag separating the scheduler's rng stream from training.
_SIM_STREAM = 0x51D0


@dataclass(frozen=True)
class SimConfig:
    """Everything that defines one simulation run (immutable)."""

    rounds: int
    policy: SyncPolicy | SemiSyncPolicy | BufferedAsyncPolicy = field(
        default_factory=SyncPolicy
    )
    renorm: str = "none"
    dropout: object = field(default_factory=NoDropout)
    latency: object = field(default_factory=NoLatency)
    churn: ChurnProcess | None = None
    #: Cap on the carryover gain a returning silo may apply (bounds the
    #: sensitivity blow-up a missed-round make-up can cause).
    carryover_max_gain: float = 2.0
    noise_rescale: bool = True
    eval_every: int = 1
    delta: float = 1e-5
    seed: int = 0
    #: Update-compression recipe handed to the trainer/method (post-noise;
    #: the accounting is untouched).  None = dense payloads.
    compression: CompressionSpec | None = None
    #: Uplink bandwidth model: transmission time joins the compute latency
    #: and byte caps exclude silos whose payload does not fit.
    bandwidth: BandwidthModel | None = None

    def __post_init__(self):
        if self.rounds < 1:
            raise ValueError("need at least one round")
        if self.renorm not in RENORMS:
            raise ValueError(f"renorm must be one of {RENORMS}")
        if self.carryover_max_gain < 1:
            raise ValueError("carryover gain cap must be at least 1")


@dataclass
class _PendingUpdate:
    """One in-flight async silo computation (created at job start)."""

    silo: int
    version: int
    finish: float
    seq: int
    payload: np.ndarray
    users: np.ndarray
    weights: np.ndarray


class FederationSimulator:
    """Runs one FL method under participation dynamics and a release policy."""

    def __init__(
        self,
        fed: FederatedDataset,
        method: FLMethod,
        config: SimConfig,
        model: Sequential | None = None,
        population: ShardedUserPopulation | None = None,
    ):
        self.fed = fed
        self.method = method
        self.config = config
        self.trainer = Trainer(
            fed,
            method,
            rounds=config.rounds,
            model=model,
            delta=config.delta,
            seed=config.seed,
            eval_every=config.eval_every,
            compression=config.compression,
        )
        self.sim_rng = np.random.default_rng([config.seed, _SIM_STREAM])
        self.population = (
            population
            if population is not None
            else ShardedUserPopulation(fed.n_users, seed=config.seed)
        )
        if isinstance(config.policy, BufferedAsyncPolicy):
            if getattr(method, "user_sample_rate", None):
                raise ValueError(
                    "buffered-async simulation does not compose with "
                    "server-side user sub-sampling"
                )
            if not hasattr(method, "silo_contribution"):
                raise TypeError(
                    "buffered-async aggregation needs the per-silo step API "
                    "(UldpAvg and subclasses)"
                )
            # The trainer above already ran prepare(), so the method's
            # active_compression is the effective (trainer-override) spec.
            spec = getattr(method, "active_compression", None)
            if spec is not None and not spec.is_identity:
                raise ValueError(
                    "lossy update compression is not supported with "
                    "buffered-async aggregation (payloads bypass the "
                    "method's round pipeline)"
                )
            if config.bandwidth is not None:
                raise ValueError(
                    "bandwidth models are not supported with buffered-async "
                    "aggregation (transmission time and byte caps are only "
                    "applied by the sync/semi-sync round loop)"
                )
        #: Virtual wall-clock (abstract latency units).
        self.clock = 0.0
        #: Optional externally-observed silo liveness (boolean, one entry
        #: per silo) ANDed into each sync-like round's dropout draw.  The
        #: networked runtime (:mod:`repro.net`) writes real timeout-detected
        #: dropouts here before each step; None (the default) leaves the
        #: simulated dynamics untouched.  Transient -- not checkpointed.
        self.external_dropout: np.ndarray | None = None
        #: Carryover gain each silo would re-enter with (1 = fully caught up).
        self.carry_gain = np.ones(fed.n_silos)
        #: Structured per-release log (policy decisions, renorm, roster).
        self.round_log: list[dict] = []
        # Async event state.
        self._pending: list[_PendingUpdate] = []
        self._buffer: list[_PendingUpdate] = []
        self._version = 0
        self._seq = 0

    # -- convenience ---------------------------------------------------------

    @property
    def history(self) -> TrainingHistory:
        """The trainer's (live) history."""
        return self.trainer.history

    @property
    def done(self) -> bool:
        """Whether all configured releases have happened."""
        return self.trainer.done

    @property
    def rounds_completed(self) -> int:
        """Releases recorded so far."""
        return self.trainer.round_index

    def run(self, stop_after: int | None = None) -> TrainingHistory:
        """Advance until done (or until ``stop_after`` releases happened)."""
        while not self.done:
            if stop_after is not None and self.rounds_completed >= stop_after:
                break
            self.step()
        return self.history

    # -- one release ---------------------------------------------------------

    def step(self) -> None:
        """Advance the simulation by exactly one recorded release."""
        if self.done:
            raise RuntimeError("simulation already completed")
        if isinstance(self.config.policy, BufferedAsyncPolicy):
            self._step_async()
        else:
            self._step_sync_like()

    def _user_mask(self) -> np.ndarray | None:
        """Current user activity flags (None when churn is disabled)."""
        if self.config.churn is None:
            return None
        return self.population.active_mask(0, self.fed.n_users)

    def _uplink_payload_bytes(self) -> int:
        """One silo's per-round uplink payload size.

        Methods that know their wire format report it themselves
        (compressed plaintext for the ULDP-AVG family, ciphertext bytes
        for the secure protocol); everything else is charged the dense
        float64 default.
        """
        reporter = getattr(self.method, "uplink_payload_bytes", None)
        if callable(reporter):
            return int(reporter())
        return self.trainer.params.size * 8

    def _step_sync_like(self) -> None:
        """One synchronous or semi-synchronous round."""
        t = self.rounds_completed
        config = self.config
        if config.churn is not None:
            config.churn.step(self.population, self.sim_rng)
        up = config.dropout.draw(t, self.fed.n_silos, self.sim_rng)
        observed_down = 0
        if self.external_dropout is not None:
            observed = np.asarray(self.external_dropout, dtype=bool)
            up = up & observed
            observed_down = int((~observed).sum())
        # Silos alive here received the round's model broadcast: dropout
        # (and an observed outage) keeps a silo from even fetching the
        # model, but deadline misses and bandwidth rejection happen
        # *after* the download, so those silos still consumed downlink.
        broadcast = up.copy()
        latency = config.latency.draw(t, self.fed.n_silos, self.sim_rng)
        payload_bytes = None
        if config.bandwidth is not None:
            # Uplink transmission joins the compute latency, and silos
            # whose payload blows the byte cap cannot contribute at all --
            # the lever compression moves.
            payload_bytes = self._uplink_payload_bytes()
            latency = latency + config.bandwidth.transmission_times(
                payload_bytes, self.fed.n_silos
            )
            up = up & config.bandwidth.admitted(payload_bytes, self.fed.n_silos)
        if isinstance(config.policy, SemiSyncPolicy):
            included = up & (latency <= config.policy.deadline)
            self.clock += config.policy.deadline
        else:
            included = up
            self.clock += float(latency[up].max(initial=0.0))
        gains = None
        if config.renorm == "carryover":
            gains = np.minimum(self.carry_gain, config.carryover_max_gain)
        participation = RoundParticipation(
            silo_mask=included,
            user_mask=self._user_mask(),
            silo_gain=gains,
            renorm=config.renorm,
            noise_rescale=config.noise_rescale,
            broadcast_mask=broadcast,
        )
        self.trainer.step(participation)
        # A silo that contributed is caught up; one that missed owes one
        # more round of weight.
        self.carry_gain[included] = 1.0
        self.carry_gain[~included] += 1.0
        entry = {
            "round": t + 1,
            "policy": config.policy.name,
            "renorm": config.renorm,
            "silos_up": int(up.sum()),
            "silos_included": int(included.sum()),
            "clock": self.clock,
        }
        if payload_bytes is not None:
            entry["payload_bytes"] = int(payload_bytes)
        if observed_down:
            # Only recorded when a real (observed) dropout occurred, so an
            # ideal-network serve keeps a log bit-identical to in-process.
            entry["silos_observed_down"] = observed_down
        self.round_log.append(entry)
        self._observe_release(entry)

    # -- buffered-async ------------------------------------------------------

    def _async_round_weights(self) -> np.ndarray:
        """The weight matrix a newly-started async job trains against."""
        assert getattr(self.method, "weights", None) is not None
        participation = RoundParticipation(
            silo_mask=np.ones(self.fed.n_silos, dtype=bool),
            user_mask=self._user_mask(),
            renorm="none",
        )
        return participation_weights(self.method.weights, participation)

    def _async_noise_std(self) -> float:
        """Per-payload noise std: a full buffer carries total std sigma*C."""
        policy = self.config.policy
        assert isinstance(policy, BufferedAsyncPolicy)
        sigma = getattr(self.method, "noise_multiplier", 0.0)
        clip = getattr(self.method, "clip", 1.0)
        return float(sigma * clip / np.sqrt(policy.buffer_size))

    def _start_job(self, silo: int) -> None:
        """Silo pulls current params and begins local work."""
        t = self.rounds_completed
        latency = float(
            self.config.latency.draw(t, self.fed.n_silos, self.sim_rng)[silo]
        )
        payload, users, weights = self.method.silo_contribution(
            t,
            self.trainer.params,
            silo,
            self._async_round_weights(),
            self._async_noise_std(),
        )
        self._pending.append(
            _PendingUpdate(
                silo=silo,
                version=self._version,
                finish=self.clock + max(latency, 1e-9),
                seq=self._seq,
                payload=payload,
                users=users,
                weights=weights,
            )
        )
        self._seq += 1

    def _step_async(self) -> None:
        """Process completion events until the next buffered release."""
        policy = self.config.policy
        assert isinstance(policy, BufferedAsyncPolicy)
        # Churn advances once per release, matching the sync policies'
        # per-round rate semantics (jobs started during this release window
        # see the post-churn roster).
        if self.config.churn is not None:
            self.config.churn.step(self.population, self.sim_rng)
        if not self._pending and not self._buffer:
            # Cold start: every up silo begins from the initial params.
            up = self.config.dropout.draw(0, self.fed.n_silos, self.sim_rng)
            for silo in np.flatnonzero(up):
                self._start_job(int(silo))
            if not self._pending:
                raise RuntimeError("async simulation has no live silos")
        while len(self._buffer) < policy.buffer_size:
            nxt = min(self._pending, key=lambda u: (u.finish, u.seq))
            self._pending.remove(nxt)
            self.clock = nxt.finish
            staleness = self._version - nxt.version
            if staleness > policy.max_staleness:
                # Too stale to merge: drop the payload, restart the silo.
                self._start_job(nxt.silo)
                continue
            self._buffer.append(nxt)
            self._start_job(nxt.silo)
        self._release_buffer()

    def _release_buffer(self) -> None:
        """Merge the buffered payloads and record one release."""
        policy = self.config.policy
        assert isinstance(policy, BufferedAsyncPolicy)
        merged = self._buffer[: policy.buffer_size]
        self._buffer = self._buffer[policy.buffer_size :]
        discounts = np.array(
            [
                staleness_weight(self._version - u.version, policy.staleness_exponent)
                for u in merged
            ]
        )
        aggregate = np.zeros_like(self.trainer.params)
        realised: dict[int, float] = {}
        for discount, update in zip(discounts, merged):
            aggregate += discount * update.payload
            for user, w in zip(update.users, update.weights):
                realised[int(user)] = realised.get(int(user), 0.0) + discount * float(w)
        sensitivity = max(realised.values(), default=0.0)
        # Each payload carries noise std sigma*C/sqrt(K); the discounted sum
        # has std sigma*C*sqrt(mean(discount^2)).
        noise_scale = float(np.sqrt(np.mean(discounts**2)))
        accountant = getattr(self.method, "accountant", None)
        if accountant is not None and self.method.is_private:
            accountant.step_release(
                getattr(self.method, "noise_multiplier", 0.0),
                sensitivity=sensitivity,
                noise_scale=noise_scale,
            )
        params = self.method.apply_aggregate(
            self.trainer.params, aggregate, n_updates=len(merged)
        )
        self._version += 1
        t = self.rounds_completed
        self.trainer.apply_external_round(
            params,
            participation_summary=ParticipationSummary(
                silos_seen=len({u.silo for u in merged}),
                users_seen=len(realised),
            ),
        )
        entry = {
            "round": t + 1,
            "policy": policy.name,
            "renorm": "staleness",
            "silos_included": len({u.silo for u in merged}),
            "mean_staleness": float(
                np.mean([self._version - 1 - u.version for u in merged])
            ),
            "sensitivity": sensitivity,
            "noise_scale": noise_scale,
            "clock": self.clock,
        }
        self.round_log.append(entry)
        self._observe_release(entry)

    def _observe_release(self, entry: dict) -> None:
        """Mirror one round-log entry into the trace and metrics layers."""
        get_recorder().event("sim_release", **entry)
        get_registry().counter(
            "sim_releases_total",
            help="Simulator round releases (sync rounds or async buffers).",
        ).inc()
        get_registry().gauge(
            "sim_clock_seconds",
            help="The simulator's virtual clock.", unit="seconds",
        ).set(entry.get("clock", 0.0))

    # -- checkpoint serialisation --------------------------------------------

    def state_dict(self) -> dict:
        """Complete dynamic state; restoring it resumes bit-identically.

        The *static* configuration (dataset, method hyper-parameters,
        :class:`SimConfig`) is not included -- a resume reconstructs the
        simulator through the same scenario/constructor and then loads
        this state (see :mod:`repro.sim.checkpoint`).
        """
        trainer = self.trainer
        return {
            "schema": "uldp-fl-sim/v1",
            "round": trainer.round_index,
            "params": trainer.params.copy(),
            "trainer_rng": trainer.rng.bit_generator.state,
            "sim_rng": self.sim_rng.bit_generator.state,
            "clock": self.clock,
            "carry_gain": self.carry_gain.copy(),
            "round_log": [dict(r) for r in self.round_log],
            "history": {
                "records": [
                    [r.round, r.metric_name, r.metric, r.loss, r.epsilon]
                    for r in trainer.history.records
                ],
                "round_seconds": list(trainer.history.round_seconds),
                "participation": [
                    [p.round, p.silos_seen, p.users_seen]
                    for p in trainer.history.participation
                ],
                "comm": [
                    [c.round, c.uplink_bytes, c.downlink_bytes]
                    for c in trainer.history.comm
                ],
            },
            "compressor": (
                self.method.compressor.state_dict()
                if getattr(self.method, "compressor", None) is not None
                else None
            ),
            "accountant": (
                self.method.accountant.state_dict()
                if getattr(self.method, "accountant", None) is not None
                else None
            ),
            # Secure methods carry live protocol state (e.g. the masked
            # backend's round counter, which seeds the per-round masks);
            # None for every other method.
            "protocol": (
                self.method.protocol_state_dict()
                if hasattr(self.method, "protocol_state_dict")
                else None
            ),
            "population": self.population.state_dict(),
            "async": {
                "version": self._version,
                "seq": self._seq,
                "pending": [
                    {
                        "silo": u.silo,
                        "version": u.version,
                        "finish": u.finish,
                        "seq": u.seq,
                        "payload": u.payload.copy(),
                        "users": u.users.copy(),
                        "weights": u.weights.copy(),
                    }
                    for u in self._pending
                ],
                "buffer": [
                    {
                        "silo": u.silo,
                        "version": u.version,
                        "finish": u.finish,
                        "seq": u.seq,
                        "payload": u.payload.copy(),
                        "users": u.users.copy(),
                        "weights": u.weights.copy(),
                    }
                    for u in self._buffer
                ],
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (see checkpoint module)."""
        from repro.core.trainer import CommRecord, ParticipationRecord, RoundRecord

        if state.get("schema") != "uldp-fl-sim/v1":
            raise ValueError(f"unknown simulator schema: {state.get('schema')!r}")
        trainer = self.trainer
        trainer._round = int(state["round"])
        trainer._params = np.asarray(state["params"], dtype=np.float64).copy()
        trainer.model.set_flat_params(trainer.params)
        trainer.rng.bit_generator.state = state["trainer_rng"]
        self.sim_rng.bit_generator.state = state["sim_rng"]
        self.clock = float(state["clock"])
        self.carry_gain = np.asarray(state["carry_gain"], dtype=np.float64).copy()
        self.round_log = [dict(r) for r in state["round_log"]]
        history = trainer.history
        history.records.clear()
        for rnd, name, metric, loss, eps in state["history"]["records"]:
            history.records.append(
                RoundRecord(
                    round=int(rnd),
                    metric_name=name,
                    metric=float(metric),
                    loss=float(loss),
                    epsilon=None if eps is None else float(eps),
                )
            )
        history.round_seconds[:] = [float(s) for s in state["history"]["round_seconds"]]
        history.participation[:] = [
            ParticipationRecord(int(r), int(s), int(u))
            for r, s, u in state["history"]["participation"]
        ]
        # Optional key: snapshots written before the comm ledger load fine.
        history.comm[:] = [
            CommRecord(int(r), int(u), int(d))
            for r, u, d in state["history"].get("comm", [])
        ]
        compressor_state = state.get("compressor")
        compressor = getattr(self.method, "compressor", None)
        if (compressor_state is None) != (compressor is None):
            # Either direction of this mismatch breaks bit-identical
            # resume: restoring fresh residuals/RNG into a compressing run
            # is as wrong as dropping saved state on the floor.
            raise ValueError(
                "checkpoint and rebuilt simulator disagree about update "
                "compression; was the scenario's compression spec changed?"
            )
        if compressor_state is not None:
            compressor.load_state(compressor_state)
        if state["accountant"] is not None:
            from repro.accounting import PrivacyAccountant

            restored = PrivacyAccountant.from_state(state["accountant"])
            acct = self.method.accountant
            acct.alphas = restored.alphas
            acct._rhos = restored._rhos
            acct.history = restored.history
            acct.releases = restored.releases
        # Optional key: snapshots written before secure-protocol state load
        # fine (they never held a secure method).
        protocol_state = state.get("protocol")
        if protocol_state is not None:
            if not hasattr(self.method, "load_protocol_state"):
                raise ValueError(
                    "checkpoint carries secure-protocol state but the "
                    "rebuilt method cannot restore it; was the scenario's "
                    "method changed?"
                )
            self.method.load_protocol_state(protocol_state)
        self.population.load_state(state["population"])
        async_state = state["async"]
        self._version = int(async_state["version"])
        self._seq = int(async_state["seq"])

        def _updates(entries) -> list[_PendingUpdate]:
            return [
                _PendingUpdate(
                    silo=int(u["silo"]),
                    version=int(u["version"]),
                    finish=float(u["finish"]),
                    seq=int(u["seq"]),
                    payload=np.asarray(u["payload"], dtype=np.float64).copy(),
                    users=np.asarray(u["users"], dtype=np.int64).copy(),
                    weights=np.asarray(u["weights"], dtype=np.float64).copy(),
                )
                for u in entries
            ]

        self._pending = _updates(async_state["pending"])
        self._buffer = _updates(async_state["buffer"])
