"""Aggregation policies: synchronous, semi-synchronous, buffered-async.

A policy decides *when* the server releases an aggregate and *whose*
updates enter it:

- :class:`SyncPolicy` -- the oracle: the server waits for every up silo,
  however slow.  With zero dropout this reproduces the plain
  :class:`repro.core.Trainer` bit-for-bit.
- :class:`SemiSyncPolicy` -- the server closes the round at a fixed
  deadline; up silos whose latency exceeds it are excluded (stragglers are
  dropped, not crashed -- they are back next round).
- :class:`BufferedAsyncPolicy` -- FedBuff-style: silos compute against
  whatever global params they last pulled; the server buffers finished
  updates and releases a staleness-weighted merge every ``buffer_size``
  arrivals.  :func:`staleness_weight` is the polynomial discount
  ``(1 + staleness) ** -exponent`` applied to a payload computed
  ``staleness`` versions ago.

The scheduler (:mod:`repro.sim.scheduler`) owns the event loop; policies
are pure configuration plus the staleness discount.
"""

from __future__ import annotations

from dataclasses import dataclass


def staleness_weight(staleness: int, exponent: float = 0.5) -> float:
    """Polynomial staleness discount ``(1 + staleness) ** -exponent``.

    Staleness counts how many global model versions were released between
    the params a payload was computed against and the merge; fresh updates
    (staleness 0) keep weight 1.
    """
    if staleness < 0:
        raise ValueError("staleness must be non-negative")
    if exponent < 0:
        raise ValueError("staleness exponent must be non-negative")
    return float((1.0 + staleness) ** -exponent)


@dataclass(frozen=True)
class SyncPolicy:
    """Wait for all surviving silos, however late (the oracle policy)."""

    name: str = "sync"


@dataclass(frozen=True)
class SemiSyncPolicy:
    """Close each round at ``deadline``; late silos sit the round out."""

    deadline: float = 1.5
    name: str = "semi-sync"

    def __post_init__(self):
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")


@dataclass(frozen=True)
class BufferedAsyncPolicy:
    """FedBuff-style buffered asynchronous aggregation.

    The server releases once every ``buffer_size`` silo completions, each
    payload discounted by :func:`staleness_weight` at ``staleness_exponent``.
    ``max_staleness`` drops payloads older than that many versions outright
    (their silos immediately restart from fresh params).
    """

    buffer_size: int = 3
    staleness_exponent: float = 0.5
    max_staleness: int = 16
    name: str = "async"

    def __post_init__(self):
        if self.buffer_size < 1:
            raise ValueError("buffer size must be positive")
        if self.staleness_exponent < 0:
            raise ValueError("staleness exponent must be non-negative")
        if self.max_staleness < 1:
            raise ValueError("max staleness must be positive")
