"""Sharded, lazily-materialised user populations (millions of users).

The cross-silo *training* datasets of the paper have hundreds of users, but
the ROADMAP's target deployments track federations of millions -- far more
state than should ever be resident eagerly.  :class:`ShardedUserPopulation`
keeps two allocation arrays per user -- an activity flag and a Zipf record
count -- split into fixed-size shards that are materialised only when first
touched, each backed by a memory-mapped file so a million-user federation
costs a few file handles until (and unless) the simulation looks at it.

Churn (user arrivals and departures) mutates the activity flags in place
through :meth:`ShardedUserPopulation.apply_churn`; the per-shard active
counters make global statistics O(#shards).  Checkpointing serialises only
the materialised shards (:meth:`state_dict` / :meth:`load_state`), so a
resumed simulation sees bit-identical population state.

The population also feeds the sharded training engine directly:
:meth:`ShardedUserPopulation.shard_job_source` packages a slice of sampled
user ids into a *loader descriptor* -- record counts plus a reference to
:func:`materialise_shard_jobs` -- so each worker process synthesises only
its own shard's records (deterministic in ``(data_seed, user_id)``) and the
parent never holds the full training set.  See docs/scaleout.md.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

#: Default users per shard (2**18 = 262144: a 1M-user population is 4 shards).
DEFAULT_SHARD_SIZE = 1 << 18


class ShardedUserPopulation:
    """A user population of arbitrary size with lazy memory-mapped shards.

    Args:
        n_users: total population size (>= 1; millions are cheap).
        shard_size: users per shard; shards materialise independently.
        backing_dir: directory for the memory-mapped shard files (a
            temporary directory when None).  Small populations (a single
            shard below ``memmap_threshold``) stay in plain RAM arrays.
        record_alpha: Zipf exponent of the per-user record counts
            (paper's alpha_user = 0.5).  Each shard draws an independent
            multinomial over its own Zipf weights, sized by the shard's
            share of the population-wide Zipf mass -- the per-shard-seeded
            cousin of :func:`repro.data.allocation.sharded_zipf_counts`
            (which splits one rng stream sequentially and is exactly
            multinomial; here shard totals are deterministic expectations
            instead, the price of materialising shards in any order).
        expected_records: total record mass spread over the population by
            the Zipf law (defaults to ``10 * n_users``).
        seed: base seed; shard materialisation is deterministic in
            (seed, shard index) so lazily touching shards in any order
            yields identical contents.
        memmap_threshold: populations at or below this size skip the
            file-backed path (tests and the per-dataset populations).
    """

    def __init__(
        self,
        n_users: int,
        shard_size: int = DEFAULT_SHARD_SIZE,
        backing_dir: str | Path | None = None,
        record_alpha: float = 0.5,
        expected_records: int | None = None,
        seed: int = 0,
        memmap_threshold: int = 1 << 16,
    ):
        if n_users < 1:
            raise ValueError("need at least one user")
        if shard_size < 1:
            raise ValueError("shard size must be positive")
        self.n_users = int(n_users)
        self.shard_size = int(shard_size)
        self.record_alpha = float(record_alpha)
        self.expected_records = (
            int(expected_records) if expected_records is not None else 10 * self.n_users
        )
        self.seed = int(seed)
        self.n_shards = (self.n_users + self.shard_size - 1) // self.shard_size
        self._use_memmap = self.n_users > memmap_threshold
        self._backing_dir: Path | None = None
        if self._use_memmap:
            if backing_dir is None:
                backing_dir = tempfile.mkdtemp(prefix="uldp-population-")
            self._backing_dir = Path(backing_dir)
            self._backing_dir.mkdir(parents=True, exist_ok=True)
        # Shard slots: None until materialised.
        self._active: list[np.ndarray | None] = [None] * self.n_shards
        self._records: list[np.ndarray | None] = [None] * self.n_shards
        # Per-shard active counts; lazily-set to the shard size on
        # materialisation (everyone starts active).
        self._active_counts = np.zeros(self.n_shards, dtype=np.int64)
        self._materialised = np.zeros(self.n_shards, dtype=bool)
        self._shard_masses: np.ndarray | None = None
        #: Cumulative churn statistics (arrivals, departures).
        self.total_arrivals = 0
        self.total_departures = 0

    # -- shard plumbing ------------------------------------------------------

    def _shard_bounds(self, shard: int) -> tuple[int, int]:
        start = shard * self.shard_size
        return start, min(start + self.shard_size, self.n_users)

    def _shard_len(self, shard: int) -> int:
        start, stop = self._shard_bounds(shard)
        return stop - start

    def _alloc(self, shard: int, name: str, dtype, fill) -> np.ndarray:
        """Allocate one shard array (memory-mapped above the threshold)."""
        size = self._shard_len(shard)
        if not self._use_memmap:
            return np.full(size, fill, dtype=dtype)
        assert self._backing_dir is not None
        path = self._backing_dir / f"{name}_{shard:05d}.mm"
        arr = np.memmap(path, dtype=dtype, mode="w+", shape=(size,))
        arr[:] = fill
        return arr

    def _materialise(self, shard: int) -> None:
        """Create the shard's allocation arrays on first touch."""
        if self._materialised[shard]:
            return
        size = self._shard_len(shard)
        self._active[shard] = self._alloc(shard, "active", np.bool_, True)
        records = self._alloc(shard, "records", np.int64, 0)
        # Deterministic in (seed, shard): the shard's slice of a population
        # -wide Zipf allocation, so touch order never changes contents.
        rng = np.random.default_rng([self.seed, shard])
        shard_mass, total_mass = self._zipf_masses(shard)
        expected = self.expected_records * shard_mass / total_mass
        start, _ = self._shard_bounds(shard)
        ranks = np.arange(start + 1, start + size + 1, dtype=np.float64)
        w = ranks**-self.record_alpha
        records[:] = rng.multinomial(int(round(expected)), w / w.sum())
        self._records[shard] = records
        self._active_counts[shard] = size
        self._materialised[shard] = True

    def _zipf_masses(self, shard: int) -> tuple[float, float]:
        """(shard's Zipf mass, total population mass); streamed then cached."""
        if self._shard_masses is None:
            masses = np.empty(self.n_shards, dtype=np.float64)
            for s in range(self.n_shards):
                start, stop = self._shard_bounds(s)
                ranks = np.arange(start + 1, stop + 1, dtype=np.float64)
                masses[s] = (ranks**-self.record_alpha).sum()
            self._shard_masses = masses
        return float(self._shard_masses[shard]), float(self._shard_masses.sum())

    # -- public surface ------------------------------------------------------

    @property
    def n_materialised_shards(self) -> int:
        """How many shards have been touched (and so hold real arrays)."""
        return int(self._materialised.sum())

    @property
    def resident_bytes(self) -> int:
        """Bytes of allocation arrays actually materialised so far."""
        total = 0
        for arrs in (self._active, self._records):
            for a in arrs:
                if a is not None:
                    total += a.nbytes
        return total

    @property
    def n_active(self) -> int:
        """Currently active users (unmaterialised shards are fully active)."""
        lazy = sum(
            self._shard_len(s) for s in range(self.n_shards) if not self._materialised[s]
        )
        return int(self._active_counts[self._materialised].sum()) + int(lazy)

    def active_mask(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Boolean activity flags for users ``start..stop`` (materialises)."""
        stop = self.n_users if stop is None else stop
        if not 0 <= start <= stop <= self.n_users:
            raise ValueError("user range out of bounds")
        out = np.empty(stop - start, dtype=bool)
        pos = 0
        for shard in range(start // self.shard_size, self.n_shards):
            s_start, s_stop = self._shard_bounds(shard)
            if s_start >= stop:
                break
            self._materialise(shard)
            lo = max(start, s_start) - s_start
            hi = min(stop, s_stop) - s_start
            active = self._active[shard]
            assert active is not None
            out[pos : pos + hi - lo] = active[lo:hi]
            pos += hi - lo
        return out

    def record_counts(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Per-user Zipf record counts for a user range (materialises)."""
        stop = self.n_users if stop is None else stop
        if not 0 <= start <= stop <= self.n_users:
            raise ValueError("user range out of bounds")
        out = np.empty(stop - start, dtype=np.int64)
        pos = 0
        for shard in range(start // self.shard_size, self.n_shards):
            s_start, s_stop = self._shard_bounds(shard)
            if s_start >= stop:
                break
            self._materialise(shard)
            lo = max(start, s_start) - s_start
            hi = min(stop, s_stop) - s_start
            records = self._records[shard]
            assert records is not None
            out[pos : pos + hi - lo] = records[lo:hi]
            pos += hi - lo
        return out

    def record_counts_for(self, user_ids) -> np.ndarray:
        """Record counts for *scattered* user ids (materialises their shards).

        The range form :meth:`record_counts` suits dense scans; this one
        serves sampled-user workflows (``sample_users`` returns sorted but
        non-contiguous ids) and touches only the shards the ids land in.
        """
        ids = np.asarray(user_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n_users):
            raise ValueError("user id out of bounds")
        out = np.empty(ids.shape, dtype=np.int64)
        shards = ids // self.shard_size
        for shard in np.unique(shards):
            self._materialise(int(shard))
            records = self._records[int(shard)]
            assert records is not None
            mask = shards == shard
            start, _ = self._shard_bounds(int(shard))
            out[mask] = records[ids[mask] - start]
        return out

    def shard_job_source(
        self,
        user_ids,
        data_seed: int,
        n_features: int,
        min_records: int = 1,
    ) -> dict:
        """A loader descriptor for :func:`repro.core.engine.make_shard_task`.

        Instead of shipping materialised :class:`~repro.core.engine.LocalJob`
        lists to the workers (which would put every sampled user's records in
        the parent at once), the task carries this descriptor and each worker
        calls :func:`materialise_shard_jobs` on its own slice.  Record counts
        come from the population's Zipf allocation, floored at
        ``min_records`` so every sampled user trains on something.
        """
        ids = np.asarray(user_ids, dtype=np.int64)
        counts = np.maximum(self.record_counts_for(ids), int(min_records))
        return {
            "loader": "repro.sim.population:materialise_shard_jobs",
            "spec": {
                "user_ids": ids,
                "record_counts": counts,
                "data_seed": int(data_seed),
                "n_features": int(n_features),
            },
        }

    def apply_churn(
        self,
        rng: np.random.Generator,
        departure_rate: float = 0.0,
        arrival_rate: float = 0.0,
    ) -> tuple[int, int]:
        """One churn step: departures among active, arrivals among inactive.

        Each shard flips ``Binomial(n, rate)`` uniformly-chosen flags.  The
        flip *counts* are drawn from the shard's known active totals (an
        untouched shard is fully active by construction), so a shard is
        only materialised when a flip actually lands in it -- laziness
        survives churn, and the rng stream is identical either way because
        materialisation never draws from ``rng``.  Returns the realised
        (arrivals, departures).
        """
        if not 0 <= departure_rate <= 1 or not 0 <= arrival_rate <= 1:
            raise ValueError("churn rates must lie in [0, 1]")
        arrivals = departures = 0
        for shard in range(self.n_shards):
            if departure_rate == 0.0 and arrival_rate == 0.0:
                break
            size = self._shard_len(shard)
            n_active = (
                int(self._active_counts[shard]) if self._materialised[shard] else size
            )
            n_inactive = size - n_active
            if departure_rate > 0 and n_active > 0:
                k = int(rng.binomial(n_active, departure_rate))
                if k:
                    self._materialise(shard)
                    active = self._active[shard]
                    assert active is not None
                    idx = np.flatnonzero(active)
                    chosen = rng.choice(len(idx), size=k, replace=False)
                    active[idx[chosen]] = False
                    self._active_counts[shard] -= k
                    departures += k
            if arrival_rate > 0 and n_inactive > 0:
                k = int(rng.binomial(n_inactive, arrival_rate))
                if k:
                    self._materialise(shard)
                    active = self._active[shard]
                    assert active is not None
                    idx = np.flatnonzero(~active)
                    chosen = rng.choice(len(idx), size=k, replace=False)
                    active[idx[chosen]] = True
                    self._active_counts[shard] += k
                    arrivals += k
        self.total_arrivals += arrivals
        self.total_departures += departures
        return arrivals, departures

    def sample_users(self, rng: np.random.Generator, k: int) -> np.ndarray:
        """Draw k distinct active user ids (proportional to shard activity)."""
        if k < 0:
            raise ValueError("sample size must be non-negative")
        n_active = self.n_active
        if k > n_active:
            raise ValueError(f"only {n_active} active users available")
        out: list[np.ndarray] = []
        remaining = k
        pool = n_active
        for shard in range(self.n_shards):
            if remaining == 0:
                break
            shard_active = (
                int(self._active_counts[shard])
                if self._materialised[shard]
                else self._shard_len(shard)
            )
            if shard_active == 0:
                continue
            # Hypergeometric split keeps the draw uniform over all active
            # users while touching one shard at a time.
            take = int(rng.hypergeometric(shard_active, pool - shard_active, remaining))
            pool -= shard_active
            if take == 0:
                continue
            self._materialise(shard)
            active = self._active[shard]
            assert active is not None
            idx = np.flatnonzero(active)
            chosen = rng.choice(len(idx), size=take, replace=False)
            start, _ = self._shard_bounds(shard)
            out.append(np.sort(idx[chosen]) + start)
            remaining -= take
        return np.concatenate(out) if out else np.empty(0, dtype=np.int64)

    # -- checkpoint serialisation --------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of the materialised shards (arrays included)."""
        shards = {}
        for shard in range(self.n_shards):
            if self._materialised[shard]:
                active = self._active[shard]
                records = self._records[shard]
                assert active is not None and records is not None
                shards[str(shard)] = {
                    "active": np.asarray(active, dtype=np.bool_).copy(),
                    "records": np.asarray(records, dtype=np.int64).copy(),
                }
        return {
            "schema": "uldp-fl-population/v1",
            "n_users": self.n_users,
            "shard_size": self.shard_size,
            "record_alpha": self.record_alpha,
            "expected_records": self.expected_records,
            "seed": self.seed,
            "total_arrivals": self.total_arrivals,
            "total_departures": self.total_departures,
            "shards": shards,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot bit-exactly."""
        if state.get("schema") != "uldp-fl-population/v1":
            raise ValueError(f"unknown population schema: {state.get('schema')!r}")
        if (
            int(state["n_users"]) != self.n_users
            or int(state["shard_size"]) != self.shard_size
        ):
            raise ValueError("population geometry mismatch")
        self.total_arrivals = int(state["total_arrivals"])
        self.total_departures = int(state["total_departures"])
        for key, payload in state["shards"].items():
            shard = int(key)
            self._materialise(shard)
            active = self._active[shard]
            records = self._records[shard]
            assert active is not None and records is not None
            active[:] = np.asarray(payload["active"], dtype=np.bool_)
            records[:] = np.asarray(payload["records"], dtype=np.int64)
            self._active_counts[shard] = int(active.sum())


# -- worker-side job materialisation ------------------------------------------


def materialise_shard_jobs(spec: dict) -> list:
    """Synthesise one shard's :class:`~repro.core.engine.LocalJob` list.

    Runs *inside the worker process* (resolved by the engine's loader
    hook), so only this shard's records are ever resident there.  Each
    user's dataset is deterministic in ``(data_seed, user_id)`` alone --
    a logistic task on standard-normal features with a per-user ground
    -truth direction -- so shard composition, worker count, and
    materialisation order never change a user's records.
    """
    from repro.core.engine import LocalJob

    ids = np.asarray(spec["user_ids"], dtype=np.int64)
    counts = np.asarray(spec["record_counts"], dtype=np.int64)
    if ids.shape != counts.shape:
        raise ValueError("user_ids and record_counts must align")
    if counts.size and counts.min() < 1:
        raise ValueError("every sampled user needs at least one record")
    data_seed = int(spec["data_seed"])
    n_features = int(spec["n_features"])
    jobs = []
    for uid, n in zip(ids, counts):
        rng = np.random.default_rng([data_seed, int(uid)])
        x = rng.standard_normal((int(n), n_features))
        truth = rng.standard_normal(n_features) / np.sqrt(n_features)
        p = 1.0 / (1.0 + np.exp(-(x @ truth)))
        y = (rng.random(int(n)) < p).astype(np.float64)
        jobs.append(LocalJob(x=x, y=y))
    return jobs
