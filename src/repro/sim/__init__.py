"""Federation simulation runtime (partial participation at scale).

The paper's algorithms assume the idealised cross-silo setting: every silo
and every user participates in every round, synchronously, with no
failures.  This package simulates the deployments the guarantees must
survive:

- :mod:`repro.sim.population` -- sharded, lazily-materialised user
  populations (memory-mapped allocation arrays; millions of users) with
  arrival/departure churn.
- :mod:`repro.sim.participation` -- per-round silo dropout, straggler
  latency models, and user churn processes.
- :mod:`repro.sim.policies` -- aggregation policies: synchronous (the
  oracle), semi-synchronous with a deadline, and buffered-async
  (FedBuff-style staleness-weighted merging), with explicit weight
  renormalisation strategies and honest sensitivity bookkeeping.
- :mod:`repro.sim.scheduler` -- the event-driven round scheduler driving
  the :class:`repro.core.Trainer` step API.
- :mod:`repro.sim.checkpoint` -- bit-identical checkpoint/resume of model
  params, RNG states, accountant state, and history.
- :mod:`repro.sim.scenarios` -- the named scenario registry behind
  ``python -m repro simulate``.
"""

from repro.sim.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.sim.participation import (
    BandwidthModel,
    ChurnProcess,
    IidSiloDropout,
    LogNormalLatency,
    NoDropout,
    NoLatency,
    SiloOutageWindows,
)
from repro.sim.policies import (
    BufferedAsyncPolicy,
    SemiSyncPolicy,
    SyncPolicy,
    staleness_weight,
)
from repro.sim.population import ShardedUserPopulation
from repro.sim.scheduler import FederationSimulator, SimConfig
from repro.sim.scenarios import (
    available_scenarios,
    build_scenario,
    continue_simulation,
    describe_scenario,
    resume_simulator,
    run_scenario,
)

__all__ = [
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
    "BandwidthModel",
    "ChurnProcess",
    "IidSiloDropout",
    "LogNormalLatency",
    "NoDropout",
    "NoLatency",
    "SiloOutageWindows",
    "BufferedAsyncPolicy",
    "SemiSyncPolicy",
    "SyncPolicy",
    "staleness_weight",
    "ShardedUserPopulation",
    "FederationSimulator",
    "SimConfig",
    "available_scenarios",
    "build_scenario",
    "continue_simulation",
    "describe_scenario",
    "resume_simulator",
    "run_scenario",
]
