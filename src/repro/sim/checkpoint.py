"""Bit-identical checkpoint/resume for federation simulations.

A checkpoint is a directory with two files:

- ``state.json`` -- the simulator's :meth:`FederationSimulator.state_dict`
  with every ndarray replaced by a reference marker, plus an ``extra``
  payload (the CLI stores the scenario name and overrides there so
  ``--resume`` can rebuild the simulator without re-specifying them).
- ``arrays-<round>.npz`` -- the referenced arrays in lossless binary form,
  named per snapshot and pointed to by ``state.json``.

Saves are crash-safe: the arrays file lands first under a fresh name, then
``state.json`` is atomically replaced to reference it, then stale arrays
files are pruned.  A kill at any point leaves the directory resuming to
either the previous or the new snapshot, never a torn mix.

Loads are integrity-checked: ``state.json`` records a SHA-256 digest per
array, and :func:`load_checkpoint` raises :class:`CheckpointError` (a
``ValueError``) on a truncated/corrupt file or a digest mismatch instead
of resuming from silently wrong state.

Scalars survive the JSON round-trip exactly (Python emits shortest-repr
floats, which parse back to the identical IEEE-754 value; RNG states are
arbitrary-precision ints), arrays survive npz exactly, so a simulation
killed at round k and resumed matches an uninterrupted run's params,
history, and accountant state bit for bit -- the property
``tests/sim/test_checkpoint.py`` asserts.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path

import numpy as np

STATE_FILE = "state.json"
_ARRAYS_PATTERN = "arrays-{round:08d}.npz"
_SCHEMA = "uldp-fl-checkpoint/v1"


class CheckpointError(ValueError):
    """A checkpoint directory is unreadable, truncated, or corrupt.

    Raised instead of letting ``zipfile``/``json`` internals leak out, so
    a resume against a half-written or bit-rotted checkpoint fails with a
    clear message rather than a confusing traceback (or, worse, silently
    wrong arrays -- every array is digest-verified against ``state.json``).
    """


def _digest(arr: np.ndarray) -> str:
    """SHA-256 of an array's canonical (contiguous) byte content."""
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def _strip_arrays(obj, arrays: dict):
    """Replace ndarrays with markers, collecting them into ``arrays``."""
    if isinstance(obj, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = obj
        return {"__array__": key}
    if isinstance(obj, dict):
        return {k: _strip_arrays(v, arrays) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_strip_arrays(v, arrays) for v in obj]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    return obj


def _restore_arrays(obj, arrays):
    """Inverse of :func:`_strip_arrays`."""
    if isinstance(obj, dict):
        if set(obj) == {"__array__"}:
            return np.array(arrays[obj["__array__"]])
        return {k: _restore_arrays(v, arrays) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_restore_arrays(v, arrays) for v in obj]
    return obj


def save_checkpoint(path: str | Path, simulator, extra: dict | None = None) -> Path:
    """Write the simulator's full dynamic state to ``path`` (a directory).

    Args:
        path: checkpoint directory (created if missing; overwritten).
        simulator: a :class:`repro.sim.scheduler.FederationSimulator`.
        extra: optional JSON-serialisable payload stored alongside
            (scenario name, CLI overrides, ...).

    Returns:
        The checkpoint directory path.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    state = _strip_arrays(simulator.state_dict(), arrays)
    arrays_file = _ARRAYS_PATTERN.format(round=simulator.rounds_completed)
    meta = {
        "schema": _SCHEMA,
        "extra": extra,
        "arrays_file": arrays_file,
        # Integrity manifest: load_checkpoint refuses an arrays file whose
        # content does not hash back to these (truncation, bit rot, or a
        # mismatched state.json/npz pair).
        "array_digests": {key: _digest(arr) for key, arr in arrays.items()},
        "state": state,
    }
    # Crash-safe ordering (a kill mid-snapshot is the module's threat
    # model): the new arrays land under a fresh name, state.json is
    # atomically swapped to reference them, and only then are stale arrays
    # files pruned -- every intermediate directory state resumes cleanly.
    tmp_arrays = path / (arrays_file + ".tmp")
    with open(tmp_arrays, "wb") as fh:
        np.savez(fh, **arrays)
    os.replace(tmp_arrays, path / arrays_file)
    tmp_state = path / (STATE_FILE + ".tmp")
    tmp_state.write_text(json.dumps(meta, indent=2))
    os.replace(tmp_state, path / STATE_FILE)
    for stale in path.glob("arrays-*.npz"):
        if stale.name != arrays_file:
            stale.unlink(missing_ok=True)
    return path


def load_checkpoint(path: str | Path) -> tuple[dict, dict | None]:
    """Read a checkpoint directory; returns ``(state, extra)``.

    Feed ``state`` to :meth:`FederationSimulator.load_state` after
    reconstructing the simulator with the same configuration it was
    saved under.
    """
    path = Path(path)
    try:
        meta = json.loads((path / STATE_FILE).read_text())
    except OSError as exc:
        raise CheckpointError(
            f"checkpoint at {path} is unreadable: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint at {path} has a truncated or corrupt "
            f"{STATE_FILE}: {exc}") from exc
    if meta.get("schema") != _SCHEMA:
        raise ValueError(f"unknown checkpoint schema: {meta.get('schema')!r}")
    arrays_file = meta.get("arrays_file", "")
    try:
        with np.load(path / arrays_file) as npz:
            arrays = {k: np.array(npz[k]) for k in npz.files}
    except (OSError, EOFError, KeyError, ValueError,
            zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"checkpoint at {path} has a truncated or corrupt arrays file "
            f"{arrays_file!r}: {exc}") from exc
    # Digest verification (older checkpoints without a manifest load as
    # before -- the npz CRCs are then the only integrity check).
    digests = meta.get("array_digests")
    if digests is not None:
        if set(digests) != set(arrays):
            raise CheckpointError(
                f"checkpoint at {path} is corrupt: {arrays_file!r} does "
                "not contain the arrays state.json references")
        for key, arr in arrays.items():
            if _digest(arr) != digests[key]:
                raise CheckpointError(
                    f"checkpoint at {path} is corrupt: array {key!r} in "
                    f"{arrays_file!r} fails its recorded SHA-256 digest")
    return _restore_arrays(meta["state"], arrays), meta.get("extra")
