"""Named federation scenarios: the registry behind ``repro simulate``.

Each scenario is a complete participation recipe -- dropout, latency,
churn, aggregation policy, renormalisation strategy, bandwidth --
registered under :data:`repro.api.registries.SCENARIOS` through the
``@register_scenario`` decorator, so third-party scenarios plug in
without touching this module::

    from repro.api import register_scenario

    @register_scenario("my-outage", description="custom outage pattern")
    def _my_outage(rounds: int, n_silos: int) -> dict:
        return dict(policy=SyncPolicy(), renorm="survivors",
                    dropout=SiloOutageWindows({1: (2, 5)}))

A scenario factory maps ``(rounds, n_silos)`` to
:class:`repro.sim.scheduler.SimConfig` overrides; the dataset (creditcard
at the scale tier's size) and the method (``uldp-avg-w`` unless a
:class:`repro.api.RunSpec` supplies one) are owned by
:func:`build_scenario`.  ``docs/scenarios.md`` describes each builtin's
semantics and its privacy-accounting caveats.

The registry composes with checkpointing: :func:`run_scenario` snapshots
every ``checkpoint_every`` releases and :func:`resume_simulator` rebuilds
a simulator from a checkpoint directory.  Checkpoints written through the
spec API carry the resolved spec snapshot plus its canonical hash in
their ``extra`` payload; resume recomputes the hash and **refuses a
tampered or mismatched spec**.
"""

from __future__ import annotations

from repro.api.registries import SCENARIOS, register_scenario
from repro.compress import CompressionSpec
from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.participation import (
    BandwidthModel,
    ChurnProcess,
    IidSiloDropout,
    LogNormalLatency,
    SiloOutageWindows,
)
from repro.sim.policies import BufferedAsyncPolicy, SemiSyncPolicy, SyncPolicy
from repro.sim.scheduler import FederationSimulator, SimConfig

SCALES = ("smoke", "small", "paper")


def _scale_params(scale: str) -> dict:
    """Workload size per scale tier (mirrors the experiment registry)."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}")
    return {
        "smoke": dict(rounds=3, n_records=300, n_users=12, n_silos=3, n_test=80),
        "small": dict(rounds=10, n_records=2000, n_users=50, n_silos=5, n_test=400),
        "paper": dict(rounds=40, n_records=10_000, n_users=100, n_silos=5, n_test=2000),
    }[scale]


@register_scenario(
    "ideal-sync",
    description="synchronous, zero dropout -- the oracle matching Trainer exactly",
)
def _ideal_sync(rounds: int, n_silos: int) -> dict:
    return dict(policy=SyncPolicy(), renorm="none")


@register_scenario(
    "silo-outage",
    description="silo 0 offline for a window of rounds; survivors renormalise",
)
def _silo_outage(rounds: int, n_silos: int) -> dict:
    start = max(1, rounds // 4)
    stop = min(rounds, start + max(2, rounds // 4))
    return dict(
        policy=SyncPolicy(),
        renorm="survivors",
        dropout=SiloOutageWindows({0: (start, stop)}),
    )


@register_scenario(
    "flaky-silos",
    description="iid 30% per-round silo dropout, weights left as-is (renorm=none)",
)
def _flaky_silos(rounds: int, n_silos: int) -> dict:
    return dict(policy=SyncPolicy(), renorm="none", dropout=IidSiloDropout(0.3))


@register_scenario(
    "carryover-makeup",
    description="iid 30% dropout; returning silos make up missed weight "
    "(sensitivity > 1 rounds are charged honestly)",
)
def _carryover_makeup(rounds: int, n_silos: int) -> dict:
    return dict(
        policy=SyncPolicy(),
        renorm="carryover",
        dropout=IidSiloDropout(0.3),
        carryover_max_gain=2.0,
    )


@register_scenario(
    "stragglers-deadline",
    description="semi-synchronous deadline at 1.5 units with one 2x-slow silo",
)
def _stragglers_deadline(rounds: int, n_silos: int) -> dict:
    # One persistently slow silo (2x median) plus heavy-tailed jitter.
    speed = tuple(2.0 if s == n_silos - 1 else 1.0 for s in range(n_silos))
    return dict(
        policy=SemiSyncPolicy(deadline=1.5),
        renorm="survivors",
        latency=LogNormalLatency(median=1.0, sigma=0.4, silo_speed=speed),
    )


@register_scenario(
    "async-fedbuff",
    description="buffered-async (FedBuff-style) staleness-weighted merging",
)
def _async_fedbuff(rounds: int, n_silos: int) -> dict:
    return dict(
        policy=BufferedAsyncPolicy(
            buffer_size=max(2, n_silos // 2), staleness_exponent=0.5
        ),
        renorm="none",
        latency=LogNormalLatency(median=1.0, sigma=0.6),
    )


@register_scenario(
    "user-churn",
    description="5%/round user departures, 3%/round arrivals; survivors renormalise",
)
def _user_churn(rounds: int, n_silos: int) -> dict:
    return dict(
        policy=SyncPolicy(),
        renorm="survivors",
        churn=ChurnProcess(departure_rate=0.05, arrival_rate=0.03),
    )


#: Uplink recipe of the bandwidth scenarios: top-5% sparsification with
#: 8-bit stochastic quantization and per-silo error feedback -- roughly a
#: 30x byte reduction on the creditcard MLP (strictly post-noise, so the
#: accounting is untouched; see docs/scenarios.md).
_BANDWIDTH_COMPRESSION = CompressionSpec(
    sparsify="topk", fraction=0.05, quantize_bits=8, error_feedback=True
)


@register_scenario(
    "bandwidth-cap",
    description="4 KB/round per-silo uplink caps; only compressed updates "
    "(top-5% + 8-bit + error feedback) fit",
)
def _bandwidth_cap(rounds: int, n_silos: int) -> dict:
    # A 4 KB per-round uplink budget per silo: the dense float64 payload
    # (~33 KB for the creditcard MLP) would exclude every silo every
    # round; the ~1 KB compressed payload is what admits them at all.
    return dict(
        policy=SyncPolicy(),
        renorm="none",
        bandwidth=BandwidthModel(rate=8192.0, byte_cap=4096.0),
        compression=_BANDWIDTH_COMPRESSION,
    )


@register_scenario(
    "bandwidth-stragglers",
    description="semi-sync deadline where uplink transmission time joins "
    "compute latency; one silo has a 4x-slower link",
)
def _bandwidth_stragglers(rounds: int, n_silos: int) -> dict:
    # Heterogeneous links under a semi-sync deadline: the last silo's
    # uplink is 4x slower, so its transmission time alone (~1.0 units on
    # the compressed payload) pushes it past the 1.5-unit deadline on bad
    # latency draws -- and a dense payload would strand *everyone*.
    silo_rate = tuple(0.25 if s == n_silos - 1 else 1.0 for s in range(n_silos))
    return dict(
        policy=SemiSyncPolicy(deadline=1.5),
        renorm="survivors",
        latency=LogNormalLatency(median=0.5, sigma=0.3),
        bandwidth=BandwidthModel(rate=4096.0, silo_rate=silo_rate),
        compression=_BANDWIDTH_COMPRESSION,
    )


def available_scenarios() -> list[str]:
    """Names accepted by :func:`build_scenario` / ``repro simulate``."""
    return SCENARIOS.names()


def describe_scenario(name: str) -> str:
    """One-line description of a named scenario.

    Unknown names raise :class:`repro.api.registries.UnknownNameError`
    (a ``KeyError`` listing valid names plus a nearest-match suggestion).
    """
    return SCENARIOS.describe(name)


def build_scenario(
    name: str,
    scale: str = "small",
    seed: int = 0,
    rounds: int | None = None,
    noise_multiplier: float = 5.0,
    method=None,
    delta: float = 1e-5,
    eval_every: int = 1,
) -> FederationSimulator:
    """Construct a ready-to-run simulator for a named scenario.

    The construction is deterministic in its arguments: a resumed
    checkpoint rebuilds the identical simulator through this function
    before loading state.  ``method`` (an :class:`repro.core.FLMethod`)
    overrides the scenario family's canonical ``uldp-avg-w``; the spec
    API builds it from the run's ``[method]`` section.
    """
    from repro.data import build_creditcard_benchmark

    config_factory = SCENARIOS.get(name)
    params = _scale_params(scale)
    rounds = int(rounds) if rounds is not None else params["rounds"]
    fed = build_creditcard_benchmark(
        n_users=params["n_users"],
        n_silos=params["n_silos"],
        distribution="zipf",
        n_records=params["n_records"],
        n_test=params["n_test"],
        seed=seed,
    )
    if method is None:
        from repro.core.methods.uldp_avg import UldpAvg

        method = UldpAvg(
            noise_multiplier=noise_multiplier,
            local_epochs=1,
            weighting="proportional",
        )
    overrides = config_factory(rounds, fed.n_silos)
    config = SimConfig(
        rounds=rounds, seed=seed + 1, delta=delta, eval_every=eval_every,
        **overrides,
    )
    return FederationSimulator(fed, method, config)


def run_scenario(
    name: str,
    scale: str = "small",
    seed: int = 0,
    rounds: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
) -> FederationSimulator:
    """Run a named scenario to completion (checkpointing along the way)."""
    sim = build_scenario(name, scale=scale, seed=seed, rounds=rounds)
    run_simulator_with_checkpoints(
        sim,
        checkpoint_dir,
        checkpoint_every,
        extra={"scenario": name, "scale": scale, "seed": seed, "rounds": rounds},
    )
    return sim


def resume_simulator(checkpoint_dir: str) -> tuple[FederationSimulator, dict]:
    """Rebuild a simulator from a checkpoint directory (not yet run).

    Returns ``(simulator, extra)`` where ``extra`` is the payload stored
    at save time.  Spec-stamped checkpoints (anything written through
    ``repro run`` / the ``simulate`` shim) are verified first: the stored
    snapshot must hash to the recorded ``spec_hash``, otherwise resume is
    refused -- a tampered or schema-mismatched configuration must not
    silently continue a run it does not describe.  Call
    ``simulator.run()`` -- or :func:`continue_simulation` -- to finish
    the remaining rounds.
    """
    state, extra = load_checkpoint(checkpoint_dir)
    if not extra or "scenario" not in extra:
        raise ValueError("checkpoint does not carry scenario metadata")
    from repro.api.runner import build_simulator, verify_checkpoint_spec

    spec = verify_checkpoint_spec(extra)
    if spec is not None:
        sim = build_simulator(spec)
        sim.load_state(state)
        # Re-stamp: load_state rebuilds history records but not the spec.
        sim.history.spec = spec.to_dict()
        sim.history.spec_hash = spec.hash()
        return sim, extra
    sim = build_scenario(
        extra["scenario"],
        scale=extra.get("scale", "small"),
        seed=int(extra.get("seed", 0)),
        rounds=extra.get("rounds"),
    )
    sim.load_state(state)
    return sim, extra


def continue_simulation(
    checkpoint_dir: str, checkpoint_every: int | None = None
) -> FederationSimulator:
    """Resume from a checkpoint and run the remaining rounds."""
    sim, extra = resume_simulator(checkpoint_dir)
    run_simulator_with_checkpoints(sim, checkpoint_dir, checkpoint_every, extra=extra)
    return sim


def run_simulator_with_checkpoints(
    sim: FederationSimulator,
    checkpoint_dir: str | None,
    checkpoint_every: int | None,
    extra: dict,
) -> None:
    """Drive a simulator to completion, snapshotting every k releases."""
    if checkpoint_dir is None:
        sim.run()
        return
    every = checkpoint_every or max(1, sim.config.rounds // 4)
    while not sim.done:
        sim.run(stop_after=min(sim.rounds_completed + every, sim.config.rounds))
        save_checkpoint(checkpoint_dir, sim, extra=extra)
