"""Named federation scenarios: the registry behind ``repro simulate``.

Each scenario is a complete recipe -- dataset scale, method, participation
dynamics, aggregation policy, renormalisation strategy -- so results are
reproducible from a name and a seed.  ``docs/scenarios.md`` describes each
scenario's semantics and its privacy-accounting caveats.

The registry composes with checkpointing: :func:`run_scenario` snapshots
every ``checkpoint_every`` releases and :func:`resume_simulator` rebuilds
a simulator from a checkpoint directory (the scenario name and overrides
travel inside the checkpoint's ``extra`` payload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.compress import CompressionSpec
from repro.core.methods.uldp_avg import UldpAvg
from repro.data import build_creditcard_benchmark
from repro.sim.checkpoint import load_checkpoint, save_checkpoint
from repro.sim.participation import (
    BandwidthModel,
    ChurnProcess,
    IidSiloDropout,
    LogNormalLatency,
    SiloOutageWindows,
)
from repro.sim.policies import BufferedAsyncPolicy, SemiSyncPolicy, SyncPolicy
from repro.sim.scheduler import FederationSimulator, SimConfig

SCALES = ("smoke", "small", "paper")


def _scale_params(scale: str) -> dict:
    """Workload size per scale tier (mirrors the experiment registry)."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}")
    return {
        "smoke": dict(rounds=3, n_records=300, n_users=12, n_silos=3, n_test=80),
        "small": dict(rounds=10, n_records=2000, n_users=50, n_silos=5, n_test=400),
        "paper": dict(rounds=40, n_records=10_000, n_users=100, n_silos=5, n_test=2000),
    }[scale]


@dataclass(frozen=True)
class Scenario:
    """One named simulation recipe."""

    name: str
    description: str
    #: Maps (rounds, n_silos) to the scenario's :class:`SimConfig` fields.
    config_factory: Callable[[int, int], dict]


def _ideal_sync(rounds: int, n_silos: int) -> dict:
    return dict(policy=SyncPolicy(), renorm="none")


def _silo_outage(rounds: int, n_silos: int) -> dict:
    start = max(1, rounds // 4)
    stop = min(rounds, start + max(2, rounds // 4))
    return dict(
        policy=SyncPolicy(),
        renorm="survivors",
        dropout=SiloOutageWindows({0: (start, stop)}),
    )


def _flaky_silos(rounds: int, n_silos: int) -> dict:
    return dict(policy=SyncPolicy(), renorm="none", dropout=IidSiloDropout(0.3))


def _carryover_makeup(rounds: int, n_silos: int) -> dict:
    return dict(
        policy=SyncPolicy(),
        renorm="carryover",
        dropout=IidSiloDropout(0.3),
        carryover_max_gain=2.0,
    )


def _stragglers_deadline(rounds: int, n_silos: int) -> dict:
    # One persistently slow silo (2x median) plus heavy-tailed jitter.
    speed = tuple(2.0 if s == n_silos - 1 else 1.0 for s in range(n_silos))
    return dict(
        policy=SemiSyncPolicy(deadline=1.5),
        renorm="survivors",
        latency=LogNormalLatency(median=1.0, sigma=0.4, silo_speed=speed),
    )


def _async_fedbuff(rounds: int, n_silos: int) -> dict:
    return dict(
        policy=BufferedAsyncPolicy(
            buffer_size=max(2, n_silos // 2), staleness_exponent=0.5
        ),
        renorm="none",
        latency=LogNormalLatency(median=1.0, sigma=0.6),
    )


def _user_churn(rounds: int, n_silos: int) -> dict:
    return dict(
        policy=SyncPolicy(),
        renorm="survivors",
        churn=ChurnProcess(departure_rate=0.05, arrival_rate=0.03),
    )


#: Uplink recipe of the bandwidth scenarios: top-5% sparsification with
#: 8-bit stochastic quantization and per-silo error feedback -- roughly a
#: 30x byte reduction on the creditcard MLP (strictly post-noise, so the
#: accounting is untouched; see docs/scenarios.md).
_BANDWIDTH_COMPRESSION = CompressionSpec(
    sparsify="topk", fraction=0.05, quantize_bits=8, error_feedback=True
)


def _bandwidth_cap(rounds: int, n_silos: int) -> dict:
    # A 4 KB per-round uplink budget per silo: the dense float64 payload
    # (~33 KB for the creditcard MLP) would exclude every silo every
    # round; the ~1 KB compressed payload is what admits them at all.
    return dict(
        policy=SyncPolicy(),
        renorm="none",
        bandwidth=BandwidthModel(rate=8192.0, byte_cap=4096.0),
        compression=_BANDWIDTH_COMPRESSION,
    )


def _bandwidth_stragglers(rounds: int, n_silos: int) -> dict:
    # Heterogeneous links under a semi-sync deadline: the last silo's
    # uplink is 4x slower, so its transmission time alone (~1.0 units on
    # the compressed payload) pushes it past the 1.5-unit deadline on bad
    # latency draws -- and a dense payload would strand *everyone*.
    silo_rate = tuple(0.25 if s == n_silos - 1 else 1.0 for s in range(n_silos))
    return dict(
        policy=SemiSyncPolicy(deadline=1.5),
        renorm="survivors",
        latency=LogNormalLatency(median=0.5, sigma=0.3),
        bandwidth=BandwidthModel(rate=4096.0, silo_rate=silo_rate),
        compression=_BANDWIDTH_COMPRESSION,
    )


_REGISTRY: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "ideal-sync",
            "synchronous, zero dropout -- the oracle matching Trainer exactly",
            _ideal_sync,
        ),
        Scenario(
            "silo-outage",
            "silo 0 offline for a window of rounds; survivors renormalise",
            _silo_outage,
        ),
        Scenario(
            "flaky-silos",
            "iid 30% per-round silo dropout, weights left as-is (renorm=none)",
            _flaky_silos,
        ),
        Scenario(
            "carryover-makeup",
            "iid 30% dropout; returning silos make up missed weight "
            "(sensitivity > 1 rounds are charged honestly)",
            _carryover_makeup,
        ),
        Scenario(
            "stragglers-deadline",
            "semi-synchronous deadline at 1.5 units with one 2x-slow silo",
            _stragglers_deadline,
        ),
        Scenario(
            "async-fedbuff",
            "buffered-async (FedBuff-style) staleness-weighted merging",
            _async_fedbuff,
        ),
        Scenario(
            "user-churn",
            "5%/round user departures, 3%/round arrivals; survivors renormalise",
            _user_churn,
        ),
        Scenario(
            "bandwidth-cap",
            "4 KB/round per-silo uplink caps; only compressed updates "
            "(top-5% + 8-bit + error feedback) fit",
            _bandwidth_cap,
        ),
        Scenario(
            "bandwidth-stragglers",
            "semi-sync deadline where uplink transmission time joins "
            "compute latency; one silo has a 4x-slower link",
            _bandwidth_stragglers,
        ),
    )
}


def available_scenarios() -> list[str]:
    """Names accepted by :func:`build_scenario` / ``repro simulate``."""
    return sorted(_REGISTRY)


def describe_scenario(name: str) -> str:
    """One-line description of a named scenario."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown scenario {name!r}; see available_scenarios()")
    return _REGISTRY[name].description


def build_scenario(
    name: str,
    scale: str = "small",
    seed: int = 0,
    rounds: int | None = None,
    noise_multiplier: float = 5.0,
) -> FederationSimulator:
    """Construct a ready-to-run simulator for a named scenario.

    The construction is deterministic in (name, scale, seed, rounds): a
    resumed checkpoint rebuilds the identical simulator through this
    function before loading state.
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown scenario {name!r}; see available_scenarios()")
    params = _scale_params(scale)
    rounds = int(rounds) if rounds is not None else params["rounds"]
    fed = build_creditcard_benchmark(
        n_users=params["n_users"],
        n_silos=params["n_silos"],
        distribution="zipf",
        n_records=params["n_records"],
        n_test=params["n_test"],
        seed=seed,
    )
    method = UldpAvg(
        noise_multiplier=noise_multiplier,
        local_epochs=1,
        weighting="proportional",
    )
    overrides = _REGISTRY[name].config_factory(rounds, fed.n_silos)
    config = SimConfig(rounds=rounds, seed=seed + 1, **overrides)
    return FederationSimulator(fed, method, config)


def run_scenario(
    name: str,
    scale: str = "small",
    seed: int = 0,
    rounds: int | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
) -> FederationSimulator:
    """Run a named scenario to completion (checkpointing along the way)."""
    sim = build_scenario(name, scale=scale, seed=seed, rounds=rounds)
    _run_with_checkpoints(
        sim,
        checkpoint_dir,
        checkpoint_every,
        extra={"scenario": name, "scale": scale, "seed": seed, "rounds": rounds},
    )
    return sim


def resume_simulator(checkpoint_dir: str) -> tuple[FederationSimulator, dict]:
    """Rebuild a simulator from a checkpoint directory (not yet run).

    Returns ``(simulator, extra)`` where ``extra`` is the payload stored at
    save time (scenario name and overrides).  Call ``simulator.run()`` --
    or :func:`continue_simulation` -- to finish the remaining rounds.
    """
    state, extra = load_checkpoint(checkpoint_dir)
    if not extra or "scenario" not in extra:
        raise ValueError("checkpoint does not carry scenario metadata")
    sim = build_scenario(
        extra["scenario"],
        scale=extra.get("scale", "small"),
        seed=int(extra.get("seed", 0)),
        rounds=extra.get("rounds"),
    )
    sim.load_state(state)
    return sim, extra


def continue_simulation(
    checkpoint_dir: str, checkpoint_every: int | None = None
) -> FederationSimulator:
    """Resume from a checkpoint and run the remaining rounds."""
    sim, extra = resume_simulator(checkpoint_dir)
    _run_with_checkpoints(sim, checkpoint_dir, checkpoint_every, extra=extra)
    return sim


def _run_with_checkpoints(
    sim: FederationSimulator,
    checkpoint_dir: str | None,
    checkpoint_every: int | None,
    extra: dict,
) -> None:
    """Drive a simulator to completion, snapshotting every k releases."""
    if checkpoint_dir is None:
        sim.run()
        return
    every = checkpoint_every or max(1, sim.config.rounds // 4)
    while not sim.done:
        sim.run(stop_after=min(sim.rounds_completed + every, sim.config.rounds))
        save_checkpoint(checkpoint_dir, sim, extra=extra)
