"""Offline trace analysis: turn a ``trace.jsonl`` into readable tables.

Backs the ``repro trace summary <trace.jsonl>`` CLI.  The input is the
append-only span stream written by
:class:`repro.obs.trace.JsonlTraceRecorder`; the output is four views:

- **per round** -- duration, silos/users seen, uplink/downlink bytes;
- **per phase** -- total/mean seconds and call counts, aggregated over
  the whole run (protocol phases, secure-aggregation phases, server
  phases such as ``ping`` and ``collect_contributions``);
- **per silo** -- contribution count, total compute seconds, bytes both
  ways, and the tightest deadline margin observed;
- **per shard** -- for runs on the sharded engine (``[engine]`` in the
  spec), each silo's shard-task count, job total, and kernel seconds
  (the worker-side compute time, as opposed to the span's wall time
  which includes executor queueing);
- **slowest spans** and **fault events** -- where to look first when a
  run misbehaves.

Everything tolerates partial traces (a crashed run never writes its
unclosed spans) and multiple runs appended to one file.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

from .trace import TRACE_SCHEMA

#: Event names treated as faults in the fault-event view.
FAULT_EVENTS = frozenset({
    "silo_fault", "silo_drop", "retry", "rollback", "quorum_abort",
    "sim_fault",
})


class TraceError(ValueError):
    """The file is not a readable uldp-fl trace."""


def load_trace(path: str | Path) -> list[dict]:
    """Parse ``path`` into a list of record dicts, oldest first.

    Raises :class:`TraceError` when the file is missing, empty, or its
    first record is not a recognised trace meta line.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no trace file at {path}")
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{lineno}: not JSON ({exc})") from exc
            if not isinstance(rec, dict) or "kind" not in rec:
                raise TraceError(f"{path}:{lineno}: not a trace record")
            records.append(rec)
    if not records:
        raise TraceError(f"{path} is empty")
    meta = records[0]
    if meta.get("kind") != "meta" or meta.get("schema") != TRACE_SCHEMA:
        raise TraceError(
            f"{path} does not start with a {TRACE_SCHEMA} meta record")
    return records


def summarize(records: list[dict]) -> dict:
    """Aggregate a record list into the four summary views."""
    rounds: dict[int, dict] = {}
    phases: dict[str, dict] = defaultdict(
        lambda: {"total": 0.0, "count": 0, "max": 0.0})
    silos: dict[str, dict] = defaultdict(lambda: {
        "count": 0, "seconds": 0.0, "uplink_bytes": 0, "downlink_bytes": 0,
        "min_deadline_margin": None,
    })
    shards: dict[str, dict] = defaultdict(lambda: {
        "count": 0, "jobs": 0, "seconds": 0.0, "max": 0.0,
    })
    spans: list[dict] = []
    faults: list[dict] = []
    meta = records[0] if records and records[0].get("kind") == "meta" else {}

    for rec in records:
        kind = rec.get("kind")
        attrs = rec.get("attrs") or {}
        if kind == "meta":
            continue
        if kind == "event":
            if rec.get("name") in FAULT_EVENTS:
                faults.append(rec)
            continue
        spans.append(rec)
        if kind == "round":
            round_no = attrs.get("round")
            if round_no is None:
                continue
            entry = rounds.setdefault(int(round_no), {
                "dur": 0.0, "silos_seen": None, "users_seen": None,
                "uplink_bytes": 0, "downlink_bytes": 0,
            })
            entry["dur"] += rec.get("dur", 0.0)
            for key in ("silos_seen", "users_seen"):
                if attrs.get(key) is not None:
                    entry[key] = attrs[key]
            for key in ("uplink_bytes", "downlink_bytes"):
                entry[key] += int(attrs.get(key) or 0)
        elif kind == "phase":
            entry = phases[rec.get("name", "?")]
            dur = rec.get("dur", 0.0)
            entry["total"] += dur
            entry["count"] += 1
            entry["max"] = max(entry["max"], dur)
        elif kind == "silo":
            silo = str(attrs.get("silo", "?"))
            entry = silos[silo]
            entry["count"] += 1
            entry["seconds"] += rec.get("dur", 0.0)
            entry["uplink_bytes"] += int(attrs.get("uplink_bytes") or 0)
            entry["downlink_bytes"] += int(attrs.get("downlink_bytes") or 0)
            margin = attrs.get("deadline_margin")
            if margin is not None:
                prev = entry["min_deadline_margin"]
                entry["min_deadline_margin"] = (
                    margin if prev is None else min(prev, margin))
        elif kind == "shard":
            entry = shards[str(attrs.get("silo", "?"))]
            # ``seconds`` is the kernel time measured inside the worker;
            # the span's ``dur`` also counts executor queueing and result
            # pickling, so the attr is the honest compute number.
            seconds = float(attrs.get("seconds") or rec.get("dur", 0.0))
            entry["count"] += 1
            entry["jobs"] += int(attrs.get("jobs") or 0)
            entry["seconds"] += seconds
            entry["max"] = max(entry["max"], seconds)

    return {
        "meta": meta,
        "rounds": dict(sorted(rounds.items())),
        "phases": dict(sorted(phases.items(),
                              key=lambda kv: -kv[1]["total"])),
        "silos": dict(sorted(silos.items())),
        "shards": dict(sorted(shards.items())),
        "spans": spans,
        "faults": faults,
    }


# -- rendering -----------------------------------------------------------------


def _fmt_bytes(n) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:,.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:,.1f} GiB"


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines


def render_summary(records: list[dict], slowest: int = 5) -> str:
    """The human-readable multi-table summary of one trace file."""
    s = summarize(records)
    out: list[str] = []
    meta = s["meta"]
    header = f"trace: schema={meta.get('schema', '?')}"
    if meta.get("run_id"):
        header += f"  run={meta['run_id']}"
    if meta.get("sample_rate", 1.0) != 1.0:
        header += f"  sample_rate={meta['sample_rate']}"
    out.append(header)
    out.append(f"records: {len(s['spans'])} spans, "
               f"{len(s['faults'])} fault events")

    if s["rounds"]:
        out.append("")
        out.append("per round")
        rows = [
            [str(r), f"{e['dur']:.3f}",
             "-" if e["silos_seen"] is None else str(e["silos_seen"]),
             "-" if e["users_seen"] is None else str(e["users_seen"]),
             _fmt_bytes(e["uplink_bytes"]), _fmt_bytes(e["downlink_bytes"])]
            for r, e in s["rounds"].items()
        ]
        out.extend(_table(
            ["round", "seconds", "silos", "users", "uplink", "downlink"],
            rows))

    if s["phases"]:
        out.append("")
        out.append("per phase")
        rows = [
            [name, f"{e['total']:.3f}", str(e["count"]),
             f"{e['total'] / e['count']:.4f}" if e["count"] else "-",
             f"{e['max']:.4f}"]
            for name, e in s["phases"].items()
        ]
        out.extend(_table(
            ["phase", "total s", "calls", "mean s", "max s"], rows))

    if s["silos"]:
        out.append("")
        out.append("per silo")
        rows = []
        for silo, e in s["silos"].items():
            margin = e["min_deadline_margin"]
            rows.append([
                silo, str(e["count"]), f"{e['seconds']:.3f}",
                _fmt_bytes(e["uplink_bytes"]),
                _fmt_bytes(e["downlink_bytes"]),
                "-" if margin is None else f"{margin:.2f}s",
            ])
        out.extend(_table(
            ["silo", "spans", "seconds", "uplink", "downlink",
             "min margin"], rows))

    if s["shards"]:
        out.append("")
        out.append("per shard (sharded engine)")
        rows = [
            [silo, str(e["count"]), str(e["jobs"]),
             f"{e['seconds']:.3f}",
             f"{e['seconds'] / e['count']:.4f}" if e["count"] else "-",
             f"{e['max']:.4f}"]
            for silo, e in s["shards"].items()
        ]
        out.extend(_table(
            ["silo", "shards", "jobs", "kernel s", "mean s", "max s"],
            rows))

    ranked = sorted(s["spans"], key=lambda r: -r.get("dur", 0.0))[:slowest]
    if ranked:
        out.append("")
        out.append(f"slowest {len(ranked)} spans")
        rows = [
            [f"{r.get('dur', 0.0):.4f}", r.get("kind", "?"),
             r.get("name", "?"),
             json.dumps(r.get("attrs") or {}, sort_keys=True)]
            for r in ranked
        ]
        out.extend(_table(["seconds", "kind", "name", "attrs"], rows))

    if s["faults"]:
        out.append("")
        out.append("fault events")
        rows = [
            [f"{r.get('ts', 0.0):.3f}", r.get("name", "?"),
             json.dumps(r.get("attrs") or {}, sort_keys=True)]
            for r in s["faults"]
        ]
        out.extend(_table(["ts", "event", "attrs"], rows))

    return "\n".join(out)
