"""Hierarchical tracing: ``run > round > phase > silo`` spans to JSONL.

One *span* is a named, timed region of a run with typed attributes; spans
nest (per thread) so a networked round produces, e.g.::

    run                                 kind=run
      round                             kind=round   round=3
        collect_contributions           kind=phase
          silo_compute                  kind=silo    silo=0 uplink_bytes=...
          silo_compute                  kind=silo    silo=1 ...
        evaluate                        kind=phase

Records are appended to a ``trace.jsonl`` file (one JSON object per
line, schema ``uldp-fl-trace/v1``) as spans *close*, so a crashed run
still leaves every completed span on disk.  Each record carries the wall
clock (``ts``, epoch seconds at span start), the monotonic clock
(``mono``, for exact in-process ordering), the duration (``dur``), and
the span's ``attrs``.

The default recorder is :data:`NULL_RECORDER`: every instrumentation
seam in the codebase calls :func:`get_recorder` and gets a no-op whose
``span()`` returns a shared, reusable null context manager -- a disabled
run pays a few attribute lookups per round and nothing else, consumes no
RNG, and is bit-identical to an uninstrumented build.  Tracing is
enabled per run through the ``[obs]`` spec section
(:class:`repro.api.spec.ObsSpec`), which builds a
:class:`JsonlTraceRecorder` and installs it with :func:`use_recorder`.

``sample_rate`` keeps long runs' trace files bounded: spans of kind
``"round"`` are kept for a deterministic (hash-of-round-number) subset
of rounds, and every descendant of a dropped round span is dropped with
it.  Spans outside any round (setup, checkpointing) are always kept.

This module is intentionally dependency-free (stdlib only) and imports
nothing from ``repro`` -- every layer of the codebase may import it
without cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

TRACE_SCHEMA = "uldp-fl-trace/v1"

#: Knuth's multiplicative hash constant -- spreads round numbers evenly
#: over [0, 2^32) so round sampling is uniform *and* deterministic.
_HASH_MULT = 2654435761


def _jsonable(value):
    """Best-effort JSON coercion for attr values (numpy scalars etc.)."""
    for caster in (int, float):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return str(value)


class _NullSpan:
    """The shared no-op span: context manager + attr sink, zero state."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: records nothing, allocates nothing."""

    enabled = False

    def span(self, name: str, kind: str = "span", **attrs) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_RECORDER = NullRecorder()


class Span:
    """One live span of a :class:`JsonlTraceRecorder` (context manager)."""

    __slots__ = ("_recorder", "name", "kind", "attrs", "span_id",
                 "parent_id", "suppressed", "ts", "mono", "_depth_token")

    def __init__(self, recorder, name, kind, attrs, span_id, parent_id,
                 suppressed):
        self._recorder = recorder
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.suppressed = suppressed
        self.ts = 0.0
        self.mono = 0.0

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._recorder._push(self)
        self.ts = time.time()
        self.mono = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self.mono
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._recorder._pop(self, duration)
        return False


class JsonlTraceRecorder:
    """Appends span/event records to a JSONL trace file.

    Safe for concurrent use from multiple threads: the span stack is
    thread-local (each thread gets its own hierarchy; spans opened on a
    fresh thread are roots) and file writes are serialised by a lock.
    Multiple *processes* must not share one trace file -- give each its
    own path (the networked runtime's silo processes simply run with the
    null recorder).
    """

    enabled = True

    def __init__(self, path: str | Path, sample_rate: float = 1.0,
                 run_id: str | None = None):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must lie in (0, 1]")
        self.path = Path(path)
        self.sample_rate = float(sample_rate)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._write({
            "kind": "meta",
            "schema": TRACE_SCHEMA,
            "ts": time.time(),
            "pid": os.getpid(),
            "sample_rate": self.sample_rate,
            **({"run_id": run_id} if run_id else {}),
        })

    # -- span stack (per thread) --------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _sampled_round(self, attrs: dict) -> bool:
        """Deterministic keep/drop decision for a round-kind span."""
        if self.sample_rate >= 1.0:
            return True
        round_no = attrs.get("round")
        if not isinstance(round_no, int):
            return True
        bucket = (round_no * _HASH_MULT) % (1 << 32)
        return bucket < self.sample_rate * (1 << 32)

    def span(self, name: str, kind: str = "span", **attrs) -> Span:
        stack = self._stack()
        parent: Span | None = stack[-1] if stack else None
        suppressed = parent.suppressed if parent is not None else False
        if not suppressed and kind == "round":
            suppressed = not self._sampled_round(attrs)
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        return Span(
            self, name, kind, dict(attrs), span_id,
            parent.span_id if parent is not None else None, suppressed,
        )

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span, duration: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mis-nested exit: drop it and its orphans
            del stack[stack.index(span):]
        if span.suppressed:
            return
        self._write({
            "kind": span.kind,
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "ts": span.ts,
            "mono": span.mono,
            "dur": duration,
            "attrs": span.attrs,
        })

    def event(self, name: str, **attrs) -> None:
        """Record a zero-duration point event under the current span."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        if parent is not None and parent.suppressed:
            return
        self._write({
            "kind": "event",
            "name": name,
            "parent": parent.span_id if parent is not None else None,
            "ts": time.time(),
            "mono": time.perf_counter(),
            "attrs": dict(attrs),
        })

    # -- output --------------------------------------------------------------

    def _write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), default=_jsonable)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


# -- the process-wide recorder -------------------------------------------------

_recorder: NullRecorder | JsonlTraceRecorder = NULL_RECORDER


def get_recorder():
    """The currently installed recorder (the no-op one by default)."""
    return _recorder


def set_recorder(recorder) -> None:
    """Install ``recorder`` process-wide (``None`` restores the no-op)."""
    global _recorder
    _recorder = recorder if recorder is not None else NULL_RECORDER


class use_recorder:
    """Context manager installing a recorder for one run, then restoring.

    The previous recorder is restored (and the installed one flushed) on
    exit, even on error -- what :func:`repro.api.runner.obs_session`
    builds on.
    """

    def __init__(self, recorder):
        self.recorder = recorder
        self._previous = None

    def __enter__(self):
        self._previous = get_recorder()
        set_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc) -> bool:
        set_recorder(self._previous)
        self.recorder.flush()
        return False
