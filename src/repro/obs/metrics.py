"""A process-local metrics registry: counters, gauges, histograms.

The quantitative half of the observability layer (spans answer *where
time went in one run*; metrics answer *how much, in total, right now*).
Every instrumentation seam updates the process-wide registry returned by
:func:`get_registry`; updates are a dict lookup plus a float add, cheap
enough to leave always-on.

Three instrument kinds, Prometheus-compatible semantics:

- :class:`Counter` -- monotonically increasing totals (rounds run, bytes
  sent, retries).
- :class:`Gauge` -- a value that can move both ways (epsilon spent,
  per-phase second totals synced from a :class:`PhaseTimer`).
- :class:`Histogram` -- bucketed observations with sum and count (round
  seconds, frame send/recv latencies, deadline margins).

Each instrument is a *family* keyed by label values
(``REGISTRY.counter("net_frames_sent_total").labels(type="ping").inc()``);
calling ``inc``/``set``/``observe`` on the family itself addresses the
unlabelled child.  Two exposition formats:

- :meth:`MetricsRegistry.render_prometheus` -- the Prometheus text
  format, served on the federation server's optional
  ``GET /metrics`` side port (``obs.metrics_port``);
- :meth:`MetricsRegistry.snapshot` -- a plain-dict/JSON form for tests
  and archival.

Like :mod:`repro.obs.trace`, this module is stdlib-only and imports
nothing from ``repro``.
"""

from __future__ import annotations

import json
import re
import threading

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): microbenchmark floor to a minute.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0
)


class MetricError(ValueError):
    """Invalid metric name, label, or usage (kind mismatch, negative inc)."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("labels_kv", "value")

    def __init__(self, labels_kv):
        self.labels_kv = labels_kv
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("labels_kv", "value")

    def __init__(self, labels_kv):
        self.labels_kv = labels_kv
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Bucketed observations with a running sum and count."""

    __slots__ = ("labels_kv", "buckets", "bucket_counts", "sum", "count")

    def __init__(self, labels_kv, buckets):
        self.labels_kv = labels_kv
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style cumulative per-bucket counts (incl. +Inf)."""
        out, running = [], 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name, keyed by label values."""

    def __init__(self, name: str, kind: str, help: str = "",
                 unit: str = "", buckets=None):
        self.name = _check_name(name)
        self.kind = kind
        self.help = help
        self.unit = unit
        self.buckets = tuple(buckets) if buckets is not None else None
        if kind == "histogram":
            if not self.buckets:
                self.buckets = DEFAULT_BUCKETS
            if list(self.buckets) != sorted(self.buckets):
                raise MetricError(f"{name}: buckets must be sorted ascending")
        self._children: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels_kv):
        """The child for these label values (created on first use)."""
        for key in labels_kv:
            if not _LABEL_RE.match(key):
                raise MetricError(f"invalid label name {key!r}")
        key = tuple(sorted((k, str(v)) for k, v in labels_kv.items()))
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    kv = dict(key)
                    child = (Histogram(kv, self.buckets)
                             if self.kind == "histogram"
                             else _KINDS[self.kind](kv))
                    self._children[key] = child
        return child

    def children(self) -> list:
        return list(self._children.values())

    # Convenience: the unlabelled child's operations on the family itself.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """A named collection of metric families with exposition writers."""

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _family(self, name: str, kind: str, help: str, unit: str,
                buckets=None) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.get(name)
                if family is None:
                    family = MetricFamily(name, kind, help, unit, buckets)
                    self._families[name] = family
        if family.kind != kind:
            raise MetricError(
                f"metric {name!r} already registered as a {family.kind}, "
                f"not a {kind}")
        return family

    def counter(self, name: str, help: str = "", unit: str = "") -> MetricFamily:
        return self._family(name, "counter", help, unit)

    def gauge(self, name: str, help: str = "", unit: str = "") -> MetricFamily:
        return self._family(name, "gauge", help, unit)

    def histogram(self, name: str, help: str = "", unit: str = "",
                  buckets=None) -> MetricFamily:
        return self._family(name, "histogram", help, unit, buckets)

    def families(self) -> list[MetricFamily]:
        return [self._families[n] for n in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family (test isolation; never called by run code)."""
        with self._lock:
            self._families.clear()

    # -- exposition ----------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                if family.kind == "histogram":
                    cumulative = child.cumulative_counts()
                    for bound, count in zip(family.buckets, cumulative):
                        lines.append(_sample(
                            f"{family.name}_bucket",
                            {**child.labels_kv, "le": _fmt(bound)}, count))
                    lines.append(_sample(
                        f"{family.name}_bucket",
                        {**child.labels_kv, "le": "+Inf"}, cumulative[-1]))
                    lines.append(_sample(
                        f"{family.name}_sum", child.labels_kv, child.sum))
                    lines.append(_sample(
                        f"{family.name}_count", child.labels_kv, child.count))
                else:
                    lines.append(_sample(
                        family.name, child.labels_kv, child.value))
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """A plain-dict snapshot (JSON-safe) of every family."""
        out: dict = {}
        for family in self.families():
            entry: dict = {"type": family.kind}
            if family.help:
                entry["help"] = family.help
            if family.unit:
                entry["unit"] = family.unit
            samples = []
            for child in family.children():
                if family.kind == "histogram":
                    samples.append({
                        "labels": dict(child.labels_kv),
                        "sum": child.sum,
                        "count": child.count,
                        "buckets": {
                            _fmt(b): c for b, c in
                            zip((*family.buckets, float("inf")),
                                child.cumulative_counts())
                        },
                    })
                else:
                    samples.append({
                        "labels": dict(child.labels_kv),
                        "value": child.value,
                    })
            entry["samples"] = samples
            out[family.name] = entry
        return out

    def render_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    text = repr(float(value))
    return text[:-2] if text.endswith(".0") else text


def _sample(name: str, labels_kv: dict, value) -> str:
    if labels_kv:
        body = ",".join(
            f'{k}="{_escape(v)}"' for k, v in sorted(labels_kv.items())
        )
        return f"{name}{{{body}}} {_fmt_value(value)}"
    return f"{name} {_fmt_value(value)}"


def _fmt_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    return _fmt(value) if value == value else "NaN"


def _escape(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


# -- the process-wide registry -------------------------------------------------

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local registry every instrumentation seam writes to."""
    return _REGISTRY


# -- adapters ------------------------------------------------------------------


def record_phase_timer(timer, prefix: str = "protocol",
                       registry: MetricsRegistry | None = None,
                       **labels_kv) -> None:
    """Sync a :class:`repro.protocol.timing.PhaseTimer` into the registry.

    Timer totals are cumulative per instance, so they land in gauges
    (``<prefix>_phase_seconds{phase=...}`` / ``<prefix>_phase_calls``)
    that are *set*, not incremented -- calling this after every round is
    idempotent.  Merge worker timers first
    (:meth:`~repro.protocol.timing.PhaseTimer.merge`) when a protocol
    splits its phases across processes.
    """
    registry = registry if registry is not None else get_registry()
    seconds = registry.gauge(
        f"{prefix}_phase_seconds",
        help=f"Cumulative wall-clock seconds per {prefix} phase.",
        unit="seconds",
    )
    calls = registry.gauge(
        f"{prefix}_phase_calls",
        help=f"Cumulative executions per {prefix} phase.",
    )
    for name, total in timer.report().items():
        seconds.labels(phase=name, **labels_kv).set(total)
        calls.labels(phase=name, **labels_kv).set(timer.counts.get(name, 0))
