"""Zero-dependency observability: tracing spans + a metrics registry.

See ``docs/observability.md`` for the span model, the metric catalog,
and the trace-file format.  Disabled (the default), the subsystem is a
handful of no-op calls per round; enabled via the ``[obs]`` spec
section, it writes a ``trace.jsonl`` next to checkpoints and can serve
``GET /metrics`` on a side port.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    get_registry,
    record_phase_timer,
)
from .trace import (
    NULL_RECORDER,
    NULL_SPAN,
    TRACE_SCHEMA,
    JsonlTraceRecorder,
    NullRecorder,
    get_recorder,
    set_recorder,
    use_recorder,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricError",
    "MetricsRegistry",
    "get_registry",
    "record_phase_timer",
    "NULL_RECORDER",
    "NULL_SPAN",
    "TRACE_SCHEMA",
    "JsonlTraceRecorder",
    "NullRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
]
