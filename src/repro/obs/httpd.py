"""A tiny ``GET /metrics`` HTTP endpoint for live introspection.

When a run sets ``obs.metrics_port``, the federation server (or the
in-process runner) starts this single-threaded stdlib HTTP server on a
daemon thread.  Two routes:

- ``/metrics`` -- the Prometheus text exposition of the process
  registry, scrapeable by any Prometheus-compatible collector;
- ``/metrics.json`` -- the same registry as a JSON snapshot, for
  ``curl | jq`` style spot checks.

Everything else 404s.  The endpoint is read-only and carries no run
control; it exists so a long networked run can be watched without
touching the training process.
"""

from __future__ import annotations

import http.server
import threading

from .metrics import MetricsRegistry, get_registry


class _MetricsHandler(http.server.BaseHTTPRequestHandler):
    registry: MetricsRegistry  # set by start_metrics_server

    def do_GET(self):  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] == "/metrics":
            body = self.registry.render_prometheus().encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif self.path.split("?", 1)[0] == "/metrics.json":
            body = self.registry.render_json().encode()
            ctype = "application/json"
        else:
            self.send_error(404)
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # silence per-request stderr spam
        pass


class MetricsServer:
    """The running endpoint: ``.port`` for discovery, ``.close()`` to stop."""

    def __init__(self, httpd: http.server.HTTPServer,
                 thread: threading.Thread):
        self._httpd = httpd
        self._thread = thread
        self.port: int = httpd.server_address[1]

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def start_metrics_server(port: int, registry: MetricsRegistry | None = None,
                         host: str = "127.0.0.1") -> MetricsServer:
    """Serve ``registry`` (default: the process one) on ``host:port``.

    ``port=0`` binds an OS-assigned port (read it back from the returned
    object).  The server runs on a daemon thread and never blocks run
    shutdown.
    """
    handler = type("BoundMetricsHandler", (_MetricsHandler,), {
        "registry": registry if registry is not None else get_registry(),
    })
    httpd = http.server.HTTPServer((host, int(port)), handler)
    thread = threading.Thread(
        target=httpd.serve_forever, name="repro-metrics", daemon=True
    )
    thread.start()
    return MetricsServer(httpd, thread)
