"""Task-dependent losses and evaluation metrics.

The paper reports test accuracy (Creditcard, MNIST, HeartDisease), test loss
(MNIST, Fig. 8), and C-index (TcgaBrca).  ``make_loss`` picks the training
loss from the task and the model's output width; ``evaluate_model`` returns
the utility metric plus test loss for the round history.
"""

from __future__ import annotations

import numpy as np

from repro.data.federated import FederatedDataset
from repro.nn.losses import (
    BatchedLoss,
    BCEWithLogitsLoss,
    CoxPHLoss,
    Loss,
    SoftmaxCrossEntropyLoss,
    batched_counterpart,
    concordance_index,
)
from repro.nn.model import Sequential
from repro.nn.train import evaluate_accuracy, predict


def output_width(model: Sequential) -> int:
    """Width of the model's final Linear layer output."""
    for layer in reversed(model.layers):
        if hasattr(layer, "weight") and getattr(layer, "weight").ndim == 2:
            return layer.weight.shape[1]
    raise ValueError("model has no Linear output layer")


def make_loss(task: str, model: Sequential) -> Loss:
    """Fresh loss instance matching the task and model head."""
    if task == "survival":
        return CoxPHLoss()
    if task in ("binary", "multiclass"):
        if output_width(model) == 1:
            return BCEWithLogitsLoss()
        return SoftmaxCrossEntropyLoss()
    raise ValueError(f"unknown task: {task!r}")


def make_batched_loss(task: str, model: Sequential) -> BatchedLoss:
    """Group-batched loss matching :func:`make_loss` for the same task/model.

    Used by the vectorized engine, which trains many (silo, user) models in
    one pass and needs per-group losses with padding masks.
    """
    return batched_counterpart(make_loss(task, model))


def metric_name(task: str) -> str:
    return "c_index" if task == "survival" else "accuracy"


def evaluate_model(fed: FederatedDataset, model: Sequential) -> dict[str, float]:
    """Evaluate on the held-out test split.

    Returns:
        dict with ``"loss"`` and either ``"accuracy"`` or ``"c_index"``.
    """
    loss = make_loss(fed.task, model)
    out: dict[str, float] = {}
    pred = predict(model, fed.test_x)
    if not np.all(np.isfinite(pred)):
        # A diverged model (noise-dominated round): report infinite loss
        # and chance-level utility instead of warning-spewing NaN math.
        out["loss"] = float("inf")
        out["c_index" if fed.task == "survival" else "accuracy"] = (
            0.5 if fed.task == "survival" else 0.0
        )
        return out
    out["loss"] = float(loss.forward(pred, fed.test_y))
    if fed.task == "survival":
        times = fed.test_y[:, 0]
        events = fed.test_y[:, 1]
        out["c_index"] = concordance_index(pred.ravel(), times, events)
    else:
        out["accuracy"] = evaluate_accuracy(model, fed.test_x, fed.test_y)
    return out
