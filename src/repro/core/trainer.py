"""The federated training loop and round-by-round history.

The :class:`Trainer` wires a dataset, a model, and an
:class:`repro.core.methods.base.FLMethod` together: it initialises the
global model, runs T rounds, evaluates on the held-out test split, and
queries the method's privacy accountant -- producing exactly the
(utility, epsilon)-vs-round series plotted in the paper's Figures 4-9.

The round loop is exposed as a scheduler-driven step API: :meth:`Trainer.step`
advances one round (optionally under a
:class:`repro.core.weighting.RoundParticipation` roster) and
:meth:`Trainer.apply_external_round` records a round whose aggregation
happened outside the method (the buffered-async policy of
:mod:`repro.sim`).  :meth:`Trainer.run` is the plain synchronous driver,
bit-identical to the pre-simulation loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.compress import CompressionSpec
from repro.core.engine import EngineConfig
from repro.core.methods.base import FLMethod, ParticipationSummary
from repro.core.metrics import evaluate_model, metric_name
from repro.core.weighting import RoundParticipation
from repro.data.federated import FederatedDataset
from repro.nn.model import (
    Sequential,
    build_cox_linear,
    build_creditcard_mlp,
    build_logistic,
    build_mnist_cnn,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import get_recorder


def default_model_for(fed: FederatedDataset, rng: np.random.Generator) -> Sequential:
    """The paper's model for each benchmark dataset (by shape/task)."""
    if fed.test_x.ndim == 4:
        return build_mnist_cnn(rng, image_size=fed.test_x.shape[-1])
    n_features = fed.test_x.shape[1]
    if fed.task == "survival":
        return build_cox_linear(rng, in_features=n_features)
    if n_features <= 15:
        return build_logistic(rng, in_features=n_features)
    return build_creditcard_mlp(rng, in_features=n_features)


@dataclass(frozen=True)
class RoundRecord:
    """Metrics after one training round."""

    round: int
    metric_name: str
    metric: float
    loss: float
    epsilon: float | None


@dataclass(frozen=True)
class ParticipationRecord:
    """Realised participation of one training round (all rounds logged)."""

    round: int
    #: Silos whose update (or noise share) entered this round's aggregate.
    silos_seen: int
    #: Distinct users whose records influenced this round's aggregate.
    users_seen: int


@dataclass(frozen=True)
class CommRecord:
    """Wire traffic of one training round (all rounds logged).

    Compressing methods report the compressed sizes; everything else is
    charged the dense float64 default (``silos_seen * params * 8`` each
    way), so byte columns are comparable across methods.
    """

    round: int
    #: Total silo -> server payload bytes this round.
    uplink_bytes: int
    #: Total server -> silo broadcast bytes this round.
    downlink_bytes: int


@dataclass
class TrainingHistory:
    """Round-by-round metrics, one record per evaluated round."""

    method: str
    dataset: str
    #: The resolved :class:`repro.api.RunSpec` snapshot that produced this
    #: history (stamped by ``repro.api.run``; None for ad-hoc Trainer use)
    #: and its canonical content hash -- what makes archived histories
    #: self-describing and resume spec-checked.
    spec: dict | None = None
    spec_hash: str | None = None
    records: list[RoundRecord] = field(default_factory=list)
    #: Wall-clock seconds spent in each ``method.round`` call (all rounds,
    #: evaluated or not) -- the engine benchmarks read this.
    round_seconds: list[float] = field(default_factory=list)
    #: Per-round participation (all rounds, evaluated or not); under the
    #: plain trainer every round sees the full federation.
    participation: list[ParticipationRecord] = field(default_factory=list)
    #: Per-round wire traffic (all rounds, evaluated or not); the
    #: compression benches and the bandwidth-constrained scenarios read it.
    comm: list[CommRecord] = field(default_factory=list)
    #: Cumulative per-phase protocol seconds (merged across workers) as
    #: reported by the method's ``timing_report()``; empty for methods
    #: without a :class:`repro.protocol.timing.PhaseTimer`.
    phase_seconds: dict = field(default_factory=dict)

    @property
    def total_round_seconds(self) -> float:
        """Total wall-clock time spent inside ``method.round`` calls."""
        return float(sum(self.round_seconds))

    def participation_summary(self) -> tuple[float, float] | None:
        """Mean (silos, users) seen per round, or None when never recorded."""
        if not self.participation:
            return None
        silos = [p.silos_seen for p in self.participation]
        users = [p.users_seen for p in self.participation]
        return float(np.mean(silos)), float(np.mean(users))

    def comm_summary(self) -> tuple[float, float] | None:
        """Mean per-round (uplink, downlink) bytes, or None when unlogged."""
        if not self.comm:
            return None
        up = [c.uplink_bytes for c in self.comm]
        down = [c.downlink_bytes for c in self.comm]
        return float(np.mean(up)), float(np.mean(down))

    @property
    def total_uplink_bytes(self) -> int:
        """Total silo -> server bytes across all recorded rounds."""
        return int(sum(c.uplink_bytes for c in self.comm))

    @property
    def total_downlink_bytes(self) -> int:
        """Total server -> silo bytes across all recorded rounds."""
        return int(sum(c.downlink_bytes for c in self.comm))

    @property
    def final(self) -> RoundRecord:
        if not self.records:
            raise ValueError("no rounds recorded")
        return self.records[-1]

    def series(self, key: str) -> list[float]:
        """Column extraction: 'metric', 'loss', 'epsilon', or 'round'."""
        if key not in ("metric", "loss", "epsilon", "round"):
            raise ValueError(f"unknown series key: {key!r}")
        return [getattr(r, key) for r in self.records]

    def summary(self) -> str:
        r = self.final
        eps = f"{r.epsilon:.3f}" if r.epsilon is not None else "inf (non-private)"
        return (
            f"{self.method} on {self.dataset}: round {r.round} "
            f"{r.metric_name}={r.metric:.4f} loss={r.loss:.4f} eps={eps}"
        )


class Trainer:
    """Runs one FL method for T rounds on a federated dataset.

    The trainer is a stateful round stepper: :attr:`params`,
    :attr:`history`, and the round counter advance with every
    :meth:`step` / :meth:`apply_external_round` call, and :meth:`run`
    simply steps until all rounds are done.  External schedulers (the
    :mod:`repro.sim` runtime) drive the same API with per-round
    participation rosters.
    """

    def __init__(
        self,
        fed: FederatedDataset,
        method: FLMethod,
        rounds: int,
        model: Sequential | None = None,
        delta: float = 1e-5,
        seed: int = 0,
        eval_every: int = 1,
        compression: CompressionSpec | None = None,
        engine: EngineConfig | None = None,
    ):
        if rounds < 1:
            raise ValueError("need at least one round")
        if not 0 < delta < 1:
            raise ValueError("delta must lie in (0, 1)")
        if eval_every < 1:
            raise ValueError("eval_every must be positive")
        self.fed = fed
        self.method = method
        self.rounds = rounds
        self.delta = delta
        self.eval_every = eval_every
        self.rng = np.random.default_rng(seed)
        self.model = model if model is not None else default_model_for(fed, self.rng)
        # The trainer-level spec overrides a method-level one for *this*
        # binding only -- passed explicitly so the method object itself is
        # never mutated (a method reused across trainers must not inherit
        # an earlier trainer's compression).
        # ``engine`` configures the sharded execution layout; results are
        # bit-identical for every (workers, shard_size) setting, so this
        # is a pure performance/memory knob.
        method.prepare(
            fed, self.model, self.rng, compression=compression, engine=engine
        )
        label = getattr(method, "display_name", method.name)
        self.history = TrainingHistory(method=label, dataset=fed.name)
        self._params: np.ndarray = self.model.get_flat_params()
        self._round = 0

    @property
    def params(self) -> np.ndarray:
        """The current flat global parameter vector."""
        return self._params

    @property
    def round_index(self) -> int:
        """Number of rounds completed so far."""
        return self._round

    @property
    def done(self) -> bool:
        """Whether all configured rounds have run."""
        return self._round >= self.rounds

    def step(
        self, participation: RoundParticipation | None = None
    ) -> RoundRecord | None:
        """Advance one round; returns the evaluation record if one was due.

        ``participation`` restricts the round's roster (None = everyone).
        """
        if self.done:
            raise RuntimeError("all rounds already completed")
        t = self._round
        with get_recorder().span("round", kind="round", round=t + 1) as span:
            start = time.perf_counter()
            self._params = self.method.round(t, self._params, participation)
            seconds = time.perf_counter() - start
            record = self._finish_round(seconds, participation)
            self._annotate_round_span(span, seconds)
        return record

    def apply_external_round(
        self,
        params: np.ndarray,
        seconds: float = 0.0,
        participation_summary: ParticipationSummary | None = None,
    ) -> RoundRecord | None:
        """Record a round whose aggregation ran outside the method.

        Async policies merge buffered silo payloads themselves and hand the
        resulting params here so history/evaluation bookkeeping stays in
        one place.  ``participation_summary`` overrides the method's
        ``last_participation`` for the participation log.
        """
        if self.done:
            raise RuntimeError("all rounds already completed")
        with get_recorder().span(
            "round", kind="round", round=self._round + 1, external=True
        ) as span:
            self._params = params
            if participation_summary is not None:
                self.method.last_participation = participation_summary
            record = self._finish_round(seconds, participation=None)
            self._annotate_round_span(span, seconds)
        return record

    def _finish_round(
        self, seconds: float, participation: RoundParticipation | None
    ) -> RoundRecord | None:
        """Shared bookkeeping after a round: logs, counter, evaluation."""
        t = self._round
        self.history.round_seconds.append(seconds)
        self.history.participation.append(self._participation_record(t, participation))
        self.history.comm.append(self._comm_record(t, participation))
        self._round += 1
        self._record_round_metrics(seconds)
        record = None
        if self._round % self.eval_every == 0 or self._round == self.rounds:
            record = self._evaluate()
        if self.done:
            self.model.set_flat_params(self._params)
        return record

    def _annotate_round_span(self, span, seconds: float) -> None:
        """Attach the just-finished round's bookkeeping to its trace span."""
        part = self.history.participation[-1]
        comm = self.history.comm[-1]
        span.set(
            seconds=seconds,
            silos_seen=part.silos_seen,
            users_seen=part.users_seen,
            uplink_bytes=comm.uplink_bytes,
            downlink_bytes=comm.downlink_bytes,
        )

    def _record_round_metrics(self, seconds: float) -> None:
        """Update the process metrics registry with the finished round."""
        reg = get_registry()
        reg.counter(
            "trainer_rounds_total", help="Training rounds completed."
        ).inc()
        reg.histogram(
            "trainer_round_seconds",
            help="Wall-clock seconds per training round.", unit="seconds",
        ).observe(seconds)
        comm = self.history.comm[-1]
        reg.counter(
            "comm_uplink_bytes_total",
            help="Silo -> server payload bytes (TrainingHistory ledger).",
            unit="bytes",
        ).inc(comm.uplink_bytes)
        reg.counter(
            "comm_downlink_bytes_total",
            help="Server -> silo broadcast bytes (TrainingHistory ledger).",
            unit="bytes",
        ).inc(comm.downlink_bytes)
        # Cumulative protocol-phase totals (secure methods): into history
        # for reports and into phase gauges for /metrics.
        report = getattr(self.method, "timing_report", None)
        if callable(report):
            phases = report()
            if phases:
                self.history.phase_seconds = dict(phases)
                gauge = reg.gauge(
                    "protocol_phase_seconds",
                    help="Cumulative seconds per secure-protocol phase.",
                    unit="seconds",
                )
                for name, total in phases.items():
                    gauge.labels(phase=name).set(total)

    def _participation_record(
        self, t: int, participation: RoundParticipation | None
    ) -> ParticipationRecord:
        """The round's realised participation (method-reported when known)."""
        summary = self.method.last_participation
        if summary is not None:
            return ParticipationRecord(t + 1, summary.silos_seen, summary.users_seen)
        # Methods predating the participation API under full rosters: the
        # whole federation was eligible.
        if participation is None:
            return ParticipationRecord(t + 1, self.fed.n_silos, self.fed.n_users)
        return ParticipationRecord(
            t + 1, participation.n_active_silos, self.fed.n_users
        )

    def _comm_record(
        self, t: int, participation: RoundParticipation | None
    ) -> CommRecord:
        """The round's wire traffic (method-reported when known).

        Methods that track bytes themselves (the compressing ULDP-AVG
        family) report through ``last_comm``; everything else is charged
        the dense float64 default so byte columns stay comparable.
        Downlink in the dense default goes to the round's broadcast
        recipients (silos alive at round start), not just the
        contributors -- a deadline-missing silo still downloaded the
        model.
        """
        summary = self.method.last_comm
        if summary is not None:
            return CommRecord(t + 1, summary.uplink_bytes, summary.downlink_bytes)
        silos_seen = self.history.participation[-1].silos_seen
        recipients = (
            self.fed.n_silos
            if participation is None
            else participation.n_broadcast_silos
        )
        dense = self._params.size * 8
        return CommRecord(t + 1, silos_seen * dense, recipients * dense)

    def _evaluate(self) -> RoundRecord:
        """Evaluate the current params; appends and returns the record."""
        with get_recorder().span("evaluate", kind="phase", round=self._round):
            self.model.set_flat_params(self._params)
            scores = evaluate_model(self.fed, self.model)
            name = metric_name(self.fed.task)
            record = RoundRecord(
                round=self._round,
                metric_name=name,
                metric=scores[name],
                loss=scores["loss"],
                epsilon=self.method.epsilon(self.delta)
                if self.method.is_private
                else None,
            )
        self.history.records.append(record)
        if record.epsilon is not None:
            get_registry().gauge(
                "privacy_epsilon_spent",
                help="Epsilon spent so far (accountant query at eval).",
            ).set(record.epsilon)
        return record

    def run(self) -> TrainingHistory:
        """Run all remaining rounds; returns the metric/epsilon history.

        Releases the method's sharded-engine worker pool on the way out
        (harmless for the single-process default; the pool is recreated
        lazily if the method is stepped again afterwards).
        """
        try:
            while not self.done:
                self.step()
        finally:
            self.method.close()
        return self.history
