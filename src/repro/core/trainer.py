"""The federated training loop and round-by-round history.

The :class:`Trainer` wires a dataset, a model, and an
:class:`repro.core.methods.base.FLMethod` together: it initialises the
global model, runs T rounds, evaluates on the held-out test split, and
queries the method's privacy accountant -- producing exactly the
(utility, epsilon)-vs-round series plotted in the paper's Figures 4-9.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.methods.base import FLMethod
from repro.core.metrics import evaluate_model, metric_name
from repro.data.federated import FederatedDataset
from repro.nn.model import (
    Sequential,
    build_cox_linear,
    build_creditcard_mlp,
    build_logistic,
    build_mnist_cnn,
)


def default_model_for(fed: FederatedDataset, rng: np.random.Generator) -> Sequential:
    """The paper's model for each benchmark dataset (by shape/task)."""
    if fed.test_x.ndim == 4:
        return build_mnist_cnn(rng, image_size=fed.test_x.shape[-1])
    n_features = fed.test_x.shape[1]
    if fed.task == "survival":
        return build_cox_linear(rng, in_features=n_features)
    if n_features <= 15:
        return build_logistic(rng, in_features=n_features)
    return build_creditcard_mlp(rng, in_features=n_features)


@dataclass(frozen=True)
class RoundRecord:
    """Metrics after one training round."""

    round: int
    metric_name: str
    metric: float
    loss: float
    epsilon: float | None


@dataclass
class TrainingHistory:
    """Round-by-round metrics, one record per evaluated round."""

    method: str
    dataset: str
    records: list[RoundRecord] = field(default_factory=list)
    #: Wall-clock seconds spent in each ``method.round`` call (all rounds,
    #: evaluated or not) -- the engine benchmarks read this.
    round_seconds: list[float] = field(default_factory=list)

    @property
    def total_round_seconds(self) -> float:
        """Total wall-clock time spent inside ``method.round`` calls."""
        return float(sum(self.round_seconds))

    @property
    def final(self) -> RoundRecord:
        if not self.records:
            raise ValueError("no rounds recorded")
        return self.records[-1]

    def series(self, key: str) -> list[float]:
        """Column extraction: 'metric', 'loss', 'epsilon', or 'round'."""
        if key not in ("metric", "loss", "epsilon", "round"):
            raise ValueError(f"unknown series key: {key!r}")
        return [getattr(r, key) for r in self.records]

    def summary(self) -> str:
        r = self.final
        eps = f"{r.epsilon:.3f}" if r.epsilon is not None else "inf (non-private)"
        return (
            f"{self.method} on {self.dataset}: round {r.round} "
            f"{r.metric_name}={r.metric:.4f} loss={r.loss:.4f} eps={eps}"
        )


class Trainer:
    """Runs one FL method for T rounds on a federated dataset."""

    def __init__(
        self,
        fed: FederatedDataset,
        method: FLMethod,
        rounds: int,
        model: Sequential | None = None,
        delta: float = 1e-5,
        seed: int = 0,
        eval_every: int = 1,
    ):
        if rounds < 1:
            raise ValueError("need at least one round")
        if not 0 < delta < 1:
            raise ValueError("delta must lie in (0, 1)")
        if eval_every < 1:
            raise ValueError("eval_every must be positive")
        self.fed = fed
        self.method = method
        self.rounds = rounds
        self.delta = delta
        self.eval_every = eval_every
        self.rng = np.random.default_rng(seed)
        self.model = model if model is not None else default_model_for(fed, self.rng)
        method.prepare(fed, self.model, self.rng)

    def run(self) -> TrainingHistory:
        """Run all rounds; returns the metric/epsilon history."""
        label = getattr(self.method, "display_name", self.method.name)
        history = TrainingHistory(method=label, dataset=self.fed.name)
        params = self.model.get_flat_params()
        for t in range(self.rounds):
            start = time.perf_counter()
            params = self.method.round(t, params)
            history.round_seconds.append(time.perf_counter() - start)
            if (t + 1) % self.eval_every == 0 or t == self.rounds - 1:
                self.model.set_flat_params(params)
                scores = evaluate_model(self.fed, self.model)
                name = metric_name(self.fed.task)
                history.records.append(
                    RoundRecord(
                        round=t + 1,
                        metric_name=name,
                        metric=scores[name],
                        loss=scores["loss"],
                        epsilon=self.method.epsilon(self.delta)
                        if self.method.is_private
                        else None,
                    )
                )
        self.model.set_flat_params(params)
        return history
