"""Per-user per-silo clipping weights W (Algorithm 3 and Eq. 3).

The weight matrix W has shape (|S|, |U|); ULDP-AVG multiplies user u's
clipped model delta in silo s by ``W[s, u]``.  User-level sensitivity of the
cross-silo aggregate equals ``C * max_u sum_s W[s, u]``, so any W with
column sums at most one yields ULDP with sensitivity C (Theorem 3).

Two strategies from the paper:

- :func:`uniform_weights` -- ``w = 1/|S|`` everywhere; requires no knowledge
  of the data distribution (privacy-free).
- :func:`proportional_weights` -- Eq. (3): ``w[s, u] = n[s, u] / N_u``,
  favouring the silos where the user has more records (smaller clipping
  bias, see Remark 4).  Computing it privately is the job of Protocol 1.

Partial participation (the :mod:`repro.sim` runtime) perturbs W per round:
dropped silos and departed users contribute nothing, and the surviving
weights may be renormalised.  :class:`RoundParticipation` carries one
round's roster and :func:`participation_weights` produces the *realised*
weight matrix, whose maximum column sum is the round's true sensitivity
multiplier (``realised_sensitivity``) -- the quantity the accountant must
see for epsilon under dropout to be honest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Weight renormalisation strategies under partial participation.
RENORMS = ("none", "survivors", "carryover")


class QuorumError(RuntimeError):
    """A round has fewer live or surviving silos than the configured quorum.

    Raised instead of aggregating: releasing an aggregate built from too
    few silos both wastes privacy budget on a noise-dominated update and
    -- for the masked secure backend -- concentrates the revealed
    mask-recovery keys on a small survivor set.  Shared by the networked
    runtime's ``net.min_quorum`` (live-silo quorum, checked before a round
    starts) and :class:`repro.protocol.SecureUldpAvg`'s ``min_survivors``
    (surviving-silo quorum, checked at aggregation time so simulated
    dropout counts too).
    """


def uniform_weights(n_silos: int, n_users: int) -> np.ndarray:
    """W[s, u] = 1/|S| for all s, u (the default ULDP-AVG weighting)."""
    if n_silos < 1 or n_users < 1:
        raise ValueError("need at least one silo and one user")
    return np.full((n_silos, n_users), 1.0 / n_silos)


def proportional_weights(histogram: np.ndarray) -> np.ndarray:
    """Eq. (3): W[s, u] = n[s, u] / N_u (0 where the user has no records).

    Args:
        histogram: integer matrix n[s, u] of per-silo per-user record counts.
    """
    hist = np.asarray(histogram, dtype=np.float64)
    if hist.ndim != 2:
        raise ValueError("histogram must be a (|S|, |U|) matrix")
    if np.any(hist < 0):
        raise ValueError("record counts must be non-negative")
    totals = hist.sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        weights = np.where(totals > 0, hist / np.where(totals > 0, totals, 1.0), 0.0)
    return weights


def validate_weights(weights: np.ndarray, atol: float = 1e-9) -> None:
    """Check the Theorem 3 constraints: W >= 0 and column sums <= 1.

    Column sums strictly below one are allowed (users absent from all silos,
    or sub-sampled users with zeroed weights) -- they only lower sensitivity.

    Raises:
        ValueError: when a constraint is violated.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("weights must be a (|S|, |U|) matrix")
    # NaN compares False against every bound, so the sign and column-sum
    # checks below would silently wave a NaN matrix through -- reject
    # non-finite entries explicitly first.
    if not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite")
    if np.any(w < -atol):
        raise ValueError("weights must be non-negative")
    col_sums = w.sum(axis=0)
    if np.any(col_sums > 1.0 + atol):
        raise ValueError("per-user weight sums must not exceed 1")


def subsample_weights(
    weights: np.ndarray, sampled_users: np.ndarray
) -> np.ndarray:
    """Zero the columns of non-sampled users (Algorithm 4, lines 4-7)."""
    w = np.array(weights, dtype=np.float64, copy=True)
    sampled = np.asarray(sampled_users, dtype=np.int64)
    # Fancy indexing would silently wrap negative ids to the *end* of the
    # user axis (sampling the wrong user); ids past the end would raise a
    # cryptic IndexError.  Validate the range explicitly.
    if sampled.size and (sampled.min() < 0 or sampled.max() >= w.shape[1]):
        raise ValueError(
            f"sampled user ids must lie in [0, {w.shape[1]}) "
        )
    mask = np.zeros(w.shape[1], dtype=bool)
    mask[sampled] = True
    w[:, ~mask] = 0.0
    return w


# -- partial participation ----------------------------------------------------


@dataclass(frozen=True)
class RoundParticipation:
    """One round's federation roster under partial participation.

    Attributes:
        silo_mask: boolean (|S|,) -- True for silos contributing this round
            (survivors of dropout, silos that met the deadline, ...).
        user_mask: boolean (|U|,) of currently-active users, or None for
            all users (no churn).
        silo_gain: optional (|S|,) carryover multipliers applied to the
            surviving silos' weights (``renorm="carryover"``: a silo that
            missed g-1 rounds re-enters with gain g so its users' missed
            weight is made up).  Gains above one raise the round's
            sensitivity; :func:`realised_sensitivity` reports that.
        renorm: one of :data:`RENORMS`.  ``"none"`` keeps the surviving
            weights as-is (column sums shrink under dropout -- unbiased
            noise accounting, biased aggregate); ``"survivors"`` rescales
            each user's surviving weights so the column sum is restored to
            its full-participation value (unbiased aggregate, sensitivity
            still <= C); ``"carryover"`` applies ``silo_gain`` (which is
            required in that mode -- construction fails without it).
        noise_rescale: when True (default) the surviving silos inflate
            their per-silo noise to ``sigma * C / sqrt(A)`` (A = number of
            noise-contributing silos) so the summed noise keeps std
            ``sigma * C``; when False silos keep the nominal
            ``sigma * C / sqrt(|S|)`` share and the accountant is charged
            the reduced ``sqrt(A / |S|)`` noise scale instead.
        broadcast_mask: boolean (|S|,) -- True for silos that received the
            server's model broadcast this round (silos alive at round
            start, *before* deadline or bandwidth-admission filtering), or
            None when the recipients are exactly ``silo_mask``.  The byte
            ledger charges downlink to these recipients: a silo that got
            the model but then missed the deadline still consumed
            broadcast bytes.
    """

    silo_mask: np.ndarray
    user_mask: np.ndarray | None = None
    silo_gain: np.ndarray | None = None
    renorm: str = "none"
    noise_rescale: bool = True
    broadcast_mask: np.ndarray | None = None

    def __post_init__(self):
        if self.renorm not in RENORMS:
            raise ValueError(f"renorm must be one of {RENORMS}")
        if self.renorm == "carryover" and self.silo_gain is None:
            # Without gains, carryover would silently degrade to
            # renorm="none" (the weight application skips the gain step),
            # so a caller asking for make-up semantics would get neither
            # the make-up nor an error.  Fail at construction instead.
            raise ValueError(
                "renorm='carryover' requires silo_gain (per-silo make-up "
                "multipliers); use renorm='none' to keep surviving weights"
            )
        object.__setattr__(
            self, "silo_mask", np.asarray(self.silo_mask, dtype=bool)
        )
        if self.user_mask is not None:
            object.__setattr__(
                self, "user_mask", np.asarray(self.user_mask, dtype=bool)
            )
        if self.silo_gain is not None:
            gain = np.asarray(self.silo_gain, dtype=np.float64)
            if np.any(gain < 0):
                raise ValueError("silo gains must be non-negative")
            object.__setattr__(self, "silo_gain", gain)
        if self.broadcast_mask is not None:
            object.__setattr__(
                self, "broadcast_mask", np.asarray(self.broadcast_mask, dtype=bool)
            )

    @property
    def n_active_silos(self) -> int:
        """Number of silos contributing to this round's aggregate."""
        return int(self.silo_mask.sum())

    @property
    def n_broadcast_silos(self) -> int:
        """Number of silos the server's broadcast reached this round."""
        mask = (
            self.broadcast_mask if self.broadcast_mask is not None else self.silo_mask
        )
        return int(mask.sum())

    @classmethod
    def full(cls, n_silos: int, n_users: int | None = None) -> "RoundParticipation":
        """Everyone participates (the idealised setting of the paper)."""
        return cls(silo_mask=np.ones(n_silos, dtype=bool))


def participation_weights(
    weights: np.ndarray, participation: RoundParticipation
) -> np.ndarray:
    """The realised weight matrix of one partial-participation round.

    Masks dropped silos' rows and departed users' columns, then applies the
    participation's renormalisation strategy.  Under full participation
    every strategy returns the input weights bit-exactly (the survivor
    rescaling factor is exactly 1.0), which is what makes the synchronous
    zero-dropout policy an oracle for the plain trainer.
    """
    w = np.array(weights, dtype=np.float64, copy=True)
    if participation.user_mask is not None:
        w[:, ~participation.user_mask] = 0.0
    masked_users = w  # silo rows still intact: the renorm baseline
    w = w.copy()
    w[~participation.silo_mask, :] = 0.0
    if participation.renorm == "survivors":
        surviving = w.sum(axis=0)
        target = masked_users.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            factor = np.where(surviving > 0, target / np.where(surviving > 0, surviving, 1.0), 0.0)
        w = w * factor
    elif participation.renorm == "carryover":
        # Construction guarantees silo_gain is present for carryover.
        w = w * participation.silo_gain[:, None]
    return w


def realised_sensitivity(realised_weights: np.ndarray) -> float:
    """Max per-user weight sum -- the round's sensitivity in units of C.

    Under the Theorem 3 constraint this is at most 1; carryover gains can
    push it above 1, and the accountant must then divide the round's
    effective noise multiplier by this factor for epsilon to stay honest.
    """
    w = np.asarray(realised_weights, dtype=np.float64)
    if w.size == 0:
        return 0.0
    return float(w.sum(axis=0).max(initial=0.0))
