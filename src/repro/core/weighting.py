"""Per-user per-silo clipping weights W (Algorithm 3 and Eq. 3).

The weight matrix W has shape (|S|, |U|); ULDP-AVG multiplies user u's
clipped model delta in silo s by ``W[s, u]``.  User-level sensitivity of the
cross-silo aggregate equals ``C * max_u sum_s W[s, u]``, so any W with
column sums at most one yields ULDP with sensitivity C (Theorem 3).

Two strategies from the paper:

- :func:`uniform_weights` -- ``w = 1/|S|`` everywhere; requires no knowledge
  of the data distribution (privacy-free).
- :func:`proportional_weights` -- Eq. (3): ``w[s, u] = n[s, u] / N_u``,
  favouring the silos where the user has more records (smaller clipping
  bias, see Remark 4).  Computing it privately is the job of Protocol 1.
"""

from __future__ import annotations

import numpy as np


def uniform_weights(n_silos: int, n_users: int) -> np.ndarray:
    """W[s, u] = 1/|S| for all s, u (the default ULDP-AVG weighting)."""
    if n_silos < 1 or n_users < 1:
        raise ValueError("need at least one silo and one user")
    return np.full((n_silos, n_users), 1.0 / n_silos)


def proportional_weights(histogram: np.ndarray) -> np.ndarray:
    """Eq. (3): W[s, u] = n[s, u] / N_u (0 where the user has no records).

    Args:
        histogram: integer matrix n[s, u] of per-silo per-user record counts.
    """
    hist = np.asarray(histogram, dtype=np.float64)
    if hist.ndim != 2:
        raise ValueError("histogram must be a (|S|, |U|) matrix")
    if np.any(hist < 0):
        raise ValueError("record counts must be non-negative")
    totals = hist.sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        weights = np.where(totals > 0, hist / np.where(totals > 0, totals, 1.0), 0.0)
    return weights


def validate_weights(weights: np.ndarray, atol: float = 1e-9) -> None:
    """Check the Theorem 3 constraints: W >= 0 and column sums <= 1.

    Column sums strictly below one are allowed (users absent from all silos,
    or sub-sampled users with zeroed weights) -- they only lower sensitivity.

    Raises:
        ValueError: when a constraint is violated.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("weights must be a (|S|, |U|) matrix")
    if np.any(w < -atol):
        raise ValueError("weights must be non-negative")
    col_sums = w.sum(axis=0)
    if np.any(col_sums > 1.0 + atol):
        raise ValueError("per-user weight sums must not exceed 1")


def subsample_weights(
    weights: np.ndarray, sampled_users: np.ndarray
) -> np.ndarray:
    """Zero the columns of non-sampled users (Algorithm 4, lines 4-7)."""
    w = np.array(weights, dtype=np.float64, copy=True)
    mask = np.zeros(w.shape[1], dtype=bool)
    mask[np.asarray(sampled_users, dtype=np.int64)] = True
    w[:, ~mask] = 0.0
    return w
