"""The Uldp-FL core: federated methods, weighting, metrics, and the trainer.

This package implements the paper's Algorithms 1-4 plus the non-private
FedAVG baseline, the clipping-weight strategies of Section 4.1, and the
training loop that produces the privacy/utility series of the evaluation.
"""

from repro.core.clipping import clip_factor, clip_factor_rows, l2_clip, l2_clip_rows
from repro.core.engine import (
    ENGINES,
    LocalJob,
    batched_gradients,
    batched_local_deltas,
    draw_minibatch_schedule,
    validate_engine,
)
from repro.core.methods import (
    Default,
    FLMethod,
    UldpAvg,
    UldpGroup,
    UldpNaive,
    UldpSgd,
    build_group_flags,
    resolve_group_size,
)
from repro.core.methods.base import CommSummary, ParticipationSummary
from repro.core.metrics import evaluate_model, make_batched_loss, make_loss, metric_name
from repro.core.trainer import (
    CommRecord,
    ParticipationRecord,
    RoundRecord,
    Trainer,
    TrainingHistory,
    default_model_for,
)
from repro.core.weighting import (
    RENORMS,
    RoundParticipation,
    participation_weights,
    proportional_weights,
    realised_sensitivity,
    subsample_weights,
    uniform_weights,
    validate_weights,
)

__all__ = [
    "clip_factor",
    "clip_factor_rows",
    "l2_clip",
    "l2_clip_rows",
    "ENGINES",
    "LocalJob",
    "batched_gradients",
    "batched_local_deltas",
    "draw_minibatch_schedule",
    "validate_engine",
    "FLMethod",
    "Default",
    "UldpAvg",
    "UldpGroup",
    "UldpNaive",
    "UldpSgd",
    "build_group_flags",
    "resolve_group_size",
    "evaluate_model",
    "make_batched_loss",
    "make_loss",
    "metric_name",
    "CommRecord",
    "CommSummary",
    "ParticipationRecord",
    "ParticipationSummary",
    "RoundRecord",
    "Trainer",
    "TrainingHistory",
    "default_model_for",
    "RENORMS",
    "RoundParticipation",
    "participation_weights",
    "proportional_weights",
    "realised_sensitivity",
    "subsample_weights",
    "uniform_weights",
    "validate_weights",
]
