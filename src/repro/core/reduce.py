"""Reproducible streaming reduction for sharded aggregation.

The sharded engine streams per-shard partial aggregates back to the
parent instead of materialising every participating user's row.  That
only preserves the repo's bit-identity contract if the reduction is
*partition independent*: summing shard partials in any grouping must
give exactly the same float64 bits as the single-process path.  Plain
float addition is not associative, so :class:`BinnedSum` implements the
standard reproducible-summation construction (Demmel & Nguyen's binned
accumulation, as in ReproBLAS): every addend is split exactly across a
small ladder of fixed-granularity bins, bin accumulators only ever hold
exact multiples of their granularity, and therefore every add and every
merge is *exact* -- the one rounding step happens once, in a fixed
order, in :meth:`total`.

Why each step is exact (all bounds asserted at runtime):

* extraction -- for a bin of granularity ``g`` the magic constant
  ``M = 1.5 * 2**52 * g`` forces round-to-nearest at granularity ``g``:
  ``q = (u + M) - M`` is ``u`` rounded to a multiple of ``g`` and the
  residual ``u - q`` (``|u - q| <= g/2``) is computed exactly, because
  ``q`` agrees with ``u`` in all bits at or above ``g``;
* accumulation -- addends are bounded by ``scale``, so each bin holds a
  multiple of its granularity below ``2**53 * g`` for up to ``2**28``
  addends, and float addition of such pairs is exact;
* merge -- two bin accumulators with the same ``scale`` share the same
  granularity ladder, so merging is the same exact addition.

``total`` rounds the bins from finest to coarsest, a fixed order, so
the final bits are a pure function of the *multiset* of addends -- not
of how they were sharded across workers or merged across the tree.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BinnedSum", "fold_scale", "tree_reduce"]

#: Bits of granularity separating adjacent bins.  24 leaves plenty of
#: carry headroom in a float64 accumulator (53 - 24 - 1 = 28 bits).
_BIN_WIDTH = 24

#: Number of bins.  Five bins cover ``5 * 24 = 120`` bits below the
#: scale bound -- anything smaller than ``scale * 2**-120`` is dropped,
#: far below the 52 fractional bits a single float64 result can hold.
_N_BINS = 5

#: Maximum number of addends a bin accumulator absorbs exactly.
_MAX_COUNT = 1 << (53 - _BIN_WIDTH - 1)


def fold_scale(clip: float, chunk: int) -> float:
    """Magnitude bound for one weighted micro-batch partial.

    A partial is ``weights @ rows`` over at most ``chunk`` rows with
    ``|weights| <= 1`` (the weighting invariant: per-user weights sum to
    at most one across silos) and ``|rows[i, j]| <= clip`` (rows are
    L2-clipped, so every coordinate is bounded by the clip norm).  The
    bound is rounded up to a power of two so the bin granularities are
    exact powers of two as well.
    """
    if not np.isfinite(clip) or clip <= 0.0:
        raise ValueError(f"clip bound must be finite and positive, got {clip!r}")
    bound = float(clip) * float(chunk)
    return float(2.0 ** np.ceil(np.log2(bound)))


class BinnedSum:
    """Order- and partition-independent float64 vector accumulator.

    Addends must be bounded by ``scale`` in magnitude; the bound is
    checked on every :meth:`add` because exactness (and hence the
    engine's bit-identity guarantee) depends on it.
    """

    __slots__ = ("size", "scale", "count", "_bins", "_grains", "_magic")

    def __init__(self, size: int, scale: float):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if not np.isfinite(scale) or scale <= 0.0:
            raise ValueError(f"scale must be finite and positive, got {scale!r}")
        self.size = int(size)
        self.scale = float(scale)
        self.count = 0
        self._bins = np.zeros((_N_BINS, self.size))
        # Granularity ladder: bin k rounds at scale * 2**(-24 * (k + 1)).
        self._grains = self.scale * 2.0 ** (
            -_BIN_WIDTH * (np.arange(_N_BINS, dtype=np.float64) + 1.0)
        )
        self._magic = 1.5 * 2.0**52 * self._grains

    def add(self, vec: np.ndarray) -> None:
        """Fold one float64 vector (``|vec| <= scale`` elementwise) in."""
        vec = np.asarray(vec, dtype=np.float64)
        if vec.shape != (self.size,):
            raise ValueError(f"expected shape ({self.size},), got {vec.shape}")
        peak = float(np.max(np.abs(vec), initial=0.0))
        if not peak <= self.scale:  # also rejects NaN
            raise ValueError(
                f"addend magnitude {peak!r} exceeds the scale bound "
                f"{self.scale!r}; the binned sum would no longer be exact"
            )
        if self.count >= _MAX_COUNT:
            raise OverflowError(
                f"binned accumulator absorbed {self.count} addends; beyond "
                f"{_MAX_COUNT} the bins can overflow their exact range"
            )
        residual = vec.copy()
        for k in range(_N_BINS):
            magic = self._magic[k]
            quantum = (residual + magic) - magic
            self._bins[k] += quantum
            residual -= quantum
        self.count += 1

    def merge(self, other: "BinnedSum") -> None:
        """Absorb another accumulator (exact, so merge order never matters)."""
        if other.size != self.size or other.scale != self.scale:
            raise ValueError(
                "cannot merge binned sums with different geometry: "
                f"({self.size}, {self.scale!r}) vs ({other.size}, {other.scale!r})"
            )
        if self.count + other.count > _MAX_COUNT:
            raise OverflowError("merged binned accumulator would overflow")
        self._bins += other._bins
        self.count += other.count

    def total(self) -> np.ndarray:
        """Round the bins to one float64 vector, finest bin first."""
        out = np.zeros(self.size)
        for k in range(_N_BINS - 1, -1, -1):
            out += self._bins[k]
        return out

    def state(self) -> dict:
        """Picklable snapshot for shipping across process boundaries."""
        return {
            "size": self.size,
            "scale": self.scale,
            "count": self.count,
            "bins": self._bins,
        }

    @classmethod
    def from_state(cls, state: dict) -> "BinnedSum":
        acc = cls(state["size"], state["scale"])
        acc.count = int(state["count"])
        bins = np.asarray(state["bins"], dtype=np.float64)
        if bins.shape != acc._bins.shape:
            raise ValueError(
                f"bin state shape {bins.shape} does not match {acc._bins.shape}"
            )
        acc._bins[...] = bins
        return acc


def tree_reduce(accumulators: list[BinnedSum]) -> BinnedSum:
    """Pairwise-merge accumulators so no step holds more than two states.

    Merges are exact, so any reduction shape gives identical bits; the
    balanced tree keeps the depth logarithmic, which is what lets a
    parent combine streamed shard partials without ever materialising
    the full per-user matrix alongside them.
    """
    if not accumulators:
        raise ValueError("tree_reduce needs at least one accumulator")
    level = list(accumulators)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            level[i].merge(level[i + 1])
            nxt.append(level[i])
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
