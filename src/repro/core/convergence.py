"""Empirical diagnostics for the Theorem 6 convergence analysis.

Theorem 6 bounds ULDP-AVG's convergence by (besides the FedAVG terms) a
noise term proportional to ``sigma^2 C^2 d / (|S| |U|^2)`` and two clipping
-bias terms driven by the dispersion of the weighted clipping factors

    alpha[s, u] = w[s, u] * min(1, C / ||delta_su||)

around their global mean alpha_bar (Remark 4).  These quantities are not
observable from the final model; this module computes them from the clip
statistics recorded by ``UldpAvg(record_clip_stats=True)`` so experiments
can verify the analysis' qualitative predictions (e.g. Eq. (3) weights
shrink the bias terms on skewed data -- the mechanism behind Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.methods.uldp_avg import UldpAvg


@dataclass(frozen=True)
class ConvergenceDiagnostics:
    """Per-run summaries of the Theorem 6 quantities."""

    #: mean over rounds of alpha_bar_t = (1/|S||U|) sum alpha[s,u]
    alpha_bar: float
    #: mean over rounds of sum_su |alpha_su - alpha_bar| (first bias term, B1 proxy)
    l1_bias: float
    #: mean over rounds of sum_su (alpha_su - alpha_bar)^2 (second bias term, B2 proxy)
    l2_bias: float
    #: theoretical per-round noise variance contribution sigma^2 C^2 d / (|S| |U|^2)
    noise_term: float
    #: fraction of (user, silo) updates that hit the clipping bound
    clip_rate: float

    def summary(self) -> str:
        return (
            f"alpha_bar={self.alpha_bar:.4f} l1_bias={self.l1_bias:.4f} "
            f"l2_bias={self.l2_bias:.6f} noise_term={self.noise_term:.3e} "
            f"clip_rate={self.clip_rate:.2%}"
        )


def diagnose(method: UldpAvg, n_params: int) -> ConvergenceDiagnostics:
    """Compute the Theorem 6 diagnostics from a trained ULDP-AVG method.

    Args:
        method: a prepared-and-run ``UldpAvg`` constructed with
            ``record_clip_stats=True``.
        n_params: model dimension d (for the noise term).

    Raises:
        ValueError: if no clip statistics were recorded.
    """
    if not method.clip_factor_history:
        raise ValueError(
            "no clip statistics recorded; construct UldpAvg with "
            "record_clip_stats=True and run at least one round"
        )
    if method.weights is None or method.fed is None:
        raise ValueError("method has not been prepared")

    weights = method.weights
    n_silos, n_users = weights.shape
    alpha_bars, l1_terms, l2_terms, clip_hits, totals = [], [], [], 0, 0
    for factors in method.clip_factor_history:
        present = ~np.isnan(factors)
        if not present.any():
            continue
        # Absent pairs contribute alpha = 0 to the |S||U| average, exactly
        # as in the theorem's definition over all (s, u).
        alpha = np.where(present, weights * np.nan_to_num(factors), 0.0)
        alpha_bar = alpha.sum() / (n_silos * n_users)
        deviations = np.abs(alpha - alpha_bar)
        alpha_bars.append(alpha_bar)
        l1_terms.append(float(deviations.sum()))
        l2_terms.append(float((deviations**2).sum()))
        clip_hits += int((factors[present] < 1.0).sum())
        totals += int(present.sum())

    sigma = method.noise_multiplier
    clip = method.clip
    noise_term = sigma**2 * clip**2 * n_params / (n_silos * n_users**2)
    return ConvergenceDiagnostics(
        alpha_bar=float(np.mean(alpha_bars)),
        l1_bias=float(np.mean(l1_terms)),
        l2_bias=float(np.mean(l2_terms)),
        noise_term=noise_term,
        clip_rate=clip_hits / max(totals, 1),
    )
