"""L2 clipping utilities (re-exported from :mod:`repro.nn.clip`).

The implementation lives in the :mod:`repro.nn` layer so that DP-SGD can
use it without importing the full :mod:`repro.core` package (which imports
the methods, which import DP-SGD -- a cycle otherwise).  Import from here
in application code; the canonical definition is shared.

The ``*_rows`` variants clip every row of a ``(G, P)`` delta matrix at
once -- the vectorized engine's counterpart of per-user clipping.
"""

from repro.nn.clip import (
    clip_factor,
    clip_factor_from_norms,
    clip_factor_rows,
    l2_clip,
    l2_clip_rows,
)

__all__ = [
    "clip_factor",
    "clip_factor_from_norms",
    "clip_factor_rows",
    "l2_clip",
    "l2_clip_rows",
]
