"""L2 clipping utilities (re-exported from :mod:`repro.nn.clip`).

The implementation lives in the :mod:`repro.nn` layer so that DP-SGD can
use it without importing the full :mod:`repro.core` package (which imports
the methods, which import DP-SGD -- a cycle otherwise).  Import from here
in application code; the canonical definition is shared.
"""

from repro.nn.clip import clip_factor, l2_clip

__all__ = ["clip_factor", "l2_clip"]
