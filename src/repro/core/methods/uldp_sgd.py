"""ULDP-SGD (Algorithm 3, SGD variant).

The FedSGD counterpart of ULDP-AVG: each silo computes one full-batch
gradient per user, clips it to C, weights it by w[s, u], sums over users,
and adds the same sigma^2 C^2 / |S| Gaussian noise.  The server applies the
aggregate as a (negated) gradient step -- the paper's shared server line
``x + eta_g * aggregate`` with the client returning descent directions.
Sensitivity analysis is identical to ULDP-AVG, so Theorem 3 applies
verbatim; convergence is slower because a round makes a single step.
"""

from __future__ import annotations

import numpy as np

from repro.accounting import PrivacyAccountant
from repro.core.clipping import l2_clip
from repro.core.engine import LocalJob, make_shard_task, plan_shards
from repro.core.methods.base import FLMethod, ParticipationSummary
from repro.core.weighting import (
    RoundParticipation,
    participation_weights,
    proportional_weights,
    realised_sensitivity,
    subsample_weights,
    uniform_weights,
    validate_weights,
)


class UldpSgd(FLMethod):
    """Single-gradient-step variant of the paper's method."""

    name = "ULDP-SGD"

    def __init__(
        self,
        clip: float = 1.0,
        noise_multiplier: float = 5.0,
        global_lr: float | None = None,
        weighting: str = "uniform",
        user_sample_rate: float | None = None,
        engine: str = "vectorized",
    ):
        super().__init__(engine=engine)
        if clip <= 0:
            raise ValueError("clip bound must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise multiplier must be non-negative")
        if weighting not in ("uniform", "proportional"):
            raise ValueError("weighting must be 'uniform' or 'proportional'")
        if user_sample_rate is not None and not 0 < user_sample_rate <= 1:
            raise ValueError("user sample rate must lie in (0, 1]")
        self.clip = clip
        self.noise_multiplier = noise_multiplier
        self.global_lr = global_lr
        self.weighting = weighting
        self.user_sample_rate = user_sample_rate
        self.weights: np.ndarray | None = None
        self.accountant = PrivacyAccountant()

    @property
    def display_name(self) -> str:
        return "ULDP-SGD-w" if self.weighting == "proportional" else "ULDP-SGD"

    def prepare(self, fed, model, rng, compression=None, engine=None) -> None:
        super().prepare(fed, model, rng, compression=compression, engine=engine)
        if self.weighting == "uniform":
            self.weights = uniform_weights(fed.n_silos, fed.n_users)
        else:
            self.weights = proportional_weights(fed.histogram())
        validate_weights(self.weights)
        if self.global_lr is None:
            # Same Remark 3 scaling as ULDP-AVG with Q = 1 single step,
            # damped by the usual SGD step size.
            self.global_lr = float(fed.n_silos * np.sqrt(fed.n_users)) * 0.5

    def round(
        self,
        t: int,
        params: np.ndarray,
        participation: RoundParticipation | None = None,
    ) -> np.ndarray:
        fed, model, rng = self._require_prepared()
        assert self.weights is not None
        q = self.user_sample_rate

        if participation is None:
            base_weights = self.weights
            active_mask = None
            noise_silos = fed.n_silos
            sensitivity, noise_scale = 1.0, 1.0
        else:
            active = participation.n_active_silos
            if active == 0:
                self.last_participation = ParticipationSummary(0, 0)
                self.accountant.step_release(
                    self.noise_multiplier, sample_rate=q if q else 1.0,
                    sensitivity=0.0, noise_scale=0.0,
                )
                return params.copy()
            base_weights = participation_weights(self.weights, participation)
            sensitivity = realised_sensitivity(base_weights)
            active_mask = participation.silo_mask
            if participation.noise_rescale:
                noise_silos = active
                noise_scale = 1.0
            else:
                noise_silos = fed.n_silos
                noise_scale = float(np.sqrt(active / fed.n_silos))

        if q is not None:
            sampled = np.where(rng.random(fed.n_users) < q)[0]
            round_weights = subsample_weights(base_weights, sampled)
        else:
            round_weights = base_weights

        noise_std = self.noise_multiplier * self.clip / np.sqrt(noise_silos)
        users_seen: set[int] = set()
        aggregate = np.zeros_like(params)
        if self.engine == "vectorized":
            # Per-silo job lists planned into micro-batch-aligned shards;
            # each shard's kernel computes the (negated, clipped) gradient
            # rows and folds them into a binned partial sum, so no process
            # holds the full per-user matrix.  Gradients draw no
            # randomness, so noise draws stay in the loop path's per-silo
            # order regardless of workers/shard_size.
            engine = self.shard_engine
            scale_bound = engine.scale(self.clip)
            tasks = []
            for s, silo in enumerate(fed.silos):
                if active_mask is not None and not active_mask[s]:
                    continue
                jobs, weights = [], []
                for user in silo.users_present():
                    w = round_weights[s, user]
                    if w == 0.0:
                        continue
                    jobs.append(LocalJob(*silo.records_of_user(int(user))))
                    weights.append(w)
                    users_seen.add(int(user))
                for a, b in plan_shards(len(jobs), engine.config.aligned_shard_size):
                    tasks.append(
                        make_shard_task(
                            mode="gradient",
                            model=model,
                            task=fed.task,
                            params=params,
                            jobs=jobs[a:b],
                            weights=np.asarray(weights[a:b], dtype=np.float64),
                            clip=self.clip,
                            scale=scale_bound,
                            silo=s,
                            shard=len(tasks),
                            backend=engine.config.backend,
                        )
                    )
            results = engine.run_tasks(tasks)
            if results:
                aggregate = aggregate + engine.reduce(results).total()
            for s in range(fed.n_silos):
                if active_mask is not None and not active_mask[s]:
                    continue
                aggregate += self._gaussian_noise(noise_std, params.size)
        else:
            for s, silo in enumerate(fed.silos):
                if active_mask is not None and not active_mask[s]:
                    continue
                for user in silo.users_present():
                    w = round_weights[s, user]
                    if w == 0.0:
                        continue
                    x, y = silo.records_of_user(int(user))
                    grad = self._gradient(params, x, y)
                    aggregate += w * l2_clip(-grad, self.clip)
                    users_seen.add(int(user))
                aggregate += self._gaussian_noise(noise_std, params.size)

        self.last_participation = ParticipationSummary(
            silos_seen=noise_silos if participation is None
            else participation.n_active_silos,
            users_seen=len(users_seen),
        )
        if participation is None:
            self.accountant.step(self.noise_multiplier, sample_rate=q if q else 1.0)
        else:
            self.accountant.step_release(
                self.noise_multiplier, sample_rate=q if q else 1.0,
                sensitivity=sensitivity, noise_scale=noise_scale,
            )
        scale = fed.n_users * fed.n_silos * (q if q is not None else 1.0)
        assert self.global_lr is not None
        return params + self.global_lr * aggregate / scale

    def epsilon(self, delta: float) -> float:
        return self.accountant.get_epsilon(delta)
