"""ULDP-AVG (Algorithm 3) with optional user-level sub-sampling (Algorithm 4).

The paper's main contribution: each silo trains a *per-user* model delta
(Q local epochs on only that user's records), clips it to C, scales it by
the weight w[s, u], sums over users, and adds Gaussian noise with variance
sigma^2 C^2 / |S|.  Since the weights satisfy sum_s w[s, u] <= 1, any single
user moves the cross-silo aggregate by at most C in l2 -- user-level
sensitivity C -- and the summed noise across silos has std sigma * C, so the
aggregate satisfies the Gaussian-mechanism RDP with noise multiplier sigma
(Theorem 3).

Weighting strategies (Section 4.1):

- ``"uniform"``: w = 1/|S| (no data knowledge needed).
- ``"proportional"``: Eq. (3), w[s, u] = n[s, u] / N_u -- the ULDP-AVG-w
  variant.  In deployment the weights are computed by Protocol 1 without
  revealing histograms; the trainer uses them directly (the protocol is
  verified separately to produce identical aggregates).

User-level sub-sampling (``user_sample_rate`` = q): the server Poisson-
samples users each round and zeroes the weights of non-sampled users; the
aggregate is rescaled by 1/q and the accountant applies sub-sampled RDP
amplification (Remark 1).
"""

from __future__ import annotations

import numpy as np

from repro.accounting import PrivacyAccountant
from repro.compress import CompressionSpec
from repro.core.clipping import clip_factor, l2_clip
from repro.core.engine import (
    batched_clipped_local_deltas,
    fold_weighted_rows,
    make_shard_task,
    plan_shards,
)
from repro.core.methods.base import CommSummary, FLMethod, ParticipationSummary
from repro.core.reduce import BinnedSum, tree_reduce
from repro.core.weighting import (
    RoundParticipation,
    participation_weights,
    proportional_weights,
    realised_sensitivity,
    subsample_weights,
    uniform_weights,
    validate_weights,
)


class _RoundContributions(list):
    """Per-silo contribution dicts plus their stacked backing matrix.

    The vectorized engine produces all clipped deltas of a round as one
    contiguous ``(K, P)`` matrix; the dict values are row views into it.
    Carrying the matrix (with its ``(silo, user)`` row order) lets the
    plaintext aggregation run as one matmul without re-stacking the rows,
    while consumers of the list interface -- including
    :class:`repro.protocol.SecureUldpAvg` -- see ordinary dicts.
    """

    def __init__(self, dicts, matrix: np.ndarray, pairs: list[tuple[int, int]]):
        super().__init__(dicts)
        self.matrix = matrix
        self.pairs = pairs


class UldpAvg(FLMethod):
    """The paper's primary method (Algorithm 3, AVG variant).

    ``compression`` (a :class:`repro.compress.CompressionSpec`) compresses
    the wire payloads strictly post-noise: each silo's *noisy* weighted
    delta sum is sparsified/quantized on the uplink (optionally through a
    per-silo error-feedback accumulator), and with ``downlink=True`` the
    server's broadcast update is compressed too.  The accountant sees the
    exact same calls as the uncompressed run -- compression is pure
    post-processing -- and ``CompressionSpec.none()`` reproduces the dense
    trainer bit for bit.
    """

    name = "ULDP-AVG"
    supports_compression = True
    #: Whether :meth:`round` may stream shard partial sums instead of
    #: materialising per-user contribution dicts.  Subclasses that must
    #: see each user's clipped delta (:class:`repro.protocol.SecureUldpAvg`
    #: encrypts them individually) set this False and keep the
    #: materialized path.
    streaming_aggregation = True

    def __init__(
        self,
        clip: float = 1.0,
        noise_multiplier: float = 5.0,
        global_lr: float | None = None,
        local_lr: float = 0.05,
        local_epochs: int = 2,
        weighting: str = "uniform",
        user_sample_rate: float | None = None,
        batch_size: int | None = None,
        record_clip_stats: bool = False,
        engine: str = "vectorized",
        compression: CompressionSpec | None = None,
    ):
        super().__init__(engine=engine, compression=compression)
        if clip <= 0:
            raise ValueError("clip bound must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise multiplier must be non-negative")
        if local_epochs < 1:
            raise ValueError("need at least one local epoch")
        if weighting not in ("uniform", "proportional"):
            raise ValueError("weighting must be 'uniform' or 'proportional'")
        if user_sample_rate is not None and not 0 < user_sample_rate <= 1:
            raise ValueError("user sample rate must lie in (0, 1]")
        self.clip = clip
        self.noise_multiplier = noise_multiplier
        self.global_lr = global_lr
        self.local_lr = local_lr
        self.local_epochs = local_epochs
        self.weighting = weighting
        self.user_sample_rate = user_sample_rate
        self.batch_size = batch_size
        self.record_clip_stats = record_clip_stats
        self.weights: np.ndarray | None = None
        self.accountant = PrivacyAccountant()
        #: Per-round clipping factors (the alpha of Remark 4), populated
        #: only when record_clip_stats is set; used by the ablation bench.
        self.clip_factor_history: list[np.ndarray] = []
        # Transient per-round participation state read by
        # _compute_contributions (kept as attributes so the SecureUldpAvg
        # subclass's override keeps its signature): which silos train and
        # how many silos share the noise budget.
        self._active_silo_mask: np.ndarray | None = None
        self._noise_silos: int | None = None
        # Set by _aggregate (and the SecureUldpAvg override): uplink wire
        # bytes of the round just aggregated.
        self._round_uplink_bytes: int | None = None
        #: Optional replacement for the in-process contribution loop: a
        #: callable ``(params, round_weights, noise_std, active_mask) ->
        #: (contributions, noises)`` that farms each silo's
        #: :meth:`silo_round_segment` out to a real silo process.  The
        #: networked runtime (:mod:`repro.net`) installs one per round;
        #: None (the default) keeps everything in-process.
        self.contribution_executor = None

    @property
    def display_name(self) -> str:
        return "ULDP-AVG-w" if self.weighting == "proportional" else "ULDP-AVG"

    def prepare(self, fed, model, rng, compression=None, engine=None) -> None:
        super().prepare(fed, model, rng, compression=compression, engine=engine)
        if self.weighting == "uniform":
            self.weights = uniform_weights(fed.n_silos, fed.n_users)
        else:
            self.weights = proportional_weights(fed.histogram())
        validate_weights(self.weights)
        if self.global_lr is None:
            # Remark 3: eta_g = |S| * sqrt(|U| * Q) recovers the DP-FedAVG
            # noise scaling after the server's 1/(|U||S|) averaging.
            self.global_lr = float(
                fed.n_silos * np.sqrt(fed.n_users * self.local_epochs)
            )

    def round(
        self,
        t: int,
        params: np.ndarray,
        participation: RoundParticipation | None = None,
    ) -> np.ndarray:
        fed, _, rng = self._require_prepared()
        assert self.weights is not None
        q = self.user_sample_rate

        if participation is None:
            base_weights = self.weights
            sensitivity, noise_scale = 1.0, 1.0
        else:
            active = participation.n_active_silos
            if active == 0:
                # Every silo is down: the round releases nothing and costs
                # no budget (logged so the honesty report sees the gap).
                # Silos that fetched the model before failing to
                # contribute still consumed broadcast bytes (dense: there
                # is no update to compress).
                self.last_participation = ParticipationSummary(0, 0)
                self.last_comm = CommSummary(
                    0, params.size * 8 * participation.n_broadcast_silos
                )
                self.accountant.step_release(
                    self.noise_multiplier, sample_rate=q if q else 1.0,
                    sensitivity=0.0, noise_scale=0.0,
                )
                return params.copy()
            base_weights = participation_weights(self.weights, participation)
            sensitivity = realised_sensitivity(base_weights)
            self._active_silo_mask = participation.silo_mask
            if participation.noise_rescale:
                self._noise_silos = active
                noise_scale = 1.0
            else:
                self._noise_silos = fed.n_silos
                noise_scale = float(np.sqrt(active / fed.n_silos))

        if q is not None:
            sampled = np.where(rng.random(fed.n_users) < q)[0]
            round_weights = subsample_weights(base_weights, sampled)
        else:
            round_weights = base_weights

        try:
            if self._streaming_applies():
                aggregate, users_seen = self._round_streamed(params, round_weights)
            else:
                contributions, noises = self._compute_contributions(
                    params, round_weights
                )
                aggregate = self._aggregate(t, contributions, noises, round_weights)
                users_seen = {u for per_user in contributions for u in per_user}
        finally:
            self._active_silo_mask = None
            self._noise_silos = None

        self.last_participation = ParticipationSummary(
            silos_seen=fed.n_silos if participation is None
            else participation.n_active_silos,
            users_seen=len(users_seen),
        )

        if participation is None:
            self.accountant.step(self.noise_multiplier, sample_rate=q if q else 1.0)
        else:
            self.accountant.step_release(
                self.noise_multiplier, sample_rate=q if q else 1.0,
                sensitivity=sensitivity, noise_scale=noise_scale,
            )
        scale = fed.n_users * fed.n_silos * (q if q is not None else 1.0)
        assert self.global_lr is not None
        update = self.global_lr * aggregate / scale
        silos_seen = self.last_participation.silos_seen
        comp = self.compressor
        if comp is not None and comp.spec.downlink and not comp.spec.is_identity:
            broadcast = comp.compress_downlink(update)
            update = broadcast.dense
            downlink_per_silo = broadcast.nbytes
        else:
            downlink_per_silo = params.size * 8
        uplink = (
            self._round_uplink_bytes
            if self._round_uplink_bytes is not None
            else silos_seen * params.size * 8
        )
        # Downlink recipients are the silos that fetched the broadcast at
        # round start -- a superset of the contributors when deadline or
        # bandwidth filtering bit after the download.
        recipients = (
            fed.n_silos if participation is None else participation.n_broadcast_silos
        )
        self.last_comm = CommSummary(uplink, downlink_per_silo * recipients)
        self._round_uplink_bytes = None
        return params + update

    def _streaming_applies(self) -> bool:
        """Whether this round can stream shard partials.

        The streamed path covers the in-process vectorized engine; the
        loop engine stays the materialized differential-testing oracle,
        a :attr:`contribution_executor` (networked rounds) already
        streams per *silo* and aggregates through the matrix path of
        :meth:`_aggregate` (which applies the identical binned fold), and
        materializing subclasses opt out via
        :attr:`streaming_aggregation`.
        """
        return (
            self.streaming_aggregation
            and self.engine == "vectorized"
            and self.contribution_executor is None
        )

    def _noise_std(self) -> float:
        """Per-silo noise std sqrt(sigma^2 C^2 / A) where A is the number
        of noise-contributing silos (all of them outside the simulation):
        summing A silo contributions yields aggregate noise std sigma * C,
        matching the user-level sensitivity C at noise multiplier sigma."""
        fed, _, _ = self._require_prepared()
        noise_silos = (
            self._noise_silos if self._noise_silos is not None else fed.n_silos
        )
        return float(self.noise_multiplier * self.clip / np.sqrt(noise_silos))

    def _round_streamed(
        self, params: np.ndarray, round_weights: np.ndarray
    ) -> tuple[np.ndarray, set[int]]:
        """One round through the sharded streaming path (Algorithm 3 with
        the per-user matrix never materialised).

        Each active silo's participating users are planned into
        micro-batch-aligned shards (:func:`repro.core.engine.plan_shards`);
        every shard task folds its clipped weighted rows into a binned
        partial sum and only the ``(bins, P)`` states stream back, where
        an exact tree-reduce combines them.  RNG discipline is the loop
        path's: per active silo, first the job schedules, then the noise
        vector -- drawn here in the parent before any shard executes, so
        the random stream is invariant to ``workers``/``shard_size``.
        """
        fed, model, _ = self._require_prepared()
        noise_std = self._noise_std()
        engine = self.shard_engine
        shard_size = engine.config.aligned_shard_size
        scale = engine.scale(self.clip)
        tasks: list[dict] = []
        task_users: list[list[int]] = []
        noises: list[np.ndarray] = []
        active_silos: list[int] = []
        users_seen: set[int] = set()
        for s, silo in enumerate(fed.silos):
            if self._active_silo_mask is not None and not self._active_silo_mask[s]:
                continue
            users = [int(u) for u in silo.users_present() if round_weights[s, u] != 0.0]
            jobs = [
                self._local_job(
                    *silo.records_of_user(user), self.local_epochs, self.batch_size
                )
                for user in users
            ]
            noises.append(self._gaussian_noise(noise_std, params.size))
            active_silos.append(s)
            users_seen.update(users)
            weights = np.array([round_weights[s, u] for u in users])
            for a, b in plan_shards(len(jobs), shard_size):
                tasks.append(
                    make_shard_task(
                        mode="delta",
                        model=model,
                        task=fed.task,
                        params=params,
                        jobs=jobs[a:b],
                        weights=weights[a:b],
                        clip=self.clip,
                        scale=scale,
                        silo=s,
                        shard=len(tasks),
                        lr=self.local_lr,
                        epochs=self.local_epochs,
                        backend=engine.config.backend,
                    )
                )
                task_users.append(users[a:b])

        results = engine.run_tasks(tasks)
        if self.record_clip_stats:
            factors = np.full((fed.n_silos, fed.n_users), np.nan)
            for result, shard_users in zip(results, task_users):
                factors[result["silo"], shard_users] = result["factors"]
            self.clip_factor_history.append(factors)

        comp = self.compressor
        if comp is not None and not comp.spec.is_identity:
            return (
                self._streamed_compressed(params, noises, active_silos, results),
                users_seen,
            )
        self._round_uplink_bytes = len(noises) * params.size * 8
        aggregate = np.sum(noises, axis=0)
        if results:
            aggregate = aggregate + engine.reduce(results).total()
        return aggregate, users_seen

    def _streamed_compressed(
        self,
        params: np.ndarray,
        noises: list[np.ndarray],
        active_silos: list[int],
        results: list[dict],
    ) -> np.ndarray:
        """Compressed uplink over streamed partials: each silo's *noisy*
        payload is reconstituted from its own shards' binned states (one
        rounding, same bits as the materialized per-silo matmul fold),
        then routed through the compressor exactly as
        :meth:`_aggregate_compressed` would."""
        comp = self.compressor
        assert comp is not None
        per_silo: dict[int, list[dict]] = {}
        for result in results:
            per_silo.setdefault(result["silo"], []).append(result)
        aggregate = np.zeros(params.size)
        uplink = 0
        for noise, s in zip(noises, active_silos):
            payload = noise
            shards = per_silo.get(s)
            if shards:
                acc = tree_reduce([BinnedSum.from_state(r["state"]) for r in shards])
                payload = payload + acc.total()
            sent = comp.compress_uplink(s, payload)
            aggregate += sent.dense
            uplink += sent.nbytes
        self._round_uplink_bytes = uplink
        return aggregate

    def _compute_contributions(
        self, params: np.ndarray, round_weights: np.ndarray
    ) -> tuple[list[dict[int, np.ndarray]], list[np.ndarray]]:
        """Per-silo clipped per-user deltas and per-silo Gaussian noise.

        Returns ``(contributions, noises)`` where ``contributions[s]`` maps
        user id -> *unweighted* clipped delta (Algorithm 3 line 16 before
        the w multiplication) and ``noises[s]`` is silo s's noise vector.
        Users with zero round weight are skipped (they cannot contribute).

        With ``engine="vectorized"`` each silo's per-user deltas come out
        of one batched training run instead of a Python loop; both engines
        draw the same random stream and agree to floating-point precision.
        """
        fed, _, _ = self._require_prepared()
        noise_std = self._noise_std()
        if self.contribution_executor is not None:
            if self.record_clip_stats:
                raise NotImplementedError(
                    "record_clip_stats is not supported with a contribution "
                    "executor (remote silos do not report clip factors)"
                )
            return self.contribution_executor(
                params, round_weights, float(noise_std), self._active_silo_mask
            )
        factors = np.full((fed.n_silos, fed.n_users), np.nan)

        if self.engine == "vectorized":
            contributions, noises = self._contributions_vectorized(
                params, round_weights, noise_std, factors
            )
        else:
            contributions, noises = self._contributions_loop(
                params, round_weights, noise_std, factors
            )

        if self.record_clip_stats:
            self.clip_factor_history.append(factors)
        return contributions, noises

    def _contributions_loop(
        self,
        params: np.ndarray,
        round_weights: np.ndarray,
        noise_std: float,
        factors: np.ndarray,
    ) -> tuple[list[dict[int, np.ndarray]], list[np.ndarray]]:
        """Per-user deltas one training run at a time (the legacy oracle).

        Dropped silos (``self._active_silo_mask``) train nothing and draw
        no noise, but keep an empty slot so silo indices stay aligned.
        """
        fed, _, _ = self._require_prepared()
        contributions: list[dict[int, np.ndarray]] = []
        noises: list[np.ndarray] = []
        for s, silo in enumerate(fed.silos):
            if self._active_silo_mask is not None and not self._active_silo_mask[s]:
                contributions.append({})
                continue
            per_user: dict[int, np.ndarray] = {}
            for user in silo.users_present():
                if round_weights[s, user] == 0.0:
                    continue
                x, y = silo.records_of_user(int(user))
                delta = self._local_delta(
                    params, x, y, self.local_lr, self.local_epochs, self.batch_size
                )
                if self.record_clip_stats:
                    factors[s, user] = clip_factor(delta, self.clip)
                per_user[int(user)] = l2_clip(delta, self.clip)
            contributions.append(per_user)
            noises.append(self._gaussian_noise(noise_std, params.size))
        return contributions, noises

    def _contributions_vectorized(
        self,
        params: np.ndarray,
        round_weights: np.ndarray,
        noise_std: float,
        factors: np.ndarray,
    ) -> tuple[list[dict[int, np.ndarray]], list[np.ndarray]]:
        """Each silo's per-user deltas via one batched engine call *per silo*.

        Jobs and noise are *drawn* in the loop path's order (per silo:
        schedules, then noise) so both engines consume the shared RNG
        identically; the batched training itself draws nothing.

        Batching per silo rather than across the whole round is what makes
        this path *structurally identical* to :meth:`silo_round_segment` --
        the computation a remote silo process runs under :mod:`repro.net`.
        BLAS reductions are composition-dependent at the ULP level, so a
        networked round can only be bit-identical to an in-process one if
        both batch over exactly the same job sets.
        """
        fed, model, _ = self._require_prepared()
        spans: list[list[int]] = []
        blocks: list[np.ndarray] = []
        noises: list[np.ndarray] = []
        for s, silo in enumerate(fed.silos):
            if self._active_silo_mask is not None and not self._active_silo_mask[s]:
                spans.append([])
                continue
            users = [int(u) for u in silo.users_present() if round_weights[s, u] != 0.0]
            jobs = [
                self._local_job(
                    *silo.records_of_user(user), self.local_epochs, self.batch_size
                )
                for user in users
            ]
            spans.append(users)
            noises.append(self._gaussian_noise(noise_std, params.size))
            if not jobs:
                continue
            silo_rows, silo_factors = batched_clipped_local_deltas(
                model, fed.task, params, jobs,
                self.local_lr, self.local_epochs, self.clip,
            )
            # The engine returns pooled buffers valid only until its next
            # call -- copy before the next silo's batch overwrites them.
            blocks.append(silo_rows.copy())
            if self.record_clip_stats:
                factors[s, users] = silo_factors

        clipped = (
            np.concatenate(blocks, axis=0)
            if blocks
            else np.zeros((0, params.size))
        )
        dicts: list[dict[int, np.ndarray]] = []
        pairs: list[tuple[int, int]] = []
        row = 0
        for s, users in enumerate(spans):
            dicts.append({user: clipped[row + i] for i, user in enumerate(users)})
            pairs.extend((s, user) for user in users)
            row += len(users)
        return _RoundContributions(dicts, clipped, pairs), noises

    def _aggregate(
        self,
        t: int,
        contributions: list[dict[int, np.ndarray]],
        noises: list[np.ndarray],
        round_weights: np.ndarray,
    ) -> np.ndarray:
        """Plaintext aggregation: sum_s (sum_u w[s,u] * delta_su + z_s).

        Computed as a single weighted matmul over the stacked contribution
        matrix (plus the summed noise) rather than a per-user accumulation
        loop; when the vectorized engine already produced the rows as one
        contiguous matrix (:class:`_RoundContributions`), that matrix is
        used directly without re-stacking.  This simulates secure
        aggregation (the server only ever consumes the final sum).
        :class:`repro.protocol.SecureUldpAvg` overrides this with the real
        cryptographic Protocol 1 and is tested to produce the same result
        within fixed-point precision (Theorem 4).

        With a lossy :class:`CompressionSpec` the aggregation routes
        through :meth:`_aggregate_compressed` instead, which forms each
        silo's *noisy* payload explicitly before compressing it (the
        matmul below never materialises per-silo sums).  The identity
        spec keeps this exact code path, which is what the oracle test
        pins bit for bit.
        """
        if self.compressor is not None and not self.compressor.spec.is_identity:
            return self._aggregate_compressed(contributions, noises, round_weights)
        self._round_uplink_bytes = len(noises) * noises[0].size * 8
        aggregate = np.sum(noises, axis=0)
        matrix = getattr(contributions, "matrix", None)
        if matrix is not None:
            # Fold silo by silo through the engine's micro-batched binned
            # sum -- the same chunk compositions and the same exact
            # reduction the streamed path applies, which is what keeps a
            # networked round (rows arriving through the contribution
            # executor) bit-identical to the in-process streamed round.
            if contributions.pairs:
                acc = BinnedSum(aggregate.size, self.shard_engine.scale(self.clip))
                backend = self.shard_engine.backend
                row = 0
                for s, per_user in enumerate(contributions):
                    if per_user:
                        weights = np.array(
                            [round_weights[s, u] for u in per_user]
                        )
                        fold_weighted_rows(
                            acc, weights, matrix[row : row + len(per_user)], backend
                        )
                    row += len(per_user)
                aggregate = aggregate + acc.total()
            return aggregate
        # Loop-engine fallback: one weighted matmul per silo, bounding the
        # transient stack at the largest silo's contribution matrix.
        for s, per_user in enumerate(contributions):
            if not per_user:
                continue
            weights = np.array([round_weights[s, user] for user in per_user])
            aggregate = aggregate + weights @ np.stack(list(per_user.values()))
        return aggregate

    def _aggregate_compressed(
        self,
        contributions: list[dict[int, np.ndarray]],
        noises: list[np.ndarray],
        round_weights: np.ndarray,
    ) -> np.ndarray:
        """Per-silo noisy payloads, compressed on the uplink, then summed.

        Each active silo's payload ``sum_u w[s,u] * delta_su + z_s`` is
        formed explicitly -- compression must see exactly what crosses the
        wire, strictly post-noise -- then routed through the compressor's
        per-silo error-feedback loop.  The server sums the reconstructions,
        which still simulates secure aggregation (only the sum is used).
        """
        comp = self.compressor
        assert comp is not None
        active = self._active_silo_mask
        aggregate = np.zeros_like(noises[0])
        uplink = 0
        noise_index = 0
        # When the vectorized engine produced the rows as one contiguous
        # matrix, each silo's rows are a consecutive slice (same order the
        # dicts were built in) -- slice instead of re-stacking the views.
        matrix = getattr(contributions, "matrix", None)
        row = 0
        for s, per_user in enumerate(contributions):
            if active is not None and not active[s]:
                continue  # dropped silo: no payload, no noise slot
            payload = noises[noise_index]
            noise_index += 1
            if per_user:
                weights = np.array([round_weights[s, user] for user in per_user])
                if matrix is not None:
                    # Same micro-batched binned fold as the streamed path,
                    # so networked compressed rounds match in-process ones.
                    acc = BinnedSum(
                        payload.size, self.shard_engine.scale(self.clip)
                    )
                    fold_weighted_rows(
                        acc,
                        weights,
                        matrix[row : row + len(per_user)],
                        self.shard_engine.backend,
                    )
                    payload = payload + acc.total()
                else:
                    payload = payload + weights @ np.stack(list(per_user.values()))
            row += len(per_user)
            sent = comp.compress_uplink(s, payload)
            aggregate += sent.dense
            uplink += sent.nbytes
        self._round_uplink_bytes = uplink
        return aggregate

    def uplink_payload_bytes(self) -> int:
        """One silo's per-round uplink wire size (the bandwidth models' input).

        The compressed estimate when a compressor is active, dense float64
        otherwise; :class:`repro.protocol.SecureUldpAvg` overrides this
        with ciphertext sizes.
        """
        _, model, _ = self._require_prepared()
        if self.compressor is not None:
            return self.compressor.estimated_payload_bytes(model.num_params)
        return model.num_params * 8

    # -- per-silo step API (buffered-async simulation) -----------------------

    def silo_contribution(
        self,
        t: int,
        params: np.ndarray,
        s: int,
        round_weights: np.ndarray,
        noise_std: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One silo's weighted noisy sum computed at (possibly stale) params.

        The buffered-async policy calls this per silo with whatever global
        params the silo last pulled; the scheduler later merges buffered
        payloads with staleness weights.  ``noise_std`` is chosen by the
        policy (e.g. ``sigma * C / sqrt(K)`` for buffer size K so a full
        buffer carries total noise std ``sigma * C``).

        Returns:
            (payload, users, weights): the noisy weighted delta sum, the
            contributing user ids, and their realised weights -- the last
            two feed the merge-time sensitivity bookkeeping.
        """
        fed, model, _ = self._require_prepared()
        silo = fed.silos[s]
        users = [int(u) for u in silo.users_present() if round_weights[s, u] != 0.0]
        weights = np.array([round_weights[s, u] for u in users], dtype=np.float64)
        if self.engine == "vectorized":
            jobs = [
                self._local_job(
                    *silo.records_of_user(u), self.local_epochs, self.batch_size
                )
                for u in users
            ]
            payload = self._gaussian_noise(noise_std, params.size)
            if jobs:
                clipped, _ = batched_clipped_local_deltas(
                    model, fed.task, params, jobs,
                    self.local_lr, self.local_epochs, self.clip,
                )
                payload = payload + weights @ clipped
        else:
            payload = np.zeros(params.size)
            for w, u in zip(weights, users):
                delta = self._local_delta(
                    params, *silo.records_of_user(u),
                    self.local_lr, self.local_epochs, self.batch_size,
                )
                payload += w * l2_clip(delta, self.clip)
            payload += self._gaussian_noise(noise_std, params.size)
        return payload, np.array(users, dtype=np.int64), weights

    def silo_round_segment(
        self,
        s: int,
        params: np.ndarray,
        weight_row: np.ndarray,
        noise_std: float,
    ) -> tuple[list[int], np.ndarray, np.ndarray]:
        """One silo's slice of a synchronous round, for remote execution.

        Runs exactly the computation :meth:`_compute_contributions`
        performs for silo ``s`` -- same RNG draw order (job schedules,
        then the noise vector), same per-silo batched engine call -- so a
        silo process that first restores the server's chained RNG state
        produces bit-identical results to the in-process simulator (the
        :mod:`repro.net` ideal-network oracle).  ``weight_row`` is silo
        s's row of the realised round weights; users with zero weight are
        skipped, mirroring Algorithm 4's visibility model.

        Returns ``(users, rows, noise)``: the contributing user ids,
        their clipped delta rows (``(len(users), P)``, safe to keep), and
        the silo's Gaussian noise vector.
        """
        fed, model, _ = self._require_prepared()
        silo = fed.silos[s]
        users = [int(u) for u in silo.users_present() if weight_row[u] != 0.0]
        if self.engine == "vectorized":
            jobs = [
                self._local_job(
                    *silo.records_of_user(user), self.local_epochs, self.batch_size
                )
                for user in users
            ]
            noise = self._gaussian_noise(noise_std, params.size)
            if jobs:
                rows, _ = batched_clipped_local_deltas(
                    model, fed.task, params, jobs,
                    self.local_lr, self.local_epochs, self.clip,
                )
                rows = rows.copy()  # engine buffers are pooled
            else:
                rows = np.zeros((0, params.size))
        else:
            deltas = []
            for user in users:
                x, y = silo.records_of_user(user)
                delta = self._local_delta(
                    params, x, y, self.local_lr, self.local_epochs, self.batch_size
                )
                deltas.append(l2_clip(delta, self.clip))
            noise = self._gaussian_noise(noise_std, params.size)
            rows = np.stack(deltas) if deltas else np.zeros((0, params.size))
        return users, rows, noise

    def apply_aggregate(
        self, params: np.ndarray, aggregate: np.ndarray, n_updates: int
    ) -> np.ndarray:
        """Server update for an externally-merged aggregate (async policies).

        Mirrors the synchronous server line ``x + eta_g * agg / (|U||S|)``
        with the silo count replaced by the number of merged silo updates.
        """
        fed, _, _ = self._require_prepared()
        assert self.global_lr is not None
        scale = fed.n_users * max(n_updates, 1)
        return params + self.global_lr * aggregate / scale

    def epsilon(self, delta: float) -> float:
        return self.accountant.get_epsilon(delta)
