"""ULDP-NAIVE (Algorithm 1): silo-level clipping with user-level noise.

Each silo trains locally like DP-FedAVG, clips its *whole* model delta to C
and adds Gaussian noise with variance sigma^2 C^2 |S| (per coordinate).
Because one user may influence the delta of every silo, the user-level
sensitivity of the aggregate sum is C * |S|; the per-silo noise therefore
scales with |S| so the aggregated noise matches that sensitivity with noise
multiplier sigma, giving Theorem 1's bound -- at a heavy utility cost.

Note on sign: the paper's Algorithm 1 line 12 writes ``delta = x_t - x_s``
while Algorithm 3 line 15 writes ``delta = x_s - x_t``; with the shared
server update ``x + eta_g * mean(delta)`` only the latter descends, so we
use delta = local - global throughout (the line 12 sign is a typo).
"""

from __future__ import annotations

import numpy as np

from repro.accounting import PrivacyAccountant
from repro.core.clipping import l2_clip, l2_clip_rows
from repro.core.methods.base import FLMethod, ParticipationSummary
from repro.core.weighting import RoundParticipation


class UldpNaive(FLMethod):
    """Baseline achieving ULDP via |S|-scaled noise (Algorithm 1)."""

    name = "ULDP-NAIVE"

    def __init__(
        self,
        clip: float = 1.0,
        noise_multiplier: float = 5.0,
        global_lr: float = 1.0,
        local_lr: float = 0.05,
        local_epochs: int = 2,
        batch_size: int | None = 64,
        engine: str = "vectorized",
    ):
        super().__init__(engine=engine)
        if clip <= 0:
            raise ValueError("clip bound must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise multiplier must be non-negative")
        self.clip = clip
        self.noise_multiplier = noise_multiplier
        self.global_lr = global_lr
        self.local_lr = local_lr
        self.local_epochs = local_epochs
        self.batch_size = batch_size
        self.accountant = PrivacyAccountant()

    def round(
        self,
        t: int,
        params: np.ndarray,
        participation: RoundParticipation | None = None,
    ) -> np.ndarray:
        """One ULDP-NAIVE round, optionally under a participation roster.

        Silo-level method: only ``silo_mask`` is honoured; ``user_mask``
        is ignored because silos clip and ship their *whole* delta (the
        same documented limitation as ULDP-GROUP).
        """
        fed, _, _ = self._require_prepared()
        n_silos = fed.n_silos
        if participation is not None and participation.n_active_silos == 0:
            self.last_participation = ParticipationSummary(0, 0)
            self.accountant.step_release(
                self.noise_multiplier, sensitivity=0.0, noise_scale=0.0
            )
            return params.copy()
        active = None if participation is None else participation.silo_mask
        # With A participating silos the user-level sensitivity is C * A
        # and each silo uses noise std sqrt(sigma^2 C^2 A): the aggregate
        # noise std sigma * C * A matches that sensitivity at noise
        # multiplier sigma, exactly as in the full-participation Theorem 1
        # (where A = |S|).  Dropout therefore leaves epsilon unchanged.
        n_active = n_silos if active is None else int(active.sum())
        noise_std = self.noise_multiplier * self.clip * np.sqrt(n_active)

        def is_active(s: int) -> bool:
            return active is None or bool(active[s])

        if self.engine == "vectorized":
            # Pre-draw each silo's minibatch schedule and noise in the same
            # order the loop path consumes them, then train every silo in
            # one batched run.
            jobs, noises = [], []
            for s, silo in enumerate(fed.silos):
                if not is_active(s):
                    continue
                if silo.n_records > 0:
                    jobs.append(
                        self._local_job(
                            silo.x, silo.y, self.local_epochs, self.batch_size
                        )
                    )
                noises.append(self._gaussian_noise(noise_std, params.size))
            deltas = self._local_deltas_batched(
                params, jobs, self.local_lr, self.local_epochs
            )
            aggregate = l2_clip_rows(deltas, self.clip).sum(axis=0)
            if noises:
                aggregate = aggregate + np.sum(noises, axis=0)
        else:
            aggregate = np.zeros_like(params)
            for s, silo in enumerate(fed.silos):
                if not is_active(s):
                    continue
                if silo.n_records > 0:
                    delta = self._local_delta(
                        params, silo.x, silo.y, self.local_lr, self.local_epochs,
                        self.batch_size,
                    )
                    aggregate += l2_clip(delta, self.clip)
                aggregate += self._gaussian_noise(noise_std, params.size)

        self.last_participation = ParticipationSummary(
            silos_seen=n_active,
            users_seen=len(
                {
                    int(u)
                    for s, silo in enumerate(fed.silos)
                    if is_active(s)
                    for u in silo.users_present()
                }
            ),
        )
        if participation is None:
            self.accountant.step(self.noise_multiplier)
        else:
            self.accountant.step_release(self.noise_multiplier)
        return params + self.global_lr * aggregate / n_active

    def epsilon(self, delta: float) -> float:
        return self.accountant.get_epsilon(delta)
