"""ULDP-GROUP-k (Algorithm 2): per-silo DP-SGD + group-privacy conversion.

Each silo runs record-level DP-SGD on a contribution-bounded dataset: the
flags B keep at most k records per user *across all silos*.  Record-level
RDP composes in parallel across the disjoint silos (order-wise max), is
lifted to k-record group RDP by Lemma 6, and converted to (eps, delta)-ULDP
by Proposition 1 -- the epsilon that explodes with k in the paper's figures.

The paper generates B "for existing records to minimize waste, despite the
potential privacy concerns" (flags depend on the cross-silo histogram);
:func:`build_group_flags` does the same, spreading each user's kept records
across their silos round-robin.

Accounting matches Theorem 2: the client performs Q noisy DP-SGD steps per
round (each a Poisson-sub-sampled Gaussian at the silo's sampling rate), so
after T rounds each silo has composed Q*T sub-sampled Gaussian events.
"""

from __future__ import annotations

import numpy as np

from repro.accounting import PrivacyAccountant
from repro.core.methods.base import FLMethod, ParticipationSummary
from repro.core.metrics import make_loss
from repro.core.weighting import RoundParticipation
from repro.data.federated import FederatedDataset
from repro.nn.dpsgd import dpsgd_train


def resolve_group_size(fed: FederatedDataset, group_size: int | str) -> int:
    """Resolve "max" / "median" group-size policies from the histogram.

    ULDP-GROUP-max uses the maximum user record count (no records removed);
    ULDP-GROUP-median the median count over users with at least one record.
    """
    if isinstance(group_size, int):
        if group_size < 1:
            raise ValueError("group size must be at least 1")
        return group_size
    totals = fed.user_totals()
    present = totals[totals > 0]
    if len(present) == 0:
        raise ValueError("dataset has no records")
    if group_size == "max":
        return int(present.max())
    if group_size == "median":
        return max(1, int(np.median(present)))
    raise ValueError(f"unknown group size policy: {group_size!r}")


def build_group_flags(fed: FederatedDataset, k: int) -> list[np.ndarray]:
    """Contribution-bounding flags B: keep <= k records per user overall.

    For each user the kept records are chosen round-robin over the user's
    silos so that no silo is starved (minimising removed records, as in the
    paper's experiments).  Returns one boolean array per silo.
    """
    if k < 1:
        raise ValueError("group size must be at least 1")
    flags = [np.zeros(s.n_records, dtype=bool) for s in fed.silos]
    # Record positions per (user, silo).
    positions: dict[int, list[list[int]]] = {}
    for s, silo in enumerate(fed.silos):
        for idx, user in enumerate(silo.user_ids):
            positions.setdefault(int(user), [[] for _ in range(fed.n_silos)])[s].append(idx)
    for user, per_silo in positions.items():
        budget = k
        cursor = [0] * fed.n_silos
        while budget > 0:
            progressed = False
            for s in range(fed.n_silos):
                if budget == 0:
                    break
                if cursor[s] < len(per_silo[s]):
                    flags[s][per_silo[s][cursor[s]]] = True
                    cursor[s] += 1
                    budget -= 1
                    progressed = True
            if not progressed:
                break
    return flags


class UldpGroup(FLMethod):
    """Group-privacy baseline (Algorithm 2)."""

    name = "ULDP-GROUP"

    def __init__(
        self,
        group_size: int | str = 8,
        clip: float = 1.0,
        noise_multiplier: float = 5.0,
        global_lr: float = 1.0,
        local_lr: float = 0.05,
        local_steps: int = 2,
        expected_batch_size: int = 64,
        group_route: str = "rdp",
        engine: str = "vectorized",
    ):
        super().__init__(engine=engine)
        if clip <= 0:
            raise ValueError("clip bound must be positive")
        if local_steps < 1:
            raise ValueError("need at least one DP-SGD step per round")
        if expected_batch_size < 1:
            raise ValueError("expected batch size must be positive")
        self.group_size_policy = group_size
        self.clip = clip
        self.noise_multiplier = noise_multiplier
        self.global_lr = global_lr
        self.local_lr = local_lr
        self.local_steps = local_steps
        self.expected_batch_size = expected_batch_size
        self.group_route = group_route
        self.group_size: int | None = None
        self.flags: list[np.ndarray] | None = None
        self.filtered: FederatedDataset | None = None
        self.sample_rates: list[float] = []
        self.silo_accountants: list[PrivacyAccountant] = []

    @property
    def display_name(self) -> str:
        suffix = self.group_size if self.group_size is not None else self.group_size_policy
        return f"ULDP-GROUP-{suffix}"

    def prepare(self, fed, model, rng, compression=None, engine=None) -> None:
        super().prepare(fed, model, rng, compression=compression, engine=engine)
        self.group_size = resolve_group_size(fed, self.group_size_policy)
        self.flags = build_group_flags(fed, self.group_size)
        self.filtered = fed.apply_flags(self.flags)
        self.sample_rates = [
            min(1.0, self.expected_batch_size / max(1, silo.n_records))
            for silo in self.filtered.silos
        ]
        self.silo_accountants = [PrivacyAccountant() for _ in fed.silos]

    def round(
        self,
        t: int,
        params: np.ndarray,
        participation: RoundParticipation | None = None,
    ) -> np.ndarray:
        """One round of per-silo DP-SGD.

        Partial participation skips the dropped silos entirely -- their
        per-silo accountants do not advance, so the parallel-composition
        maximum of Theorem 2 stays honest.  User churn (``user_mask``) is
        not modelled here: the contribution-bounding flags B are fixed at
        prepare time, so departed users' records remain in the silo
        datasets (documented limitation of the group baseline).
        """
        fed, model, rng = self._require_prepared()
        assert self.filtered is not None
        if participation is not None and participation.n_active_silos == 0:
            self.last_participation = ParticipationSummary(0, 0)
            return params.copy()
        active = None if participation is None else participation.silo_mask
        users_seen: set[int] = set()
        deltas = []
        for s, silo in enumerate(self.filtered.silos):
            if (active is not None and not active[s]) or silo.n_records == 0:
                deltas.append(np.zeros_like(params))
                continue
            local = model.clone()
            local.set_flat_params(params)
            loss = make_loss(fed.task, local)
            # The Cox partial likelihood is undefined on single records, so
            # survival tasks use microbatches of two (standard relaxation;
            # see repro.nn.dpsgd for the sensitivity caveat).
            microbatch = 2 if fed.task == "survival" else 1
            dpsgd_train(
                local, loss, silo.x, silo.y,
                lr=self.local_lr,
                steps=self.local_steps,
                clip=self.clip,
                noise_multiplier=self.noise_multiplier,
                sample_rate=self.sample_rates[s],
                rng=rng,
                microbatch_size=microbatch,
                engine=self.engine,
            )
            deltas.append(local.get_flat_params() - params)
            users_seen.update(int(u) for u in silo.users_present())
            self.silo_accountants[s].step(
                self.noise_multiplier, self.sample_rates[s], self.local_steps
            )
        n_active = fed.n_silos if active is None else int(active.sum())
        self.last_participation = ParticipationSummary(
            silos_seen=n_active, users_seen=len(users_seen)
        )
        return params + self.global_lr * np.mean(deltas, axis=0)

    def epsilon(self, delta: float) -> float:
        """ULDP epsilon via Theorem 2: parallel-max RDP + group conversion."""
        assert self.group_size is not None
        merged = self.silo_accountants[0]
        for acct in self.silo_accountants[1:]:
            merged = merged.merge_max(acct)
        return merged.get_group_epsilon(delta, self.group_size, route=self.group_route)

    def record_level_epsilon(self, delta: float) -> float:
        """The (much smaller) record-level epsilon, before group conversion."""
        merged = self.silo_accountants[0]
        for acct in self.silo_accountants[1:]:
            merged = merged.merge_max(acct)
        return merged.get_epsilon(delta)
