"""DEFAULT: non-private FedAVG with two-sided learning rates.

The paper's non-private baseline (Yang, Fang & Liu 2021): each silo runs Q
local epochs from the global model, the server averages the silo deltas and
applies a separate global learning rate.
"""

from __future__ import annotations

import numpy as np

from repro.core.methods.base import FLMethod


class Default(FLMethod):
    """Non-private FedAVG baseline ("DEFAULT" in the paper's figures)."""

    name = "DEFAULT"
    is_private = False

    def __init__(
        self,
        global_lr: float = 1.0,
        local_lr: float = 0.05,
        local_epochs: int = 2,
        batch_size: int | None = 64,
    ):
        super().__init__()
        if global_lr <= 0 or local_lr <= 0:
            raise ValueError("learning rates must be positive")
        if local_epochs < 1:
            raise ValueError("need at least one local epoch")
        self.global_lr = global_lr
        self.local_lr = local_lr
        self.local_epochs = local_epochs
        self.batch_size = batch_size

    def round(self, t: int, params: np.ndarray) -> np.ndarray:
        fed, _, _ = self._require_prepared()
        deltas = []
        for silo in fed.silos:
            if silo.n_records == 0:
                deltas.append(np.zeros_like(params))
                continue
            deltas.append(
                self._local_delta(
                    params, silo.x, silo.y, self.local_lr, self.local_epochs,
                    self.batch_size,
                )
            )
        aggregate = np.mean(deltas, axis=0)
        return params + self.global_lr * aggregate
