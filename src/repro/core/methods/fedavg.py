"""DEFAULT: non-private FedAVG with two-sided learning rates.

The paper's non-private baseline (Yang, Fang & Liu 2021): each silo runs Q
local epochs from the global model, the server averages the silo deltas and
applies a separate global learning rate.
"""

from __future__ import annotations

import numpy as np

from repro.core.methods.base import FLMethod, ParticipationSummary
from repro.core.weighting import RoundParticipation


class Default(FLMethod):
    """Non-private FedAVG baseline ("DEFAULT" in the paper's figures)."""

    name = "DEFAULT"
    is_private = False

    def __init__(
        self,
        global_lr: float = 1.0,
        local_lr: float = 0.05,
        local_epochs: int = 2,
        batch_size: int | None = 64,
        engine: str = "vectorized",
    ):
        super().__init__(engine=engine)
        if global_lr <= 0 or local_lr <= 0:
            raise ValueError("learning rates must be positive")
        if local_epochs < 1:
            raise ValueError("need at least one local epoch")
        self.global_lr = global_lr
        self.local_lr = local_lr
        self.local_epochs = local_epochs
        self.batch_size = batch_size

    def round(
        self,
        t: int,
        params: np.ndarray,
        participation: RoundParticipation | None = None,
    ) -> np.ndarray:
        """One FedAVG round, optionally under a participation roster.

        Silo-level method: only ``silo_mask`` is honoured.  ``user_mask``
        is ignored -- the baseline trains on whole silo datasets, so
        departed users' records stay in (same documented limitation as
        :class:`repro.core.methods.uldp_group.UldpGroup`).
        """
        fed, _, _ = self._require_prepared()
        if participation is not None and participation.n_active_silos == 0:
            self.last_participation = ParticipationSummary(0, 0)
            return params.copy()
        active = (
            None if participation is None else participation.silo_mask
        )

        def trains(s: int, silo) -> bool:
            return silo.n_records > 0 and (active is None or active[s])

        # Non-private baseline: dropped silos are simply excluded and the
        # mean runs over the participating silos (survivor averaging).
        denominator = (
            fed.n_silos if participation is None else participation.n_active_silos
        )
        if self.engine == "vectorized":
            jobs = [
                self._local_job(silo.x, silo.y, self.local_epochs, self.batch_size)
                for s, silo in enumerate(fed.silos)
                if trains(s, silo)
            ]
            deltas = self._local_deltas_batched(
                params, jobs, self.local_lr, self.local_epochs
            )
            # Empty silos contribute zero deltas; the mean is over all
            # (participating) silos.
            aggregate = deltas.sum(axis=0) / denominator
        else:
            per_silo = []
            for s, silo in enumerate(fed.silos):
                if not trains(s, silo):
                    per_silo.append(np.zeros_like(params))
                    continue
                per_silo.append(
                    self._local_delta(
                        params, silo.x, silo.y, self.local_lr, self.local_epochs,
                        self.batch_size,
                    )
                )
            aggregate = np.sum(per_silo, axis=0) / denominator
        self.last_participation = ParticipationSummary(
            silos_seen=denominator,
            users_seen=len(
                set().union(
                    *(
                        set(silo.users_present().tolist())
                        for s, silo in enumerate(fed.silos)
                        if trains(s, silo)
                    ),
                    set(),
                )
            ),
        )
        return params + self.global_lr * aggregate
