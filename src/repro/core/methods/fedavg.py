"""DEFAULT: non-private FedAVG with two-sided learning rates.

The paper's non-private baseline (Yang, Fang & Liu 2021): each silo runs Q
local epochs from the global model, the server averages the silo deltas and
applies a separate global learning rate.
"""

from __future__ import annotations

import numpy as np

from repro.core.methods.base import FLMethod


class Default(FLMethod):
    """Non-private FedAVG baseline ("DEFAULT" in the paper's figures)."""

    name = "DEFAULT"
    is_private = False

    def __init__(
        self,
        global_lr: float = 1.0,
        local_lr: float = 0.05,
        local_epochs: int = 2,
        batch_size: int | None = 64,
        engine: str = "vectorized",
    ):
        super().__init__(engine=engine)
        if global_lr <= 0 or local_lr <= 0:
            raise ValueError("learning rates must be positive")
        if local_epochs < 1:
            raise ValueError("need at least one local epoch")
        self.global_lr = global_lr
        self.local_lr = local_lr
        self.local_epochs = local_epochs
        self.batch_size = batch_size

    def round(self, t: int, params: np.ndarray) -> np.ndarray:
        fed, _, _ = self._require_prepared()
        if self.engine == "vectorized":
            jobs = [
                self._local_job(silo.x, silo.y, self.local_epochs, self.batch_size)
                for silo in fed.silos
                if silo.n_records > 0
            ]
            deltas = self._local_deltas_batched(
                params, jobs, self.local_lr, self.local_epochs
            )
            # Empty silos contribute zero deltas; the mean is over all silos.
            aggregate = deltas.sum(axis=0) / fed.n_silos
        else:
            per_silo = []
            for silo in fed.silos:
                if silo.n_records == 0:
                    per_silo.append(np.zeros_like(params))
                    continue
                per_silo.append(
                    self._local_delta(
                        params, silo.x, silo.y, self.local_lr, self.local_epochs,
                        self.batch_size,
                    )
                )
            aggregate = np.mean(per_silo, axis=0)
        return params + self.global_lr * aggregate
