"""The five federated optimisation methods evaluated in the paper."""

from repro.core.methods.base import FLMethod
from repro.core.methods.fedavg import Default
from repro.core.methods.uldp_avg import UldpAvg
from repro.core.methods.uldp_group import UldpGroup, build_group_flags, resolve_group_size
from repro.core.methods.uldp_naive import UldpNaive
from repro.core.methods.uldp_sgd import UldpSgd

__all__ = [
    "FLMethod",
    "Default",
    "UldpAvg",
    "UldpGroup",
    "UldpNaive",
    "UldpSgd",
    "build_group_flags",
    "resolve_group_size",
]
