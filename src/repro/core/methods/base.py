"""Common infrastructure for the FL methods.

Every method is a stateful object configured at construction and bound to a
dataset/model by :meth:`FLMethod.prepare` (called once by the trainer).
Each round the trainer calls :meth:`FLMethod.round` with the current flat
global parameter vector and receives the next one.  Privacy-consuming
methods maintain a :class:`repro.accounting.PrivacyAccountant` and report
their cumulative user-level epsilon through :meth:`FLMethod.epsilon`.

The secure-aggregation step of the paper (server only sees the summed
deltas) is simulated by summing plaintext deltas here; the cryptographic
realisation lives in :mod:`repro.protocol` and is verified to produce the
same sums (Theorem 4 tests).

Every method carries an ``engine`` switch selecting its local-training
implementation: ``"loop"`` runs the straightforward per-user Python loop
(the differential-testing oracle), ``"vectorized"`` routes the same
computation through the batched engine of :mod:`repro.core.engine`.  Both
engines consume the shared RNG identically and agree on round aggregates
to within floating-point reassociation.

Methods may also carry a :class:`repro.compress.CompressionSpec`
(constructor argument or assigned by the trainer's ``compression=``):
:meth:`FLMethod.prepare` builds the stateful
:class:`repro.compress.UpdateCompressor` from it, and compressing methods
(the ULDP-AVG family) apply it strictly post-noise, reporting the round's
wire bytes through :attr:`FLMethod.last_comm`.

``round`` accepts an optional
:class:`repro.core.weighting.RoundParticipation` describing which silos
and users take part (the :mod:`repro.sim` runtime's dropout/churn roster).
``participation=None`` is the idealised full-participation setting and is
bit-identical to the pre-simulation behaviour.  After every round a method
records who actually contributed in :attr:`FLMethod.last_participation`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.compress import CompressionSpec, UpdateCompressor
from repro.core.engine import (
    EngineConfig,
    LocalJob,
    ShardedEngine,
    batched_gradients,
    batched_local_deltas,
    draw_minibatch_schedule,
    validate_engine,
)
from repro.core.metrics import make_loss
from repro.core.weighting import RoundParticipation
from repro.data.federated import FederatedDataset
from repro.nn.model import Sequential
from repro.nn.train import train_epochs


@dataclass(frozen=True)
class ParticipationSummary:
    """Who actually contributed to one round's aggregate."""

    #: Silos whose updates (or noise) entered the aggregate.
    silos_seen: int
    #: Distinct users whose records influenced the aggregate.
    users_seen: int


@dataclass(frozen=True)
class CommSummary:
    """Wire bytes one round actually moved (summed over silos)."""

    #: Silo -> server payload bytes (compressed size when compressing).
    uplink_bytes: int
    #: Server -> silo broadcast bytes (per-silo size times recipients).
    downlink_bytes: int


class FLMethod(ABC):
    """Base class for federated optimisation methods."""

    name: str = "base"
    #: Whether the method consumes privacy budget (False only for DEFAULT).
    is_private: bool = True
    #: Whether :meth:`round` applies lossy update compression itself.
    #: Methods without it still accept an identity spec (byte accounting).
    supports_compression: bool = False

    def __init__(
        self,
        engine: str = "vectorized",
        compression: CompressionSpec | None = None,
    ):
        self.engine = validate_engine(engine)
        self.fed: FederatedDataset | None = None
        self.model: Sequential | None = None
        self.rng: np.random.Generator | None = None
        #: Set by :meth:`round`: realised participation of the last round
        #: (None until the first round; the trainer records it per round).
        self.last_participation: ParticipationSummary | None = None
        #: The update-compression recipe (None = dense, no byte ledger
        #: beyond the trainer's dense default).  A trainer-level spec is
        #: passed to :meth:`prepare` instead of overwriting this field.
        self.compression = compression
        #: The spec actually in force after :meth:`prepare` (the trainer's
        #: override when given, else :attr:`compression`).  Kept separate
        #: so a method instance reused across trainers never inherits an
        #: earlier trainer's compression.
        self.active_compression: CompressionSpec | None = compression
        #: Stateful compressor, built by :meth:`prepare` from the spec.
        self.compressor: UpdateCompressor | None = None
        #: Set by :meth:`round`: wire bytes of the last round (None for
        #: methods that leave byte accounting to the trainer's default).
        self.last_comm: CommSummary | None = None
        #: Execution layout of the vectorized path ([engine] section),
        #: bound by :meth:`prepare`; the defaults run single-process.
        self.engine_config = EngineConfig()
        #: The sharded executor built from :attr:`engine_config`.  Owns
        #: the worker pool when ``workers > 0``; results are bit-identical
        #: for every (workers, shard_size) setting.
        self.shard_engine = ShardedEngine(self.engine_config)

    def prepare(
        self,
        fed: FederatedDataset,
        model: Sequential,
        rng: np.random.Generator,
        compression: CompressionSpec | None = None,
        engine: EngineConfig | None = None,
    ) -> None:
        """Bind the method to a dataset and a model template.

        ``compression`` is the trainer-level override for this binding; it
        takes precedence over the method's own :attr:`compression` without
        mutating it (the effective spec lands in
        :attr:`active_compression`).  ``engine`` configures the sharded
        execution layout (None keeps the single-process defaults).
        """
        self.fed = fed
        self.model = model
        self.rng = rng
        if engine is not None and engine != self.engine_config:
            self.close()
            self.engine_config = engine
            self.shard_engine = ShardedEngine(engine)
        spec = compression if compression is not None else self.compression
        self.active_compression = spec
        self.compressor = None
        if spec is not None:
            if not spec.is_identity and not self.supports_compression:
                raise NotImplementedError(
                    f"{type(self).__name__} does not implement lossy update "
                    "compression; use CompressionSpec.none() for byte "
                    "accounting only, or a UldpAvg-family method"
                )
            self.compressor = UpdateCompressor(
                spec, fed.n_silos, model.num_params
            )

    @abstractmethod
    def round(
        self,
        t: int,
        params: np.ndarray,
        participation: RoundParticipation | None = None,
    ) -> np.ndarray:
        """Run round ``t`` from flat params; returns the next flat params.

        ``participation`` restricts the round to a subset of silos/users
        (None = everyone, exactly the pre-simulation behaviour).  Weight-
        based methods (ULDP-AVG/SGD) honour the full roster; silo-level
        methods (DEFAULT, ULDP-NAIVE, ULDP-GROUP) honour ``silo_mask``
        only and document that ``user_mask`` is ignored.
        """

    def epsilon(self, delta: float) -> float | None:
        """Cumulative user-level (eps, delta)-ULDP; None if non-private."""
        return None

    def close(self) -> None:
        """Release the sharded engine's worker pool (idempotent; the pool
        is recreated lazily if the method keeps training afterwards)."""
        if getattr(self, "shard_engine", None) is not None:
            self.shard_engine.close()

    # -- shared helpers -----------------------------------------------------

    def _require_prepared(self) -> tuple[FederatedDataset, Sequential, np.random.Generator]:
        if self.fed is None or self.model is None or self.rng is None:
            raise RuntimeError("method not prepared; call prepare() first")
        return self.fed, self.model, self.rng

    def _local_delta(
        self,
        params: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        local_lr: float,
        local_epochs: int,
        batch_size: int | None,
    ) -> np.ndarray:
        """Model delta (local - global) after local SGD from ``params``."""
        fed, model, rng = self._require_prepared()
        local = model.clone()
        local.set_flat_params(params)
        loss = make_loss(fed.task, local)
        train_epochs(
            local, loss, x, y, lr=local_lr, epochs=local_epochs,
            rng=rng, batch_size=batch_size,
        )
        return local.get_flat_params() - params

    def _gradient(self, params: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Full-batch mean gradient at ``params`` (for the SGD variants).

        Returns a zero gradient when the loss is undefined on this data
        (e.g. the Cox likelihood for a user with no observed events) -- the
        user simply contributes nothing this round.
        """
        from repro.nn.losses import DegenerateBatchError

        fed, model, rng = self._require_prepared()
        local = model.clone()
        local.set_flat_params(params)
        loss = make_loss(fed.task, local)
        local.zero_grad()
        try:
            loss.forward(local.forward(x), y)
        except DegenerateBatchError:
            return np.zeros(local.num_params)
        local.backward(loss.backward())
        return local.get_flat_grads()

    # -- vectorized-engine helpers ------------------------------------------

    def _local_job(
        self, x: np.ndarray, y: np.ndarray, local_epochs: int, batch_size: int | None
    ) -> LocalJob:
        """Package one local dataset for the batched engine.

        Pre-draws the minibatch schedule from the shared RNG so the random
        stream advances exactly as the loop engine's ``train_epochs`` would
        (full-batch jobs draw nothing) -- the invariant that keeps the two
        engines' noise draws identical.
        """
        _, _, rng = self._require_prepared()
        schedule = draw_minibatch_schedule(len(x), batch_size, local_epochs, rng)
        return LocalJob(x, y, schedule=schedule)

    def _local_deltas_batched(
        self,
        params: np.ndarray,
        jobs: list[LocalJob],
        local_lr: float,
        local_epochs: int,
    ) -> np.ndarray:
        """Stacked per-job model deltas via the vectorized engine ((G, P))."""
        fed, model, _ = self._require_prepared()
        return batched_local_deltas(
            model, fed.task, params, jobs, local_lr, local_epochs
        )

    def _gradients_batched(
        self, params: np.ndarray, jobs: list[LocalJob]
    ) -> np.ndarray:
        """Stacked per-job full-batch gradients via the vectorized engine."""
        fed, model, _ = self._require_prepared()
        return batched_gradients(model, fed.task, params, jobs)

    def _gaussian_noise(self, std: float, size: int) -> np.ndarray:
        _, _, rng = self._require_prepared()
        if std == 0.0:
            return np.zeros(size)
        return rng.normal(0.0, std, size=size)
