"""Vectorized multi-user local-training engine (the hot path of ULDP-AVG).

ULDP-AVG's defining cost is that every silo trains a *separate* per-user
model delta each round (Algorithm 3), which the straightforward
implementation realises as a Python loop over |S| x |U| tiny training runs:
clone the model, load the global parameters, run Q local epochs on a
handful of records.  This module replaces that loop with one batched
computation: all sampled users of a silo are stacked into a padded
``(n_users, batch, features)`` tensor, a :class:`repro.nn.model.BatchedSequential`
holds one parameter copy per user, and the Q local epochs run as batched
forward/backward passes -- returning the full matrix of per-user deltas in
one shot.  Per-user clipping then becomes a row-wise operation
(:func:`repro.core.clipping.l2_clip_rows`) and aggregation a weighted
matmul.

Equivalence contract: for every job the batched computation performs the
same linear algebra as the per-user loop -- same initial parameters, same
minibatch partitions, same loss normalisation, same degenerate-batch
skipping -- so both engines produce identical round aggregates up to
floating-point reassociation (verified to ``atol <= 1e-10`` by
``tests/core/test_engine_equivalence.py``).  Randomness discipline: the
engine itself never consumes RNG.  Minibatch orders are pre-drawn by the
caller with :func:`draw_minibatch_schedule` in exactly the order the loop
path draws them, which keeps the two engines' random streams -- and hence
their noise draws -- bit-identical.

Methods expose the choice as ``engine="loop" | "vectorized"``
(:class:`repro.core.methods.base.FLMethod`); the loop path remains as a
differential-testing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import make_batched_loss, make_loss
from repro.nn.batched import per_group_gradients
from repro.nn.clip import clip_factor_from_norms, clip_factor_rows, l2_clip_rows
from repro.nn.model import Sequential, batch_model
from repro.obs.trace import get_recorder

#: Engine names accepted by :class:`repro.core.methods.base.FLMethod`.
ENGINES = ("loop", "vectorized")


def validate_engine(engine: str) -> str:
    """Check an engine name, returning it unchanged."""
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


#: Reused (G, P) result buffers.  The round loop produces one large delta
#: or gradient matrix per round with a stable shape; re-allocating it every
#: round spends more time in page faults than in arithmetic.  Contents are
#: valid only until the next call with the same shape -- callers consume
#: the matrix within the round.
_MATRIX_POOL: dict[tuple[int, int], np.ndarray] = {}


def _pooled_matrix(shape: tuple[int, int]) -> np.ndarray:
    """An uninitialised reusable matrix of the given shape."""
    buf = _MATRIX_POOL.get(shape)
    if buf is None:
        if len(_MATRIX_POOL) >= 8:
            _MATRIX_POOL.clear()
        buf = np.empty(shape)
        _MATRIX_POOL[shape] = buf
    return buf


@dataclass
class LocalJob:
    """One local optimisation problem: a (silo, user) or silo dataset.

    ``schedule`` carries pre-drawn minibatch index arrays (see
    :func:`draw_minibatch_schedule`); ``None`` means full-batch descent,
    the ULDP-AVG default for tiny per-user datasets.
    """

    x: np.ndarray
    y: np.ndarray
    schedule: list[list[np.ndarray]] | None = field(default=None)

    @property
    def n(self) -> int:
        return len(self.x)


def draw_minibatch_schedule(
    n: int, batch_size: int | None, epochs: int, rng: np.random.Generator
) -> list[list[np.ndarray]] | None:
    """Pre-draw the minibatch partition :func:`repro.nn.train.train_epochs` would use.

    Consumes the RNG exactly as the loop path does: one permutation per
    epoch when the effective batch is smaller than the dataset, nothing
    otherwise (full-batch iteration draws no randomness).  Returns ``None``
    in the full-batch case so callers can tell the two apart.
    """
    if n < 1:
        raise ValueError("cannot schedule an empty dataset")
    batch = n if batch_size is None else max(1, min(batch_size, n))
    if batch >= n:
        return None
    schedule: list[list[np.ndarray]] = []
    for _ in range(max(0, epochs)):
        order = rng.permutation(n)
        schedule.append([order[start : start + batch] for start in range(0, n, batch)])
    return schedule


def _stack_jobs(jobs: list[LocalJob]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad and stack job datasets into (G, Nmax, ...) tensors plus a mask."""
    n_max = max(job.n for job in jobs)
    x0, y0 = np.asarray(jobs[0].x), np.asarray(jobs[0].y)
    xs = np.zeros((len(jobs), n_max, *x0.shape[1:]), dtype=np.float64)
    ys = np.zeros((len(jobs), n_max, *y0.shape[1:]), dtype=np.float64)
    mask = np.zeros((len(jobs), n_max), dtype=bool)
    for g, job in enumerate(jobs):
        xs[g, : job.n] = job.x
        ys[g, : job.n] = job.y
        mask[g, : job.n] = True
    return xs, ys, mask


def _job_steps(job: LocalJob, epoch: int) -> list[np.ndarray]:
    """Index arrays of one job's minibatches in ``epoch`` (full-batch: one)."""
    if job.schedule is None:
        return [np.arange(job.n)]
    return job.schedule[epoch]


def _size_buckets(jobs: list[LocalJob]) -> list[list[int]]:
    """Partition job indices into buckets of similar record count.

    Stacking pads every job to the largest job's length; when counts are
    skewed (zipf user allocations) that wastes most of the tensor on
    padding.  Bucketing by next-power-of-two record count bounds the
    padding overhead at 2x while keeping the bucket count logarithmic.
    Jobs are independent, so splitting changes no results.
    """
    buckets: dict[int, list[int]] = {}
    for i, job in enumerate(jobs):
        key = max(1, job.n - 1).bit_length()
        buckets.setdefault(key, []).append(i)
    return [buckets[key] for key in sorted(buckets)]


def _train_bucket(
    model: Sequential,
    task: str,
    params: np.ndarray,
    jobs: list[LocalJob],
    lr: float,
    epochs: int,
) -> np.ndarray:
    """Train one bucket of jobs in lockstep; returns their delta matrix."""
    bm = batch_model(model, len(jobs), reuse=True)
    bm.set_flat_params(params)
    loss = make_batched_loss(task, model)
    xs, ys, mask = _stack_jobs(jobs)
    group_idx = np.arange(len(jobs))[:, None]
    full_batch = all(job.schedule is None for job in jobs)

    for epoch in range(max(0, epochs)):
        per_job = [_job_steps(job, epoch) for job in jobs]
        n_steps = max(len(steps) for steps in per_job)
        for step in range(n_steps):
            if full_batch:
                # All records of every job, no gather needed.
                xb, yb, valid = xs, ys, mask
            else:
                batches = [
                    steps[step] if step < len(steps) else np.zeros(0, dtype=np.int64)
                    for steps in per_job
                ]
                b_max = max(len(b) for b in batches)
                if b_max == 0:
                    continue
                idx = np.full((len(jobs), b_max), -1, dtype=np.int64)
                for g, b in enumerate(batches):
                    idx[g, : len(b)] = b
                valid = idx >= 0
                safe = np.where(valid, idx, 0)
                xb = xs[group_idx, safe]
                yb = ys[group_idx, safe]
            bm.zero_grad()
            pred = bm.forward(xb)
            loss.forward(pred, yb, valid)
            bm.backward(loss.backward())
            for p, g in zip(bm.params, bm.grads):
                p -= lr * g
    return bm.get_flat_params() - params[None, :]


def batched_local_deltas(
    model: Sequential,
    task: str,
    params: np.ndarray,
    jobs: list[LocalJob],
    lr: float,
    epochs: int,
) -> np.ndarray:
    """Per-job model deltas after local SGD, computed in batched runs.

    Every job starts from the flat global ``params`` and trains for
    ``epochs`` passes with learning rate ``lr`` on its own records; the
    return value is the ``(len(jobs), P)`` matrix of deltas
    ``local - global``, row-aligned with ``jobs``.  The per-row result
    matches :meth:`repro.core.methods.base.FLMethod._local_delta` up to
    floating-point reassociation.  Jobs are grouped into similar-size
    buckets (see :func:`_size_buckets`) purely for speed.

    Single-step shortcut: one full-batch epoch (the paper's ULDP-AVG
    setting for figure benchmarks) never diverges the per-group parameters,
    so the deltas are exactly one SGD step from the shared model --
    computed via the much faster shared-weight gradient engine
    (:func:`repro.nn.batched.per_group_gradients`).  On that path the
    result is a pooled buffer: valid until the next engine call with the
    same shape, so consume (or copy) it within the round.
    """
    if not jobs:
        return np.zeros((0, params.size))
    if epochs == 1 and all(job.schedule is None for job in jobs):
        deltas = batched_gradients(model, task, params, jobs)
        np.multiply(deltas, -lr, out=deltas)
        return deltas
    out = np.empty((len(jobs), params.size))
    for indices in _size_buckets(jobs):
        out[indices] = _train_bucket(
            model, task, params, [jobs[i] for i in indices], lr, epochs
        )
    return out


def batched_clipped_local_deltas(
    model: Sequential,
    task: str,
    params: np.ndarray,
    jobs: list[LocalJob],
    lr: float,
    epochs: int,
    clip: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-job *clipped* local-training deltas plus their clip factors.

    Returns ``(clipped, factors)`` where ``clipped[g]`` is job g's model
    delta scaled to l2 norm at most ``clip`` and ``factors[g]`` the applied
    ``min(1, clip / ||delta||)`` (0 for non-finite deltas, 1 for zero ones)
    -- the Algorithm 3 line 16 quantities for a whole silo round at once.

    On the single-step path the delta norms are ``lr`` times the gradient
    norms, so clip-and-scale fuses into the engine's single assembly pass
    over the result matrix; the general path clips the delta matrix in
    place.  Either way the result matrix is pooled -- valid until the next
    engine call of the same shape.
    """
    if clip <= 0:
        raise ValueError("clip bound must be positive")
    if not jobs:
        return np.zeros((0, params.size)), np.zeros(0)
    with get_recorder().span(
        "local_training", kind="phase", jobs=len(jobs), epochs=epochs
    ):
        return _clipped_local_deltas(model, task, params, jobs, lr, epochs, clip)


def _clipped_local_deltas(model, task, params, jobs, lr, epochs, clip):
    if epochs == 1 and all(job.schedule is None for job in jobs):
        local = model.clone()
        local.set_flat_params(params)
        loss = make_loss(task, local)
        x = np.concatenate([np.asarray(job.x, dtype=np.float64) for job in jobs])
        y = np.concatenate([np.asarray(job.y, dtype=np.float64) for job in jobs])
        factors = np.empty(len(jobs))

        def clip_and_descend(grad_norms: np.ndarray) -> np.ndarray:
            # The delta of one full-batch step has norm lr * ||gradient||.
            f = clip_factor_from_norms(lr * grad_norms, clip)
            factors[...] = f
            return -lr * f

        clipped = per_group_gradients(
            local,
            loss,
            x,
            y,
            [job.n for job in jobs],
            out=_pooled_matrix((len(jobs), params.size)),
            row_scale=clip_and_descend,
        )
        return clipped, factors
    deltas = batched_local_deltas(model, task, params, jobs, lr, epochs)
    factors = clip_factor_rows(deltas, clip)
    l2_clip_rows(deltas, clip, out=deltas, factors=factors)
    return deltas, factors


def batched_gradients(
    model: Sequential,
    task: str,
    params: np.ndarray,
    jobs: list[LocalJob],
) -> np.ndarray:
    """Per-job full-batch mean gradients at ``params``, in batched passes.

    The ``(len(jobs), P)`` result matches
    :meth:`repro.core.methods.base.FLMethod._gradient` row by row; jobs on
    which the loss is undefined (degenerate Cox batches) yield zero rows,
    the same convention as the loop path.

    Because every job is evaluated at the *same* parameters, this runs
    through the shared-weight engine: one unpadded forward/backward over
    all records with per-group segmented parameter reductions.  The result
    is a pooled buffer reused by the next engine call of the same shape --
    consume (or copy) it within the round.
    """
    if not jobs:
        return np.zeros((0, params.size))
    with get_recorder().span("local_gradients", kind="phase", jobs=len(jobs)):
        local = model.clone()
        local.set_flat_params(params)
        loss = make_loss(task, local)
        x = np.concatenate([np.asarray(job.x, dtype=np.float64) for job in jobs])
        y = np.concatenate([np.asarray(job.y, dtype=np.float64) for job in jobs])
        out = _pooled_matrix((len(jobs), params.size))
        return per_group_gradients(
            local, loss, x, y, [job.n for job in jobs], out=out
        )
