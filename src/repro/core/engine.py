"""Vectorized multi-user local-training engine (the hot path of ULDP-AVG).

ULDP-AVG's defining cost is that every silo trains a *separate* per-user
model delta each round (Algorithm 3), which the straightforward
implementation realises as a Python loop over |S| x |U| tiny training runs:
clone the model, load the global parameters, run Q local epochs on a
handful of records.  This module replaces that loop with one batched
computation: all sampled users of a silo are stacked into a padded
``(n_users, batch, features)`` tensor, a :class:`repro.nn.model.BatchedSequential`
holds one parameter copy per user, and the Q local epochs run as batched
forward/backward passes -- returning the full matrix of per-user deltas in
one shot.  Per-user clipping then becomes a row-wise operation
(:func:`repro.core.clipping.l2_clip_rows`) and aggregation a weighted
matmul.

Equivalence contract: for every job the batched computation performs the
same linear algebra as the per-user loop -- same initial parameters, same
minibatch partitions, same loss normalisation, same degenerate-batch
skipping -- so both engines produce identical round aggregates up to
floating-point reassociation (verified to ``atol <= 1e-10`` by
``tests/core/test_engine_equivalence.py``).  Randomness discipline: the
engine itself never consumes RNG.  Minibatch orders are pre-drawn by the
caller with :func:`draw_minibatch_schedule` in exactly the order the loop
path draws them, which keeps the two engines' random streams -- and hence
their noise draws -- bit-identical.

Micro-batching discipline: BLAS reductions are composition-dependent at
the ULP level, so a job's row bits change whenever the set of jobs it is
batched with changes.  To make results independent of *how work is
split* (shard size, worker count), the engine always processes jobs in
fixed consecutive chunks of :data:`MICRO_BATCH` -- each chunk is one
numerical batch whose composition depends only on the job's position in
the caller's ordered job list.  Shard boundaries are aligned to
micro-batch multiples (:func:`plan_shards`), so a shard computes exactly
the micro-batches the single-process path would, and the streamed
partial sums combine through the exact :class:`repro.core.reduce.BinnedSum`
fold -- making the sharded path bit-identical to the in-process
vectorized path for any ``workers``/``shard_size``.

Methods expose the choice as ``engine="loop" | "vectorized"``
(:class:`repro.core.methods.base.FLMethod`); the loop path remains as a
differential-testing oracle.  :class:`ShardedEngine` distributes the
vectorized path across a worker pool (PR 2's picklable-kernel +
``ProcessPoolExecutor`` pattern) when ``[engine] workers > 0``.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import sys
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import make_batched_loss, make_loss
from repro.core.reduce import BinnedSum, fold_scale, tree_reduce
from repro.nn.backend import ArrayBackend, get_backend, validate_backend
from repro.nn.batched import per_group_gradients
from repro.nn.clip import clip_factor_from_norms, clip_factor_rows, l2_clip_rows
from repro.nn.model import Sequential, batch_model
from repro.obs.metrics import get_registry
from repro.obs.trace import get_recorder

#: Engine names accepted by :class:`repro.core.methods.base.FLMethod`.
ENGINES = ("loop", "vectorized")

#: Jobs per numerical batch.  Every engine entry point processes its job
#: list in consecutive chunks of this size, so a job's floating-point
#: result depends only on its position in the ordered job list -- never
#: on how many jobs happen to share the same call (see the module
#: docstring).  128 keeps the padded tensors comfortably in cache while
#: amortising the per-batch Python overhead.
MICRO_BATCH = 128

#: Default users per shard task (``[engine] shard_size``); a multiple of
#: :data:`MICRO_BATCH` so default plans are always aligned.
DEFAULT_SHARD_SIZE = 4096


def validate_engine(engine: str) -> str:
    """Check an engine name, returning it unchanged."""
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


class _MatrixPool:
    """Bounded, per-process pool of reusable (G, P) result buffers.

    The round loop produces one large delta or gradient matrix per round
    with a stable shape; re-allocating it every round spends more time in
    page faults than in arithmetic.  Contents are valid only until the
    next call with the same shape -- callers consume the matrix within
    the round.

    Two safety properties the old module-global dict lacked: the pool is
    LRU-bounded (differently-shaped runs in one process recycle the
    oldest buffer instead of accumulating or dropping everything), and it
    is keyed to the owning process -- a fork-based worker that inherits
    the parent's pool resets it on first touch rather than scribbling
    into buffers the parent may still be reading.
    """

    MAX_ENTRIES = 8

    def __init__(self) -> None:
        self._pid: int | None = None
        self._buffers: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()

    def get(self, shape: tuple[int, int]) -> np.ndarray:
        """An uninitialised reusable matrix of the given shape."""
        pid = os.getpid()
        if pid != self._pid:
            self._buffers = OrderedDict()
            self._pid = pid
        buf = self._buffers.get(shape)
        if buf is None:
            while len(self._buffers) >= self.MAX_ENTRIES:
                self._buffers.popitem(last=False)
            buf = np.empty(shape)
        else:
            del self._buffers[shape]
        self._buffers[shape] = buf
        return buf

    def __len__(self) -> int:
        return len(self._buffers)


_MATRIX_POOL = _MatrixPool()


def _pooled_matrix(shape: tuple[int, int]) -> np.ndarray:
    """An uninitialised reusable matrix of the given shape."""
    return _MATRIX_POOL.get(shape)


@dataclass
class LocalJob:
    """One local optimisation problem: a (silo, user) or silo dataset.

    ``schedule`` carries pre-drawn minibatch index arrays (see
    :func:`draw_minibatch_schedule`); ``None`` means full-batch descent,
    the ULDP-AVG default for tiny per-user datasets.
    """

    x: np.ndarray
    y: np.ndarray
    schedule: list[list[np.ndarray]] | None = field(default=None)

    @property
    def n(self) -> int:
        return len(self.x)


def draw_minibatch_schedule(
    n: int, batch_size: int | None, epochs: int, rng: np.random.Generator
) -> list[list[np.ndarray]] | None:
    """Pre-draw the minibatch partition :func:`repro.nn.train.train_epochs` would use.

    Consumes the RNG exactly as the loop path does: one permutation per
    epoch when the effective batch is smaller than the dataset, nothing
    otherwise (full-batch iteration draws no randomness).  Returns ``None``
    in the full-batch case so callers can tell the two apart.
    """
    if n < 1:
        raise ValueError("cannot schedule an empty dataset")
    batch = n if batch_size is None else max(1, min(batch_size, n))
    if batch >= n:
        return None
    schedule: list[list[np.ndarray]] = []
    for _ in range(max(0, epochs)):
        order = rng.permutation(n)
        schedule.append([order[start : start + batch] for start in range(0, n, batch)])
    return schedule


def _stack_jobs(jobs: list[LocalJob]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad and stack job datasets into (G, Nmax, ...) tensors plus a mask."""
    n_max = max(job.n for job in jobs)
    x0, y0 = np.asarray(jobs[0].x), np.asarray(jobs[0].y)
    xs = np.zeros((len(jobs), n_max, *x0.shape[1:]), dtype=np.float64)
    ys = np.zeros((len(jobs), n_max, *y0.shape[1:]), dtype=np.float64)
    mask = np.zeros((len(jobs), n_max), dtype=bool)
    for g, job in enumerate(jobs):
        xs[g, : job.n] = job.x
        ys[g, : job.n] = job.y
        mask[g, : job.n] = True
    return xs, ys, mask


def _job_steps(job: LocalJob, epoch: int) -> list[np.ndarray]:
    """Index arrays of one job's minibatches in ``epoch`` (full-batch: one)."""
    if job.schedule is None:
        return [np.arange(job.n)]
    return job.schedule[epoch]


def _size_buckets(jobs: list[LocalJob]) -> list[list[int]]:
    """Partition job indices into buckets of similar record count.

    Stacking pads every job to the largest job's length; when counts are
    skewed (zipf user allocations) that wastes most of the tensor on
    padding.  Bucketing by next-power-of-two record count bounds the
    padding overhead at 2x while keeping the bucket count logarithmic.
    Jobs are independent, so splitting changes no results.  Buckets are
    formed *within* one micro-batch, so bucketing never mixes jobs across
    the fixed numerical chunks.
    """
    buckets: dict[int, list[int]] = {}
    for i, job in enumerate(jobs):
        key = max(1, job.n - 1).bit_length()
        buckets.setdefault(key, []).append(i)
    return [buckets[key] for key in sorted(buckets)]


def _train_bucket(
    model: Sequential,
    task: str,
    params: np.ndarray,
    jobs: list[LocalJob],
    lr: float,
    epochs: int,
) -> np.ndarray:
    """Train one bucket of jobs in lockstep; returns their delta matrix."""
    bm = batch_model(model, len(jobs), reuse=True)
    bm.set_flat_params(params)
    loss = make_batched_loss(task, model)
    xs, ys, mask = _stack_jobs(jobs)
    group_idx = np.arange(len(jobs))[:, None]
    full_batch = all(job.schedule is None for job in jobs)

    for epoch in range(max(0, epochs)):
        per_job = [_job_steps(job, epoch) for job in jobs]
        n_steps = max(len(steps) for steps in per_job)
        for step in range(n_steps):
            if full_batch:
                # All records of every job, no gather needed.
                xb, yb, valid = xs, ys, mask
            else:
                batches = [
                    steps[step] if step < len(steps) else np.zeros(0, dtype=np.int64)
                    for steps in per_job
                ]
                b_max = max(len(b) for b in batches)
                if b_max == 0:
                    continue
                idx = np.full((len(jobs), b_max), -1, dtype=np.int64)
                for g, b in enumerate(batches):
                    idx[g, : len(b)] = b
                valid = idx >= 0
                safe = np.where(valid, idx, 0)
                xb = xs[group_idx, safe]
                yb = ys[group_idx, safe]
            bm.zero_grad()
            pred = bm.forward(xb)
            loss.forward(pred, yb, valid)
            bm.backward(loss.backward())
            for p, g in zip(bm.params, bm.grads):
                p -= lr * g
    return bm.get_flat_params() - params[None, :]


def _micro_batches(n: int) -> list[tuple[int, int]]:
    """The fixed ``[start, stop)`` chunking of an ``n``-job list."""
    return [(s, min(s + MICRO_BATCH, n)) for s in range(0, n, MICRO_BATCH)]


def _delta_chunk(
    model: Sequential,
    task: str,
    params: np.ndarray,
    jobs: list[LocalJob],
    lr: float,
    epochs: int,
    out: np.ndarray,
) -> None:
    """One micro-batch of unclipped local deltas, written into ``out``."""
    if epochs == 1 and all(job.schedule is None for job in jobs):
        local = model.clone()
        local.set_flat_params(params)
        loss = make_loss(task, local)
        x = np.concatenate([np.asarray(job.x, dtype=np.float64) for job in jobs])
        y = np.concatenate([np.asarray(job.y, dtype=np.float64) for job in jobs])
        per_group_gradients(local, loss, x, y, [job.n for job in jobs], out=out)
        np.multiply(out, -lr, out=out)
        return
    for indices in _size_buckets(jobs):
        out[indices] = _train_bucket(
            model, task, params, [jobs[i] for i in indices], lr, epochs
        )


def batched_local_deltas(
    model: Sequential,
    task: str,
    params: np.ndarray,
    jobs: list[LocalJob],
    lr: float,
    epochs: int,
) -> np.ndarray:
    """Per-job model deltas after local SGD, computed in batched runs.

    Every job starts from the flat global ``params`` and trains for
    ``epochs`` passes with learning rate ``lr`` on its own records; the
    return value is the ``(len(jobs), P)`` matrix of deltas
    ``local - global``, row-aligned with ``jobs``.  The per-row result
    matches :meth:`repro.core.methods.base.FLMethod._local_delta` up to
    floating-point reassociation.  Jobs run in fixed micro-batches (see
    the module docstring); within each chunk they are grouped into
    similar-size buckets (see :func:`_size_buckets`) purely for speed.

    Single-step shortcut: one full-batch epoch (the paper's ULDP-AVG
    setting for figure benchmarks) never diverges the per-group parameters,
    so the deltas are exactly one SGD step from the shared model --
    computed via the much faster shared-weight gradient engine
    (:func:`repro.nn.batched.per_group_gradients`).  The result is a
    pooled buffer: valid until the next engine call with the same shape,
    so consume (or copy) it within the round.
    """
    if not jobs:
        return np.zeros((0, params.size))
    out = _pooled_matrix((len(jobs), params.size))
    for start, stop in _micro_batches(len(jobs)):
        _delta_chunk(
            model, task, params, jobs[start:stop], lr, epochs, out[start:stop]
        )
    return out


def batched_clipped_local_deltas(
    model: Sequential,
    task: str,
    params: np.ndarray,
    jobs: list[LocalJob],
    lr: float,
    epochs: int,
    clip: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-job *clipped* local-training deltas plus their clip factors.

    Returns ``(clipped, factors)`` where ``clipped[g]`` is job g's model
    delta scaled to l2 norm at most ``clip`` and ``factors[g]`` the applied
    ``min(1, clip / ||delta||)`` (0 for non-finite deltas, 1 for zero ones)
    -- the Algorithm 3 line 16 quantities for a whole silo round at once.

    On the single-step path the delta norms are ``lr`` times the gradient
    norms, so clip-and-scale fuses into the engine's single assembly pass
    over the result matrix; the general path clips the delta matrix in
    place.  Either way the result matrix is pooled -- valid until the next
    engine call of the same shape.
    """
    if clip <= 0:
        raise ValueError("clip bound must be positive")
    if not jobs:
        return np.zeros((0, params.size)), np.zeros(0)
    with get_recorder().span(
        "local_training", kind="phase", jobs=len(jobs), epochs=epochs
    ):
        return _clipped_local_deltas(model, task, params, jobs, lr, epochs, clip)


def _clipped_chunk(model, task, params, jobs, lr, epochs, clip, out, factors):
    """One micro-batch of clipped deltas into ``out``/``factors`` slices."""
    if epochs == 1 and all(job.schedule is None for job in jobs):
        local = model.clone()
        local.set_flat_params(params)
        loss = make_loss(task, local)
        x = np.concatenate([np.asarray(job.x, dtype=np.float64) for job in jobs])
        y = np.concatenate([np.asarray(job.y, dtype=np.float64) for job in jobs])

        def clip_and_descend(grad_norms: np.ndarray) -> np.ndarray:
            # The delta of one full-batch step has norm lr * ||gradient||.
            f = clip_factor_from_norms(lr * grad_norms, clip)
            factors[...] = f
            return -lr * f

        per_group_gradients(
            local,
            loss,
            x,
            y,
            [job.n for job in jobs],
            out=out,
            row_scale=clip_and_descend,
        )
        return
    deltas = np.empty((len(jobs), params.size))
    for indices in _size_buckets(jobs):
        deltas[indices] = _train_bucket(
            model, task, params, [jobs[i] for i in indices], lr, epochs
        )
    factors[...] = clip_factor_rows(deltas, clip)
    l2_clip_rows(deltas, clip, out=out, factors=factors)


def _clipped_local_deltas(model, task, params, jobs, lr, epochs, clip):
    out = _pooled_matrix((len(jobs), params.size))
    factors = np.empty(len(jobs))
    for start, stop in _micro_batches(len(jobs)):
        _clipped_chunk(
            model,
            task,
            params,
            jobs[start:stop],
            lr,
            epochs,
            clip,
            out[start:stop],
            factors[start:stop],
        )
    return out, factors


def batched_gradients(
    model: Sequential,
    task: str,
    params: np.ndarray,
    jobs: list[LocalJob],
) -> np.ndarray:
    """Per-job full-batch mean gradients at ``params``, in batched passes.

    The ``(len(jobs), P)`` result matches
    :meth:`repro.core.methods.base.FLMethod._gradient` row by row; jobs on
    which the loss is undefined (degenerate Cox batches) yield zero rows,
    the same convention as the loop path.

    Because every job is evaluated at the *same* parameters, this runs
    through the shared-weight engine: one unpadded forward/backward per
    micro-batch over the chunk's records with per-group segmented
    parameter reductions.  The result is a pooled buffer reused by the
    next engine call of the same shape -- consume (or copy) it within the
    round.
    """
    if not jobs:
        return np.zeros((0, params.size))
    with get_recorder().span("local_gradients", kind="phase", jobs=len(jobs)):
        local = model.clone()
        local.set_flat_params(params)
        loss = make_loss(task, local)
        out = _pooled_matrix((len(jobs), params.size))
        for start, stop in _micro_batches(len(jobs)):
            chunk = jobs[start:stop]
            x = np.concatenate([np.asarray(j.x, dtype=np.float64) for j in chunk])
            y = np.concatenate([np.asarray(j.y, dtype=np.float64) for j in chunk])
            per_group_gradients(
                local, loss, x, y, [j.n for j in chunk], out=out[start:stop]
            )
        return out


# -- sharded execution layer --------------------------------------------------


@dataclass(frozen=True)
class EngineConfig:
    """The ``[engine]`` section: how a round's job lists are executed.

    ``workers=0`` (the default) runs shard tasks in-process; ``workers>=1``
    ships them to a persistent ``ProcessPoolExecutor``.  Results are
    bit-identical for every setting: the shard plan is a pure function of
    the job lists and ``shard_size`` (never of ``workers``), shards are
    micro-batch aligned, and partials combine through the exact binned
    fold.  ``backend`` names the array namespace used for the weighted
    partial-sum fold (:mod:`repro.nn.backend`).
    """

    workers: int = 0
    shard_size: int = DEFAULT_SHARD_SIZE
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"engine workers must be >= 0, got {self.workers}")
        if self.shard_size < 1:
            raise ValueError(
                f"engine shard_size must be >= 1, got {self.shard_size}"
            )
        validate_backend(self.backend)

    @property
    def aligned_shard_size(self) -> int:
        """``shard_size`` rounded up to a :data:`MICRO_BATCH` multiple.

        Alignment is what keeps a shard's micro-batches identical to the
        ones the unsharded path would form, so the effective shard size
        is always a multiple of the numerical chunk.
        """
        chunks = -(-self.shard_size // MICRO_BATCH)
        return chunks * MICRO_BATCH


def plan_shards(n_jobs: int, shard_size: int) -> list[tuple[int, int]]:
    """Deterministic, micro-batch-aligned ``[start, stop)`` shard spans.

    A pure function of the job count and the (aligned) shard size -- in
    particular *not* of the worker count, which only decides where each
    shard runs.  The last shard may be smaller; a zero-job list plans no
    shards.
    """
    size = max(MICRO_BATCH, -(-shard_size // MICRO_BATCH) * MICRO_BATCH)
    return [(s, min(s + size, n_jobs)) for s in range(0, n_jobs, size)]


def make_shard_task(
    *,
    mode: str,
    model: Sequential,
    task: str,
    params: np.ndarray,
    jobs,
    weights: np.ndarray,
    clip: float,
    scale: float,
    silo: int,
    shard: int,
    lr: float = 0.0,
    epochs: int = 1,
    backend: str = "numpy",
) -> dict:
    """A self-contained, picklable shard work unit for :func:`run_shard_task`.

    ``jobs`` is either a list of :class:`LocalJob` (shipped inline) or a
    loader descriptor ``{"loader": "pkg.mod:func", "spec": {...}}`` the
    worker resolves and calls -- the lazy path, used when materialising
    the shard's records in the parent would defeat the memory bound.
    ``mode`` selects the per-chunk kernel: ``"delta"`` (clipped local
    training deltas, ULDP-AVG) or ``"gradient"`` (negated clipped
    gradients, ULDP-SGD).
    """
    if mode not in ("delta", "gradient"):
        raise ValueError(f"shard mode must be 'delta' or 'gradient', got {mode!r}")
    payload = (
        {"kind": "loader", **jobs}
        if isinstance(jobs, dict)
        else {"kind": "inline", "jobs": list(jobs)}
    )
    return {
        "mode": mode,
        "model": model,
        "task": task,
        "params": params,
        "jobs": payload,
        "weights": np.ascontiguousarray(weights, dtype=np.float64),
        "clip": float(clip),
        "scale": float(scale),
        "silo": int(silo),
        "shard": int(shard),
        "lr": float(lr),
        "epochs": int(epochs),
        "backend": backend,
    }


def _resolve_shard_jobs(payload: dict) -> list[LocalJob]:
    """Materialise a task's job list (inline, or via its loader)."""
    if payload["kind"] == "inline":
        return payload["jobs"]
    module_name, func_name = payload["loader"].split(":")
    loader = getattr(importlib.import_module(module_name), func_name)
    return loader(payload["spec"])


def run_shard_task(task: dict) -> dict:
    """Execute one shard: train its jobs micro-batch by micro-batch and
    fold each chunk into a binned partial sum.

    Top-level and dict-in/dict-out so it pickles cleanly into a
    ``ProcessPoolExecutor`` (PR 2's kernel pattern).  The worker never
    holds more than one ``(MICRO_BATCH, P)`` row block plus the
    ``(bins, P)`` accumulator, which is what bounds resident memory per
    process regardless of shard size.  Returns the accumulator state,
    the per-job clip factors (``"delta"`` mode), and the kernel seconds
    for the parent's shard span.
    """
    t0 = time.perf_counter()
    backend = get_backend(task["backend"])
    jobs = _resolve_shard_jobs(task["jobs"])
    params = task["params"]
    weights = task["weights"]
    if len(weights) != len(jobs):
        raise ValueError(
            f"shard {task['shard']}: {len(weights)} weights for {len(jobs)} jobs"
        )
    acc = BinnedSum(params.size, task["scale"])
    factors = np.empty(len(jobs)) if task["mode"] == "delta" else None
    for start, stop in _micro_batches(len(jobs)):
        chunk = jobs[start:stop]
        if task["mode"] == "delta":
            rows, f = _clipped_local_deltas(
                task["model"],
                task["task"],
                params,
                chunk,
                task["lr"],
                task["epochs"],
                task["clip"],
            )
            factors[start:stop] = f
        else:
            rows = batched_gradients(task["model"], task["task"], params, chunk)
            np.negative(rows, out=rows)
            l2_clip_rows(rows, task["clip"], out=rows)
        acc.add(backend.weighted_sum(weights[start:stop], rows))
    return {
        "shard": task["shard"],
        "silo": task["silo"],
        "n_jobs": len(jobs),
        "state": acc.state(),
        "factors": factors,
        "seconds": time.perf_counter() - t0,
    }


def fold_weighted_rows(
    acc: BinnedSum,
    weights: np.ndarray,
    rows: np.ndarray,
    backend: ArrayBackend,
) -> None:
    """Fold ``weights @ rows`` into ``acc`` in the engine's micro-batches.

    The server-side twin of :func:`run_shard_task`'s fold: aggregating an
    already-materialised row matrix (the networked executor path) through
    the same chunked weighted sums keeps its bits identical to the
    streamed in-process path.
    """
    for start, stop in _micro_batches(len(rows)):
        acc.add(backend.weighted_sum(weights[start:stop], rows[start:stop]))


class ShardedEngine:
    """Runs shard tasks in-process or on a persistent fork-based pool.

    Owns no numerical policy: the shard *plan* (which jobs form which
    shard) is fixed by :func:`plan_shards` and the caller's job order,
    and every execution mode runs the same :func:`run_shard_task` kernel.
    Results are returned in shard order -- the fixed reduction order --
    and each shard gets a ``kind="shard"`` span plus an
    ``engine_shard_seconds`` histogram observation.
    """

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()
        self._executor: ProcessPoolExecutor | None = None

    @property
    def backend(self) -> ArrayBackend:
        return get_backend(self.config.backend)

    def scale(self, clip: float) -> float:
        """The binned-fold magnitude bound for ``clip``-bounded rows."""
        return fold_scale(clip, MICRO_BATCH)

    def _get_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Prefer fork only where it is safe (Linux); macOS forks crash
            # intermittently with threaded parents, hence CPython's own
            # switch of the platform default to spawn.
            mp_context = None
            if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
                mp_context = multiprocessing.get_context("fork")
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.workers, mp_context=mp_context
            )
        return self._executor

    def run_tasks(self, tasks: list[dict]) -> list[dict]:
        """Execute shard tasks, returning results in shard (plan) order."""
        if not tasks:
            return []
        recorder = get_recorder()
        shard_seconds = get_registry().histogram(
            "engine_shard_seconds",
            help="Kernel seconds per shard task of the sharded engine.",
            unit="seconds",
        )
        results = []
        if self.config.workers == 0:
            for task in tasks:
                with recorder.span(
                    "shard",
                    kind="shard",
                    shard=task["shard"],
                    silo=task["silo"],
                ) as span:
                    result = run_shard_task(task)
                    span.set(jobs=result["n_jobs"], seconds=result["seconds"])
                shard_seconds.observe(result["seconds"])
                results.append(result)
            return results
        executor = self._get_executor()
        futures = [executor.submit(run_shard_task, task) for task in tasks]
        for task, future in zip(tasks, futures):
            with recorder.span(
                "shard", kind="shard", shard=task["shard"], silo=task["silo"]
            ) as span:
                result = future.result()
                span.set(jobs=result["n_jobs"], seconds=result["seconds"])
            shard_seconds.observe(result["seconds"])
            results.append(result)
        return results

    def reduce(self, results: list[dict]) -> BinnedSum:
        """Tree-reduce the shard partials (exact, so shape-independent)."""
        return tree_reduce([BinnedSum.from_state(r["state"]) for r in results])

    def close(self) -> None:
        """Release the worker pool (safe to call repeatedly; the pool is
        recreated lazily if the engine is used again)."""
        if getattr(self, "_executor", None) is not None:
            self._executor.shutdown()
            self._executor = None

    def __del__(self):
        self.close()
