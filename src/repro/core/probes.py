"""Empirical sensitivity probes.

Utilities that measure, with noise disabled, how much a method's pre-noise
aggregate moves when one user's records are swapped -- the quantity the
privacy theorems bound analytically (Theorems 1 and 3, Figure 3).  Used by
the invariant tests and the Table 2 benchmark; also handy for validating
custom weight matrices before deployment.
"""

from __future__ import annotations

import numpy as np

from repro.data.federated import FederatedDataset, SiloData
from repro.nn.model import build_tiny_mlp

#: A user (id 0) with many records in every silo: the adversarial case for
#: record-level DP and the motivating example of the paper (Figure 1).
HEAVY_USER_LAYOUT = [
    [0] * 6 + [1, 2, 3],
    [0] * 4 + [2, 3, 3],
    [0] * 5 + [1, 1, 2],
]
N_USERS = 4


def make_fed(
    user_ids_per_silo: list[list[int]],
    n_users: int,
    seed: int = 0,
    n_features: int = 4,
) -> FederatedDataset:
    """Small random binary-classification federation with a fixed layout."""
    rng = np.random.default_rng(seed)
    silos = []
    for ids in user_ids_per_silo:
        n = len(ids)
        silos.append(
            SiloData(
                rng.standard_normal((n, n_features)),
                rng.integers(0, 2, n),
                np.asarray(ids),
            )
        )
    return FederatedDataset(
        silos=silos,
        n_users=n_users,
        test_x=rng.standard_normal((8, n_features)),
        test_y=rng.integers(0, 2, 8),
        task="binary",
        name="sensitivity-probe",
    )


def replace_user_records(
    fed: FederatedDataset, user: int, seed: int
) -> FederatedDataset:
    """Copy of ``fed`` with the user's features/labels resampled everywhere.

    The replacement data is drawn at 10x scale so the swap is adversarial
    (it saturates the clipping bound rather than hiding inside it).
    """
    rng = np.random.default_rng(seed)
    silos = []
    for silo in fed.silos:
        x = silo.x.copy()
        y = silo.y.copy()
        mask = silo.user_ids == user
        x[mask] = 10.0 * rng.standard_normal((int(mask.sum()), x.shape[1]))
        y[mask] = rng.integers(0, 2, int(mask.sum()))
        silos.append(SiloData(x, y, silo.user_ids.copy()))
    return FederatedDataset(
        silos=silos, n_users=fed.n_users, test_x=fed.test_x, test_y=fed.test_y,
        task=fed.task, name=fed.name,
    )


def prenoise_aggregate(method_cls, fed, clip, seed=1, **kwargs) -> np.ndarray:
    """One noiseless round's server step (new params minus old params)."""
    rng = np.random.default_rng(seed)
    model = build_tiny_mlp(fed.test_x.shape[1], 6, 2, np.random.default_rng(42))
    method = method_cls(clip=clip, noise_multiplier=0.0, **kwargs)
    method.prepare(fed, model, rng)
    params = model.get_flat_params()
    new_params = method.round(0, params)
    return new_params - params
